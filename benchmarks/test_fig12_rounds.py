"""E8 — Figure 12: size vs rounds, per-module vs whole-program."""

from conftest import run_once

from repro.experiments import fig12_rounds


def test_fig12_rounds(benchmark, scale):
    result = run_once(benchmark, fig12_rounds.run, scale=scale,
                      rounds_grid=(0, 1, 2, 3, 5, 6))
    print()
    print(fig12_rounds.format_report(result))
    # Whole-program beats intra-module at every round count >= 1.
    assert result.wholeprogram_beats_intra
    wp = result.series("wholeprogram")
    default = result.series("default")
    for w, d in zip(wp, default):
        if w.rounds >= 1:
            assert w.text_bytes < d.text_bytes
    # Sizes are monotone non-increasing in rounds, with a plateau.
    for series in (wp, default):
        sizes = [p.text_bytes for p in series]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
    assert result.plateaus
    # Binary size tracks code size.
    assert wp[-1].binary_bytes < wp[0].binary_bytes
