"""Size benchmark: per-preset, per-target byte breakdowns, locked by
the strip win.

Builds one ``appgen`` corpus under every named preset for every target
slice (via :func:`repro.pipeline.build_targets`, so each preset's
frontend runs once, not once per target) and emits ``BENCH_size.json``
at the repo root with text/data/padding/stripped totals — the numbers
the paper's Figure 12 tracks across releases.

Asserted shape claims, not absolute bytes:

* ``min-size`` with link-time stripping produces *strictly* less __text
  than the same stack with ``strip="off"``, on every target, and the
  stripped binary's simulated output is identical;
* ``min-size`` beats ``fast-build`` on __text on every target (the
  size/speed tradeoff exists at corpus scale);
* the per-module size-report rows reconcile exactly with the image the
  totals came from.

Scale with ``REPRO_SIZE_FEATURES`` (default 24 — big enough that every
preset has outlining/merging/stripping work to do, small enough to run
the simulator on every variant).
"""

import json
import os

from repro.link import sizereport
from repro.pipeline import BuildConfig, build_targets
from repro.pipeline.build import run_build
from repro.pipeline.config import PRESETS
from repro.target import available_targets
from repro.workloads.appgen import AppSpec, generate_app

FEATURES = int(os.environ.get("REPRO_SIZE_FEATURES", "24"))
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_size.json")

SCHEMA = "bench-size/1"


def test_size(tmp_path):
    spec = AppSpec(base_features=FEATURES, num_vendors=4, base_handlers=4)
    sources = generate_app(spec)
    targets = list(available_targets())

    presets = {name: BuildConfig.preset(name, verify_image=False)
               for name in sorted(PRESETS)}
    # The strip-off control: min-size with only the strip knob flipped.
    presets["min-size-nostrip"] = BuildConfig.preset(
        "min-size", strip="off", verify_image=False)

    rows = {}
    outputs = {}
    for name, config in presets.items():
        results = build_targets(sources, targets, config)
        report = sizereport.build_size_report(results)
        rows[name] = {}
        for target in targets:
            totals = report["targets"][target]["totals"]
            modules = report["targets"][target]["modules"]
            image = results[target].image
            # Reconciliation: module rows sum to the image's sections.
            assert sum(r["text_bytes"] + r["outlined_bytes"]
                       + r["padding_bytes"] for r in modules.values()) \
                == image.text_bytes
            assert sum(r["data_bytes"] for r in modules.values()) \
                == image.data_bytes
            rows[name][target] = {
                "text_bytes": totals["total_text_bytes"],
                "data_bytes": totals["data_bytes"],
                "padding_bytes": totals["padding_bytes"],
                "outlined_bytes": totals["outlined_bytes"],
                "metadata_bytes": totals["metadata_bytes"],
                "binary_bytes": totals["binary_bytes"],
                "stripped_functions": totals["stripped_functions"],
                "stripped_bytes": totals["stripped_bytes"],
                "functions": totals["functions"],
            }
        outputs[name] = run_build(results[targets[0]],
                                  max_steps=200_000_000).output

    # Every preset computes the same program.
    reference = outputs["balanced"]
    for name, output in outputs.items():
        assert output == reference, f"{name} diverged from balanced"

    for target in targets:
        stripped = rows["min-size"][target]
        control = rows["min-size-nostrip"][target]
        assert stripped["text_bytes"] < control["text_bytes"], (
            f"{target}: stripping did not strictly reduce __text "
            f"({stripped['text_bytes']} vs {control['text_bytes']})")
        assert stripped["stripped_functions"] > 0
        assert control["stripped_functions"] == 0
        assert (rows["min-size"][target]["text_bytes"]
                < rows["fast-build"][target]["text_bytes"]), (
            f"{target}: min-size not smaller than fast-build")

    payload = {
        "schema": SCHEMA,
        "corpus": {
            "features": FEATURES,
            "modules": len(sources),
        },
        "presets": rows,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
