"""E11 — §VII-C: build-time model."""

from conftest import run_once

from repro.experiments import buildtime


def test_buildtime(benchmark, scale):
    result = run_once(benchmark, buildtime.run, scale=scale,
                      rounds_grid=(0, 1, 2, 3, 5))
    print()
    print(buildtime.format_report(result))
    default_minutes = result.minutes_of("default", 1)
    wp0 = result.minutes_of("wholeprogram", 0)
    wp5 = result.minutes_of("wholeprogram", 5)
    # The whole-program pipeline costs substantially more than default...
    assert wp0 > 1.5 * default_minutes
    # ... outlining rounds add more on top ...
    assert wp5 > wp0
    # ... but each extra round costs less than the one before.
    assert result.round_cost_diminishes
    # Calibration sanity: the ratios roughly match the paper's 21/53/66.
    assert 1.5 < wp0 / default_minutes < 4.5
    assert 1.05 < wp5 / wp0 < 1.8
