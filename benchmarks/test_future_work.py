"""§VIII future-work ablations: semantic headroom, inlining interaction,
outlined-code layout."""

from conftest import run_once

from repro.experiments import future_work


def test_future_work(benchmark, scale):
    result = run_once(benchmark, future_work.run, scale=scale, num_spans=3)
    print()
    print(future_work.format_report(result))
    # (1) Register renaming leaves real headroom (Listings 1 vs 2 differ
    # only in source register), but syntactic matching already gets most.
    assert result.headroom.headroom_pct > 3.0
    assert result.headroom.abstract_benefit_bytes >= \
        result.headroom.exact_benefit_bytes
    # (2) Inlining grows unoutlined code; whole-program outlining claws the
    # duplication back.
    grid = result.inline_grid
    assert grid[(True, 0)] >= grid[(False, 0)]
    assert result.inlining_recovered_by_outlining
    # (3) Placing outlined code near callers never hurts span time much and
    # usually helps (future work #3).
    assert result.layout_geomean_ratio < 1.02
