"""E7 — Figure 11 / Listings 12-13: greedy vs repeated outlining."""

from conftest import run_once

from repro.experiments import fig11_greedy


def test_fig11_greedy(benchmark, scale):
    result = run_once(benchmark, fig11_greedy.run, scale=scale)
    print()
    print(fig11_greedy.format_report(result))
    a = result.anecdote
    # Greedy helps, repeated helps more (the Figure 11 ordering).
    assert a.repeated_instrs < a.greedy_instrs < a.baseline_instrs
    # Greedy's myopic first pick is the shorter BCD pattern.
    assert a.first_round_pattern_len == 3
    # On the app, repetition contributes a meaningful share of the saving.
    assert result.app_final_saving_pct > result.app_round1_saving_pct
    assert 3.0 < result.repeat_contribution_pct < 60.0, \
        "repetition share should be meaningful (paper: 27%)"
