"""E15 — §VI-2: Swift + Objective-C llvm-link GC-metadata interop."""

import pytest
from conftest import run_once

from repro.errors import GCMetadataConflict
from repro.lir.linker import LinkOptions, link_modules
from repro.pipeline import frontend_to_lir
from repro.workloads.corpora import objc_module

_SWIFT_SOURCE = """
func bridgeHelper(x: Int) -> Int {
    return x * 3 + 1
}
func main() {
    print(bridgeHelper(x: 13))
}
"""


def _link(mode: str):
    _, swift_mods = frontend_to_lir({"SwiftSide": _SWIFT_SOURCE})
    objc = objc_module()
    return link_modules(swift_mods + [objc],
                        LinkOptions(gc_metadata_mode=mode))


def test_interop(benchmark):
    # Legacy monolithic GC words from different compilers conflict...
    with pytest.raises(GCMetadataConflict):
        _link("monolithic")
    # ... the attribute-based fix merges cleanly (upstreamed to llvm-link).
    merged = run_once(benchmark, _link, "attributes")
    names = {fn.symbol for fn in merged.functions}
    assert "SwiftSide::bridgeHelper" in names
    assert any(n.startswith("ObjCBridge::") for n in names)
    attrs = merged.metadata["objc_gc_attrs"]
    assert attrs["mode"] == "none"
    # Producer-specific attributes from both compilers coexist.
    assert "swift_abi" in attrs and "clang_abi" in attrs
    print("\n§VI-2 interop: monolithic conflicts, attribute mode links "
          f"{len(merged.functions)} functions cleanly")
