"""E3 + E16 — Figure 5 / Listings 1-8: frequency census and power law."""

from conftest import run_once

from repro.experiments import fig5_powerlaw


def test_fig5_powerlaw(benchmark, scale):
    result = run_once(benchmark, fig5_powerlaw.run, scale=scale)
    print()
    print(fig5_powerlaw.format_report(result))
    assert result.census["num_patterns"] > 100
    # Rank/frequency obeys a power law with a negative exponent and a
    # high-confidence log-log fit.
    assert result.fit.b < -0.3
    assert result.fit.r_squared > 0.85
    # The most frequent patterns are the ARC/calling-convention pairs of
    # Listings 1-6: short sequences involving runtime calls.
    top = result.top
    assert any(
        any("swift_retain" in line or "swift_release" in line
            for line in stat.rendered)
        for stat in top[:4]
    ), "retain/release call patterns must dominate (Listings 1-2)"
    assert all(stat.length <= 4 for stat in top[:4]), \
        "most frequent patterns are short"
