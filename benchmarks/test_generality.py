"""E13 — §VII-E: generality on clang-like and kernel-like corpora."""

from conftest import run_once

from repro.experiments import generality


def test_generality(benchmark):
    result = run_once(benchmark, generality.run)
    print()
    print(generality.format_report(result))
    for corpus in result.corpora:
        # Meaningful savings on non-iOS code (paper: 14% and 25%).
        assert corpus.saving_pct > 8.0, corpus.corpus
        # Per-round sizes are monotone non-increasing.
        sizes = corpus.per_round_text
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
    assert result.kernel_guard_pattern_found, (
        "the stack-protector epilogue must surface as a repeating pattern")
