"""E6 — Figure 8: candidate histogram by sequence length."""

from conftest import run_once

from repro.experiments import fig8_histogram


def test_fig8_histogram(benchmark, scale):
    result = run_once(benchmark, fig8_histogram.run, scale=scale)
    print()
    print(fig8_histogram.format_report(result))
    hist = result.histogram
    assert 2 in hist
    # Patterns of length two occur most commonly...
    assert result.shortest_dominates
    # ... and lengthier patterns are quite infrequent (monotone-ish tail:
    # the count at length 8+ is far below the count at length 2).
    longer = sum(v for k, v in hist.items() if k >= 8)
    assert longer < hist[2]
    # But long repeats do exist (the paper's 279-instruction pattern).
    assert result.max_length >= 6
