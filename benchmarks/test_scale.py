"""Scale benchmark: function-level incremental builds, locked by ceilings.

Builds a large ``appgen`` corpus three ways under the ``fast-build``
preset — cold, warm no-op (unchanged sources), and warm after a
single-function edit — and emits ``BENCH_scale.json`` at the repo root
with the measured walls, peak RSS, and functions-recompiled-per-edit.

The asserted ceilings are what turn the tentpole's wins from anecdotes
into regressions CI can catch:

* warm no-op rebuild ≥ ``MIN_NOOP_SPEEDUP``× faster than cold (the image
  entry hits without deserializing per-module LIR or machine IR);
* a single-function edit recompiles exactly one function and misses
  exactly one per-module llc entry (everything else comes from the
  function-level cache);
* the edit rebuild stays well under a cold build (whole-program sema is
  the irreducible floor);
* peak RSS stays bounded.

Scale with ``REPRO_SCALE_FEATURES`` (default 120 ≈ 3.6k functions /
128 modules; raise it to approach the paper's 10k-function regime —
the ceilings are ratios, so they hold at any scale).

The post-link verifier is disabled *explicitly* (knob > preset): the
inner loop this models trusts the cache layer's own torn-entry
detection, and the verifier's cost would otherwise dominate the warm
path being measured.
"""

import json
import os
import resource
import time

from repro.pipeline import BuildConfig, build_program
from repro.workloads.appgen import (AppSpec, edit_function, generate_app,
                                    function_fingerprints)

FEATURES = int(os.environ.get("REPRO_SCALE_FEATURES", "120"))
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_scale.json")

#: Asserted ceilings (see module docstring).  Ratios, not absolute
#: seconds, so they are stable across machines.
MIN_NOOP_SPEEDUP = 10.0
MAX_EDIT_FRACTION_OF_COLD = 0.8
MAX_FUNCTIONS_RECOMPILED_PER_EDIT = 1
MAX_LLC_MISSES_PER_EDIT = 1
MAX_PEAK_RSS_MB = 1024.0


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_build(sources, config):
    start = time.monotonic()
    result = build_program(sources, config)
    return result, time.monotonic() - start


def test_scale(tmp_path):
    spec = AppSpec(base_features=FEATURES, num_vendors=6, base_handlers=5)
    sources = generate_app(spec)
    config = BuildConfig.preset("fast-build", cache_dir=str(tmp_path),
                                verify_image=False)

    cold, cold_wall = _timed_build(sources, config)
    noop, noop_wall = _timed_build(sources, config)
    assert noop.report.image_cache_hit

    # Edit exactly one function in one mid-corpus module.
    module = sorted(sources)[len(sources) // 2]
    func = sorted(function_fingerprints(spec)[module])[0]
    edited = dict(sources)
    edited[module] = edit_function(sources[module], func, marker=7)
    edit, edit_wall = _timed_build(edited, config)
    report = edit.report

    speedup = cold_wall / noop_wall
    edit_fraction = edit_wall / cold_wall
    peak_rss = _peak_rss_mb()
    payload = {
        "schema": "bench-scale/1",
        "corpus": {
            "features": FEATURES,
            "modules": len(sources),
            "functions": cold.sizes.num_functions,
        },
        "cold_wall_s": round(cold_wall, 3),
        "warm_noop_wall_s": round(noop_wall, 3),
        "warm_edit_wall_s": round(edit_wall, 3),
        "noop_speedup": round(speedup, 2),
        "edit_fraction_of_cold": round(edit_fraction, 3),
        "functions_recompiled_per_edit": report.functions_recompiled,
        "llc_cache_misses_per_edit": report.llc_cache_misses,
        "fn_cache_hits_per_edit": report.fn_cache_hits,
        "peak_rss_mb": round(peak_rss, 1),
        "ceilings": {
            "min_noop_speedup": MIN_NOOP_SPEEDUP,
            "max_edit_fraction_of_cold": MAX_EDIT_FRACTION_OF_COLD,
            "max_functions_recompiled_per_edit":
                MAX_FUNCTIONS_RECOMPILED_PER_EDIT,
            "max_llc_misses_per_edit": MAX_LLC_MISSES_PER_EDIT,
            "max_peak_rss_mb": MAX_PEAK_RSS_MB,
        },
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(payload, indent=2))

    # The edited binary differs from the cold one; the no-op one doesn't.
    assert noop.image.text_section() == cold.image.text_section()
    assert edit.image.text_section() != cold.image.text_section()

    assert report.functions_recompiled == MAX_FUNCTIONS_RECOMPILED_PER_EDIT
    assert report.llc_cache_misses == MAX_LLC_MISSES_PER_EDIT
    assert report.fn_cache_hits > 0
    assert speedup >= MIN_NOOP_SPEEDUP, (
        f"warm no-op only {speedup:.1f}x faster than cold")
    assert edit_fraction <= MAX_EDIT_FRACTION_OF_COLD, (
        f"single-function edit rebuild cost {edit_fraction:.2f} of cold")
    assert peak_rss <= MAX_PEAK_RSS_MB, f"peak RSS {peak_rss:.0f} MB"
