"""E9 — Table II: per-round outlining statistics."""

from conftest import run_once

from repro.experiments import table2_stats


def test_table2_stats(benchmark, scale):
    result = run_once(benchmark, table2_stats.run, scale=scale)
    print()
    print(table2_stats.format_report(result))
    stats = result.stats
    assert stats, "five-round build must outline something"
    # Cumulative counters are monotone non-decreasing.
    for key in ("sequences_outlined", "functions_created",
                "outlined_fn_bytes"):
        values = [getattr(s, key) for s in stats]
        assert all(b >= a for a, b in zip(values, values[1:]))
    # Round 1 contributes the bulk (paper: 3.08M of 4.71M sequences).
    assert stats[0].sequences_outlined >= 0.5 * stats[-1].sequences_outlined
    assert result.diminishing
