"""E2 — Table I: per-level savings landscape."""

from conftest import run_once

from repro.experiments import table1_landscape


def test_table1_landscape(benchmark, scale):
    result = run_once(benchmark, table1_landscape.run, scale=scale)
    print()
    print(table1_landscape.format_report(result))
    s = result.savings
    # The machine level dominates every higher level by a wide margin.
    assert s["repeated_machine_outlining"] > 10.0
    assert s["repeated_machine_outlining"] > 4 * max(
        s["sil_outlining"], s["merge_functions"], s["fmsa"])
    # Higher-level optimizations deliver only small-single-digit savings.
    assert s["sil_outlining"] < 6.0
    assert s["merge_functions"] < 6.0
    assert s["fmsa"] < 10.0
    # None of the baselines may *increase* size.
    assert s["sil_outlining"] > -0.5
    assert s["merge_functions"] > -0.5
    assert s["fmsa"] > -0.5
