"""E14 — §VI-3: llvm-link data-layout ordering regression and fix."""

from conftest import run_once

from repro.experiments import data_layout


def test_data_layout(benchmark, scale):
    result = run_once(benchmark, data_layout.run, scale=scale, num_spans=5)
    print()
    print(data_layout.format_report(result))
    # Interleaving module data costs data page faults and span time.
    assert result.interleaved_has_more_faults
    assert result.mean_regression_pct > 0.2, (
        "legacy interleaved layout must regress span performance")
    # The module-order fix never *loses* to interleaving on faults.
    ordered_faults = sum(r[3] for r in result.rows)
    interleaved_faults = sum(r[4] for r in result.rows)
    assert ordered_faults <= interleaved_faults
