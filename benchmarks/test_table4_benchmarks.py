"""E12 + E18 — Table IV / §VII-B: overhead on the 26 Swift benchmarks."""

import os

from conftest import run_once

from repro.experiments import table4_benchmarks
from repro.workloads.swift_benchmarks import BENCHMARK_NAMES

# The full 26-benchmark table takes minutes; default to a representative
# subset unless the caller asks for everything.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SUBSET = ("BFS", "GCD", "QuickSort", "Dijkstra", "RedBlackTree",
          "SplayTree", "JSON", "KnuthMorrisPratt", "SimulatedAnnealing",
          "HashTable")


def test_table4_benchmarks(benchmark):
    names = tuple(BENCHMARK_NAMES) if FULL else SUBSET
    result = run_once(benchmark, table4_benchmarks.run, names=names)
    print()
    print(table4_benchmarks.format_report(result))
    # Semantics preserved everywhere -- the hard requirement.
    assert result.all_outputs_match
    # Hot-loop code pays a small average cost (paper: ~1.7% average).
    assert -3.0 < result.average_overhead_pct < 12.0
    # No benchmark blows up (paper worst case: 10.81%).
    for row in result.rows:
        assert row.overhead_pct < 25.0, row.name
    # The pathological outlined-hot-loop case stays bounded (paper: 8.67%).
    assert result.pathological is not None
    assert result.pathological.overhead_pct < 30.0
