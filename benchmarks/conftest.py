"""Benchmark harness configuration.

Each ``test_*`` regenerates one of the paper's tables/figures: it runs the
experiment once under pytest-benchmark (pedantic mode — these are
multi-second whole-build experiments), prints the paper-style report, and
asserts the *shape* claims (who wins, plateaus, orderings), not absolute
numbers.

Scale: set REPRO_BENCH_SCALE=tiny|small|medium (default: tiny) to trade
fidelity for runtime.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture
def scale():
    return SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
