"""E10 — Figure 13 / Table III: span performance grid."""

from conftest import run_once

from repro.experiments import fig13_spans
from repro.sim.timing import DEVICE_GRID
from repro.workloads.spans import OS_GRID


def test_fig13_table3_spans(benchmark, scale):
    # Span claims are about deep app flows: always use app scale (a 4-module
    # "tiny" app has no deep spans, like measuring a hello-world).
    span_scale = "small" if scale == "tiny" else scale
    result = run_once(benchmark, fig13_spans.run, scale=span_scale,
                      num_spans=5, devices=DEVICE_GRID[:3],
                      os_versions=OS_GRID[:3])
    print()
    print(fig13_spans.format_report(result))
    # No statistically meaningful regression: geomean at or below ~1.02.
    assert result.geomean_ratio < 1.02, (
        "cold spans must not regress under whole-program outlining")
    # Most cells improve (the paper: "more blue cells").
    assert result.pct_improved_cells >= 50.0
    # No span collapses: every cell within a sane band.
    for cell in result.cells:
        assert 0.5 < cell.ratio < 1.3
