"""E5 — Figure 7: cumulative savings vs patterns outlined."""

from conftest import run_once

from repro.experiments import fig7_cumulative


def test_fig7_cumulative(benchmark, scale):
    result = run_once(benchmark, fig7_cumulative.run, scale=scale)
    print()
    print(fig7_cumulative.format_report(result))
    assert result.total_patterns > 100
    # "One cannot hard-code a few patterns": the top ten patterns do not
    # reach 90% of the achievable saving.
    assert result.patterns_for_90pct > 10
    # The curve is monotone non-decreasing.
    totals = [total for _, total in result.curve]
    assert all(b >= a for a, b in zip(totals, totals[1:]))
