"""E1 — Figure 1 / §VII-D: code-size growth and slope ratio."""

from conftest import run_once

from repro.experiments import fig1_growth


def test_fig1_growth(benchmark, scale):
    result = run_once(benchmark, fig1_growth.run, scale=scale,
                      weeks=(0, 10, 20, 30))
    print()
    print(fig1_growth.format_report(result))
    # Shape claims: optimized is always smaller, and grows more slowly.
    for point in result.points:
        assert point.optimized_text < point.baseline_text
    assert result.baseline_fit.slope > 0
    assert result.optimized_fit.slope > 0
    assert result.slope_ratio > 1.2, (
        "whole-program repeated outlining must reduce the growth rate")
    assert result.final_saving_pct > 10.0
    # Trend lines fit well (the paper reports 96%/98% confidence).
    assert result.baseline_fit.r_squared > 0.8
    assert result.optimized_fit.r_squared > 0.8
