"""E4 — Figure 6: frequency-cluster length structure."""

from conftest import run_once

from repro.experiments import fig6_fractal


def test_fig6_fractal(benchmark, scale):
    result = run_once(benchmark, fig6_fractal.run, scale=scale)
    print()
    print(fig6_fractal.format_report(result))
    clusters = result.clusters
    assert len(clusters) >= 5
    # Head clusters (most repeated) contain short patterns only.
    assert clusters[0].max_length <= 6
    # The tail has longer patterns than the head.
    tail_max = max(c.max_length for c in clusters[len(clusters) // 2:])
    head_max = max(c.max_length for c in clusters[:max(1, len(clusters) // 4)])
    assert tail_max >= head_max
    assert result.diversity_increases_down_tail()
