#!/usr/bin/env python3
"""Span performance study (Figure 13 / §VI-3): measure cold UI spans on a
device/OS grid for the baseline and optimized builds, then demonstrate the
llvm-link data-layout regression and its fix.

    python examples/span_performance.py
"""

from repro.experiments.common import (
    app_spec,
    baseline_config,
    build_app,
    format_table,
    optimized_config,
)
from repro.pipeline import BuildConfig
from repro.sim.timing import DEVICE_GRID
from repro.workloads.spans import OS_GRID, measure_span, select_spans


def main() -> None:
    spec = app_spec("small")
    print("building baseline (default pipeline) and optimized "
          "(whole-program, 5 rounds) ...")
    baseline = build_app(spec, baseline_config())
    optimized = build_app(spec, optimized_config())
    spans = select_spans(spec, count=4)

    rows = []
    device = DEVICE_GRID[2]
    os_version = OS_GRID[2]
    for span in spans:
        base = measure_span(baseline, span, device, os_version)
        opt = measure_span(optimized, span, device, os_version)
        rows.append((span.split("::")[0], base.cycles, opt.cycles,
                     f"{opt.cycles / base.cycles:.3f}"))
    print()
    print(format_table(
        ["span", "baseline cycles", "optimized cycles", "ratio"], rows))
    print("(ratio < 1.0 means the outlined build is faster on cold spans)")

    print("\n== llvm-link data-layout ordering (§VI-3) ==")
    ordered = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                          outline_rounds=5,
                                          data_layout="module-order"))
    interleaved = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                              outline_rounds=5,
                                              data_layout="interleaved"))
    rows = []
    for span in spans[:3]:
        good = measure_span(ordered, span, DEVICE_GRID[0], OS_GRID[0])
        bad = measure_span(interleaved, span, DEVICE_GRID[0], OS_GRID[0])
        rows.append((span.split("::")[0], good.cycles, bad.cycles,
                     good.data_page_faults, bad.data_page_faults))
    print(format_table(
        ["span", "module-order cyc", "interleaved cyc",
         "ordered pagefaults", "interleaved pagefaults"], rows))
    print("interleaving module data costs page faults — the regression the "
          "paper fixed in llvm-link.")


if __name__ == "__main__":
    main()
