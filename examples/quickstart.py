#!/usr/bin/env python3
"""Quickstart: compile a Swiftlet program with the whole-program pipeline,
outline it, and run both binaries in the simulator.

    python examples/quickstart.py
"""

from repro.pipeline import BuildConfig, build_program, run_build

SOURCE = """
class Greeter {
    var name: String
    var count: Int
    init(name: String) {
        self.name = name
        self.count = 0
    }
    func greet() -> String {
        self.count += 1
        return "hello, " + self.name
    }
}

func fib(n: Int) -> Int {
    if n < 2 { return n }
    return fib(n: n - 1) + fib(n: n - 2)
}

func main() {
    let g = Greeter(name: "uber")
    print(g.greet())
    print(g.greet())
    print(g.count)
    print(fib(n: 15))

    var samples: [Double] = []
    for i in 1...5 {
        samples.append(sqrt(Double(i * i * 2)))
    }
    var total = 0.0
    for s in samples { total += s }
    print(Int(total))
}
"""


def main() -> None:
    print("== building without outlining ==")
    baseline = build_program({"Quickstart": SOURCE},
                             BuildConfig(outline_rounds=0))
    print(f"code size: {baseline.sizes.text_bytes} bytes "
          f"({baseline.sizes.num_instrs} instructions, "
          f"{baseline.sizes.num_functions} functions)")

    print("\n== building with 5 rounds of machine outlining ==")
    outlined = build_program({"Quickstart": SOURCE},
                             BuildConfig(outline_rounds=5))
    saving = 100 * (1 - outlined.sizes.text_bytes / baseline.sizes.text_bytes)
    print(f"code size: {outlined.sizes.text_bytes} bytes "
          f"({saving:.1f}% smaller)")
    for stat in outlined.outline_stats:
        print(f"  round {stat.round_no}: {stat.sequences_outlined} sequences "
              f"-> {stat.functions_created} outlined functions (cumulative)")

    print("\n== running both (they must agree) ==")
    run0 = run_build(baseline)
    run1 = run_build(outlined)
    print("baseline output :", run0.output)
    print("outlined output :", run1.output)
    assert run0.output == run1.output
    assert run1.leaked == []
    frac = 100 * run1.outlined_steps / max(1, run1.steps)
    print(f"dynamic instructions inside outlined functions: {frac:.1f}%")
    print("semantics preserved, zero leaked objects.")


if __name__ == "__main__":
    main()
