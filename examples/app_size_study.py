#!/usr/bin/env python3
"""App-scale size study: generate the synthetic UberRider-style app, build
it under both pipelines at several outlining round counts (Figure 12), and
show the most-repeated machine patterns (Listings 1-8).

    python examples/app_size_study.py [tiny|small|medium]
"""

import sys

from repro.analysis.patterns import mine_build_patterns
from repro.experiments.common import SCALES, format_table
from repro.pipeline import BuildConfig, build_program
from repro.workloads.appgen import generate_app


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    spec = SCALES[scale]
    sources = generate_app(spec)
    total_lines = sum(s.count("\n") for s in sources.values())
    print(f"generated app: {len(sources)} modules, ~{total_lines} source "
          f"lines ({spec.num_features} features, {spec.num_vendors} vendors)")

    rows = []
    for pipeline in ("default", "wholeprogram"):
        for rounds in (0, 1, 3, 5):
            build = build_program(sources, BuildConfig(
                pipeline=pipeline, outline_rounds=rounds))
            rows.append((pipeline, rounds, build.sizes.text_bytes,
                         build.sizes.binary_bytes,
                         build.sizes.num_functions))
    print()
    print(format_table(
        ["pipeline", "rounds", "code bytes", "binary bytes", "functions"],
        rows))

    print("\nmost-repeated profitable machine patterns (cf. paper "
          "Listings 1-8):")
    baseline = build_program(sources, BuildConfig(pipeline="wholeprogram",
                                                  outline_rounds=0))
    for stat in mine_build_patterns(baseline)[:8]:
        print(f"  x{stat.num_candidates:>4}  len {stat.length}  "
              f"[{stat.outline_class.value}]")
        for line in stat.rendered:
            print(f"        {line}")


if __name__ == "__main__":
    main()
