#!/usr/bin/env python3
"""Run one of the 26 Swift algorithm benchmarks (Table IV) with and without
repeated machine outlining, in the cycle-accurate simulator.

    python examples/swift_benchmark.py [BenchmarkName] [rounds]
    python examples/swift_benchmark.py Dijkstra 5
"""

import sys

from repro.pipeline import BuildConfig, build_program, run_build
from repro.sim.timing import DeviceConfig, TimingModel
from repro.workloads.swift_benchmarks import BENCHMARK_NAMES, load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "QuickSort"
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}; available:")
        print("  " + ", ".join(BENCHMARK_NAMES))
        raise SystemExit(1)

    source = load_benchmark(name)
    print(f"== {name} (baseline) ==")
    base_build = build_program({name: source}, BuildConfig(outline_rounds=0))
    base = run_build(base_build, timing=TimingModel(DeviceConfig()),
                     max_steps=30_000_000)
    print("output:", base.output)
    print(f"instructions: {base.steps}, cycles: {base.cycles}, "
          f"code: {base_build.sizes.text_bytes} B")

    print(f"\n== {name} ({rounds} rounds of outlining) ==")
    opt_build = build_program({name: source},
                              BuildConfig(outline_rounds=rounds))
    opt = run_build(opt_build, timing=TimingModel(DeviceConfig()),
                    max_steps=30_000_000)
    print("output:", opt.output)
    print(f"instructions: {opt.steps}, cycles: {opt.cycles}, "
          f"code: {opt_build.sizes.text_bytes} B")

    assert base.output == opt.output, "outlining changed semantics!"
    overhead = 100 * (opt.cycles - base.cycles) / base.cycles
    saving = 100 * (1 - opt_build.sizes.text_bytes
                    / base_build.sizes.text_bytes)
    print(f"\nruntime overhead: {overhead:+.2f}%   code saving: "
          f"{saving:.1f}%   (outputs identical)")


if __name__ == "__main__":
    main()
