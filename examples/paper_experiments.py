#!/usr/bin/env python3
"""Regenerate every table and figure of the paper (the runme.sh analog).

    python examples/paper_experiments.py                # all, tiny scale
    python examples/paper_experiments.py fig12_rounds   # one experiment
    REPRO_SCALE=small python examples/paper_experiments.py
"""

import os
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "tiny")
    wanted = sys.argv[1:] or list(ALL_EXPERIMENTS)
    for name in wanted:
        module = ALL_EXPERIMENTS.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; available: "
                  f"{', '.join(ALL_EXPERIMENTS)}")
            raise SystemExit(1)
        print("=" * 72)
        print(f"experiment: {name}")
        print("=" * 72)
        start = time.time()
        kwargs = {}
        if "scale" in module.run.__code__.co_varnames:
            kwargs["scale"] = scale
        result = module.run(**kwargs)
        print(module.format_report(result))
        print(f"[{time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
