"""Legacy setup shim.

The environment has no `wheel` package, so PEP 660 editable installs fail;
`pip install -e . --no-use-pep517 --no-build-isolation` (or plain
`pip install -e .` on a machine with wheel) works through this shim.
"""

from setuptools import setup

setup()
