"""E17 — the Listing 10 / Figure 9 / Listing 11 out-of-SSA blow-up.

A decoder class with N `try`-initialised properties produces a shared error
block with ~N phis and ~N incoming edges; phi elimination then inserts
O(N^2) copies.  We verify (a) the phi structure exists, (b) machine code
for the init grows superlinearly in N, and (c) semantics stay exact on both
success and failure paths.
"""

from repro.frontend.parser import parse_module
from repro.frontend.sema import analyze_program
from repro.lir import ir
from repro.lir.passes import constprop, dce, mem2reg, simplifycfg
from repro.lir.irgen import generate_lir
from repro.pipeline import BuildConfig, build_program, run_build
from repro.sil.silgen import generate_sil


def decoder_source(n_fields, with_main=True):
    fields = "\n".join(f"    let f{i}: String" for i in range(n_fields))
    inits = "\n".join(
        f"        self.f{i} = try src.getString(key: {i})"
        for i in range(n_fields))
    main = """
func main() {
    do {
        let ok = try MyClass(src: Source(failKey: -1))
        print(ok.f0.count)
        let bad = try MyClass(src: Source(failKey: %d))
        print(bad.f0.count)
    } catch {
        print(error)
    }
}
""" % (n_fields // 2)
    return f"""
class Source {{
    var failKey: Int
    init(failKey: Int) {{ self.failKey = failKey }}
    func getString(key: Int) throws -> String {{
        if key == self.failKey {{ throw key }}
        return "v"
    }}
}}
class MyClass {{
{fields}
    init(src: Source) throws {{
{inits}
    }}
}}
{main if with_main else ''}
"""


def lowered_init(n_fields):
    info = analyze_program([parse_module(decoder_source(n_fields, False),
                                         "M")])
    modules = generate_lir(generate_sil(info))
    module = modules[0]
    mem2reg.run_on_module(module)
    constprop.run_on_module(module)
    dce.run_on_module(module)
    simplifycfg.run_on_module(module)
    for fn in module.functions:
        if "MyClass.init" in fn.symbol:
            return fn
    raise KeyError("init not found")


def test_shared_cleanup_block_accumulates_phis():
    fn = lowered_init(12)
    phi_counts = []
    for blk in fn.blocks:
        phis = blk.phis()
        if phis:
            phi_counts.append(len(phis))
    # One block must carry phis for (roughly) every init flag.
    assert max(phi_counts) >= 10


def test_out_of_ssa_copies_grow_superlinearly():
    from repro.lir.passes import phielim

    sizes = {}
    for n in (6, 12, 24):
        fn = lowered_init(n)
        copies = phielim.run_on_function(fn)
        sizes[n] = copies
    # Doubling the field count should far more than double the copies
    # (quadratic edge x phi growth).
    assert sizes[12] > 2.5 * sizes[6]
    assert sizes[24] > 2.5 * sizes[12]


def test_machine_code_grows_superlinearly():
    text = {}
    for n in (6, 12, 24):
        build = build_program({"M": decoder_source(n)},
                              BuildConfig(outline_rounds=0))
        mf = [f for m in build.machine_modules for f in m.functions
              if "MyClass.init" in f.name][0]
        text[n] = mf.num_instrs
    growth_1 = text[12] / text[6]
    growth_2 = text[24] / text[12]
    assert growth_1 > 2.2, text
    assert growth_2 > 2.2, text


def test_semantics_on_success_and_failure_paths():
    for rounds in (0, 5):
        build = build_program({"M": decoder_source(10)},
                              BuildConfig(outline_rounds=rounds))
        execution = run_build(build)
        # ok.f0.count == 1; bad throws with code n//2 == 5.
        assert execution.output == ["1", "5"], rounds
        assert execution.leaked == []
