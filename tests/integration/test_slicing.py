"""App-thinning slicing: one frontend, per-target backends, size reports.

Pins the PR-10 tentpole contract:

* a two-target sliced build runs parse/sema/silgen exactly once
  (asserted from tracer span counts, the only timing-free evidence);
* every slice is bit-identical to a standalone single-target build;
* the ``compile_frontend`` / ``compile_backend`` seam composes to the
  same bytes as the fused ``build_program``;
* a fully warm sliced build never re-runs the frontend (image-cache
  hits on every slice);
* the CLI surfaces (``build --target a --target b``, ``size``) and the
  baseline-diff gate behave.
"""

import hashlib
import json

import pytest

from repro import api
from repro.errors import ReproError
from repro.link import sizereport
from repro.obs import Tracer, use_tracer
from repro.pipeline import (
    BuildConfig,
    build_program,
    build_targets,
    compile_backend,
    compile_frontend,
)
from repro.pipeline.build import run_build

SOURCES = {
    "Lib": """
func scale(x: Int) -> Int { return x * 7 }
func helper(x: Int) -> Int { return scale(x: x) + 1 }
func unused(x: Int) -> Int { return x - 2 }
""",
    "Main": """
import Lib
func main() {
    var total = 0
    for i in 0..<5 { total += helper(x: i) }
    print(total)
}
""",
}

TARGETS = ["arm64", "thumb2c"]


def _sha(image) -> str:
    return (hashlib.sha256(image.text_section()).hexdigest(),
            hashlib.sha256(image.data_section()).hexdigest())


def _span_counts(tracer):
    counts = {}
    for root in tracer.roots:
        for span in root.walk():
            counts[span.name] = counts.get(span.name, 0) + 1
    return counts


class TestSlicedBuild:
    def test_frontend_runs_once_and_slices_are_bit_identical(self):
        tracer = Tracer()
        with use_tracer(tracer):
            results = build_targets(SOURCES, TARGETS,
                                    BuildConfig(outline_rounds=2))
        counts = _span_counts(tracer)
        # The target-independent front half ran exactly once for two
        # targets; each target got its own backend.
        for phase in ("parse", "sema", "silgen", "frontend"):
            assert counts.get(phase) == 1, (phase, counts)
        assert counts.get("backend") == 2
        assert counts.get("build-sliced") == 1

        assert list(results) == TARGETS
        for target in TARGETS:
            standalone = build_program(
                SOURCES, BuildConfig(outline_rounds=2, target=target))
            assert _sha(results[target].image) == _sha(standalone.image)
            assert results[target].config.target == target
            assert results[target].report.target == target

    def test_slices_execute_identically(self):
        results = build_targets(SOURCES, TARGETS, BuildConfig())
        outputs = {t: run_build(r).output for t, r in results.items()}
        assert outputs["arm64"] == outputs["thumb2c"] == ["75"]

    def test_single_target_slicing_matches_plain_build(self):
        sliced = build_targets(SOURCES, ["thumb2c"], BuildConfig())
        plain = build_program(SOURCES, BuildConfig(target="thumb2c"))
        assert _sha(sliced["thumb2c"].image) == _sha(plain.image)

    def test_warm_sliced_build_skips_frontend(self, tmp_path):
        config = BuildConfig(incremental=True, cache_dir=str(tmp_path))
        build_targets(SOURCES, TARGETS, config)
        tracer = Tracer()
        with use_tracer(tracer):
            warm = build_targets(SOURCES, TARGETS, config)
        counts = _span_counts(tracer)
        for phase in ("parse", "sema", "silgen", "frontend", "backend"):
            assert counts.get(phase, 0) == 0, (phase, counts)
        for target in TARGETS:
            assert warm[target].report.image_cache_hit
            cold = build_program(
                SOURCES, BuildConfig(target=target))
            assert _sha(warm[target].image) == _sha(cold.image)

    def test_bad_target_lists_are_typed_errors(self):
        with pytest.raises(ReproError, match="at least one target"):
            build_targets(SOURCES, [], BuildConfig())
        with pytest.raises(ReproError, match="duplicate"):
            build_targets(SOURCES, ["arm64", "arm64"], BuildConfig())
        with pytest.raises(ReproError, match="unknown target"):
            build_targets(SOURCES, ["riscv"], BuildConfig())


class TestFrontendBackendSeam:
    def test_seam_composes_to_fused_build(self):
        config = BuildConfig(outline_rounds=2)
        artifact = compile_frontend(SOURCES, config)
        assert artifact.fingerprint
        for target in TARGETS:
            result = compile_backend(
                artifact, BuildConfig(outline_rounds=2, target=target))
            fused = build_program(
                SOURCES, BuildConfig(outline_rounds=2, target=target))
            assert _sha(result.image) == _sha(fused.image)

    def test_artifact_is_reusable_across_backends(self):
        # Two backends from ONE artifact: the second must not observe
        # mutations the first backend made to the LIR.
        artifact = compile_frontend(SOURCES, BuildConfig())
        first = compile_backend(artifact, BuildConfig(target="arm64"))
        second = compile_backend(artifact, BuildConfig(target="arm64"))
        assert _sha(first.image) == _sha(second.image)

    def test_frontend_fingerprint_ignores_backend_knobs(self):
        a = compile_frontend(SOURCES, BuildConfig(outline_rounds=1))
        b = compile_frontend(SOURCES, BuildConfig(outline_rounds=5,
                                                  strip="program"))
        assert a.fingerprint == b.fingerprint
        c = compile_frontend({"Lib": SOURCES["Lib"] + "\n",
                              "Main": SOURCES["Main"]},
                             BuildConfig(outline_rounds=1))
        assert a.fingerprint != c.fingerprint


class TestApiSurface:
    def test_build_targets_keyword(self):
        results = api.build(SOURCES, targets=TARGETS, outline_rounds=2)
        assert set(results) == set(TARGETS)
        # The no-targets build follows the session default target; its
        # slice must match it bit for bit.
        single = api.build(SOURCES, outline_rounds=2)
        assert _sha(results[single.config.target].image) == _sha(single.image)

    def test_preset_with_targets(self):
        results = api.build(SOURCES, preset="min-size", targets=TARGETS)
        for target in TARGETS:
            assert results[target].report.strip_mode == "program"
            assert results[target].report.stripped_functions >= 1


class TestSizeReport:
    def _report(self):
        results = build_targets(SOURCES, TARGETS, BuildConfig())
        return sizereport.build_size_report(results), results

    def test_totals_reconcile_with_image(self):
        report, results = self._report()
        assert report["schema"] == sizereport.SCHEMA
        for target, result in results.items():
            totals = report["targets"][target]["totals"]
            image = result.image
            assert totals["total_text_bytes"] == image.text_bytes
            assert (totals["text_bytes"] + totals["outlined_bytes"]
                    + totals["padding_bytes"] == image.text_bytes)
            assert totals["binary_bytes"] == image.binary_bytes
            modules = report["targets"][target]["modules"]
            assert sum(r["text_bytes"] + r["outlined_bytes"]
                       + r["padding_bytes"] for r in modules.values()) \
                == image.text_bytes
            assert sum(r["padding_bytes"] for r in modules.values()) \
                == image.alignment_padding_bytes
            assert sum(r["metadata_bytes"] for r in modules.values()) \
                == image.metadata_bytes

    def test_canonical_json_is_stable(self):
        report1, _ = self._report()
        report2, _ = self._report()
        assert (sizereport.canonical_json(report1)
                == sizereport.canonical_json(report2))
        # Canonical: parses back to the same object, keys sorted.
        parsed = json.loads(sizereport.canonical_json(report1))
        assert parsed == report1

    def test_diff_gate_passes_on_identical_reports(self):
        report, _ = self._report()
        lines, failures = sizereport.diff_reports(report, report)
        assert not failures
        assert any("ok" in line for line in lines)

    def test_diff_gate_fails_on_text_growth(self):
        report, _ = self._report()
        grown = json.loads(sizereport.canonical_json(report))
        totals = grown["targets"]["arm64"]["totals"]
        totals["total_text_bytes"] = int(totals["total_text_bytes"] * 1.10)
        lines, failures = sizereport.diff_reports(report, grown,
                                                  max_text_growth_pct=1.0)
        assert failures and "arm64" in failures[0]
        # Shrinkage and new targets never fail.
        _, ok = sizereport.diff_reports(grown, report)
        assert not ok


class TestCli:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "App.sw"
        path.write_text(
            "func scale(x: Int) -> Int { return x * 3 }\n"
            "func main() { print(scale(x: 14)) }\n")
        return str(path)

    def _run(self, args):
        import io
        import sys

        out, err = io.StringIO(), io.StringIO()
        old_out, old_err = sys.stdout, sys.stderr
        sys.stdout, sys.stderr = out, err
        try:
            from repro.__main__ import main
            code = main(args)
        finally:
            sys.stdout, sys.stderr = old_out, old_err
        return code, out.getvalue(), err.getvalue()

    def test_multi_target_build(self, source_file):
        code, out, _ = self._run(["build", source_file,
                                  "--target", "arm64",
                                  "--target", "thumb2c"])
        assert code == 0
        assert "slice arm64" in out and "slice thumb2c" in out
        assert "frontend shared with target arm64" in out

    def test_size_verb_and_gate(self, source_file, tmp_path):
        baseline = str(tmp_path / "base.json")
        code, out, _ = self._run(["size", source_file,
                                  "--target", "arm64",
                                  "--target", "thumb2c",
                                  "--preset", "min-size",
                                  "--out", baseline])
        assert code == 0 and "target arm64:" in out
        report = json.loads(open(baseline).read())
        assert report["schema"] == sizereport.SCHEMA

        code, out, _ = self._run(["size", source_file,
                                  "--target", "arm64",
                                  "--target", "thumb2c",
                                  "--preset", "min-size",
                                  "--baseline", baseline])
        assert code == 0 and "ok" in out

        # Inject a regression into the baseline: pretend the past was
        # much smaller, so the current build trips the gate.
        report["targets"]["arm64"]["totals"]["total_text_bytes"] = 4
        with open(baseline, "w") as fh:
            fh.write(sizereport.canonical_json(report))
        code, out, err = self._run(["size", source_file,
                                    "--target", "arm64",
                                    "--target", "thumb2c",
                                    "--preset", "min-size",
                                    "--baseline", baseline])
        assert code == 1
        assert "FAIL" in out and "arm64" in err

    def test_multi_target_rejected_elsewhere(self, source_file):
        code, _, err = self._run(["run", source_file,
                                  "--target", "arm64",
                                  "--target", "thumb2c"])
        assert code != 0
        assert "one --target" in err
