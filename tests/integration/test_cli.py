"""CLI smoke tests (python -m repro)."""

import io
import sys

import pytest

from repro.__main__ import main

SOURCE = """
func square(x: Int) -> Int { return x * x }
func main() {
    var total = 0
    for i in 0..<6 { total += square(x: i) }
    print(total)
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "App.sw"
    path.write_text(SOURCE)
    return str(path)


def run_cli(args):
    captured = io.StringIO()
    old = sys.stdout
    sys.stdout = captured
    try:
        code = main(args)
    finally:
        sys.stdout = old
    return code, captured.getvalue()


def run_cli_err(args):
    """Like run_cli but also captures stderr (for diagnostics)."""
    out, err = io.StringIO(), io.StringIO()
    old_out, old_err = sys.stdout, sys.stderr
    sys.stdout, sys.stderr = out, err
    try:
        code = main(args)
    finally:
        sys.stdout, sys.stderr = old_out, old_err
    return code, out.getvalue(), err.getvalue()


def test_build_reports_sizes(source_file):
    code, out = run_cli(["build", source_file, "--rounds", "3"])
    assert code == 0
    assert "code:" in out and "binary:" in out
    assert "wholeprogram" in out


def test_run_prints_program_output(source_file):
    code, out = run_cli(["run", source_file])
    assert code == 0
    assert out.strip() == "55"


def test_run_with_timing(source_file):
    code, out = run_cli(["run", source_file, "--timing"])
    assert code == 0
    assert out.strip() == "55"


def test_patterns_lists_census(source_file, tmp_path):
    # Use a program with real repetition so patterns exist.
    path = tmp_path / "Rep.sw"
    path.write_text("""
class Box { var v: Int
    init(v: Int) { self.v = v } }
func a(b: Box) -> Int { return b.v + 1 }
func c(b: Box) -> Int { return b.v + 2 }
func d(b: Box) -> Int { return b.v + 3 }
func main() {
    let box = Box(v: 1)
    print(a(b: box) + c(b: box) + d(b: box))
}
""")
    code, out = run_cli(["patterns", str(path), "--rounds", "0", "--top", "3"])
    assert code == 0
    assert "profitable patterns" in out


def test_disasm_filters_by_function(source_file):
    code, out = run_cli(["disasm", source_file, "--rounds", "0",
                         "--function", "square"])
    assert code == 0
    assert "define @App::square" in out
    assert "@App::main" not in out


def test_default_pipeline_flag(source_file):
    code, out = run_cli(["build", source_file, "--pipeline", "default",
                         "--rounds", "1"])
    assert code == 0
    assert "default" in out


def test_multiple_modules(tmp_path):
    lib = tmp_path / "Lib.sw"
    lib.write_text("func triple(x: Int) -> Int { return x * 3 }")
    app = tmp_path / "Main.sw"
    app.write_text("import Lib\nfunc main() { print(triple(x: 4)) }")
    code, out = run_cli(["run", str(lib), str(app)])
    assert code == 0
    assert out.strip() == "12"


class TestErrorHandling:
    """`python -m repro` must exit 1 with a one-line diagnostic on any
    toolchain error — never dump a traceback on the user."""

    def test_parse_error_is_a_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "Broken.sw"
        path.write_text("func main() { print(1 + ) }\n")
        code, out, err = run_cli_err(["build", str(path)])
        assert code == 1
        assert err.startswith("error: ")
        assert "Broken.sw:1:" in err  # file:line:col survives
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_sema_error_is_a_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "Typo.sw"
        path.write_text("func main() { print(noSuchFunction(x: 1)) }\n")
        code, out, err = run_cli_err(["run", str(path)])
        assert code == 1
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_missing_source_file(self):
        code, out, err = run_cli_err(["build", "/no/such/file.sw"])
        assert code == 1
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_bad_fault_spec(self, source_file):
        code, out, err = run_cli_err(["build", source_file,
                                      "--inject-faults", "bogus=1"])
        assert code == 1
        assert "bad fault spec" in err


class TestRobustnessFlags:
    def test_faulted_build_degrades_and_still_answers(self, source_file,
                                                      tmp_path):
        lib = tmp_path / "Lib.sw"
        lib.write_text("func triple(x: Int) -> Int { return x * 3 }\n"
                       "func quad(x: Int) -> Int { return x * 4 }\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\n"
                       "func main() { print(triple(x: 4) + quad(x: 1)) }\n")
        code, out, err = run_cli_err(
            ["run", str(lib), str(app), "--pipeline", "default",
             "--workers", "2",
             "--inject-faults", "seed=9,crash=1"])
        assert code == 0
        assert out.strip() == "16"

    def test_build_prints_degradations(self, tmp_path):
        lib = tmp_path / "Lib.sw"
        lib.write_text("func t(x: Int) -> Int { return x * 3 }\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\nfunc main() { print(t(x: 4)) }\n")
        code, out = run_cli(["build", str(lib), str(app), "--pipeline",
                             "default", "--workers", "2",
                             "--inject-faults", "seed=9,crash=1"])
        assert code == 0
        assert "degraded:" in out
        assert "chunk-serial-rerun" in out

    def test_verify_flag_shows_in_report(self, source_file):
        code, out = run_cli(["build", source_file])
        assert code == 0
        assert "image verified" in out
        code, out = run_cli(["build", source_file, "--no-verify-image"])
        assert code == 0
        assert "image verified" not in out
