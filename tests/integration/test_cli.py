"""CLI smoke tests (python -m repro)."""

import io
import sys

import pytest

from repro.__main__ import main

SOURCE = """
func square(x: Int) -> Int { return x * x }
func main() {
    var total = 0
    for i in 0..<6 { total += square(x: i) }
    print(total)
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "App.sw"
    path.write_text(SOURCE)
    return str(path)


def run_cli(args):
    captured = io.StringIO()
    old = sys.stdout
    sys.stdout = captured
    try:
        code = main(args)
    finally:
        sys.stdout = old
    return code, captured.getvalue()


def run_cli_err(args):
    """Like run_cli but also captures stderr (for diagnostics)."""
    out, err = io.StringIO(), io.StringIO()
    old_out, old_err = sys.stdout, sys.stderr
    sys.stdout, sys.stderr = out, err
    try:
        code = main(args)
    finally:
        sys.stdout, sys.stderr = old_out, old_err
    return code, out.getvalue(), err.getvalue()


def test_build_reports_sizes(source_file):
    code, out = run_cli(["build", source_file, "--rounds", "3"])
    assert code == 0
    assert "code:" in out and "binary:" in out
    assert "wholeprogram" in out


def test_run_prints_program_output(source_file):
    code, out = run_cli(["run", source_file])
    assert code == 0
    assert out.strip() == "55"


def test_run_with_timing(source_file):
    code, out = run_cli(["run", source_file, "--timing"])
    assert code == 0
    assert out.strip() == "55"


def test_patterns_lists_census(source_file, tmp_path):
    # Use a program with real repetition so patterns exist.
    path = tmp_path / "Rep.sw"
    path.write_text("""
class Box { var v: Int
    init(v: Int) { self.v = v } }
func a(b: Box) -> Int { return b.v + 1 }
func c(b: Box) -> Int { return b.v + 2 }
func d(b: Box) -> Int { return b.v + 3 }
func main() {
    let box = Box(v: 1)
    print(a(b: box) + c(b: box) + d(b: box))
}
""")
    code, out = run_cli(["patterns", str(path), "--rounds", "0", "--top", "3"])
    assert code == 0
    assert "profitable patterns" in out


def test_disasm_filters_by_function(source_file):
    code, out = run_cli(["disasm", source_file, "--rounds", "0",
                         "--function", "square"])
    assert code == 0
    assert "define @App::square" in out
    assert "@App::main" not in out


def test_default_pipeline_flag(source_file):
    code, out = run_cli(["build", source_file, "--pipeline", "default",
                         "--rounds", "1"])
    assert code == 0
    assert "default" in out


def test_multiple_modules(tmp_path):
    lib = tmp_path / "Lib.sw"
    lib.write_text("func triple(x: Int) -> Int { return x * 3 }")
    app = tmp_path / "Main.sw"
    app.write_text("import Lib\nfunc main() { print(triple(x: 4)) }")
    code, out = run_cli(["run", str(lib), str(app)])
    assert code == 0
    assert out.strip() == "12"


class TestErrorHandling:
    """`python -m repro` must exit 1 with a one-line diagnostic on any
    toolchain error — never dump a traceback on the user."""

    def test_parse_error_is_a_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "Broken.sw"
        path.write_text("func main() { print(1 + ) }\n")
        code, out, err = run_cli_err(["build", str(path)])
        assert code == 1
        assert err.startswith("error: ")
        assert "Broken.sw:1:" in err  # file:line:col survives
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_sema_error_is_a_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "Typo.sw"
        path.write_text("func main() { print(noSuchFunction(x: 1)) }\n")
        code, out, err = run_cli_err(["run", str(path)])
        assert code == 1
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_missing_source_file(self):
        code, out, err = run_cli_err(["build", "/no/such/file.sw"])
        assert code == 1
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_bad_fault_spec(self, source_file):
        code, out, err = run_cli_err(["build", source_file,
                                      "--inject-faults", "bogus=1"])
        assert code == 1
        assert "bad fault spec" in err


class TestRobustnessFlags:
    def test_faulted_build_degrades_and_still_answers(self, source_file,
                                                      tmp_path):
        lib = tmp_path / "Lib.sw"
        lib.write_text("func triple(x: Int) -> Int { return x * 3 }\n"
                       "func quad(x: Int) -> Int { return x * 4 }\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\n"
                       "func main() { print(triple(x: 4) + quad(x: 1)) }\n")
        code, out, err = run_cli_err(
            ["run", str(lib), str(app), "--pipeline", "default",
             "--workers", "2",
             "--inject-faults", "seed=9,crash=1"])
        assert code == 0
        assert out.strip() == "16"

    def test_build_prints_degradations(self, tmp_path):
        lib = tmp_path / "Lib.sw"
        lib.write_text("func t(x: Int) -> Int { return x * 3 }\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\nfunc main() { print(t(x: 4)) }\n")
        code, out = run_cli(["build", str(lib), str(app), "--pipeline",
                             "default", "--workers", "2",
                             "--inject-faults", "seed=9,crash=1"])
        assert code == 0
        assert "degraded:" in out
        assert "chunk-serial-rerun" in out

    def test_verify_flag_shows_in_report(self, source_file):
        code, out = run_cli(["build", source_file])
        assert code == 0
        assert "image verified" in out
        code, out = run_cli(["build", source_file, "--no-verify-image"])
        assert code == 0
        assert "image verified" not in out


class TestObservabilityFlags:
    """Acceptance surface for --trace-out / --metrics-out / --profile."""

    @pytest.fixture
    def modules(self, tmp_path):
        lib = tmp_path / "Lib.sw"
        lib.write_text("func scale(x: Int) -> Int {\n"
                       "    var acc = x\n"
                       "    for i in 0..<4 { acc += i * x }\n"
                       "    return acc\n"
                       "}\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\n"
                       "func main() {\n"
                       "    var total = 0\n"
                       "    for i in 0..<5 { total += scale(x: i) }\n"
                       "    print(total)\n"
                       "}\n")
        return [str(lib), str(app)]

    def test_trace_and_metrics_files(self, modules, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, out, err = run_cli_err(
            ["build", *modules, "--pipeline", "default", "--workers", "2",
             "--rounds", "2",
             "--trace-out", str(trace_path),
             "--metrics-out", str(metrics_path)])
        assert code == 0
        assert "Perfetto" in err or "perfetto" in err

        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events}
        # Every pipeline phase, per-pass LIR spans, per-round outliner
        # spans, and forked-worker chunk spans are on the timeline.
        for phase in ("build", "parse", "sema", "silgen", "lower",
                      "llc", "link", "verify"):
            assert phase in names, phase
        assert any(n.startswith("lir-pass:") for n in names)
        assert "outline-round" in names
        assert any(n.startswith("worker-chunk:") for n in names)
        assert any(e["tid"] > 0 for e in events if e["ph"] == "X")
        assert any(e["ph"] == "M" and e["args"]["name"].startswith(
            "worker chunk") for e in events)

        metrics = json.loads(metrics_path.read_text())
        counters, gauges = metrics["counters"], metrics["gauges"]
        assert any(k.startswith("lir.pass.") for k in counters)
        assert "outliner.rounds" in counters
        assert "cache.hits" in gauges and "cache.enabled" in gauges
        assert gauges["verify.passed"] == 1
        assert gauges["image.text_bytes"] > 0

    def test_profile_prints_summary(self, modules):
        code, out = run_cli(["build", *modules, "--profile"])
        assert code == 0
        assert "profile (span totals" in out
        assert "metrics:" in out

    def test_tracing_does_not_change_the_binary(self, modules, tmp_path):
        def size_lines(extra):
            code, out = run_cli(["build", *modules, "--rounds", "3", *extra])
            assert code == 0
            return [line for line in out.splitlines()
                    if line.startswith(("code:", "data:", "binary:"))]

        untraced = size_lines([])
        traced = size_lines(["--trace-out", str(tmp_path / "t.json"),
                             "--metrics-out", str(tmp_path / "m.json")])
        assert traced == untraced

    def test_trace_survives_a_degraded_build(self, modules, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        code, out, err = run_cli_err(
            ["build", *modules, "--pipeline", "default", "--workers", "2",
             "--inject-faults", "seed=9,crash=1",
             "--trace-out", str(trace_path)])
        assert code == 0
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(e["ph"] == "i" and e["name"].startswith("degraded:")
                   for e in events)
