"""CLI smoke tests (python -m repro)."""

import io
import sys

import pytest

from repro.__main__ import main

SOURCE = """
func square(x: Int) -> Int { return x * x }
func main() {
    var total = 0
    for i in 0..<6 { total += square(x: i) }
    print(total)
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "App.sw"
    path.write_text(SOURCE)
    return str(path)


def run_cli(args):
    captured = io.StringIO()
    old = sys.stdout
    sys.stdout = captured
    try:
        code = main(args)
    finally:
        sys.stdout = old
    return code, captured.getvalue()


def test_build_reports_sizes(source_file):
    code, out = run_cli(["build", source_file, "--rounds", "3"])
    assert code == 0
    assert "code:" in out and "binary:" in out
    assert "wholeprogram" in out


def test_run_prints_program_output(source_file):
    code, out = run_cli(["run", source_file])
    assert code == 0
    assert out.strip() == "55"


def test_run_with_timing(source_file):
    code, out = run_cli(["run", source_file, "--timing"])
    assert code == 0
    assert out.strip() == "55"


def test_patterns_lists_census(source_file, tmp_path):
    # Use a program with real repetition so patterns exist.
    path = tmp_path / "Rep.sw"
    path.write_text("""
class Box { var v: Int
    init(v: Int) { self.v = v } }
func a(b: Box) -> Int { return b.v + 1 }
func c(b: Box) -> Int { return b.v + 2 }
func d(b: Box) -> Int { return b.v + 3 }
func main() {
    let box = Box(v: 1)
    print(a(b: box) + c(b: box) + d(b: box))
}
""")
    code, out = run_cli(["patterns", str(path), "--rounds", "0", "--top", "3"])
    assert code == 0
    assert "profitable patterns" in out


def test_disasm_filters_by_function(source_file):
    code, out = run_cli(["disasm", source_file, "--rounds", "0",
                         "--function", "square"])
    assert code == 0
    assert "define @App::square" in out
    assert "@App::main" not in out


def test_default_pipeline_flag(source_file):
    code, out = run_cli(["build", source_file, "--pipeline", "default",
                         "--rounds", "1"])
    assert code == 0
    assert "default" in out


def test_multiple_modules(tmp_path):
    lib = tmp_path / "Lib.sw"
    lib.write_text("func triple(x: Int) -> Int { return x * 3 }")
    app = tmp_path / "Main.sw"
    app.write_text("import Lib\nfunc main() { print(triple(x: 4)) }")
    code, out = run_cli(["run", str(lib), str(app)])
    assert code == 0
    assert out.strip() == "12"
