"""Cross-target differential tests for the TargetSpec abstraction.

Three claims, each enforced directly:

1. **Both targets are pinned bit-identically** — every build in
   ``GOLDEN_CONFIGS`` must match the golden fixtures
   (``tests/fixtures/golden_arm64.json`` / ``golden_thumb2c.json``), with
   ``merge_mode="off"`` pinned so a leaking ``REPRO_MERGE`` can never
   silently change the baseline.  A mismatch fails loudly, naming every
   diverging field and how to regenerate on purpose.
2. **thumb2c is a real variable-width target** — its images carry a
   per-instruction address table, pass the structural verifier
   (alignment padding included), never grow under outlining, and run to
   the same program output as arm64.
3. **Targets never share cache entries** — the backend fingerprint keys
   the image cache by target, so a thumb2c rebuild over a warm arm64
   cache recompiles instead of resurrecting 4-byte code.
"""

import hashlib
import importlib.util
import json
import os

import pytest

from repro.errors import ImageVerifierError
from repro.link.verify import verify_image
from repro.pipeline import BuildConfig, build_program
from repro.pipeline.build import run_build
from repro.target import get_target
from repro.workloads.appgen import generate_app

# The fixture spec, pinned configs, and observation schema live with the
# regeneration script so the two can never drift apart.
_MAKE_GOLDEN = os.path.join(os.path.dirname(__file__), "..", "fixtures",
                            "make_golden.py")
_spec = importlib.util.spec_from_file_location("make_golden", _MAKE_GOLDEN)
make_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(make_golden)

APP_SPEC = make_golden.APP_SPEC
GOLDEN_CONFIGS = make_golden.GOLDEN_CONFIGS


@pytest.fixture(scope="module")
def sources():
    return generate_app(APP_SPEC)


@pytest.fixture(scope="module")
def golden():
    def _load(target):
        with open(make_golden.golden_path(target), encoding="utf-8") as fh:
            return json.load(fh)
    return {target: _load(target) for target in make_golden.GOLDEN_TARGETS}


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def assert_matches_golden(target, case, got, want):
    """Compare one observation to its golden record, failing loudly with
    every diverging field spelled out."""
    diffs = [f"  {field}: built {got[field]!r}, golden {want[field]!r}"
             for field in make_golden.GOLDEN_FIELDS
             if got[field] != want[field]]
    if diffs:
        pytest.fail(
            f"{target} image for {case!r} diverged from the golden "
            "fixture:\n" + "\n".join(diffs) +
            "\nIf this change is intentional, regenerate with\n"
            "  PYTHONPATH=src python tests/fixtures/make_golden.py\n"
            "and commit the fixture diff with an explanation.")


# --- 1. both targets stay bit-identical to the golden images -----------------


@pytest.mark.parametrize("case", sorted(GOLDEN_CONFIGS))
def test_arm64_bit_identical_to_golden(case, sources, golden):
    result = build_program(sources, BuildConfig(target="arm64",
                                                **GOLDEN_CONFIGS[case]))
    assert_matches_golden("arm64", case, make_golden.observe(result),
                          golden["arm64"][case])
    # The fixed-width target keeps the uniform layout: no address table,
    # no alignment padding.
    assert result.image.instr_addrs is None
    assert result.image.alignment_padding_bytes == 0


@pytest.mark.parametrize("case", sorted(GOLDEN_CONFIGS))
def test_thumb2c_bit_identical_to_golden(case, sources, golden):
    result = build_program(sources, BuildConfig(target="thumb2c",
                                                **GOLDEN_CONFIGS[case]))
    assert_matches_golden("thumb2c", case, make_golden.observe(result),
                          golden["thumb2c"][case])
    assert result.image.instr_addrs is not None


def test_golden_mismatch_names_every_diverging_field(golden):
    """The loud-diff helper must name the fields that moved, so a golden
    failure is diagnosable from the CI log alone."""
    want = golden["arm64"]["app-wholeprogram-r0"]
    got = dict(want, text_sha256="0" * 64, num_functions=want["num_functions"] + 1)
    with pytest.raises(pytest.fail.Exception) as excinfo:
        assert_matches_golden("arm64", "app-wholeprogram-r0", got, want)
    message = str(excinfo.value)
    assert "text_sha256" in message
    assert "num_functions" in message
    assert "make_golden.py" in message
    assert "data_sha256" not in message, "unchanged fields must not be listed"


# --- 2. thumb2c: variable-width layout, verified, shrinking, same output -----


@pytest.fixture(scope="module")
def thumb_results(sources):
    # merge_mode pinned off: these builds feed exact-size and
    # exact-step-count assertions, which REPRO_MERGE must not perturb.
    return {rounds: build_program(sources, BuildConfig(
                outline_rounds=rounds, target="thumb2c", merge_mode="off"))
            for rounds in (0, 1, 3, 5)}


def test_thumb2c_layout_is_variable_width_and_padded(thumb_results):
    image = thumb_results[5].image
    assert image.target_name == "thumb2c"
    assert image.instr_addrs is not None
    assert len(image.instr_addrs) == len(image.instrs)
    spec = get_target("thumb2c")
    widths = {spec.instr_bytes(i) for i in image.instrs}
    assert widths == {2, 4}, "a compressed build should mix widths"
    # Function starts honour the target alignment; the gaps are padding.
    for ext in image.functions:
        assert ext.start % spec.function_alignment == 0
    assert image.text_bytes < len(image.instrs) * 4, \
        "variable-width text must be denser than fixed-width"


def test_thumb2c_passes_the_structural_verifier(thumb_results):
    for result in thumb_results.values():
        verify_image(result.image)  # target taken from the image
        assert result.report.image_verified


def test_thumb2c_outlining_never_increases_text(thumb_results):
    sizes = {r: res.sizes.text_bytes for r, res in thumb_results.items()}
    assert sizes[1] <= sizes[0]
    assert sizes[3] <= sizes[1]
    assert sizes[5] <= sizes[3]
    assert sizes[5] < sizes[0], "five rounds must actually save bytes"


def test_thumb2c_runs_to_the_same_output_as_arm64(sources, thumb_results):
    # With outlining the two targets legally produce *different* code
    # (their cost models disagree about what is profitable), so only the
    # program's observable output must match at rounds=5 ...
    arm5 = build_program(sources, BuildConfig(outline_rounds=5,
                                              target="arm64",
                                              merge_mode="off"))
    assert run_build(thumb_results[5]).output == run_build(arm5).output
    # ... while at rounds=0 the instruction stream is identical and the
    # retired-instruction count must match exactly.
    arm0 = build_program(sources, BuildConfig(outline_rounds=0,
                                              target="arm64",
                                              merge_mode="off"))
    arm_exec = run_build(arm0)
    thumb_exec = run_build(thumb_results[0])
    assert thumb_exec.output == arm_exec.output
    assert thumb_exec.steps == arm_exec.steps


def test_verifier_rejects_misaligned_thumb2c_layout(thumb_results):
    import pickle

    img = pickle.loads(pickle.dumps(thumb_results[5].image))
    # Shift the second function's extent (and its instructions' recorded
    # addresses) off the target's alignment grid by the narrow width.
    ext = img.functions[1]
    lo = img.index_of_addr(ext.start)
    hi = img.index_of_addr(ext.end)
    ext.start += 2
    ext.end += 2
    img.symbols[ext.name] += 2
    for i in range(lo, hi):
        img.instr_addrs[i] += 2
    with pytest.raises(ImageVerifierError, match="align|contiguous"):
        verify_image(img)


# --- 3. targets never collide in the image cache -----------------------------


def test_image_cache_entries_are_keyed_by_target(sources, tmp_path):
    arm_cfg = BuildConfig(outline_rounds=2, incremental=True,
                          cache_dir=str(tmp_path), target="arm64")
    thumb_cfg = BuildConfig(outline_rounds=2, incremental=True,
                            cache_dir=str(tmp_path), target="thumb2c")
    cold_arm = build_program(sources, arm_cfg)
    assert not cold_arm.report.image_cache_hit
    # Same sources, same cache dir, different target: must be a miss.
    cold_thumb = build_program(sources, thumb_cfg)
    assert not cold_thumb.report.image_cache_hit
    assert cold_thumb.image.target_name == "thumb2c"
    assert cold_thumb.sizes.text_bytes != cold_arm.sizes.text_bytes
    # Each target then hits its own entry and round-trips its own image.
    warm_arm = build_program(sources, arm_cfg)
    warm_thumb = build_program(sources, thumb_cfg)
    assert warm_arm.report.image_cache_hit
    assert warm_thumb.report.image_cache_hit
    assert warm_arm.image.target_name == "arm64"
    assert warm_thumb.image.target_name == "thumb2c"
    assert (_sha(warm_thumb.image.text_section())
            == _sha(cold_thumb.image.text_section()))


def test_backend_fingerprint_differs_per_target():
    a = BuildConfig(target="arm64").backend_fingerprint()
    b = BuildConfig(target="thumb2c").backend_fingerprint()
    assert a != b


# --- cross-target generality experiment --------------------------------------


def test_generality_reports_every_target_per_corpus():
    from repro.experiments import generality

    result = generality.run(rounds=1, targets=("arm64", "thumb2c"))
    assert result.targets == ("arm64", "thumb2c")
    by_target = {}
    for row in result.corpora:
        by_target.setdefault(row.target, set()).add(row.corpus)
        assert row.outlined_text <= row.baseline_text
    assert by_target["arm64"] == by_target["thumb2c"] == {
        "linux-kernel", "clang"}
    report = generality.format_report(result)
    assert "thumb2c" in report and "arm64" in report
