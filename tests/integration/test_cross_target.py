"""Cross-target differential tests for the TargetSpec abstraction.

Three claims, each enforced directly:

1. **arm64 is the correctness oracle** — with the default target every
   build is bit-identical to golden images captured before the target
   refactor (``tests/fixtures/golden_arm64.json``), so the abstraction
   costs exactly zero bytes of behaviour change.
2. **thumb2c is a real variable-width target** — its images carry a
   per-instruction address table, pass the structural verifier
   (alignment padding included), never grow under outlining, and run to
   the same program output as arm64.
3. **Targets never share cache entries** — the backend fingerprint keys
   the image cache by target, so a thumb2c rebuild over a warm arm64
   cache recompiles instead of resurrecting 4-byte code.
"""

import hashlib
import json
import os

import pytest

from repro.errors import ImageVerifierError
from repro.link.verify import verify_image
from repro.pipeline import BuildConfig, build_program
from repro.pipeline.build import run_build
from repro.target import get_target
from repro.workloads.appgen import AppSpec, generate_app

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "fixtures",
                           "golden_arm64.json")

#: The same app the golden fixture was generated from.
APP_SPEC = AppSpec(seed=11, base_features=4, num_vendors=2)

GOLDEN_CONFIGS = {
    "app-default-r3": dict(pipeline="default", outline_rounds=3),
    "app-nearcallers-r5": dict(outline_rounds=5,
                               outlined_layout="near-callers"),
    "app-wholeprogram-r0": dict(outline_rounds=0),
    "app-wholeprogram-r5": dict(outline_rounds=5),
}


@pytest.fixture(scope="module")
def sources():
    return generate_app(APP_SPEC)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# --- 1. arm64 stays bit-identical to the pre-refactor golden images ----------


@pytest.mark.parametrize("case", sorted(GOLDEN_CONFIGS))
def test_arm64_bit_identical_to_golden(case, sources, golden):
    result = build_program(sources, BuildConfig(target="arm64",
                                                **GOLDEN_CONFIGS[case]))
    image = result.image
    want = golden[case]
    assert _sha(image.text_section()) == want["text_sha256"]
    assert _sha(image.data_section()) == want["data_sha256"]
    assert result.sizes.text_bytes == want["text_bytes"]
    assert result.sizes.binary_bytes == want["binary_bytes"]
    assert result.sizes.num_instrs == want["num_instrs"]
    assert result.sizes.num_functions == want["num_functions"]
    # The fixed-width target keeps the uniform layout: no address table,
    # no alignment padding.
    assert image.instr_addrs is None
    assert image.alignment_padding_bytes == 0


# --- 2. thumb2c: variable-width layout, verified, shrinking, same output -----


@pytest.fixture(scope="module")
def thumb_results(sources):
    return {rounds: build_program(sources, BuildConfig(
                outline_rounds=rounds, target="thumb2c"))
            for rounds in (0, 1, 3, 5)}


def test_thumb2c_layout_is_variable_width_and_padded(thumb_results):
    image = thumb_results[5].image
    assert image.target_name == "thumb2c"
    assert image.instr_addrs is not None
    assert len(image.instr_addrs) == len(image.instrs)
    spec = get_target("thumb2c")
    widths = {spec.instr_bytes(i) for i in image.instrs}
    assert widths == {2, 4}, "a compressed build should mix widths"
    # Function starts honour the target alignment; the gaps are padding.
    for ext in image.functions:
        assert ext.start % spec.function_alignment == 0
    assert image.text_bytes < len(image.instrs) * 4, \
        "variable-width text must be denser than fixed-width"


def test_thumb2c_passes_the_structural_verifier(thumb_results):
    for result in thumb_results.values():
        verify_image(result.image)  # target taken from the image
        assert result.report.image_verified


def test_thumb2c_outlining_never_increases_text(thumb_results):
    sizes = {r: res.sizes.text_bytes for r, res in thumb_results.items()}
    assert sizes[1] <= sizes[0]
    assert sizes[3] <= sizes[1]
    assert sizes[5] <= sizes[3]
    assert sizes[5] < sizes[0], "five rounds must actually save bytes"


def test_thumb2c_runs_to_the_same_output_as_arm64(sources, thumb_results):
    # With outlining the two targets legally produce *different* code
    # (their cost models disagree about what is profitable), so only the
    # program's observable output must match at rounds=5 ...
    arm5 = build_program(sources, BuildConfig(outline_rounds=5,
                                              target="arm64"))
    assert run_build(thumb_results[5]).output == run_build(arm5).output
    # ... while at rounds=0 the instruction stream is identical and the
    # retired-instruction count must match exactly.
    arm0 = build_program(sources, BuildConfig(outline_rounds=0,
                                              target="arm64"))
    arm_exec = run_build(arm0)
    thumb_exec = run_build(thumb_results[0])
    assert thumb_exec.output == arm_exec.output
    assert thumb_exec.steps == arm_exec.steps


def test_verifier_rejects_misaligned_thumb2c_layout(thumb_results):
    import pickle

    img = pickle.loads(pickle.dumps(thumb_results[5].image))
    # Shift the second function's extent (and its instructions' recorded
    # addresses) off the target's alignment grid by the narrow width.
    ext = img.functions[1]
    lo = img.index_of_addr(ext.start)
    hi = img.index_of_addr(ext.end)
    ext.start += 2
    ext.end += 2
    img.symbols[ext.name] += 2
    for i in range(lo, hi):
        img.instr_addrs[i] += 2
    with pytest.raises(ImageVerifierError, match="align|contiguous"):
        verify_image(img)


# --- 3. targets never collide in the image cache -----------------------------


def test_image_cache_entries_are_keyed_by_target(sources, tmp_path):
    arm_cfg = BuildConfig(outline_rounds=2, incremental=True,
                          cache_dir=str(tmp_path), target="arm64")
    thumb_cfg = BuildConfig(outline_rounds=2, incremental=True,
                            cache_dir=str(tmp_path), target="thumb2c")
    cold_arm = build_program(sources, arm_cfg)
    assert not cold_arm.report.image_cache_hit
    # Same sources, same cache dir, different target: must be a miss.
    cold_thumb = build_program(sources, thumb_cfg)
    assert not cold_thumb.report.image_cache_hit
    assert cold_thumb.image.target_name == "thumb2c"
    assert cold_thumb.sizes.text_bytes != cold_arm.sizes.text_bytes
    # Each target then hits its own entry and round-trips its own image.
    warm_arm = build_program(sources, arm_cfg)
    warm_thumb = build_program(sources, thumb_cfg)
    assert warm_arm.report.image_cache_hit
    assert warm_thumb.report.image_cache_hit
    assert warm_arm.image.target_name == "arm64"
    assert warm_thumb.image.target_name == "thumb2c"
    assert (_sha(warm_thumb.image.text_section())
            == _sha(cold_thumb.image.text_section()))


def test_backend_fingerprint_differs_per_target():
    a = BuildConfig(target="arm64").backend_fingerprint()
    b = BuildConfig(target="thumb2c").backend_fingerprint()
    assert a != b


# --- cross-target generality experiment --------------------------------------


def test_generality_reports_every_target_per_corpus():
    from repro.experiments import generality

    result = generality.run(rounds=1, targets=("arm64", "thumb2c"))
    assert result.targets == ("arm64", "thumb2c")
    by_target = {}
    for row in result.corpora:
        by_target.setdefault(row.target, set()).add(row.corpus)
        assert row.outlined_text <= row.baseline_text
    assert by_target["arm64"] == by_target["thumb2c"] == {
        "linux-kernel", "clang"}
    report = generality.format_report(result)
    assert "thumb2c" in report and "arm64" in report
