"""All 26 Swiftlet algorithm benchmarks compile, run, and stay leak-free;
outputs match known-good values (regression-pinned)."""

import pytest

from repro.pipeline import BuildConfig, build_program, run_build
from repro.workloads.swift_benchmarks import BENCHMARK_NAMES, load_benchmark

# Known-good outputs (pinned from the reference run; any compiler change
# that alters these is a miscompile until proven otherwise).
EXPECTED = {
    "BFS": ["1620"],
    "BoyerMooreHorspool": ["187", "1820"],
    "BucketSort": ["1", "802429"],
    "ClosestPair": ["248"],
    "Combinatorics": ["527861", "477638700", "778555663", "73741816"],
    "CountingSort": ["1", "187381"],
    "DFS": ["765541"],
    "EncodeAndDecodeTree": ["121", "554266", "554266"],
    "GCD": ["210056", "196", "1260"],
    "HashTable": ["400", "400", "-200"],
    "Huffman": ["23", "117", "7"],
    "JSON": ["556205", "22"],
    "KnuthMorrisPratt": ["13", "4", "14", "120"],
    "LCS": ["45", "4", "59"],
    "LRUCache": ["235", "68159", "16"],
    "OctTree": ["729", "814338"],
    "QuickSort": ["1", "60203"],
    "RedBlackTree": ["179", "200", "0", "7"],
    "RunLengthEncoding": ["226", "1"],
    "SimulatedAnnealing": ["1254"],
    "SplayTree": ["142", "150"],
    "StrassenMM": ["756591"],
    "TopologicalSort": ["1", "730778"],
    "ZAlgorithm": ["11615", "4", "8"],
}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_runs_clean(name):
    build = build_program({name: load_benchmark(name)},
                          BuildConfig(outline_rounds=0))
    run = run_build(build, max_steps=20_000_000)
    assert run.leaked == [], name
    if name in EXPECTED:
        assert run.output == EXPECTED[name], name
    else:
        assert run.output, name


@pytest.mark.parametrize("name", ["BFS", "QuickSort", "JSON",
                                  "RedBlackTree", "SplayTree",
                                  "SimulatedAnnealing"])
def test_benchmark_outlining_equivalence(name):
    """Representative subset: 5-round outlining preserves exact output."""
    src = load_benchmark(name)
    base = run_build(build_program({name: src},
                                   BuildConfig(outline_rounds=0)),
                     max_steps=20_000_000)
    opt = run_build(build_program({name: src},
                                  BuildConfig(outline_rounds=5)),
                    max_steps=20_000_000)
    assert base.output == opt.output, name
    assert opt.leaked == [], name


def test_all_names_have_sources():
    assert len(BENCHMARK_NAMES) == 26
    for name in BENCHMARK_NAMES:
        assert load_benchmark(name).strip(), name
