"""End-to-end daemon round trip through the real CLI: `repro serve` in a
subprocess, `repro submit` / `repro status` in-process against it, warm
image-cache hits on resubmission, degradation lines over the wire, and a
graceful SIGTERM drain with exit code 0."""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main

SOURCE = """
func square(x: Int) -> Int { return x * x }
func main() {
    var total = 0
    for i in 0..<6 { total += square(x: i) }
    print(total)
}
"""


def run_cli(args):
    captured = io.StringIO()
    old = sys.stdout
    sys.stdout = captured
    try:
        code = main(args)
    finally:
        sys.stdout = old
    return code, captured.getvalue()


def _src_path():
    return str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "App.sw"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def daemon(tmp_path):
    """A live `repro serve` subprocess; yields its state dir."""
    state_dir = tmp_path / "state"
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_path()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir),
         "--job-workers", "1", "--build-workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    endpoint = state_dir / "endpoint.json"
    deadline = time.monotonic() + 60
    while not endpoint.exists():
        assert proc.poll() is None, f"daemon died: {proc.stdout.read()}"
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.05)
    yield proc, str(state_dir)
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


class TestServeSubmitRoundTrip:
    def test_submit_builds_and_reports(self, daemon, source_file):
        _, state_dir = daemon
        code, out = run_cli(["submit", source_file,
                             "--state-dir", state_dir, "--rounds", "1"])
        assert code == 0
        assert "[ok]" in out
        assert "code:" in out and "binary:" in out
        assert "text sha:" in out
        assert "frontend:" in out          # BuildReport travelled the wire
        assert "verify:    image verified" in out

    def test_resubmit_is_a_warm_image_cache_hit(self, daemon, source_file):
        _, state_dir = daemon
        code, first = run_cli(["submit", source_file,
                               "--state-dir", state_dir, "--rounds", "1"])
        assert code == 0
        code, second = run_cli(["submit", source_file,
                                "--state-dir", state_dir, "--rounds", "1"])
        assert code == 0
        assert "image cache hit (no recompilation)" in second

        def _sha(out):
            for line in out.splitlines():
                if line.startswith("text sha:"):
                    return line.split()[-1]
            raise AssertionError(f"no sha line in: {out}")

        assert _sha(first) == _sha(second)

    def test_degradation_lines_travel_the_wire(self, tmp_path):
        """A daemon injecting worker crashes: `repro submit` prints the
        same `degraded:` ladder lines the one-shot CLI prints.  Needs a
        multi-module program — a single module compiles serially with no
        worker fault sites."""
        lib = tmp_path / "Lib.sw"
        lib.write_text("func triple(x: Int) -> Int { return x * 3 }\n")
        app = tmp_path / "Main.sw"
        app.write_text("import Lib\n"
                       "func main() { print(triple(x: 14)) }\n")
        state_dir = tmp_path / "chaos-state"
        env = dict(os.environ)
        env["PYTHONPATH"] = _src_path()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir),
             "--job-workers", "1", "--build-workers", "2",
             "--inject-faults", "seed=9,crash=1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 60
            while not (state_dir / "endpoint.json").exists():
                assert proc.poll() is None
                assert time.monotonic() < deadline
                time.sleep(0.05)
            code, out = run_cli(["submit", str(lib), str(app),
                                 "--state-dir", str(state_dir),
                                 "--rounds", "1"])
            assert code == 0
            assert "[ok]" in out
            assert "degraded:" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_status_reports_summary_and_gauges(self, daemon, source_file):
        _, state_dir = daemon
        run_cli(["submit", source_file, "--state-dir", state_dir,
                 "--rounds", "1"])
        code, out = run_cli(["status", "--state-dir", state_dir])
        assert code == 0
        assert "jobs_ok: 1" in out
        assert "breaker_state: closed" in out
        assert "service.queue_depth:" in out

    def test_queue_full_backpressure_reaches_the_cli(self, tmp_path,
                                                     source_file):
        """A CLI submit against a saturated queue exits non-zero with the
        typed QueueFullError name on stderr, instead of hanging."""
        from repro.service import BuildService, ServiceConfig

        state_dir = tmp_path / "full-state"
        service = BuildService(ServiceConfig(state_dir=str(state_dir),
                                             queue_size=1))
        # No executors: the one queue slot stays occupied.
        service.submit_job({"App": SOURCE}, {"outline_rounds": 1})
        host, port = service.start_server()
        err = io.StringIO()
        old_err = sys.stderr
        sys.stderr = err
        try:
            code = main(["submit", source_file, "--state-dir",
                         str(state_dir), "--rounds", "1",
                         "--client-timeout", "30"])
        finally:
            sys.stderr = old_err
            service.stop_server()
            service.journal.close()
        assert code == 1
        assert "QueueFullError" in err.getvalue()

    def test_sigterm_drains_gracefully(self, daemon, source_file):
        proc, state_dir = daemon
        code, _ = run_cli(["submit", source_file, "--state-dir", state_dir,
                           "--rounds", "1"])
        assert code == 0
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
        assert proc.returncode == 0
        out = proc.stdout.read()
        assert "drained:" in out
        assert "jobs_ok=1" in out
        # The endpoint file is gone: no stale discovery for later clients.
        assert not (Path(state_dir) / "endpoint.json").exists()
        # The journal survives (compacted) for the next daemon.
        journal = Path(state_dir) / "journal.jsonl"
        assert journal.exists()
        records = [json.loads(line)
                   for line in journal.read_bytes().splitlines()
                   if line.strip()]
        assert any(r["rec"] == "done" and r["status"] == "ok"
                   for r in records)
