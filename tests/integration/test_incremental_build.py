"""Integration tests for the parallel/incremental pipeline on the synthetic
app: the warm-cache speedup the PR promises (≥ 3× vs a cold serial build)
and bit-identity of every build mode on a realistic multi-module program.
"""

import time

import pytest

from repro.experiments.common import app_spec, optimized_config
from repro.pipeline import BuildConfig, build_program
from repro.workloads.appgen import generate_app, module_fingerprints


@pytest.fixture(scope="module")
def app_sources():
    # The E1 (Figure 1) synthetic app at the experiments' default scale.
    return generate_app(app_spec("small"))


def _config(**kw):
    base = optimized_config()  # the paper's 5-round whole-program pipeline
    return BuildConfig(**{**base.__dict__, **kw})


def _identity(result):
    return (result.image.text_section(), result.image.data_section(),
            [(s.round_no, s.sequences_outlined, s.functions_created,
              s.bytes_saved) for s in result.outline_stats])


def test_warm_rebuild_at_least_3x_faster_and_identical(app_sources, tmp_path):
    start = time.perf_counter()
    cold_serial = build_program(app_sources, _config())
    cold_seconds = time.perf_counter() - start

    populate = build_program(
        app_sources, _config(incremental=True, cache_dir=str(tmp_path)))
    assert _identity(populate) == _identity(cold_serial)

    start = time.perf_counter()
    warm = build_program(
        app_sources, _config(incremental=True, cache_dir=str(tmp_path)))
    warm_seconds = time.perf_counter() - start

    assert warm.report.image_cache_hit
    assert _identity(warm) == _identity(cold_serial)
    assert warm_seconds * 3 <= cold_seconds, (
        f"warm rebuild took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x)")


def test_parallel_build_identical_on_app(app_sources):
    serial = build_program(app_sources, _config())
    parallel = build_program(app_sources, _config(workers=4))
    assert _identity(parallel) == _identity(serial)


def test_parallel_default_pipeline_identical_on_app(app_sources):
    serial = build_program(
        app_sources, BuildConfig(pipeline="default", outline_rounds=1))
    parallel = build_program(
        app_sources, BuildConfig(pipeline="default", outline_rounds=1,
                                 workers=4))
    assert _identity(parallel) == _identity(serial)


def test_module_cache_reused_across_configs(app_sources, tmp_path):
    """Baseline and optimized builds of the same app share module LIR."""
    optimized = build_program(
        app_sources, _config(incremental=True, cache_dir=str(tmp_path)))
    assert optimized.report.cache_misses == len(app_sources)
    baseline = build_program(
        app_sources, BuildConfig(pipeline="default", outline_rounds=1,
                                 incremental=True, cache_dir=str(tmp_path)))
    assert baseline.report.cache_hits == len(app_sources)
    fresh = build_program(
        app_sources, BuildConfig(pipeline="default", outline_rounds=1))
    assert _identity(baseline) == _identity(fresh)


def test_weekly_growth_reuses_previous_week_modules(tmp_path):
    """Week N+1 only recompiles the modules it added (plus Main)."""
    spec = app_spec("tiny")
    week0 = generate_app(spec)
    week8 = generate_app(spec.at_week(8))
    assert set(week0) < set(week8)

    fp0, fp8 = module_fingerprints(spec), module_fingerprints(spec.at_week(8))
    assert all(fp8[name] == fp0[name] for name in fp0 if name != "Main")

    config = dict(outline_rounds=1, incremental=True,
                  cache_dir=str(tmp_path))
    build_program(week0, BuildConfig(**config))
    grown = build_program(week8, BuildConfig(**config))
    new_modules = (set(week8) - set(week0)) | {"Main"}
    assert grown.report.cache_misses == len(new_modules)
    assert grown.report.cache_hits == len(week8) - len(new_modules)
    fresh = build_program(week8, BuildConfig(outline_rounds=1))
    assert _identity(grown) == _identity(fresh)
