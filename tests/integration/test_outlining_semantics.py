"""The core correctness property: machine outlining preserves semantics.

Every program here runs under (pipeline x rounds) configurations and must
produce byte-identical output with zero leaks.
"""

import pytest

from repro.pipeline import BuildConfig, build_program, run_build

PROGRAMS = {
    "objects": """
class Node {
    var next: Node
    var value: Int
    init(value: Int) { self.value = value\n self.next = nil }
    func sum() -> Int {
        var total = 0
        var cur = self
        while cur != nil { total += cur.value\n cur = cur.next }
        return total
    }
}
func main() {
    let head = Node(value: 1)
    var cur = head
    for i in 2...6 {
        let nxt = Node(value: i)
        cur.next = nxt
        cur = nxt
    }
    print(head.sum())
}
""",
    "errors": """
class Decoder {
    let a: String
    let b: String
    init(code: Int) throws {
        self.a = "first"
        if code % 3 == 0 { throw code }
        self.b = "second"
    }
}
func main() {
    var ok = 0
    var failed = 0
    for i in 0..<10 {
        do {
            let d = try Decoder(code: i)
            ok += d.a.count + d.b.count
        } catch {
            failed += error
        }
    }
    print(ok)
    print(failed)
}
""",
    "closures": """
func main() {
    var acc = 0
    let ops = [1, 2, 3, 4, 5]
    let fold = { (x: Int) -> Int in
        acc = acc * 2 + x
        return acc
    }
    var last = 0
    for op in ops { last = fold(op) }
    print(last)
    print(acc)
}
""",
    "floats": """
func main() {
    var total = 0.0
    for i in 1..<20 {
        total += sqrt(Double(i)) * 0.5
    }
    print(Int(total * 100.0))
}
""",
    "strings": """
func label(i: Int) -> String {
    if i % 2 == 0 { return "even" }
    return "odd"
}
func main() {
    var s = ""
    for i in 0..<6 { s += label(i: i) }
    print(s.count)
    print(s == "evenoddevenoddevenodd")
}
""",
}

CONFIGS = [
    ("wholeprogram", 0),
    ("wholeprogram", 1),
    ("wholeprogram", 3),
    ("wholeprogram", 5),
    ("default", 0),
    ("default", 2),
]


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_outlining_preserves_semantics(name):
    source = PROGRAMS[name]
    reference = None
    for pipeline, rounds in CONFIGS:
        result = build_program({"P": source},
                               BuildConfig(pipeline=pipeline,
                                           outline_rounds=rounds))
        execution = run_build(result)
        assert execution.leaked == [], (name, pipeline, rounds)
        if reference is None:
            reference = execution.output
        else:
            assert execution.output == reference, (name, pipeline, rounds)


def test_outlined_code_smaller_and_executed():
    """Whole-program outlining shrinks text and its functions actually run."""
    # Use a multi-module program with real cross-module repetition.
    from repro.workloads.appgen import AppSpec, generate_app

    sources = generate_app(AppSpec(base_features=4, num_vendors=2))
    base = build_program(sources, BuildConfig(outline_rounds=0))
    opt = build_program(sources, BuildConfig(outline_rounds=3))
    base_run = run_build(base)
    opt_run = run_build(opt)
    assert opt.sizes.text_bytes < base.sizes.text_bytes
    assert opt_run.output == base_run.output
    assert opt_run.outlined_steps > 0, "outlined functions must execute"
    assert base_run.outlined_steps == 0


def test_round_zero_identical_to_baseline():
    source = PROGRAMS["objects"]
    a = build_program({"P": source}, BuildConfig(outline_rounds=0))
    b = build_program({"P": source}, BuildConfig(outline_rounds=0))
    assert a.sizes.text_bytes == b.sizes.text_bytes


def test_table2_stats_consistent_with_functions():
    from repro.workloads.appgen import AppSpec, generate_app

    sources = generate_app(AppSpec(base_features=4, num_vendors=2))
    opt = build_program(sources, BuildConfig(outline_rounds=5))
    stats = opt.outline_stats
    outlined_fns = [f for m in opt.machine_modules for f in m.functions
                    if f.is_outlined]
    assert stats[-1].functions_created == len(outlined_fns)
    # Bytes are recorded at creation time under the build's target spec;
    # later rounds may shrink earlier outlined functions (tail-call
    # outlining applies inside them), so the cumulative stat is an upper
    # bound on the live size.
    from repro.target import get_target

    spec = get_target(opt.config.target)
    live_bytes = sum(spec.function_body_bytes(f) for f in outlined_fns)
    assert live_bytes <= stats[-1].outlined_fn_bytes
    assert stats[-1].outlined_fn_bytes <= 1.2 * live_bytes
