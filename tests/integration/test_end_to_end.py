"""End-to-end language semantics: compile with the full pipeline, execute in
the interpreter, check exact output and zero leaks."""

import pytest

from repro.errors import SimulationError, TrapError
from repro.pipeline import BuildConfig, build_program, run_build


def run(source, module="T", **cfg):
    result = build_program({module: source}, BuildConfig(**cfg))
    execution = run_build(result)
    assert execution.leaked == [], "refcount leak"
    return execution.output


class TestArithmetic:
    def test_integer_ops(self):
        out = run("""
func main() {
    print(7 + 3 * 2)
    print(7 / 2)
    print(-7 / 2)
    print(7 % 3)
    print(-7 % 3)
    print(1 << 10)
    print(-16 >> 2)
    print(12 & 10)
    print(12 | 3)
    print(12 ^ 10)
}
""")
        assert out == ["13", "3", "-3", "1", "-1", "1024", "-4", "8", "15",
                       "6"]

    def test_double_ops(self):
        out = run("""
func main() {
    print(1.5 + 2.25)
    print(10.0 / 4.0)
    print(2.0 * -3.5)
    print(sqrt(16.0))
    print(floor(3.7))
    print(pow(2.0, 10.0))
}
""")
        assert out == ["3.75", "2.5", "-7.0", "4.0", "3.0", "1024.0"]

    def test_comparisons_and_logic(self):
        out = run("""
func main() {
    print(3 < 5)
    print(3.5 >= 3.5)
    print(1 == 2 || 3 != 4)
    print(!(true && false))
}
""")
        assert out == ["true", "true", "true", "true"]

    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run("func main() { var d = 0\n print(5 / d) }")

    def test_conversion_round_trip(self):
        out = run("""
func main() {
    print(Int(3.99))
    print(Int(-3.99))
    print(Double(41) + 1.0)
}
""")
        assert out == ["3", "-3", "42.0"]


class TestControlFlow:
    def test_loops(self):
        out = run("""
func main() {
    var s = 0
    for i in 0..<5 { s += i }
    print(s)
    var t = 0
    for i in 1...5 { t += i }
    print(t)
    var u = 0
    while u < 100 { u += 7 }
    print(u)
}
""")
        assert out == ["10", "15", "105"]

    def test_break_continue(self):
        out = run("""
func main() {
    var s = 0
    for i in 0..<10 {
        if i % 2 == 0 { continue }
        if i > 6 { break }
        s += i
    }
    print(s)
}
""")
        assert out == ["9"]  # 1+3+5

    def test_nested_loops_with_break(self):
        out = run("""
func main() {
    var hits = 0
    for i in 0..<5 {
        for j in 0..<5 {
            if i * j > 6 { break }
            hits += 1
        }
    }
    print(hits)
}
""")
        assert out == ["19"]

    def test_recursion(self):
        out = run("""
func fact(n: Int) -> Int {
    if n <= 1 { return 1 }
    return n * fact(n: n - 1)
}
func main() { print(fact(n: 10)) }
""")
        assert out == ["3628800"]

    def test_mutual_recursion(self):
        out = run("""
func isEven(n: Int) -> Bool {
    if n == 0 { return true }
    return isOdd(n: n - 1)
}
func isOdd(n: Int) -> Bool {
    if n == 0 { return false }
    return isEven(n: n - 1)
}
func main() { print(isEven(n: 10))\n print(isOdd(n: 7)) }
""")
        assert out == ["true", "true"]


class TestClassesAndARC:
    def test_object_graph(self):
        out = run("""
class Node {
    var next: Node
    var value: Int
    init(value: Int) { self.value = value\n self.next = nil }
}
func main() {
    let a = Node(value: 1)
    a.next = Node(value: 2)
    a.next.next = Node(value: 3)
    var total = 0
    var cur = a
    while cur != nil {
        total += cur.value
        cur = cur.next
    }
    print(total)
}
""")
        assert out == ["6"]

    def test_field_reassignment_releases_old(self):
        out = run("""
class Leaf { var v: Int
    init(v: Int) { self.v = v } }
class Holder { var leaf: Leaf
    init() { self.leaf = nil } }
func main() {
    let h = Holder()
    h.leaf = Leaf(v: 1)
    h.leaf = Leaf(v: 2)
    h.leaf = Leaf(v: 3)
    print(h.leaf.v)
}
""")
        assert out == ["3"]

    def test_methods_and_self(self):
        out = run("""
class Counter {
    var n: Int
    init() { self.n = 0 }
    func bump() -> Int {
        self.n += 1
        return self.n
    }
    func reset() { self.n = 0 }
}
func main() {
    let c = Counter()
    print(c.bump() + c.bump() + c.bump())
    c.reset()
    print(c.n)
}
""")
        assert out == ["6", "0"]

    def test_multiple_inits(self):
        out = run("""
class P {
    var x: Int
    var y: Int
    init(x: Int) { self.x = x\n self.y = -1 }
    init(x: Int, y: Int) { self.x = x\n self.y = y }
}
func main() {
    print(P(x: 3).y)
    print(P(x: 3, y: 9).y)
}
""")
        assert out == ["-1", "9"]

    def test_object_identity_comparison(self):
        out = run("""
class Box { var v: Int\n init() { self.v = 0 } }
func main() {
    let a = Box()
    let b = a
    let c = Box()
    print(a == b)
    print(a == c)
    print(a != c)
}
""")
        assert out == ["true", "false", "true"]


class TestArraysAndStrings:
    def test_array_mutation(self):
        out = run("""
func main() {
    var a = [Int](repeating: 0, count: 4)
    for i in 0..<4 { a[i] = i * i }
    a.append(100)
    print(a.count)
    print(a[4])
    print(a.removeLast())
    print(a.count)
}
""")
        assert out == ["5", "100", "100", "4"]

    def test_array_out_of_bounds_traps(self):
        with pytest.raises(TrapError):
            run("func main() { let a = [1, 2]\n print(a[5]) }")

    def test_negative_index_traps(self):
        with pytest.raises(TrapError):
            run("func main() { let a = [1, 2]\n var i = -1\n print(a[i]) }")

    def test_nested_arrays(self):
        out = run("""
func main() {
    var grid = [[Int]](repeating: [0], count: 3)
    for i in 0..<3 {
        grid[i] = [Int](repeating: i, count: i + 1)
    }
    print(grid[2].count)
    print(grid[2][2])
}
""")
        assert out == ["3", "2"]

    def test_array_of_objects(self):
        out = run("""
class Item { var v: Int\n init(v: Int) { self.v = v } }
func main() {
    var items: [Item] = []
    for i in 0..<5 { items.append(Item(v: i * 10)) }
    var total = 0
    for item in items { total += item.v }
    print(total)
    items[0] = Item(v: 999)
    print(items[0].v)
}
""")
        assert out == ["100", "999"]

    def test_string_operations(self):
        out = run("""
func main() {
    let s = "hello" + " " + "world"
    print(s)
    print(s.count)
    print(s[0])
    print(s == "hello world")
    print(s == "other")
}
""")
        assert out == ["hello world", "11", "104", "true", "false"]

    def test_global_constants(self):
        out = run("""
let table = [10, 20, 30]
let banner = "app"
let factor = 6 * 7
var counter = 0
func main() {
    counter = counter + factor
    print(table[1] + counter)
    print(banner.count)
}
""")
        assert out == ["62", "3"]


class TestClosures:
    def test_capture_mutation_shared(self):
        out = run("""
func main() {
    var acc = 10
    let add = { (k: Int) -> Int in
        acc += k
        return acc
    }
    let sub = { (k: Int) -> Int in
        acc -= k
        return acc
    }
    print(add(5))
    print(sub(3))
    print(acc)
}
""")
        assert out == ["15", "12", "12"]

    def test_closure_as_argument(self):
        out = run("""
func twice(f: (Int) -> Int, x: Int) -> Int { return f(f(x)) }
func main() {
    print(twice(f: { (n: Int) -> Int in return n * 3 }, x: 2))
}
""")
        assert out == ["18"]

    def test_closure_escaping_function(self):
        out = run("""
func makeCounter() -> () -> Int {
    var n = 0
    return { () -> Int in
        n += 1
        return n
    }
}
func main() {
    let c1 = makeCounter()
    let c2 = makeCounter()
    print(c1())
    print(c1())
    print(c2())
}
""")
        assert out == ["1", "2", "1"]

    def test_function_reference_as_value(self):
        out = run("""
func double(x: Int) -> Int { return x * 2 }
func apply(f: (Int) -> Int, x: Int) -> Int { return f(x) }
func main() { print(apply(f: double, x: 21)) }
""")
        assert out == ["42"]


class TestErrors:
    def test_throw_and_catch(self):
        out = run("""
func risky(x: Int) throws -> Int {
    if x > 5 { throw x * 100 }
    return x * 2
}
func main() {
    do {
        print(try risky(x: 3))
        print(try risky(x: 9))
        print(9999)
    } catch {
        print(error)
    }
}
""")
        assert out == ["6", "900"]

    def test_error_propagation_through_layers(self):
        out = run("""
func inner(x: Int) throws -> Int {
    if x == 0 { throw 7 }
    return x
}
func middle(x: Int) throws -> Int {
    return (try inner(x: x)) + 100
}
func main() {
    do {
        print(try middle(x: 0))
    } catch {
        print(error)
    }
}
""")
        assert out == ["7"]

    def test_throwing_init_cleanup(self):
        out = run("""
class Res {
    let tag: String
    let extra: String
    init(fail: Bool) throws {
        self.tag = "first"
        if fail { throw 55 }
        self.extra = "second"
    }
}
func main() {
    do {
        let ok = try Res(fail: false)
        print(ok.tag)
        let bad = try Res(fail: true)
        print(bad.tag)
    } catch {
        print(error)
    }
}
""")
        assert out == ["first", "55"]

    def test_error_code_zero(self):
        out = run("""
func zeroThrow() throws -> Int { throw 0 }
func main() {
    do { print(try zeroThrow()) } catch { print(error + 1000) }
}
""")
        assert out == ["1000"]

    def test_nested_do_catch(self):
        out = run("""
func boom(code: Int) throws { throw code }
func main() {
    do {
        do {
            try boom(code: 1)
        } catch {
            try boom(code: error + 10)
        }
    } catch {
        print(error)
    }
}
""")
        assert out == ["11"]

    def test_loop_break_on_error(self):
        out = run("""
func checked(i: Int) throws -> Int {
    if i == 3 { throw i }
    return i
}
func main() {
    var total = 0
    for i in 0..<10 {
        do {
            total += try checked(i: i)
        } catch {
            total += 1000
        }
    }
    print(total)
}
""")
        assert out == [str(sum(i for i in range(10) if i != 3) + 1000)]


class TestModules:
    def test_cross_module_program(self):
        sources = {
            "Math": """
func square(x: Int) -> Int { return x * x }
let offset = 5
""",
            "Shapes": """
import Math
class Rect {
    var w: Int
    var h: Int
    init(w: Int, h: Int) { self.w = w\n self.h = h }
    func area() -> Int { return self.w * self.h + offset }
}
""",
            "Main": """
import Math
import Shapes
func main() {
    let r = Rect(w: 3, h: 4)
    print(r.area())
    print(square(x: 9))
}
""",
        }
        result = build_program(sources)
        execution = run_build(result)
        assert execution.output == ["17", "81"]
        assert execution.leaked == []

    def test_both_pipelines_agree(self):
        sources = {
            "Lib": "func triple(x: Int) -> Int { return x * 3 }",
            "Main": "import Lib\nfunc main() { print(triple(x: 14)) }",
        }
        wp = run_build(build_program(sources, BuildConfig(
            pipeline="wholeprogram")))
        default = run_build(build_program(sources, BuildConfig(
            pipeline="default")))
        assert wp.output == default.output == ["42"]


class TestBuiltins:
    def test_assert_passes(self):
        out = run("func main() { assert(1 + 1 == 2)\n print(1) }")
        assert out == ["1"]

    def test_assert_failure_traps(self):
        with pytest.raises(TrapError):
            run("func main() { assert(1 == 2) }")

    def test_random_deterministic(self):
        out = run("""
func main() {
    seedRandom(42)
    let a = random()
    seedRandom(42)
    let b = random()
    print(a == b)
    print(a >= 0)
}
""")
        assert out == ["true", "true"]

    def test_abs(self):
        out = run("func main() { print(abs(-5) + abs(3)) }")
        assert out == ["8"]
