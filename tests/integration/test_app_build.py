"""Whole-app integration: the synthetic app builds, runs, and shows the
paper's size behaviour."""

import pytest

from repro.analysis.patterns import mine_build_patterns
from repro.pipeline import BuildConfig, build_program, run_build
from repro.workloads.appgen import AppSpec, generate_app

SPEC = AppSpec(base_features=5, num_vendors=2)


@pytest.fixture(scope="module")
def sources():
    return generate_app(SPEC)


@pytest.fixture(scope="module")
def baseline(sources):
    return build_program(sources, BuildConfig(outline_rounds=0))


@pytest.fixture(scope="module")
def outlined(sources):
    return build_program(sources, BuildConfig(outline_rounds=5))


def test_app_runs_clean(baseline):
    run = run_build(baseline)
    assert len(run.output) == 2
    assert run.leaked == []


def test_outlining_saves_meaningfully(baseline, outlined, sources):
    saving = 1 - outlined.sizes.text_bytes / baseline.sizes.text_bytes
    assert saving > 0.15, f"expected app-scale savings, got {saving:.1%}"
    run0 = run_build(baseline)
    run1 = run_build(outlined)
    assert run0.output == run1.output
    assert run1.leaked == []


def test_whole_program_beats_per_module(sources, outlined):
    per_module = build_program(sources, BuildConfig(pipeline="default",
                                                    outline_rounds=5))
    assert outlined.sizes.text_bytes < per_module.sizes.text_bytes
    run = run_build(per_module)
    assert run.leaked == []


def test_global_dce_strips_unreachable(sources):
    with_dce = build_program(sources, BuildConfig(global_dce=True))
    without = build_program(sources, BuildConfig(global_dce=False))
    assert with_dce.sizes.num_functions <= without.sizes.num_functions


def test_spans_runnable_as_entries(baseline):
    from repro.workloads.spans import span_symbols

    for symbol in span_symbols(SPEC)[:3]:
        run = run_build(baseline, entry_symbol=symbol, check_leaks=False)
        assert run.steps > 100


def test_mined_patterns_match_paper_listings(baseline):
    stats = mine_build_patterns(baseline)
    assert stats
    # Listings 1-6: ARC/runtime-call patterns dominate the top of the census.
    top_text = [" ".join(s.rendered) for s in stats[:10]]
    assert any("swift_retain" in t or "swift_release" in t
               for t in top_text)
    # Listing 3: the three-argument allocation appears somewhere.
    all_text = [" ".join(s.rendered) for s in stats]
    assert any("swift_allocObject" in t for t in all_text)


def test_data_layout_modes_same_semantics(sources):
    ordered = build_program(sources, BuildConfig(data_layout="module-order"))
    interleaved = build_program(sources, BuildConfig(
        data_layout="interleaved"))
    assert run_build(ordered).output == run_build(interleaved).output


def test_weekly_growth_monotone():
    sizes = []
    for week in (0, 6, 12):
        app = generate_app(AppSpec(base_features=4, num_vendors=2,
                                   features_per_week=0.5).at_week(week))
        build = build_program(app, BuildConfig(outline_rounds=0))
        sizes.append(build.sizes.text_bytes)
    assert sizes[0] < sizes[1] < sizes[2]
