"""Shared fixtures for the differential test suites.

The merge, outline, and cross-target tests all follow the same pattern —
"build this program under config X and run it in the simulator" — so the
build-and-run boilerplate lives here once.
"""

import pytest

from repro.pipeline import BuildConfig, build_program, run_build


@pytest.fixture
def build_and_run():
    """Build *sources* under *config* and execute the image in the sim.

    Returns ``(result, execution)``: the :class:`BuildResult` (sizes,
    image, reports) and the :class:`ExecutionResult` (output, steps,
    leaks).  ``sources`` may be a plain string (a single module named
    "Main") or a module-name -> source dict.
    """

    def _build_and_run(sources, config=None, *, max_steps=5_000_000,
                       check_leaks=True):
        if isinstance(sources, str):
            sources = {"Main": sources}
        result = build_program(sources, config or BuildConfig())
        execution = run_build(result, max_steps=max_steps,
                              check_leaks=check_leaks)
        return result, execution

    return _build_and_run
