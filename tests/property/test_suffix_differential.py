"""Differential tests closing the DESIGN.md §5 suffix-tree invariant on the
alphabet the outliner actually uses: mapped *machine instruction* sequences.

The existing property tests compare the suffix tree against the naive
O(n²) scanner on small plain-integer alphabets.  Here the sequences come
from :class:`~repro.outliner.candidates.InstructionMapper` over randomized
instruction streams and over a real build, so the comparison covers the
mapper's interned ids, the negative unique sentinels for illegal
instructions, and the block-boundary separators.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import MachineFunction, MachineInstr, Opcode, Sym
from repro.outliner.candidates import InstructionMapper
from repro.outliner.suffix_tree import SuffixTree, naive_repeated_substrings

_REGS = ("x0", "x1", "x8", "x9")


@st.composite
def _random_instr(draw):
    """One machine instruction from a small, collision-rich pool."""
    kind = draw(st.integers(min_value=0, max_value=4))
    reg = st.sampled_from(_REGS)
    if kind == 0:
        return MachineInstr(Opcode.ADDXri,
                            (draw(reg), draw(reg),
                             draw(st.integers(min_value=0, max_value=2))))
    if kind == 1:
        return MachineInstr(Opcode.ORRXrs, (draw(reg), draw(reg), draw(reg)))
    if kind == 2:
        return MachineInstr(Opcode.MOVZXi,
                            (draw(reg),
                             draw(st.integers(min_value=0, max_value=3)), 0))
    if kind == 3:
        return MachineInstr(Opcode.EORXrr, (draw(reg), draw(reg), draw(reg)))
    # Returns are illegal to outline: the mapper gives each one a fresh
    # negative sentinel, which must never take part in a repeat.
    return MachineInstr(Opcode.RET, ())


@st.composite
def _random_functions(draw):
    functions = []
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        fn = MachineFunction(name=f"f{i}")
        for b in range(draw(st.integers(min_value=1, max_value=2))):
            block = fn.new_block(f"b{b}")
            for instr in draw(st.lists(_random_instr(), min_size=1,
                                       max_size=20)):
                block.append(instr)
        functions.append(fn)
    return functions


def _assert_tree_matches_naive(ids):
    tree = SuffixTree(list(ids))
    got = {
        rs.substring(tree.seq): sorted(rs.starts)
        for rs in tree.repeated_substrings(min_len=2, max_len=64)
    }
    want = {
        key: sorted(starts)
        for key, starts in naive_repeated_substrings(
            list(ids), min_len=2, max_len=64).items()
    }
    assert got == want
    return got


@settings(max_examples=150, deadline=None)
@given(_random_functions())
def test_mapped_instruction_sequences_match_naive(functions):
    program = InstructionMapper().map_functions(functions)
    repeats = _assert_tree_matches_naive(program.ids)
    # Unique sentinels (< 0) mark unoutlinable points and block boundaries;
    # by construction they can never appear inside a repeated substring.
    for substring in repeats:
        assert all(token > 0 for token in substring)


def test_real_build_sequence_matches_naive():
    from repro.pipeline import BuildConfig, build_program

    source = """
func mixOne(a: Int, b: Int) -> Int { return a * 31 + b }
func mixTwo(a: Int, b: Int) -> Int { return a * 31 + b }
func main() {
    print(mixOne(a: 3, b: 4) + mixTwo(a: 5, b: 6))
}
"""
    # merge_mode pinned off: the duplicate pair must survive to machine
    # code, or the mapped sequence collapses below the size this asserts.
    result = build_program({"M": source}, BuildConfig(outline_rounds=0,
                                                      merge_mode="off"))
    functions = [fn for module in result.machine_modules
                 for fn in module.functions]
    program = InstructionMapper().map_functions(functions)
    assert len(program.ids) > 20
    _assert_tree_matches_naive(program.ids)
