"""Property tests over compiler semantics: generated arithmetic matches
Python's reference evaluation, constants materialize exactly, and the
whole pipeline agrees with a Python oracle on integer expression programs.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.isa.instructions import MachineInstr, Opcode, materialize_constant
from repro.pipeline import BuildConfig, build_program, run_build

_INT_MASK = (1 << 64) - 1


def _wrap(value):
    value &= _INT_MASK
    return value - (1 << 64) if value >= (1 << 63) else value


def _emulate_materialize(instrs):
    """Reference semantics of the MOVZ/MOVK/MOVN chunks."""
    reg = 0
    for mi in instrs:
        dst, imm, shift = mi.operands
        if mi.opcode is Opcode.MOVZXi:
            reg = _wrap(imm << shift)
        elif mi.opcode is Opcode.MOVNXi:
            reg = _wrap(~(imm << shift))
        elif mi.opcode is Opcode.MOVKXi:
            u = reg & _INT_MASK
            u = (u & ~(0xFFFF << shift)) | (imm << shift)
            reg = _wrap(u)
        else:
            raise AssertionError(mi.opcode)
    return reg


@settings(max_examples=500, deadline=None)
@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_materialize_constant_exact(value):
    instrs = materialize_constant("x0", value)
    assert 1 <= len(instrs) <= 4
    assert _emulate_materialize(instrs) == value


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFF))
def test_small_constants_one_instruction(value):
    assert len(materialize_constant("x0", value)) == 1


@st.composite
def int_expr(draw, depth=0):
    """A Swiftlet Int expression paired with its Python value oracle."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=-100, max_value=100))
        return (f"({value})", value)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left_src, left_val = draw(int_expr(depth=depth + 1))
    right_src, right_val = draw(int_expr(depth=depth + 1))
    value = {
        "+": left_val + right_val,
        "-": left_val - right_val,
        "*": left_val * right_val,
        "&": left_val & right_val,
        "|": left_val | right_val,
        "^": left_val ^ right_val,
    }[op]
    return (f"({left_src} {op} {right_src})", value)


@settings(max_examples=40, deadline=None)
@given(int_expr())
def test_expression_pipeline_matches_python(pair):
    source_expr, expected = pair
    assume(abs(expected) < 2 ** 62)  # stay clear of wrap (Python oracle)
    program = f"func main() {{ print({source_expr}) }}"
    execution = run_build(build_program({"E": program},
                                        BuildConfig(outline_rounds=0)))
    assert execution.output == [str(expected)]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                max_size=12))
def test_array_sum_matches_python(values):
    items = ", ".join(str(v) for v in values)
    program = f"""
func main() {{
    let a = [{items}]
    var total = 0
    for v in a {{ total += v }}
    print(total)
    print(a.count)
}}
"""
    execution = run_build(build_program({"E": program}))
    assert execution.output == [str(sum(values)), str(len(values))]
    assert execution.leaked == []


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=1, max_value=50))
def test_division_semantics_match_aarch64(a, b):
    """Swiftlet / and % follow AArch64 (truncating) semantics."""
    program = f"""
func main() {{
    var x = {a}
    var y = {b}
    print(x / y)
    print(x % y)
}}
"""
    execution = run_build(build_program({"E": program}))
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    r = a - q * b
    assert execution.output == [str(q), str(r)]
