"""Differential fuzzing of the *whole* pipeline: random programs must
behave identically under the minimal build and under the full pass stack
(ARC opt, SIL outlining, function merging, FMSA, the inliner, repeated
machine outlining, both pipelines, both layouts) — same printed output,
no leaks, every optional transform at once.

This extends ``test_outline_equivalence`` (which varies only the round
count) to the paper's complete optimisation surface: the configurations
below differ in every semantics-preserving knob the pipeline has.
"""

from hypothesis import given, settings, strategies as st

from repro.pipeline import BuildConfig, build_program, run_build
from tests.property.test_outline_equivalence import ProgramGenerator

#: Reference: whole-program with every optional transform off.
MINIMAL = BuildConfig(pipeline="wholeprogram", outline_rounds=0,
                      enable_arc_opt=False, global_dce=False)

#: Everything the paper stacked on top, all at once, plus layout and
#: pipeline variants that must not change observable behaviour.
FULL_STACK = (
    BuildConfig(pipeline="wholeprogram", outline_rounds=5,
                enable_sil_outlining=True, enable_merge_functions=True,
                enable_fmsa=True, enable_inliner=True),
    BuildConfig(pipeline="wholeprogram", outline_rounds=3,
                enable_sil_outlining=True, enable_merge_functions=True,
                enable_fmsa=True, enable_inliner=True,
                data_layout="interleaved", outlined_layout="near-callers"),
    BuildConfig(pipeline="default", outline_rounds=2,
                enable_sil_outlining=True, enable_fmsa=True),
)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 9))
def test_full_pass_stack_preserves_behaviour(seed):
    source = ProgramGenerator(seed).generate()
    reference = run_build(build_program({"Gen": source}, MINIMAL),
                          max_steps=5_000_000)
    assert reference.leaked == [], f"seed={seed} minimal build leaked"
    for config in FULL_STACK:
        execution = run_build(build_program({"Gen": source}, config),
                              max_steps=5_000_000)
        assert execution.leaked == [], (
            f"seed={seed} leaked under {config.backend_fingerprint()}")
        assert execution.output == reference.output, (
            f"seed={seed} diverged under {config.backend_fingerprint()}")
    assert reference.output and all(part.lstrip("-").isdigit()
                                    for part in reference.output)
