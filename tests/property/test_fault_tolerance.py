"""Fault-injection property harness for the build orchestrator.

The invariant the whole robustness layer exists to uphold: under ANY
combination of injected faults — worker crashes, hangs past the chunk
deadline, unpicklable results, a fork-less platform, corrupted cache
entries, torn cache writes — ``build_program`` either produces an image
**bit-identical** to the fault-free serial build or raises a **typed**
:class:`~repro.errors.ReproError`.  It must never return a different
binary, and it must never leak an untyped exception.

hypothesis draws random fault plans (seeds and rates) and random
parallel/incremental configurations over a fixed synthetic app; the CI
fault-injection job runs the same harness under a fixed seed matrix.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.pipeline import BuildConfig, FaultPlan, build_program

SOURCES = {
    "Lib": """
class Accum {
    var total: Int
    init() { self.total = 0 }
    func add(x: Int) -> Int {
        self.total = self.total + x
        return self.total
    }
}
func fa(x: Int) -> Int { return x * 2 + 1 }
func fb(x: Int) -> Int { return x * 2 + 2 }
""",
    "Util": """
func fc(x: Int) -> Int { return x * 2 + 3 }
func fd(x: Int) -> Int { return x * 2 + 4 }
""",
    "Main": """
import Lib
import Util

func main() {
    let acc = Accum()
    var v = 0
    for i in 0..<3 {
        v = acc.add(x: fa(x: i) + fb(x: i) + fc(x: i) + fd(x: i))
    }
    print(v)
}
""",
}


def _reference():
    result = build_program(SOURCES, BuildConfig(outline_rounds=1))
    return (result.image.text_section(), result.image.data_section())


REFERENCE = _reference()


def check_invariant(plan, *, pipeline="wholeprogram", workers=3,
                    incremental=False, cache_dir=None, prebuilds=0):
    """One verdict: bit-identical image or typed error.  Returns what
    happened, for callers that want to assert on coverage."""
    config = BuildConfig(pipeline=pipeline, outline_rounds=1,
                         workers=workers, incremental=incremental,
                         cache_dir=cache_dir, fault_plan=plan,
                         chunk_timeout=0.15, max_chunk_retries=1,
                         retry_backoff=0.01)
    for _ in range(prebuilds):
        # Populate (and then stress) the cache under the same plan.
        try:
            build_program(SOURCES, config)
        except ReproError:
            pass
    try:
        result = build_program(SOURCES, config)
    except ReproError:
        return "typed-error"
    except Exception as exc:  # pragma: no cover - the bug this test hunts
        pytest.fail(f"untyped exception escaped the orchestrator: "
                    f"{type(exc).__name__}: {exc}")
    fingerprint = (result.image.text_section(), result.image.data_section())
    assert fingerprint == REFERENCE, (
        "fault injection changed the produced binary")
    return "bit-identical"


@st.composite
def fault_plans(draw):
    rate = st.sampled_from([0.0, 0.3, 1.0])
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        worker_crash_rate=draw(rate),
        worker_hang_rate=draw(st.sampled_from([0.0, 0.3])),
        pickle_failure_rate=draw(rate),
        cache_corrupt_rate=draw(rate),
        torn_write_rate=draw(rate),
        fork_unavailable=draw(st.booleans()),
        hang_seconds=0.4)


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(),
       pipeline=st.sampled_from(["wholeprogram", "default"]),
       incremental=st.booleans())
def test_faulted_builds_are_identical_or_typed_errors(plan, pipeline,
                                                      incremental):
    cache_dir = tempfile.mkdtemp(prefix="repro-fault-") if incremental else None
    try:
        check_invariant(plan, pipeline=pipeline, incremental=incremental,
                        cache_dir=cache_dir, prebuilds=int(incremental))
    finally:
        if cache_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)


#: The CI fault-injection job's fixed seed matrix: every fault class alone
#: at full strength, plus mixed-rate plans, on both pipelines.
SEED_MATRIX = [
    FaultPlan(seed=101, worker_crash_rate=1.0),
    FaultPlan(seed=102, worker_hang_rate=1.0, hang_seconds=0.4),
    FaultPlan(seed=103, pickle_failure_rate=1.0),
    FaultPlan(seed=104, fork_unavailable=True),
    FaultPlan(seed=105, cache_corrupt_rate=1.0),
    FaultPlan(seed=106, torn_write_rate=1.0),
    FaultPlan(seed=107, worker_crash_rate=0.4, worker_hang_rate=0.2,
              pickle_failure_rate=0.4, cache_corrupt_rate=0.4,
              torn_write_rate=0.4, hang_seconds=0.4),
]


@pytest.mark.parametrize("pipeline", ["wholeprogram", "default"])
@pytest.mark.parametrize("plan", SEED_MATRIX,
                         ids=lambda p: f"seed{p.seed}")
def test_seed_matrix(plan, pipeline, tmp_path):
    cache_faults = plan.cache_corrupt_rate > 0 or plan.torn_write_rate > 0
    outcome = check_invariant(plan, pipeline=pipeline,
                              incremental=cache_faults,
                              cache_dir=str(tmp_path) if cache_faults else None,
                              prebuilds=int(cache_faults))
    # The degradation ladder bottoms out at an in-parent serial re-run, so
    # worker-side faults must never escalate to an error at all.
    if plan.cache_corrupt_rate == 0 and plan.torn_write_rate == 0:
        assert outcome == "bit-identical"


def test_degradations_are_visible_on_the_report():
    plan = FaultPlan(seed=42, worker_crash_rate=1.0)
    config = BuildConfig(pipeline="default", outline_rounds=1, workers=3,
                         fault_plan=plan, chunk_timeout=0.5,
                         max_chunk_retries=1, retry_backoff=0.01)
    result = build_program(SOURCES, config)
    kinds = {e.kind for e in result.report.degradations}
    assert "worker-crash" in kinds
    assert "chunk-serial-rerun" in kinds
    rendered = "\n".join(result.report.summary_lines())
    assert "degraded:" in rendered
