"""Property tests: the suffix tree's repeated-substring enumeration exactly
matches a naive O(n^2) scanner on arbitrary integer sequences."""

from hypothesis import given, settings, strategies as st

from repro.outliner.suffix_tree import SuffixTree, naive_repeated_substrings


@settings(max_examples=300, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=6), min_size=0,
                max_size=80))
def test_matches_naive_scanner(seq):
    tree = SuffixTree(seq)
    got = {
        rs.substring(tree.seq): sorted(rs.starts)
        for rs in tree.repeated_substrings(min_len=1, max_len=100)
    }
    want = {
        key: sorted(starts)
        for key, starts in naive_repeated_substrings(
            seq, min_len=1, max_len=100).items()
    }
    assert got == want


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=3), min_size=2,
                max_size=60))
def test_occurrences_are_real(seq):
    tree = SuffixTree(seq)
    for rs in tree.repeated_substrings(min_len=2):
        sub = rs.substring(tree.seq)
        for start in rs.starts:
            assert tuple(seq[start:start + rs.length]) == sub


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4), min_size=0,
                max_size=60))
def test_min_len_respected(seq):
    tree = SuffixTree(seq)
    for rs in tree.repeated_substrings(min_len=3, max_len=10):
        assert 3 <= rs.length <= 10


def test_highly_repetitive_input():
    seq = [1] * 200
    tree = SuffixTree(seq)
    subs = list(tree.repeated_substrings(min_len=2, max_len=300))
    # every length 2..199 is a repeated substring of 1^200
    lengths = {rs.length for rs in subs}
    assert lengths == set(range(1, 200)) - {1} | ({1} & lengths)


def test_no_repeats_in_distinct_sequence():
    seq = list(range(100))
    tree = SuffixTree(seq)
    assert list(tree.repeated_substrings(min_len=1)) == []
