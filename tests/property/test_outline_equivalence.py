"""Property test: for *random* Swiftlet programs, outlining at any repeat
count, in either pipeline, preserves output exactly and leaks nothing.

A seeded generator produces type-correct programs mixing arithmetic,
control flow, functions, classes (ARC), arrays, closures, and try/catch.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pipeline import BuildConfig


class ProgramGenerator:
    """Generates a deterministic, type-correct random Swiftlet program."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- expressions -----------------------------------------------------

    def int_expr(self, vars_, depth=0):
        rng = self.rng
        choices = ["const", "var", "binop", "binop"]
        if depth > 2:
            choices = ["const", "var"]
        kind = rng.choice(choices if vars_ else ["const"])
        if kind == "const":
            return str(rng.randint(0, 50))
        if kind == "var":
            return rng.choice(vars_)
        op = rng.choice(["+", "-", "*", "%", "&", "|", "^"])
        lhs = self.int_expr(vars_, depth + 1)
        rhs = self.int_expr(vars_, depth + 1)
        if op == "%":
            rhs = str(rng.randint(1, 9))  # avoid div-by-zero traps
        return f"({lhs} {op} {rhs})"

    def bool_expr(self, vars_):
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"({self.int_expr(vars_)} {op} {self.int_expr(vars_)})"

    # -- statements -------------------------------------------------------

    def block(self, readable, mutable, depth, indent):
        """Generate statements; *readable* includes immutable bindings
        (params, loop vars), *mutable* only ``var`` locals."""
        rng = self.rng
        lines = []
        readable = list(readable)
        mutable = list(mutable)
        pad = "    " * indent
        for _ in range(rng.randint(1, 4)):
            kind = rng.choice(["decl", "assign", "accum", "if", "for",
                               "call"] if depth < 2 else
                              ["decl", "assign", "accum"])
            if kind == "decl":
                name = f"v{len(readable)}_{depth}"
                lines.append(f"{pad}var {name} = {self.int_expr(readable)}")
                readable.append(name)
                mutable.append(name)
            elif kind == "assign" and mutable:
                target = rng.choice(mutable)
                lines.append(f"{pad}{target} = {self.int_expr(readable)}")
            elif kind == "accum" and mutable:
                target = rng.choice(mutable)
                lines.append(f"{pad}{target} += {self.int_expr(readable)}")
            elif kind == "if":
                lines.append(f"{pad}if {self.bool_expr(readable)} {{")
                lines.extend(self.block(readable, mutable, depth + 1,
                                        indent + 1))
                if rng.random() < 0.5:
                    lines.append(f"{pad}}} else {{")
                    lines.extend(self.block(readable, mutable, depth + 1,
                                            indent + 1))
                lines.append(f"{pad}}}")
            elif kind == "for":
                loop_var = f"i{depth}_{len(lines)}"
                bound = rng.randint(1, 6)
                lines.append(f"{pad}for {loop_var} in 0..<{bound} {{")
                lines.extend(self.block(readable + [loop_var], mutable,
                                        depth + 1, indent + 1))
                lines.append(f"{pad}}}")
            elif kind == "call" and self.helper_names and mutable:
                helper = rng.choice(self.helper_names)
                target = rng.choice(mutable)
                lines.append(
                    f"{pad}{target} += {helper}"
                    f"(x: {self.int_expr(readable)})")
        return lines

    # -- whole program -----------------------------------------------------

    def generate(self):
        rng = self.rng
        self.helper_names = []
        parts = []
        # A small refcounted class.
        parts.append("""
class Cell {
    var value: Int
    var next: Cell
    init(value: Int) { self.value = value\n self.next = nil }
}
""")
        # Helper functions (callable from later code).
        for h in range(rng.randint(1, 3)):
            name = f"helper{h}"
            body = "\n".join(self.block(["x"], [], 1, 1))
            parts.append(f"func {name}(x: Int) -> Int {{\n{body}\n"
                         f"    return x + {rng.randint(0, 9)}\n}}")
            self.helper_names.append(name)
        # A throwing function.
        threshold = rng.randint(5, 40)
        parts.append(f"""
func risky(x: Int) throws -> Int {{
    if x % 7 == {threshold % 7} {{ throw x + 1 }}
    return x * 2
}}
""")
        # main: exercises arrays, the class, closures, and try/catch.
        main_body = self.block([], [], 0, 1)
        arr_items = ", ".join(str(rng.randint(0, 30))
                              for _ in range(rng.randint(2, 6)))
        closure_k = rng.randint(1, 9)
        chain_n = rng.randint(1, 5)
        main = f"""
func main() {{
{chr(10).join(main_body)}
    var total = 0
    let data = [{arr_items}]
    for d in data {{ total += helper0(x: d) }}
    let head = Cell(value: 1)
    var cur = head
    for i in 0..<{chain_n} {{
        let nxt = Cell(value: total % 13 + i)
        cur.next = nxt
        cur = nxt
    }}
    var walk = head
    while walk != nil {{
        total += walk.value
        walk = walk.next
    }}
    var acc = {rng.randint(0, 5)}
    let fold = {{ (k: Int) -> Int in
        acc += k + {closure_k}
        return acc
    }}
    total += fold(total % 11)
    total += fold(3)
    for i in 0..<6 {{
        do {{
            total += try risky(x: total % 50 + i)
        }} catch {{
            total -= error % 17
        }}
    }}
    print(total)
    print(acc)
}}
"""
        parts.append(main)
        return "\n".join(parts)


CONFIGS = (
    BuildConfig(pipeline="wholeprogram", outline_rounds=0),
    BuildConfig(pipeline="wholeprogram", outline_rounds=2),
    BuildConfig(pipeline="wholeprogram", outline_rounds=5),
    BuildConfig(pipeline="default", outline_rounds=1),
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_random_program_outline_equivalence(build_and_run, seed):
    source = ProgramGenerator(seed).generate()
    reference = None
    for config in CONFIGS:
        _, execution = build_and_run({"Gen": source}, config)
        assert execution.leaked == [], f"seed={seed} leaked"
        if reference is None:
            reference = execution.output
        else:
            assert execution.output == reference, f"seed={seed}"
    assert reference and all(part.lstrip("-").isdigit()
                             for part in reference)
