"""Determinism harness for layout profiles.

Profiles are cache-key ingredients (``BuildConfig.backend_fingerprint``
folds their digest in), so the hard guarantee is byte-identity: the same
program, built and run the same way, must serialize the *same bytes* —

* across worker counts (parallel lowering must not leak into the run);
* across interpreter processes with different ``PYTHONHASHSEED`` (dict
  iteration order, set order, and hash randomization must all be
  canonicalized away by the serializer);
* and re-collecting in the same process must agree with both.
"""

import os
import subprocess
import sys

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pipeline import BuildConfig, build_program, run_build
from repro.sim.profile import ProfileCollector

_SUPPRESS = [HealthCheck.function_scoped_fixture]

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_PROGRAM_TEMPLATE = """
func helper_a(x: Int) -> Int {{
    return x * {m} + {c}
}}
func helper_b(x: Int) -> Int {{
    var t = 0
    for i in 0..<{n} {{ t += helper_a(x: x + i) }}
    return t
}}
func helper_c(x: Int) -> Int {{
    if x % 3 == 0 {{ return helper_a(x: x) }}
    return helper_b(x: x % 20)
}}
func main() {{
    var total = 0
    for i in 0..<{loops} {{ total += helper_c(x: i) }}
    print(total)
}}
"""


def _program(seed: int) -> str:
    return _PROGRAM_TEMPLATE.format(m=seed % 7 + 1, c=seed % 13,
                                    n=seed % 4 + 2, loops=seed % 9 + 4)


def _collect_bytes(source: str, workers: int, rounds: int) -> bytes:
    result = build_program({"Main": source},
                           BuildConfig(outline_rounds=rounds,
                                       workers=workers))
    collector = ProfileCollector()
    run_build(result, profile=collector)
    return collector.finalize(result.image).to_json_bytes()


@settings(max_examples=10, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_profile_bytes_identical_across_worker_counts(seed):
    source = _program(seed)
    serial = _collect_bytes(source, workers=1, rounds=2)
    parallel = _collect_bytes(source, workers=4, rounds=2)
    again = _collect_bytes(source, workers=1, rounds=2)
    assert serial == parallel == again, f"seed={seed}"


_SUBPROCESS_SNIPPET = """
import sys
from repro.pipeline import BuildConfig, build_program, run_build
from repro.sim.profile import ProfileCollector

source = sys.stdin.read()
result = build_program({"Main": source}, BuildConfig(outline_rounds=2))
collector = ProfileCollector()
run_build(result, profile=collector)
sys.stdout.buffer.write(collector.finalize(result.image).to_json_bytes())
"""


def _collect_in_subprocess(source: str, hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    # The CI matrix exports REPRO_TARGET/REPRO_MERGE; inherit them so the
    # subprocess builds the same configuration this process would.
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SNIPPET],
                          input=source.encode("utf-8"),
                          capture_output=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode("utf-8", "replace")
    return proc.stdout


def test_profile_bytes_identical_across_processes():
    """Two fresh interpreters with adversarially different hash seeds
    (dict/set iteration differs everywhere) must serialize byte-identical
    profiles — and agree with an in-process collection."""
    source = _program(12345)
    first = _collect_in_subprocess(source, hash_seed="1")
    second = _collect_in_subprocess(source, hash_seed="4242")
    assert first == second
    assert first == _collect_bytes(source, workers=1, rounds=2)
    assert first.endswith(b"\n") and b'"version"' in first
