"""Determinism harness for the parallel/incremental pipeline.

The hard guarantee behind `BuildConfig.workers`/`incremental` is that they
NEVER change the produced binary: for any program, any worker count and any
cache state must yield byte-identical ``__text``/``__data`` sections, the
same outlining statistics, and identical interpreter output as a cold
serial build.  hypothesis generates random multi-module Swiftlet programs
(classes for type-id numbering, closures for the program-wide closure
counter, imports for cross-module keys — every coupling the cache key must
cover).
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.pipeline import BuildConfig, build_program, run_build


@st.composite
def swiftlet_program(draw):
    """A random two-module program exercising cross-module codegen."""
    nfuncs = draw(st.integers(min_value=1, max_value=3))
    consts = [draw(st.integers(min_value=1, max_value=50))
              for _ in range(nfuncs)]
    lib_parts = [f"let libBias = {draw(st.integers(min_value=0, max_value=9))}"]
    for i, c in enumerate(consts):
        lib_parts.append(
            f"func libF{i}(x: Int) -> Int {{ return x * {c} + libBias }}")
    if draw(st.booleans()):
        nfields = draw(st.integers(min_value=1, max_value=3))
        fields = "\n".join(f"    var f{k}: Int" for k in range(nfields))
        inits = "\n".join(f"        self.f{k} = seed + {k}"
                          for k in range(nfields))
        lib_parts.append(
            f"class LibBox {{\n{fields}\n    init(seed: Int) {{\n{inits}\n"
            f"    }}\n    func total() -> Int {{\n        return "
            + " + ".join(f"self.f{k}" for k in range(nfields))
            + "\n    }\n}")
        use_class = True
    else:
        use_class = False

    main_lines = ["    var acc = 1"]
    for i in range(nfuncs):
        arg = draw(st.integers(min_value=0, max_value=20))
        main_lines.append(f"    acc = acc + libF{i}(x: {arg})")
    if use_class:
        main_lines.append("    let box = LibBox(seed: acc)")
        main_lines.append("    acc = acc + box.total()")
    if draw(st.booleans()):
        step = draw(st.integers(min_value=1, max_value=5))
        main_lines.append(
            f"    let bump = {{ (d: Int) -> Int in return d + {step} }}")
        main_lines.append("    acc = bump(acc)")
    loop_n = draw(st.integers(min_value=0, max_value=4))
    main_lines.append(f"    for i in 0..<{loop_n} {{ acc += i }}")
    main_lines.append("    print(acc)")
    main_src = ("import Lib\n\nfunc main() {\n"
                + "\n".join(main_lines) + "\n}\n")
    return [("Lib", "\n".join(lib_parts)), ("Main", main_src)]


def _fingerprint(result):
    return (result.image.text_section(), result.image.data_section(),
            [(s.round_no, s.sequences_outlined, s.functions_created,
              s.bytes_saved) for s in result.outline_stats])


@st.composite
def _case(draw):
    return (draw(swiftlet_program()),
            draw(st.sampled_from(["wholeprogram", "default"])),
            draw(st.integers(min_value=0, max_value=2)))


@settings(max_examples=12, deadline=None)
@given(_case())
def test_builds_identical_across_workers_and_cache(case):
    sources, pipeline, rounds = case
    cache_dir = tempfile.mkdtemp(prefix="repro-det-")
    try:
        base = BuildConfig(pipeline=pipeline, outline_rounds=rounds)
        serial = build_program(sources, base)
        reference = _fingerprint(serial)

        parallel = build_program(
            sources, BuildConfig(pipeline=pipeline, outline_rounds=rounds,
                                 workers=4))
        assert _fingerprint(parallel) == reference

        cold = build_program(
            sources, BuildConfig(pipeline=pipeline, outline_rounds=rounds,
                                 incremental=True, cache_dir=cache_dir))
        assert _fingerprint(cold) == reference

        warm = build_program(
            sources, BuildConfig(pipeline=pipeline, outline_rounds=rounds,
                                 incremental=True, cache_dir=cache_dir))
        assert warm.report.image_cache_hit
        assert _fingerprint(warm) == reference

        warm_parallel = build_program(
            sources, BuildConfig(pipeline=pipeline, outline_rounds=rounds,
                                 incremental=True, cache_dir=cache_dir,
                                 workers=4))
        assert _fingerprint(warm_parallel) == reference

        outputs = {run_build(build).output[0]
                   for build in (serial, parallel, cold, warm, warm_parallel)}
        assert len(outputs) == 1
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
