"""Differential harness for link-time whole-program stripping.

Hypothesis-generated programs are built with ``strip="off"`` and
``strip="program"`` on both targets and executed in the simulator:

* the two builds must produce identical output and leak nothing;
* padded __text must be monotone non-increasing under stripping;
* functions the program can actually reach — address-taken closures
  (``FuncAddr``-only references, no direct call anywhere) and throwing
  functions called through ``try`` — must never be stripped;
* a crafted program pins the FuncAddr edge explicitly: a function whose
  only reference is a taken address survives and still runs.

The generators deliberately emit *dead* functions (never referenced at
all) so stripping has real work to do, plus call-graph chains so
transitive reachability is exercised, on top of the reachable shapes the
safety rules protect.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pipeline import BuildConfig

TARGETS = ("arm64", "thumb2c")

_SUPPRESS = [HealthCheck.function_scoped_fixture]


class StripProgramGenerator:
    """Random Swiftlet programs with a known live/dead partition.

    ``generate()`` returns ``(source, live, dead)`` where *live* is the
    set of helper names main reaches (directly, transitively, via
    ``try``, or only through a taken closure address) and *dead* the set
    nothing references.
    """

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def _leaf(self, name, p):
        return (f"func {name}(x: Int) -> Int {{\n"
                f"    var t = x * {p['m']} + {p['c']}\n"
                f"    for i in 0..<{p['n']} {{ t += i * {p['k']} }}\n"
                f"    return t\n}}")

    def _chain(self, name, callee, p):
        return (f"func {name}(x: Int) -> Int {{\n"
                f"    return {callee}(x: x + {p['c']}) * {p['m']}\n}}")

    def _throwing(self, name, p):
        return (f"func {name}(x: Int) throws -> Int {{\n"
                f"    if x % 5 == {p['r']} {{ throw x + 3 }}\n"
                f"    return x * {p['m']} + {p['c']}\n}}")

    def _params(self):
        rng = self.rng
        return {"m": rng.randint(1, 9), "c": rng.randint(0, 99),
                "n": rng.randint(1, 4), "k": rng.randint(1, 9),
                "r": rng.randint(0, 4)}

    def generate(self):
        rng = self.rng
        parts, live, dead = [], set(), set()

        # Live chains: main -> chainN -> leafN (transitive reachability).
        chain_roots = []
        for i in range(rng.randint(1, 3)):
            leaf, root = f"leaf{i}", f"chain{i}"
            parts.append(self._leaf(leaf, self._params()))
            parts.append(self._chain(root, leaf, self._params()))
            live.update({leaf, root})
            chain_roots.append(root)

        # Throwing helpers, reached only through try/catch.
        throwers = []
        for i in range(rng.randint(1, 2)):
            name = f"thrower{i}"
            parts.append(self._throwing(name, self._params()))
            live.add(name)
            throwers.append(name)

        # Dead helpers: defined, never referenced anywhere.  Some call
        # each other so whole dead *subgraphs* must go.
        n_dead = rng.randint(1, 4)
        for i in range(n_dead):
            name = f"deadfn{i}"
            parts.append(self._leaf(name, self._params()))
            dead.add(name)
        if n_dead > 1:
            parts.append(self._chain("deadroot", "deadfn0", self._params()))
            dead.add("deadroot")

        lines = ["func main() {", "    var total = 0"]
        for root in chain_roots:
            lines.append(f"    total += {root}(x: {rng.randint(0, 20)})")
        for name in throwers:
            lines.append("    for i in 0..<6 {")
            lines.append(f"        do {{ total += try {name}(x: i) }}")
            lines.append("        catch { total -= error % 13 }")
            lines.append("    }")
        # An address-taken closure: its body is referenced only via a
        # materialized function address (ADRP/ADDlo), never a direct BL.
        a, b = rng.randint(1, 9), rng.randint(0, 9)
        lines.append(f"    let cl = {{ (k: Int) -> Int in "
                     f"return k * {a} + {b} }}")
        lines.append(f"    total += cl({rng.randint(1, 6)})")
        lines.append("    print(total)")
        lines.append("}")
        parts.append("\n".join(lines))
        return "\n\n".join(parts), live, dead


def _names(result):
    return {ext.name for ext in result.image.functions}


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=120, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_strip_preserves_output_and_never_grows_text(build_and_run,
                                                     target, seed):
    source, live, dead = StripProgramGenerator(seed).generate()
    builds = {}
    for mode in ("off", "program"):
        result, execution = build_and_run(
            source, BuildConfig(target=target, global_dce=False,
                                strip=mode))
        assert execution.leaked == [], f"seed={seed} {mode} leaked"
        builds[mode] = (result, execution)

    out_off = builds["off"][1].output
    out_on = builds["program"][1].output
    assert out_off == out_on, f"seed={seed} target={target}"

    text_off = builds["off"][0].image.text_bytes
    text_on = builds["program"][0].image.text_bytes
    assert text_on <= text_off, f"seed={seed}: stripping grew __text"

    names_off, names_on = _names(builds["off"][0]), _names(builds["program"][0])
    assert names_on <= names_off
    qualified_live = {f"Main::{n}" for n in live}
    qualified_dead = {f"Main::{n}" for n in dead}
    # Safety: everything main reaches — including the address-taken
    # closure body and the throwing helpers — survives the strip.
    assert qualified_live <= names_on, \
        f"seed={seed}: live function stripped: {qualified_live - names_on}"
    assert any("closure" in n for n in names_on), \
        f"seed={seed}: address-taken closure body stripped"
    # Effectiveness: nothing unreferenced survives.
    assert not (qualified_dead & names_on), \
        f"seed={seed}: dead function survived: {qualified_dead & names_on}"
    # Report bookkeeping agrees with the image delta.
    report = builds["program"][0].report
    assert report.strip_mode == "program"
    assert report.stripped_functions == len(names_off - names_on)


@pytest.mark.parametrize("target", TARGETS)
def test_funcaddr_only_function_survives(build_and_run, target):
    """The crafted FuncAddr edge: ``pick`` is never called directly —
    its address escapes through a variable — yet it must survive
    stripping and execute."""
    source = """
func pick(x: Int) -> Int { return x * 11 + 5 }
func orphan(x: Int) -> Int { return x - 1 }
func main() {
    let f = { (k: Int) -> Int in return pick(x: k) }
    var total = 0
    for i in 0..<3 { total += f(i) }
    print(total)
}
"""
    result, execution = build_and_run(
        source, BuildConfig(target=target, global_dce=False,
                            strip="program"))
    assert execution.output == ["48"]
    names = _names(result)
    assert "Main::pick" in names
    assert "Main::orphan" not in names
    assert result.report.stripped_functions >= 1


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=20, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_strip_composes_with_outlining_and_merging(build_and_run,
                                                   target, seed):
    """The min-size stack (wholeprogram + outlining + optimistic merge +
    link-time strip) must agree with the plain unstripped build, and
    strip must stay monotone with the rest of the stack active."""
    source, _live, _dead = StripProgramGenerator(seed).generate()
    plain, plain_exec = build_and_run(
        source, BuildConfig(target=target))
    unstripped, unstripped_exec = build_and_run(
        source, BuildConfig.preset("min-size", target=target, strip="off"))
    stripped, stripped_exec = build_and_run(
        source, BuildConfig.preset("min-size", target=target))
    assert (plain_exec.output == unstripped_exec.output
            == stripped_exec.output), f"seed={seed}"
    assert stripped.image.text_bytes <= unstripped.image.text_bytes
