"""Property tests targeting register pressure and spill correctness:
programs with many simultaneously-live values must compute exactly what a
Python oracle computes, across outlining configurations."""

import random

from hypothesis import given, settings, strategies as st

from repro.pipeline import BuildConfig, build_program, run_build


def pressure_program(seed: int, width: int):
    """Builds a program with *width* values live across a call, plus its
    Python-evaluated expected output."""
    rng = random.Random(seed)
    coeffs = [rng.randint(1, 9) for _ in range(width)]
    offsets = [rng.randint(0, 99) for _ in range(width)]
    x = rng.randint(1, 20)
    decls = "\n".join(
        f"    let v{i} = x * {coeffs[i]} + {offsets[i]}"
        for i in range(width))
    uses = " + ".join(f"v{i}" for i in range(width))
    mixer = rng.randint(1, 50)
    source = f"""
func spice() -> Int {{ return {mixer} }}
func pressure(x: Int) -> Int {{
{decls}
    let mid = spice()
    return {uses} + mid
}}
func main() {{ print(pressure(x: {x})) }}
"""
    expected = sum(x * coeffs[i] + offsets[i] for i in range(width)) + mixer
    return source, str(expected)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=4, max_value=40))
def test_pressure_matches_oracle(seed, width):
    source, expected = pressure_program(seed, width)
    for rounds in (0, 3):
        build = build_program({"P": source},
                              BuildConfig(outline_rounds=rounds))
        execution = run_build(build)
        assert execution.output == [expected], (seed, width, rounds)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_wide_pressure_actually_spills(seed):
    source, expected = pressure_program(seed, 36)
    build = build_program({"P": source}, BuildConfig(outline_rounds=0))
    mf = build.machine_modules[0].function("P::pressure")
    assert mf.num_spill_slots > 0, "36 live values must exceed the register file"
    assert run_build(build).output == [expected]
