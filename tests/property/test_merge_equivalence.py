"""Differential harness for function merging (the PR's correctness
backbone): hypothesis-generated programs are built under every
``merge_mode`` and executed in the simulator; every mode must produce
identical output and exit state, and the padded text section must shrink
monotonically off -> exact -> optimistic.

The generator is engineered to contain exactly the redundancy the mergers
chase: clone families differing in zero, one, or several constants,
throwing variants (error-register forwarding through thunks), float
bodies, ARC-heavy class helpers, and near-identical closures
(address-taken function thunks).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pipeline import BuildConfig

TARGETS = ("arm64", "thumb2c")
MERGE_MODES = ("off", "exact", "optimistic")

_SUPPRESS = [HealthCheck.function_scoped_fixture]


class MergeProgramGenerator:
    """Deterministic random Swiftlet programs built around clone families.

    Each family instantiates one body template several times; a clone
    either copies the family's constants exactly (exact-merge fodder) or
    perturbs a subset of them (optimistic-merge fodder).
    """

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- body templates ---------------------------------------------------

    def _arith(self, name, p):
        return (f"func {name}(x: Int) -> Int {{\n"
                f"    var t = x * {p['m']} + {p['c']}\n"
                f"    for i in 0..<{p['n']} {{ t += i * x + {p['k']} }}\n"
                f"    if t > {p['lim']} {{ t -= {p['d']} }}\n"
                f"    return t\n}}")

    def _throwing(self, name, p):
        return (f"func {name}(x: Int) throws -> Int {{\n"
                f"    var t = x * {p['m']} + {p['c']}\n"
                f"    for i in 0..<{p['n']} {{ t += i + {p['k']} }}\n"
                f"    if t % 7 == {p['r']} {{ throw t % 97 + 1 }}\n"
                f"    return t - {p['d']}\n}}")

    def _floaty(self, name, p):
        return (f"func {name}(a: Double) -> Double {{\n"
                f"    var t = a * {p['m']}.5 + {p['c']}.25\n"
                f"    t = t / 2.0 + {p['k']}.125\n"
                f"    return t\n}}")

    def _classy(self, name, p):
        return (f"func {name}(x: Int) -> Int {{\n"
                f"    let b = Box(value: x + {p['c']})\n"
                f"    var t = {p['m']}\n"
                f"    for i in 0..<{p['n']} {{ t += b.value + i * {p['k']} }}\n"
                f"    return t\n}}")

    _TEMPLATES = (
        ("a", _arith, ("m", "c", "k", "d")),
        ("t", _throwing, ("m", "c", "k", "r", "d")),
        ("f", _floaty, ("m", "c", "k")),
        ("b", _classy, ("m", "c", "k")),
    )

    def _params(self):
        rng = self.rng
        return {"m": rng.randint(1, 9), "c": rng.randint(0, 99),
                "n": rng.randint(1, 5), "k": rng.randint(0, 9),
                "lim": rng.randint(20, 200), "d": rng.randint(1, 40),
                "r": rng.randint(0, 6)}

    def generate(self) -> str:
        rng = self.rng
        parts = ["class Box {\n    var value: Int\n"
                 "    init(value: Int) { self.value = value }\n}"]
        int_helpers, throw_helpers, float_helpers = [], [], []
        for fam in range(rng.randint(1, 3)):
            tag, template, variable = rng.choice(self._TEMPLATES)
            base = self._params()
            for clone in range(rng.randint(2, 3)):
                params = dict(base)
                if rng.random() < 0.6:  # perturb: optimistic fodder
                    for key in rng.sample(variable,
                                          rng.randint(1, len(variable))):
                        params[key] = rng.randint(0, 99)
                name = f"{tag}{fam}_{clone}"
                parts.append(template(self, name, params))
                {"a": int_helpers, "b": int_helpers,
                 "t": throw_helpers, "f": float_helpers}[tag].append(name)

        lines = ["func main() {", "    var total = 0"]
        for name in int_helpers:
            for _ in range(rng.randint(1, 2)):
                lines.append(f"    total += {name}(x: {rng.randint(0, 30)})")
        for name in throw_helpers:
            lines.append(f"    for i in 0..<4 {{")
            lines.append(f"        do {{ total += try {name}(x: i * "
                         f"{rng.randint(1, 5)}) }}")
            lines.append(f"        catch {{ total -= error % 19 }}")
            lines.append(f"    }}")
        if float_helpers:
            lines.append("    var facc = 0.0")
            for name in float_helpers:
                lines.append(f"    facc += {name}(a: {rng.randint(0, 9)}.5)")
            lines.append("    print(facc)")
        # Two near-identical closures: their compiler-generated thunks are
        # address-taken, so only thunk-based merging may touch them.
        a, b, c = (rng.randint(1, 9) for _ in range(3))
        lines.append(f"    let c1 = {{ (k: Int) -> Int in "
                     f"return k * {a} + {b} }}")
        lines.append(f"    let c2 = {{ (k: Int) -> Int in "
                     f"return k * {a} + {c} }}")
        lines.append("    total += c1(3) + c2(4)")
        lines.append("    print(total)")
        lines.append("}")
        parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _run_modes(build_and_run, source, target, configs):
    """Build+run one program under several configs; return results."""
    out = {}
    for label, kwargs in configs.items():
        result, execution = build_and_run(
            source, BuildConfig(target=target, **kwargs))
        assert execution.leaked == [], f"{label} leaked on {target}"
        out[label] = (result, execution)
    return out


# -- the tentpole property: all modes agree, text shrinks monotonically -------


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=200, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_merge_modes_agree_and_text_is_monotone(build_and_run, target, seed):
    source = MergeProgramGenerator(seed).generate()
    results = _run_modes(
        build_and_run, source, target,
        {mode: dict(outline_rounds=0, merge_mode=mode)
         for mode in MERGE_MODES})
    outputs = {mode: execution.output
               for mode, (_, execution) in results.items()}
    assert outputs["off"] == outputs["exact"] == outputs["optimistic"], \
        f"seed={seed} target={target}: {outputs}"
    text = {mode: result.sizes.text_bytes
            for mode, (result, _) in results.items()}
    assert text["optimistic"] <= text["exact"] <= text["off"], \
        f"seed={seed} target={target}: padded text grew: {text}"


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=15, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_merge_stacked_with_outliner_preserves_output(build_and_run,
                                                      target, seed):
    """Merging composed with repeated outlining (and the per-module
    pipeline) must still agree with the unmerged program."""
    source = MergeProgramGenerator(seed).generate()
    reference = None
    for pipeline, rounds in (("wholeprogram", 5), ("default", 1)):
        results = _run_modes(
            build_and_run, source, target,
            {mode: dict(pipeline=pipeline, outline_rounds=rounds,
                        merge_mode=mode)
             for mode in MERGE_MODES})
        for mode, (_, execution) in results.items():
            if reference is None:
                reference = execution.output
            assert execution.output == reference, \
                f"seed={seed} target={target} {pipeline}/{mode}"


def test_harness_is_not_vacuous(build_and_run):
    """A known-merge-friendly program must actually exercise both merge
    phases — otherwise every property above passes trivially."""
    source = """
func f1(x: Int) -> Int {
    var t = x * 3 + 10
    for i in 0..<4 { t += i * x + 7 }
    if t > 100 { t -= 55 }
    return t
}
func f2(x: Int) -> Int {
    var t = x * 3 + 99
    for i in 0..<4 { t += i * x + 7 }
    if t > 100 { t -= 55 }
    return t
}
func f3(x: Int) -> Int {
    var t = x * 3 + 42
    for i in 0..<4 { t += i * x + 7 }
    if t > 100 { t -= 55 }
    return t
}
func dup1(x: Int) -> Int { return x * x + 1 }
func dup2(x: Int) -> Int { return x * x + 1 }
func main() {
    print(f1(x: 5) + f2(x: 5) + f3(x: 5))
    print(dup1(x: 3) + dup2(x: 4))
}
"""
    result, execution = build_and_run(
        source, BuildConfig(outline_rounds=0, merge_mode="optimistic"))
    stats = result.report.merge_stats
    assert stats["exact_merged"] >= 1, stats
    assert stats["parameterized_merged"] >= 3, stats
    assert stats["thunks_created"] >= 3, stats
    assert stats["bytes_saved"] > 0, stats
    plain, plain_exec = build_and_run(
        source, BuildConfig(outline_rounds=0, merge_mode="off"))
    assert execution.output == plain_exec.output
    assert result.sizes.text_bytes < plain.sizes.text_bytes


# -- satellite: the legacy Table I passes under the same sim oracle -----------


@settings(max_examples=40, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_legacy_exact_passes_preserve_output(build_and_run, seed):
    """`enable_merge_functions`/`enable_fmsa` (the Table I baselines) get
    the same differential treatment as the new merge_mode stage, not just
    structural unit checks."""
    source = MergeProgramGenerator(seed).generate()
    _, base = build_and_run(
        source, BuildConfig(outline_rounds=0, merge_mode="off"))
    _, merged = build_and_run(
        source, BuildConfig(outline_rounds=0, merge_mode="off",
                            enable_merge_functions=True, enable_fmsa=True))
    assert merged.output == base.output
    assert merged.leaked == []
