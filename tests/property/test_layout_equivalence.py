"""Differential harness for profile-guided function layout (this PR's
correctness backbone): hypothesis-generated call-graph-rich programs are
built under every ``layout`` mode on both targets and executed in the
simulator.  Function layout is pure physics — it may move code, never
change it — so every mode must produce:

* identical program output and no leaks;
* an identical *set* of text symbols (addresses are allowed — expected —
  to differ);
* an image that passes the post-link structural verifier.

A second property closes the loop the subsystem ships for: a profile
collected from the ``source``-layout run feeds ``callgraph-c3`` and the
relinked program must still agree — the profile round-trips through its
serialized form on the way, so the file format is under test too.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import LinkError
from repro.link.verify import verify_image
from repro.pipeline import BuildConfig
from repro.sim.profile import LayoutProfile, ProfileCollector
from repro.sim.cpu import run_binary

import random

TARGETS = ("arm64", "thumb2c")
LAYOUTS = ("source", "callgraph-c3", "random")

_SUPPRESS = [HealthCheck.function_scoped_fixture]


class LayoutProgramGenerator:
    """Deterministic random Swiftlet programs with deep, skewed call graphs.

    Layout only matters when control transfers cross function boundaries,
    so the generator builds layered helper chains (layer N calls layer
    N+1), gives each function loops and conditionals (taken-branch
    profile fodder), and skews call counts so C3 has hot edges to chase.
    """

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def generate(self) -> str:
        rng = self.rng
        layers = rng.randint(2, 4)
        width = rng.randint(2, 3)
        names = [[f"fn_{layer}_{i}" for i in range(width)]
                 for layer in range(layers)]
        parts = []
        # Leaf layer: pure arithmetic.
        for name in names[-1]:
            m, c = rng.randint(1, 9), rng.randint(0, 99)
            parts.append(
                f"func {name}(x: Int) -> Int {{\n"
                f"    var t = x * {m} + {c}\n"
                f"    if t % 2 == 0 {{ t += {rng.randint(1, 9)} }}\n"
                f"    return t\n}}")
        # Inner layers: call 1..width functions of the next layer, with
        # skewed (loop-carried) call counts.
        for layer in range(layers - 2, -1, -1):
            for name in names[layer]:
                callees = rng.sample(names[layer + 1],
                                     rng.randint(1, width))
                body = [f"func {name}(x: Int) -> Int {{",
                        "    var t = x"]
                for callee in callees:
                    reps = rng.choice((1, 1, 2, rng.randint(3, 8)))
                    body.append(f"    for i in 0..<{reps} "
                                f"{{ t += {callee}(x: t % 50 + i) }}")
                if rng.random() < 0.5:
                    body.append(f"    if t > {rng.randint(50, 500)} "
                                f"{{ t = t % 1000 }}")
                body.append("    return t")
                body.append("}")
                parts.append("\n".join(body))
        entries = rng.sample(names[0], rng.randint(1, len(names[0])))
        main = ["func main() {", "    var total = 0"]
        for name in entries:
            main.append(f"    total += {name}(x: {rng.randint(0, 20)})")
        main.append("    print(total)")
        main.append("}")
        parts.append("\n".join(main))
        return "\n\n".join(parts)


def _text_symbols(result):
    return {fx.name for fx in result.image.functions}


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=30, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_all_layout_modes_preserve_semantics(build_and_run, target, seed):
    """source / callgraph-c3 (static census) / random: same output, same
    symbol set, verifier-clean image — on both targets, with the outliner
    on so outlined functions get shuffled too."""
    source = LayoutProgramGenerator(seed).generate()
    reference_output = None
    reference_symbols = None
    for layout in LAYOUTS:
        result, execution = build_and_run(
            source, BuildConfig(target=target, outline_rounds=3,
                                layout=layout, layout_seed=seed % 1000))
        assert execution.leaked == [], f"{layout} leaked on {target}"
        verify_image(result.image, target)
        if reference_output is None:
            reference_output = execution.output
            reference_symbols = _text_symbols(result)
            continue
        assert execution.output == reference_output, \
            f"seed={seed} target={target} layout={layout}"
        assert _text_symbols(result) == reference_symbols, \
            f"seed={seed} target={target} layout={layout}: symbol set changed"


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=10, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9))
def test_profile_driven_c3_preserves_semantics(build_and_run, tmp_path,
                                               target, seed):
    """The shipping loop: profile the source-layout run, round-trip the
    profile through its serialized form, relink under callgraph-c3 with
    it, and the program must not notice."""
    source = LayoutProgramGenerator(seed).generate()
    base_result, base_exec = build_and_run(
        source, BuildConfig(target=target, outline_rounds=3))
    collector = ProfileCollector()
    run_binary(base_result.image, registry=base_result.registry,
               profile=collector)
    profile = collector.finalize(base_result.image)
    path = os.path.join(str(tmp_path), f"p{seed}.json")
    digest = profile.save(path)
    assert LayoutProfile.load(path).digest() == digest

    c3_result, c3_exec = build_and_run(
        source, BuildConfig(target=target, outline_rounds=3,
                            layout="callgraph-c3", profile_path=path))
    verify_image(c3_result.image, target)
    assert c3_exec.output == base_exec.output, f"seed={seed} target={target}"
    assert c3_exec.leaked == []
    assert _text_symbols(c3_result) == _text_symbols(base_result)


@pytest.mark.parametrize("target", TARGETS)
@settings(max_examples=10, deadline=None, suppress_health_check=_SUPPRESS)
@given(seed=st.integers(min_value=0, max_value=10 ** 9),
       seed_a=st.integers(min_value=0, max_value=10 ** 6),
       seed_b=st.integers(min_value=0, max_value=10 ** 6))
def test_random_layout_seeds_agree(build_and_run, target, seed,
                                   seed_a, seed_b):
    """Any two random-layout seeds are semantically interchangeable (and
    distinct seeds genuinely shuffle — checked when orders differ)."""
    source = LayoutProgramGenerator(seed).generate()
    out = {}
    for s in {seed_a, seed_b}:
        result, execution = build_and_run(
            source, BuildConfig(target=target, layout="random",
                                layout_seed=s))
        verify_image(result.image, target)
        out[s] = execution.output
    assert len(set(map(tuple, out.values()))) == 1, \
        f"seed={seed} target={target}: random seeds disagree"


def test_harness_is_not_vacuous(build_and_run):
    """C3 with a skewed static call graph must actually move functions —
    otherwise every equivalence above is trivially true."""
    source = LayoutProgramGenerator(7).generate()
    base, _ = build_and_run(source, BuildConfig(outline_rounds=0))
    moved, _ = build_and_run(
        source, BuildConfig(outline_rounds=0, layout="random",
                            layout_seed=3))
    base_order = [fx.name for fx in base.image.functions]
    moved_order = [fx.name for fx in moved.image.functions]
    assert sorted(base_order) == sorted(moved_order)
    assert base_order != moved_order, "random layout did not move anything"
