"""Differential harness for the incremental outliner.

The multi-round outliner can reuse one :class:`OutlineIndex` (persistent
instruction mapper + online suffix tree, dirty blocks re-appended) across
rounds instead of rebuilding from scratch.  The contract is bit-identity:
same outlined functions, same rewritten bodies, same per-round stats as
the fresh-per-round path.  These tests pin it, at both layers:

* :class:`SuffixTree` — appending a sequence in arbitrary splits via
  ``extend`` yields the same repeated-substring enumeration as the
  one-shot constructor, and ``live_repeated_substrings`` over a partially
  dead history matches a fresh tree over the live text alone;
* whole pipeline — incremental vs fresh outlining of generated apps and
  of random LIR programs produce identical machine code.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.outliner.repeated import repeated_outline_functions
from repro.outliner.suffix_tree import _END_SYMBOL_BASE, SuffixTree
from repro.pipeline import BuildConfig, build_program
from repro.workloads.appgen import AppSpec, generate_app


# -- suffix-tree layer --------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.data(),
       st.lists(st.integers(min_value=1, max_value=5), min_size=0,
                max_size=80))
def test_split_extends_match_one_shot(data, seq):
    """SuffixTree(seq) == extend() called with arbitrary splits of seq."""
    tree = SuffixTree()
    i = 0
    while i < len(seq):
        step = data.draw(st.integers(min_value=1, max_value=len(seq) - i))
        tree.extend(seq[i:i + step])
        i += step
    tree.extend((_END_SYMBOL_BASE,))
    want = {rs.substring(SuffixTree(seq).seq): sorted(rs.starts)
            for rs in SuffixTree(seq).repeated_substrings(min_len=1)}
    got = {rs.substring(tree.seq): sorted(rs.starts)
           for rs in tree.repeated_substrings(min_len=1)}
    assert got == want


@settings(max_examples=200, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                         max_size=10), min_size=1, max_size=10),
       st.data())
def test_live_enumeration_matches_fresh_tree(segments, data):
    """Dead segments never contribute substrings; live ones all do.

    History = segments separated by unique sentinels (the OutlineIndex
    encoding); killing a subset and enumerating live repeats must match a
    fresh tree built over only the live segments (same sentinel scheme).
    """
    alive = [data.draw(st.booleans()) for _ in segments]
    sentinel = -2  # unique, decreasing — never repeats, never matches END
    history, live = [], []
    fresh_seq = []
    for keep, seg in zip(alive, segments):
        history.extend(seg)
        live.extend([1 if keep else 0] * len(seg))
        history.append(sentinel)
        live.append(0)
        if keep:
            fresh_seq.extend(seg)
            fresh_seq.append(sentinel)
        sentinel -= 1
    live_tree = SuffixTree(history)
    fresh_tree = SuffixTree(fresh_seq)

    got = {}
    for rs in live_tree.live_repeated_substrings(bytearray(live),
                                                 min_len=2):
        sub = tuple(live_tree.seq[rs.starts[0]:rs.starts[0] + rs.length])
        got[sub] = len(rs.starts)
    want = {}
    for rs in fresh_tree.repeated_substrings(min_len=2):
        sub = tuple(fresh_tree.seq[rs.starts[0]:rs.starts[0] + rs.length])
        want[sub] = len(rs.starts)
    assert got == want


# -- pipeline layer -----------------------------------------------------------

def _outline_both_ways(result):
    """Run fresh and incremental multi-round outlining over copies of the
    same machine functions; return both (functions, stats) pairs."""
    out = {}
    for incremental in (False, True):
        functions = copy.deepcopy(
            [fn for m in result.machine_modules for fn in m.functions])
        stats = repeated_outline_functions(functions, rounds=5,
                                           incremental=incremental)
        out[incremental] = (functions, stats)
    return out[False], out[True]


def _render_all(functions):
    return [fn.render() for fn in functions]


def test_incremental_outlining_is_bit_identical():
    spec = AppSpec(base_features=6, num_vendors=3, base_handlers=4)
    result = build_program(generate_app(spec),
                           BuildConfig(pipeline="default", outline_rounds=0))
    (fresh_fns, fresh_stats), (inc_fns, inc_stats) = _outline_both_ways(
        result)
    assert _render_all(fresh_fns) == _render_all(inc_fns)
    assert ([(s.round_no, s.sequences_outlined, s.functions_created,
              s.bytes_saved) for s in fresh_stats]
            == [(s.round_no, s.sequences_outlined, s.functions_created,
                 s.bytes_saved) for s in inc_stats])
    # Multi-round outlining on this corpus actually outlines something —
    # the equivalence above is not vacuous.
    assert any(s.functions_created for s in fresh_stats)


def test_default_multi_round_build_matches_forced_fresh():
    """The wholeprogram pipeline (incremental by default for rounds > 1)
    equals a build with the index disabled."""
    spec = AppSpec(base_features=4, num_vendors=2, base_handlers=3)
    sources = generate_app(spec)
    import repro.outliner.repeated as repeated_mod

    a = build_program(sources, BuildConfig(outline_rounds=5))
    original = repeated_mod.repeated_outline_functions

    def forced_fresh(functions, rounds=5, collect_stats=True,
                     name_counter=None, name_prefix="", target=None,
                     incremental=None):
        return original(functions, rounds, collect_stats, name_counter,
                        name_prefix, target, incremental=False)

    repeated_mod.repeated_outline_functions = forced_fresh
    try:
        b = build_program(sources, BuildConfig(outline_rounds=5))
    finally:
        repeated_mod.repeated_outline_functions = original
    assert a.image.text_section() == b.image.text_section()
