"""Chaos harness for the build daemon (the service-level counterpart of
test_fault_tolerance.py).

The invariant, extended to service scope: under ANY injected combination
of worker crashes, cache corruption, torn journal appends, forced
deadline expiry, drain-mid-job, client disconnects, and a ``kill -9`` of
the daemon itself, every submitted job ends in exactly one of two states
— an image **bit-identical** to the fault-free build, or a **typed**
:class:`~repro.errors.ReproError` delivered to the client.  Never a hang,
never a partial image, never a silently different binary.  A restarted
daemon must recover every journaled job.

The CI ``service-chaos`` job runs this file on a fixed seed matrix plus
the subprocess kill-and-restart smoke."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import errors as errors_mod
from repro.errors import ProtocolError, QueueFullError, ReproError
from repro.pipeline import BuildConfig, build_program
from repro.pipeline.faults import FaultPlan
from repro.service import BuildService, ServiceClient, ServiceConfig
from repro.service.protocol import config_from_wire, image_summary
from repro.workloads.appgen import AppSpec, generate_app

SOURCES = {
    "Lib": """
func fa(x: Int) -> Int { return x * 2 + 1 }
func fb(x: Int) -> Int { return x * 2 + 2 }
""",
    "Main": """
import Lib
func main() {
    var v = 0
    for i in 0..<4 { v += fa(x: i) + fb(x: i) }
    print(v)
}
""",
}

WIRE_CONFIG = {"outline_rounds": 1}

#: A deliberately slow job (~1s serial) to hold an executor busy while
#: the harness races admissions or kills the daemon mid-build.
BLOCKER = generate_app(AppSpec(base_features=20, seed=3))


def _reference_sha(sources):
    result = build_program(dict(sources), config_from_wire(WIRE_CONFIG))
    return image_summary(result.image)["text_sha256"]


REFERENCE_SHA = _reference_sha(SOURCES)


def _service_config(tmp_path, **kw):
    kw.setdefault("job_workers", 2)
    kw.setdefault("build_workers", 2)
    kw.setdefault("queue_size", 32)
    kw.setdefault("default_deadline", 60.0)
    kw.setdefault("chunk_timeout", 5.0)
    return ServiceConfig(state_dir=str(tmp_path / "state"), **kw)


def _assert_typed(error_payload):
    """The wire error names a ReproError subclass (the typed contract)."""
    name = error_payload.get("error")
    cls = getattr(errors_mod, name, None)
    assert isinstance(cls, type) and issubclass(cls, ReproError), (
        f"untyped error escaped to the client: {error_payload}")


def _assert_job_invariant(job):
    """Terminal state is bit-identical output or a typed error."""
    assert job.status in ("ok", "error"), f"job left hanging: {job.status}"
    if job.status == "ok":
        assert job.image["text_sha256"] == REFERENCE_SHA, (
            "injected faults changed the produced binary")
    else:
        _assert_typed(job.error)


CHAOS_PLANS = [
    {"worker_crash_rate": 0.5},
    {"worker_crash_rate": 1.0},
    {"cache_corrupt_rate": 0.5},
    {"torn_write_rate": 0.5},
    {"journal_torn_rate": 0.5},
    {"deadline_expire_rate": 0.5},
    {"sigterm_midphase_rate": 0.5},
    {"worker_crash_rate": 0.3, "cache_corrupt_rate": 0.3,
     "journal_torn_rate": 0.3, "deadline_expire_rate": 0.3},
]


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize(
        "rates", CHAOS_PLANS,
        ids=["-".join(k.replace("_rate", "") for k in p) for p in CHAOS_PLANS])
    def test_every_job_bit_identical_or_typed(self, tmp_path, seed, rates):
        plan = FaultPlan(seed=seed, **rates)
        service = BuildService(_service_config(tmp_path, fault_plan=plan))
        service.start()
        jobs = []
        rejections = 0
        try:
            for i in range(4):
                try:
                    jobs.append(service.submit_job(
                        dict(SOURCES), WIRE_CONFIG, job_id=f"chaos-{i}"))
                except ReproError:
                    rejections += 1  # typed admission rejection (e.g. drain)
            for job in jobs:
                assert job.done.wait(timeout=120.0), (
                    f"job {job.job_id} hung under plan {rates} seed {seed}")
                _assert_job_invariant(job)
            assert len(jobs) + rejections == 4
        finally:
            service.close()

    @pytest.mark.parametrize("seed", [11, 12])
    def test_chaos_then_clean_service_still_converges(self, tmp_path, seed):
        """After a chaotic run the *same state dir* (journal + cache) must
        serve a clean daemon that produces the reference image."""
        plan = FaultPlan(seed=seed, worker_crash_rate=0.7,
                         cache_corrupt_rate=0.7, journal_torn_rate=0.5)
        chaotic = BuildService(_service_config(tmp_path, fault_plan=plan))
        chaotic.start()
        try:
            for i in range(3):
                job = chaotic.submit_job(dict(SOURCES), WIRE_CONFIG,
                                         job_id=f"dirty-{i}")
                assert job.done.wait(timeout=120.0)
                _assert_job_invariant(job)
        finally:
            chaotic.close()

        clean = BuildService(_service_config(tmp_path))
        clean.start()
        try:
            job = clean.submit_job(dict(SOURCES), WIRE_CONFIG)
            assert job.done.wait(timeout=120.0)
            assert job.status == "ok"
            assert job.image["text_sha256"] == REFERENCE_SHA
        finally:
            clean.close()


class TestConcurrentBackpressure:
    def test_ten_clients_against_a_bounded_queue(self, tmp_path):
        """N=10 concurrent wire clients against queue_size=2 with a busy
        executor: every client gets either a finished bit-identical build
        or a typed QueueFullError — nobody hangs, nobody gets garbage."""
        service = BuildService(_service_config(
            tmp_path, job_workers=1, build_workers=1, queue_size=2))
        service.start()
        host, port = service.start_server()
        outcomes = [None] * 10
        try:
            blocker_client = ServiceClient(host=host, port=port, timeout=120,
                                           auth_token=service.auth_token)
            blocker_client.submit(BLOCKER, WIRE_CONFIG, wait=False,
                                  job_id="blocker")

            def _submit(i):
                client = ServiceClient(host=host, port=port, timeout=120,
                                       auth_token=service.auth_token)
                try:
                    outcomes[i] = client.submit(
                        dict(SOURCES), WIRE_CONFIG, job_id=f"rush-{i}")
                except ReproError as exc:
                    outcomes[i] = exc
                except Exception as exc:  # pragma: no cover - the bug
                    outcomes[i] = AssertionError(
                        f"untyped client failure: {type(exc).__name__}: "
                        f"{exc}")

            threads = [threading.Thread(target=_submit, args=(i,))
                       for i in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not any(t.is_alive() for t in threads), "a client hung"

            rejected = [o for o in outcomes
                        if isinstance(o, QueueFullError)]
            finished = [o for o in outcomes if not isinstance(o, Exception)]
            untyped = [o for o in outcomes if isinstance(o, Exception)
                       and not isinstance(o, ReproError)]
            assert untyped == []
            # The executor was busy with the blocker and the queue holds
            # two: at most 2 of the 10 can be admitted, ≥8 are rejected
            # with typed backpressure carrying depth/limit.
            assert len(rejected) >= 8
            for exc in rejected:
                assert exc.limit == 2
                assert exc.depth >= 0
            for outcome in finished:
                assert outcome.status == "ok"
                assert outcome.image["text_sha256"] == REFERENCE_SHA
            counters = service.metrics.counters
            assert counters["service.rejected_queue_full"] >= 8
        finally:
            service.close()


class TestClientDisconnect:
    def test_dropped_reply_is_typed_and_job_survives(self, tmp_path):
        """The daemon drops the response mid-stream (injected): the client
        sees a typed ProtocolError, and the job itself still runs to a
        bit-identical completion, queryable afterwards."""
        plan = FaultPlan(client_disconnect_rate=1.0)
        service = BuildService(_service_config(tmp_path, fault_plan=plan))
        service.start()
        host, port = service.start_server()
        try:
            client = ServiceClient(host=host, port=port, timeout=30,
                                   auth_token=service.auth_token)
            with pytest.raises(ProtocolError):
                client.submit(dict(SOURCES), WIRE_CONFIG, job_id="dropped")
            job = service.job("dropped")
            assert job.done.wait(timeout=60.0)
            assert job.status == "ok"
            assert job.image["text_sha256"] == REFERENCE_SHA
            assert service.metrics.counters["service.client_disconnects"] >= 1
        finally:
            service.close()

    def test_client_hangup_mid_wait_leaves_job_intact(self, tmp_path):
        """The *client* vanishes while the daemon is mid-build: the send
        fails server-side, is counted, and the finished job stays
        queryable with the right bits."""
        service = BuildService(_service_config(tmp_path))
        service.start()
        host, port = service.start_server()
        try:
            client = ServiceClient(host=host, port=port, timeout=30,
                                   auth_token=service.auth_token)
            job_id = client.submit_abandoned(dict(SOURCES), WIRE_CONFIG)
            # The frame is in flight: wait for the daemon to admit it.
            deadline = time.monotonic() + 30
            while True:
                try:
                    job = service.job(job_id)
                    break
                except ReproError:
                    assert time.monotonic() < deadline, "submit never landed"
                    time.sleep(0.02)
            assert job.done.wait(timeout=60.0)
            assert job.status == "ok"
            outcome = client.query(job_id)
            assert outcome.image["text_sha256"] == REFERENCE_SHA
        finally:
            service.close()


def _repo_src():
    return str(Path(__file__).resolve().parents[2] / "src")


def _spawn_daemon(state_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_src()
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir",
         str(state_dir), "--job-workers", "1", "--build-workers", "1",
         *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def _wait_for_endpoint(state_dir, proc, timeout=60.0):
    endpoint = Path(state_dir) / "endpoint.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early: {proc.stdout.read()}")
        if endpoint.exists():
            try:
                data = json.loads(endpoint.read_text())
                if data.get("pid") == proc.pid:
                    return data["host"], int(data["port"])
            except (ValueError, KeyError):
                pass  # mid-write
        time.sleep(0.05)
    raise AssertionError("daemon never wrote its endpoint file")


class TestKillAndRestart:
    def test_kill_dash_nine_then_restart_recovers_every_job(self, tmp_path):
        """The headline crash-recovery drill: jobs in flight, daemon gets
        SIGKILL, a fresh daemon on the same state dir re-runs/serves every
        journaled job, all bit-identical."""
        state_dir = tmp_path / "state"
        daemon = _spawn_daemon(state_dir)
        try:
            _wait_for_endpoint(state_dir, daemon)
            client = ServiceClient(state_dir=str(state_dir), timeout=60)
            # A slow blocker plus fast followers, none awaited: the kill
            # lands while the blocker is mid-build and the rest queued.
            client.submit(BLOCKER, WIRE_CONFIG, wait=False, job_id="slow")
            for i in range(2):
                client.submit(dict(SOURCES), WIRE_CONFIG, wait=False,
                              job_id=f"fast-{i}")
        finally:
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)

        # The journal survived the kill with all three submits.
        journal = (state_dir / "journal.jsonl").read_bytes()
        submitted = {json.loads(line)["id"]
                     for line in journal.splitlines()
                     if line.strip() and b'"rec":"submit"' in line}
        assert submitted == {"slow", "fast-0", "fast-1"}

        restarted = _spawn_daemon(state_dir)
        try:
            _wait_for_endpoint(state_dir, restarted)
            client = ServiceClient(state_dir=str(state_dir), timeout=60)
            expected = {"slow": _reference_sha(BLOCKER),
                        "fast-0": REFERENCE_SHA, "fast-1": REFERENCE_SHA}
            deadline = time.monotonic() + 180
            for job_id, want_sha in expected.items():
                while True:
                    outcome = client.query(job_id)
                    if outcome.status in ("ok", "error"):
                        break
                    assert time.monotonic() < deadline, (
                        f"recovered job {job_id} never finished")
                    time.sleep(0.2)
                assert outcome.status == "ok", outcome
                assert outcome.image["text_sha256"] == want_sha
            summary = client.drain()
            assert summary["jobs_error"] == 0
            restarted.wait(timeout=60)
            assert restarted.returncode == 0
        finally:
            if restarted.poll() is None:
                restarted.kill()
                restarted.wait(timeout=30)

    def test_kill_during_journal_churn_never_loses_completed_work(
            self, tmp_path):
        """Warm-cache scenario: finish a job, kill the daemon, restart —
        the finished result is served from the journal without a rebuild,
        and a resubmission of the same program is a warm image-cache hit."""
        state_dir = tmp_path / "state"
        daemon = _spawn_daemon(state_dir)
        try:
            _wait_for_endpoint(state_dir, daemon)
            client = ServiceClient(state_dir=str(state_dir), timeout=120)
            first = client.submit(dict(SOURCES), WIRE_CONFIG, job_id="keep")
            assert first.status == "ok"
            assert first.image["text_sha256"] == REFERENCE_SHA
        finally:
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)

        restarted = _spawn_daemon(state_dir)
        try:
            _wait_for_endpoint(state_dir, restarted)
            client = ServiceClient(state_dir=str(state_dir), timeout=120)
            served = client.query("keep")
            assert served.status == "ok"
            assert served.recovered is True
            assert served.image["text_sha256"] == REFERENCE_SHA
            # Same program again: the shared cache survived the kill too.
            again = client.submit(dict(SOURCES), WIRE_CONFIG)
            assert again.status == "ok"
            assert again.report is not None
            assert again.report.image_cache_hit is True
            client.drain()
            restarted.wait(timeout=60)
            assert restarted.returncode == 0
        finally:
            if restarted.poll() is None:
                restarted.kill()
                restarted.wait(timeout=30)
