"""Regenerate the golden image fixtures (``golden_<target>.json``).

One file per target, each pinning every configuration in
:data:`GOLDEN_CONFIGS` bit-identically.  ``merge_mode`` is pinned "off"
in every case: the goldens define the pre-merge baseline, and a leaking
``REPRO_MERGE`` environment variable must never be able to change them
silently.

This module is also the single source of truth the cross-target tests
load (by path) for the app spec, the pinned configs, and the observation
schema — so the tests and the regeneration script can never drift apart.

Usage::

    PYTHONPATH=src python tests/fixtures/make_golden.py [target ...]

With no arguments both targets are regenerated.  Only run this when a
golden change is *intentional*; commit the diff with an explanation.
"""

import hashlib
import json
import os
import sys

from repro.pipeline import BuildConfig, build_program
from repro.workloads.appgen import AppSpec, generate_app

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))

GOLDEN_TARGETS = ("arm64", "thumb2c")

#: The app every golden image is built from.
APP_SPEC = AppSpec(seed=11, base_features=4, num_vendors=2)

#: merge_mode="off" is part of the pin, not a default to be inherited.
GOLDEN_CONFIGS = {
    "app-default-r3": dict(pipeline="default", outline_rounds=3,
                           merge_mode="off"),
    "app-nearcallers-r5": dict(outline_rounds=5,
                               outlined_layout="near-callers",
                               merge_mode="off"),
    "app-wholeprogram-r0": dict(outline_rounds=0, merge_mode="off"),
    "app-wholeprogram-r5": dict(outline_rounds=5, merge_mode="off"),
}

#: Every field a golden case records, in reporting order.
GOLDEN_FIELDS = ("text_sha256", "data_sha256", "text_bytes", "data_bytes",
                 "binary_bytes", "num_instrs", "num_functions")


def golden_path(target: str) -> str:
    return os.path.join(FIXTURE_DIR, f"golden_{target}.json")


def observe(result) -> dict:
    """The golden observation for one build: section hashes and sizes."""
    image = result.image
    return {
        "text_sha256": hashlib.sha256(image.text_section()).hexdigest(),
        "data_sha256": hashlib.sha256(image.data_section()).hexdigest(),
        "text_bytes": result.sizes.text_bytes,
        "data_bytes": result.sizes.data_bytes,
        "binary_bytes": result.sizes.binary_bytes,
        "num_instrs": result.sizes.num_instrs,
        "num_functions": result.sizes.num_functions,
    }


def build_golden(target: str) -> dict:
    sources = generate_app(APP_SPEC)
    return {case: observe(build_program(sources, BuildConfig(
                target=target, **GOLDEN_CONFIGS[case])))
            for case in sorted(GOLDEN_CONFIGS)}


def main(argv) -> int:
    targets = tuple(argv) or GOLDEN_TARGETS
    for target in targets:
        path = golden_path(target)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(build_golden(target), fh, indent=2, sort_keys=True)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
