"""Regenerate the committed size baseline (``size_baseline.json``).

The CI ``size-report`` job builds the same pinned corpus under the same
pinned configuration and diffs the fresh report against this file with
``repro size --baseline`` — any target whose __text grows more than
``MAX_TEXT_GROWTH_PCT`` percent fails the job.  The corpus and config
are pinned here (same pattern as :mod:`make_golden`) so the gate and
the regeneration script can never drift apart: the CI job loads this
module by path for both.

Usage::

    PYTHONPATH=src python tests/fixtures/make_size_baseline.py

Only regenerate when a size change is *intentional* (a new pass, a
deliberate tradeoff); commit the diff with an explanation of where the
bytes went — the per-module breakdown in the fresh report shows exactly
that.
"""

import os
import sys

from repro.link import sizereport
from repro.pipeline import BuildConfig, build_targets
from repro.workloads.appgen import AppSpec, generate_app

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(FIXTURE_DIR, "size_baseline.json")

#: The corpus the gate watches — bigger than the goldens' app so every
#: size-relevant pass (outlining, merging, stripping) has work to do.
APP_SPEC = AppSpec(seed=23, base_features=8, num_vendors=3)

#: The configuration under gate: the paper's shipping configuration.
BASELINE_CONFIG = dict(preset="min-size", verify_image=False)

#: Every target slices from one frontend, exactly like a release build.
BASELINE_TARGETS = ("arm64", "thumb2c")

#: CI fails on more than this much __text growth per target.
MAX_TEXT_GROWTH_PCT = 1.0


def build_baseline_report():
    sources = generate_app(APP_SPEC)
    preset = BASELINE_CONFIG["preset"]
    knobs = {k: v for k, v in BASELINE_CONFIG.items() if k != "preset"}
    config = BuildConfig.preset(preset, **knobs)
    results = build_targets(sources, list(BASELINE_TARGETS), config)
    return sizereport.build_size_report(results)


def main() -> int:
    report = build_baseline_report()
    with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
        fh.write(sizereport.canonical_json(report))
        fh.write("\n")
    for line in sizereport.render_report(report):
        print(line)
    print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
