"""Unit tests for the post-link binary verifier (link/verify.py).

Every test starts from a genuinely linked image and hand-corrupts one
structural property; the verifier must reject each corruption and accept
the pristine image.
"""

import glob
import pickle

import pytest

from repro.errors import ImageVerifierError, ReproError
from repro.link.verify import verify_image
from repro.pipeline import BuildConfig, build_program

LIB = """
class Counter {
    var n: Int
    init(n: Int) { self.n = n }
    func bump() -> Int {
        self.n = self.n + 1
        return self.n
    }
}

func helperA(x: Int) -> Int { return x * 3 + 1 }
func helperB(x: Int) -> Int { return x * 3 + 2 }
func helperC(x: Int) -> Int { return x * 3 + 3 }
"""

MAIN = """
import Lib

func main() {
    let c = Counter(n: 0)
    var total = 0
    for i in 0..<4 {
        total = total + helperA(x: i) + helperB(x: i) + helperC(x: i)
        total = total + c.bump()
    }
    print(total)
}
"""


@pytest.fixture(scope="module")
def image():
    # A generated app with outlining so the image contains outlined
    # functions and the call/return-pairing checks have work to do.
    from repro.workloads.appgen import AppSpec, generate_app

    result = build_program(generate_app(AppSpec(base_features=2,
                                                num_vendors=1)),
                           BuildConfig(outline_rounds=2))
    assert any(ext.is_outlined for ext in result.image.functions)
    return result.image


def _reload(image):
    """Independent deep copy so corruption never leaks across tests."""
    return pickle.loads(pickle.dumps(image))


def test_pristine_image_verifies(image):
    verify_image(_reload(image))


def test_flipped_branch_target_is_caught(image):
    img = _reload(image)
    flipped = False
    for idx, instr in enumerate(img.instrs):
        if instr.branch_target() is not None and idx in img.resolved_target:
            # Point the branch far outside its function.
            img.resolved_target[idx] = img.text_base + len(img.instrs) * 16
            flipped = True
            break
    assert flipped
    with pytest.raises(ImageVerifierError, match="branch"):
        verify_image(img)


def test_flipped_call_target_is_caught(image):
    img = _reload(image)
    flipped = False
    for idx, instr in enumerate(img.instrs):
        # Pick a call into text (runtime stubs are consecutive 4-byte
        # slots, so a +4 flip there would still be a valid stub).
        if (instr.is_call and idx in img.resolved_target
                and img.resolved_target[idx] >= img.text_base):
            img.resolved_target[idx] += 4  # mid-function, not a start
            flipped = True
            break
    assert flipped
    with pytest.raises(ImageVerifierError, match="call"):
        verify_image(img)


def test_truncated_text_section_is_caught(image):
    img = _reload(image)
    del img.instrs[-3:]
    with pytest.raises(ImageVerifierError, match="truncated|extents"):
        verify_image(img)


def test_symbol_extent_mismatch_is_caught(image):
    img = _reload(image)
    name = img.functions[1].name
    img.symbols[name] += 4
    with pytest.raises(ImageVerifierError, match="symbol"):
        verify_image(img)


def test_overlapping_extents_are_caught(image):
    img = _reload(image)
    img.functions[2].start -= 4
    with pytest.raises(ImageVerifierError, match="contiguous|extent"):
        verify_image(img)


def test_bogus_entry_symbol_is_caught(image):
    img = _reload(image)
    img.entry_symbol = "no::such::function"
    with pytest.raises(ImageVerifierError, match="entry"):
        verify_image(img)


def test_data_word_outside_segment_is_caught(image):
    img = _reload(image)
    img.data_init[img.data_end + 1024] = 42
    with pytest.raises(ImageVerifierError, match="data"):
        verify_image(img)


def test_outlined_fallthrough_is_caught(image):
    img = _reload(image)
    target = next(ext for ext in img.functions if ext.is_outlined)
    last_idx = img.index_of_addr(target.end) - 1
    from repro.isa.instructions import MachineInstr, Opcode
    img.instrs[last_idx] = MachineInstr(Opcode.NOP)
    # On a variable-width target the rewrite may already break the extent
    # byte accounting, which the layout walk reports before the
    # call/return-pairing check runs.
    with pytest.raises(ImageVerifierError, match="outlined|encoded"):
        verify_image(img)


class TestCachedImageVerification:
    """The acceptance criterion: a corrupted *cached* image must be caught
    before build_program returns it."""

    def _sources(self):
        return {"Lib": LIB, "Main": MAIN}

    def _config(self, tmp_path):
        return BuildConfig(outline_rounds=1, incremental=True,
                           cache_dir=str(tmp_path))

    def _corrupt_cached_image(self, tmp_path, mutate):
        found = 0
        for path in glob.glob(str(tmp_path / "objects" / "*" / "*.pkl")):
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if isinstance(entry, dict) and "image" in entry:
                mutate(entry["image"])
                with open(path, "wb") as fh:
                    pickle.dump(entry, fh)
                found += 1
        assert found == 1
        return found

    def test_flipped_branch_in_cached_image(self, tmp_path):
        build_program(self._sources(), self._config(tmp_path))

        def flip(img):
            for idx, instr in enumerate(img.instrs):
                if (instr.branch_target() is not None
                        and idx in img.resolved_target):
                    img.resolved_target[idx] = img.text_base - 4096
                    return
        self._corrupt_cached_image(tmp_path, flip)
        with pytest.raises(ImageVerifierError):
            build_program(self._sources(), self._config(tmp_path))

    def test_truncated_text_in_cached_image(self, tmp_path):
        build_program(self._sources(), self._config(tmp_path))
        self._corrupt_cached_image(
            tmp_path, lambda img: img.instrs.__delitem__(slice(-5, None)))
        with pytest.raises(ReproError):  # ImageVerifierError is a ReproError
            build_program(self._sources(), self._config(tmp_path))

    def test_verifier_can_be_disabled(self, tmp_path):
        config = self._config(tmp_path)
        build_program(self._sources(), config)
        self._corrupt_cached_image(
            tmp_path, lambda img: img.instrs.__delitem__(slice(-5, None)))
        off = BuildConfig(outline_rounds=1, incremental=True,
                          cache_dir=str(tmp_path), verify_image=False)
        result = build_program(self._sources(), off)  # no raise
        assert not result.report.image_verified

    def test_report_flags_verified_images(self, tmp_path):
        result = build_program(self._sources(), self._config(tmp_path))
        assert result.report.image_verified
        warm = build_program(self._sources(), self._config(tmp_path))
        assert warm.report.image_cache_hit
        assert warm.report.image_verified
        assert "verify" in warm.report.phase_wall
