"""Swiftlet type-system unit tests."""

from repro.frontend.types import (
    BOOL,
    DOUBLE,
    INT,
    NIL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    FuncType,
    assignable,
    element_size_bytes,
)


class TestIdentity:
    def test_singletons_equal(self):
        assert INT == INT and DOUBLE == DOUBLE
        assert INT != DOUBLE and BOOL != INT

    def test_array_structural_equality(self):
        assert ArrayType(INT) == ArrayType(INT)
        assert ArrayType(INT) != ArrayType(DOUBLE)
        assert ArrayType(ArrayType(INT)) == ArrayType(ArrayType(INT))

    def test_class_nominal_equality(self):
        assert ClassType("M::A") == ClassType("M::A")
        assert ClassType("M::A") != ClassType("N::A")
        assert ClassType("M::A").name == "A"

    def test_func_type_equality(self):
        assert FuncType((INT,), BOOL) == FuncType((INT,), BOOL)
        assert FuncType((INT,), BOOL) != FuncType((INT,), BOOL, throws=True)


class TestRefness:
    def test_value_types(self):
        for ty in (INT, DOUBLE, BOOL, VOID):
            assert not ty.is_ref()

    def test_reference_types(self):
        for ty in (STRING, ArrayType(INT), ClassType("M::A"),
                   FuncType((), VOID)):
            assert ty.is_ref()

    def test_numeric(self):
        assert INT.is_numeric() and DOUBLE.is_numeric()
        assert not BOOL.is_numeric()


class TestAssignability:
    def test_exact_match(self):
        assert assignable(INT, INT)
        assert not assignable(INT, DOUBLE)

    def test_nil_to_refs_only(self):
        assert assignable(ClassType("M::A"), NIL)
        assert assignable(ArrayType(INT), NIL)
        assert assignable(STRING, NIL)
        assert not assignable(INT, NIL)

    def test_nonthrowing_closure_to_throwing_slot(self):
        plain = FuncType((INT,), INT, throws=False)
        throwing = FuncType((INT,), INT, throws=True)
        assert assignable(throwing, plain)
        assert not assignable(plain, throwing)

    def test_param_mismatch(self):
        assert not assignable(FuncType((INT,), INT),
                              FuncType((DOUBLE,), INT))


class TestDisplay:
    def test_str_forms(self):
        assert str(ArrayType(INT)) == "[Int]"
        assert str(ClassType("M::Node")) == "Node"
        assert str(FuncType((INT, BOOL), VOID)) == "(Int, Bool) -> Void"
        assert "throws" in str(FuncType((), INT, throws=True))

    def test_uniform_word_size(self):
        for ty in (INT, DOUBLE, STRING, ArrayType(INT)):
            assert element_size_bytes(ty) == 8
