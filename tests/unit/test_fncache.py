"""Function-level incremental builds: per-function cache keys, the image
sidecar, and the single-function-edit contract on real builds."""

import os

import pytest

from repro.frontend.parser import parse_module
from repro.frontend.sema import analyze_program
from repro.pipeline import BuildConfig, build_program, fncache
from repro.pipeline import cache as cache_mod
from repro.sil.silgen import generate_sil
from repro.workloads.appgen import (AppSpec, edit_function, generate_app,
                                    function_fingerprints)

SPEC = AppSpec(base_features=4, num_vendors=2, base_handlers=3)


def _sil_modules(sources):
    modules = [parse_module(text, name)
               for name, text in sorted(sources.items())]
    program = analyze_program(modules)
    sil_modules = generate_sil(program)
    signatures = {fn.symbol: fn
                  for sm in sil_modules for fn in sm.functions}
    return sil_modules, signatures


def _config(tmp_path, **kw):
    kw.setdefault("pipeline", "default")
    kw.setdefault("outline_rounds", 1)
    return BuildConfig(incremental=True, cache_dir=str(tmp_path), **kw)


class TestFunctionKeys:
    def test_keys_are_stable_across_regeneration(self):
        sources = generate_app(SPEC)
        ffp = "ffp"
        sil_a, sig_a = _sil_modules(sources)
        sil_b, sig_b = _sil_modules(sources)
        for sm_a, sm_b in zip(sil_a, sil_b):
            keys_a = fncache.module_function_keys(sm_a, sig_a, ffp)
            keys_b = fncache.module_function_keys(sm_b, sig_b, ffp)
            assert [k for _, k in keys_a] == [k for _, k in keys_b]

    def test_one_function_edit_changes_one_key(self):
        sources = generate_app(SPEC)
        module = sorted(sources)[0]
        func = sorted(function_fingerprints(SPEC)[module])[0]
        edited = dict(sources)
        edited[module] = edit_function(sources[module], func)
        ffp = "ffp"
        sil_a, sig_a = _sil_modules(sources)
        sil_b, sig_b = _sil_modules(edited)
        changed = 0
        for sm_a, sm_b in zip(sil_a, sil_b):
            keys_a = {fn.symbol: k for fn, k in
                      fncache.module_function_keys(sm_a, sig_a, ffp)}
            keys_b = {fn.symbol: k for fn, k in
                      fncache.module_function_keys(sm_b, sig_b, ffp)}
            assert set(keys_a) == set(keys_b)
            changed += sum(keys_a[s] != keys_b[s] for s in keys_a)
        assert changed == 1

    def test_key_depends_on_callee_signature(self):
        sources = {"A": "func f(x: Int) -> Int { return g(x: x) }\n"
                        "func g(x: Int) -> Int { return x + 1 }\n"
                        "func main() { print(f(x: 1)) }\n"}
        changed = {"A": "func f(x: Int) -> Int { return Int(g(x: "
                        "Double(x))) }\n"
                        "func g(x: Double) -> Double { return x + 1.0 }\n"
                        "func main() { print(f(x: 1)) }\n"}
        ffp = "ffp"
        sil_a, sig_a = _sil_modules(sources)
        sil_b, sig_b = _sil_modules(changed)
        key_a = {fn.symbol: k for fn, k in fncache.module_function_keys(
            sil_a[0], sig_a, ffp)}
        key_b = {fn.symbol: k for fn, k in fncache.module_function_keys(
            sil_b[0], sig_b, ffp)}
        assert key_a["A::main"] == key_b["A::main"]
        # f's own body changed AND its callee g's signature changed.
        assert key_a["A::f"] != key_b["A::f"]


class TestSingleFunctionEdit:
    def test_edit_recompiles_exactly_one_function(self, tmp_path):
        sources = generate_app(SPEC)
        config = _config(tmp_path)
        cold = build_program(sources, config)
        assert cold.report.functions_recompiled > 1

        module = sorted(sources)[len(sources) // 2]
        func = sorted(function_fingerprints(SPEC)[module])[0]
        edited = dict(sources)
        edited[module] = edit_function(sources[module], func)
        warm = build_program(edited, config)
        assert warm.report.functions_recompiled == 1
        assert warm.report.llc_cache_misses == 1
        assert warm.report.fn_cache_hits > 0
        assert not warm.report.image_cache_hit

    def test_edited_build_bit_identical_to_cold(self, tmp_path):
        sources = generate_app(SPEC)
        module = sorted(sources)[0]
        func = sorted(function_fingerprints(SPEC)[module])[0]
        edited = dict(sources)
        edited[module] = edit_function(sources[module], func)

        config = _config(tmp_path)
        build_program(sources, config)       # prime the cache
        warm = build_program(edited, config)
        cold = build_program(edited, BuildConfig(pipeline="default",
                                                 outline_rounds=1))
        assert warm.image.text_section() == cold.image.text_section()


class TestImageSidecar:
    def test_noop_rebuild_hits_image_without_module_loads(self, tmp_path):
        sources = generate_app(SPEC)
        config = _config(tmp_path)
        cold = build_program(sources, config)
        warm = build_program(sources, config)
        assert warm.report.image_cache_hit
        assert warm.report.cache_hits == len(sources)
        assert warm.image.text_section() == cold.image.text_section()
        # The lazy sidecar still serves the full machine listing.
        assert ([m.name for m in warm.machine_modules]
                == [m.name for m in cold.machine_modules])

    def test_sidecar_eviction_falls_back_to_full_build(self, tmp_path):
        sources = generate_app(SPEC)
        config = _config(tmp_path)
        cold = build_program(sources, config)
        # Remove every sidecar entry (identified by reloading as dict with
        # only machine_modules inside).
        cache = cache_mod.ModuleCache(str(tmp_path))
        for key in _all_keys(tmp_path):
            entry = cache.load(key)
            if (isinstance(entry, dict)
                    and set(entry) == {"machine_modules"}):
                os.remove(cache._path(key))
        rebuilt = build_program(sources, config)
        assert not rebuilt.report.image_cache_hit
        assert rebuilt.image.text_section() == cold.image.text_section()


def _all_keys(tmp_path):
    keys = []
    objects = os.path.join(tmp_path, "objects")
    for dirpath, _, files in os.walk(objects):
        keys.extend(f[:-len(".pkl")] for f in files if f.endswith(".pkl"))
    return keys


class TestAppgenEditing:
    def test_fingerprints_cover_every_module(self):
        sources = generate_app(SPEC)
        fps = function_fingerprints(SPEC)
        assert set(fps) == set(sources)
        assert all(fps[m] for m in fps)

    def test_edit_changes_exactly_one_fingerprint(self):
        fps = function_fingerprints(SPEC)
        module = sorted(fps)[0]
        func = sorted(fps[module])[0]
        sources = generate_app(SPEC)
        edited_text = edit_function(sources[module], func)
        assert edited_text != sources[module]
        # Re-fingerprint the edited source directly.
        from repro.workloads.appgen import _function_extents
        before = {n: sources[module][s:e]
                  for n, s, e in _function_extents(sources[module])}
        after = {n: edited_text[s:e]
                 for n, s, e in _function_extents(edited_text)}
        assert set(before) == set(after)
        changed = [name for name in before if before[name] != after[name]]
        assert changed == [func]

    def test_distinct_markers_give_distinct_edits(self):
        sources = generate_app(SPEC)
        module = sorted(sources)[0]
        func = sorted(function_fingerprints(SPEC)[module])[0]
        a = edit_function(sources[module], func, marker=1)
        b = edit_function(sources[module], func, marker=2)
        assert a != b

    def test_unknown_function_is_an_error(self):
        sources = generate_app(SPEC)
        module = sorted(sources)[0]
        with pytest.raises(ValueError):
            edit_function(sources[module], "no_such_function")

    def test_edited_module_still_compiles(self, tmp_path):
        sources = generate_app(SPEC)
        module = sorted(sources)[0]
        func = sorted(function_fingerprints(SPEC)[module])[0]
        edited = dict(sources)
        edited[module] = edit_function(sources[module], func)
        result = build_program(edited, BuildConfig())
        assert result.sizes.num_functions > 0
