"""Analysis module tests: fits and distributions."""

import math

import pytest

from repro.analysis.distributions import (
    cumulative_savings,
    fractal_clusters,
    length_histogram,
    patterns_for_fraction,
)
from repro.analysis.powerlaw import fit_power_law, rank_frequency
from repro.analysis.regression import linear_fit
from repro.outliner.cost_model import OutlineClass
from repro.outliner.stats import PatternStat


def stat(pid, length, count, benefit):
    return PatternStat(pattern_id=pid, length=length, num_candidates=count,
                       outline_class=OutlineClass.NO_LR_SAVE,
                       benefit_bytes=benefit, rendered=())


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [5, 7, 9, 11])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r2_below_one(self):
        fit = linear_fit([0, 1, 2, 3, 4], [0, 1.1, 1.9, 3.2, 3.9])
        assert 0.9 < fit.r_squared < 1.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_prediction(self):
        fit = linear_fit([0, 10], [0, 100])
        assert fit.predict(5) == pytest.approx(50)


class TestPowerLaw:
    def test_recovers_exponent(self):
        xs = list(range(1, 200))
        ys = [1000.0 * x ** -0.7 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.b == pytest.approx(-0.7, abs=1e-6)
        assert fit.a == pytest.approx(1000.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_rank_frequency_sorts_descending(self):
        ranks, freqs = rank_frequency([3, 9, 1, 5])
        assert ranks == [1, 2, 3, 4]
        assert freqs == [9, 5, 3, 1]

    def test_zero_frequencies_filtered(self):
        fit = fit_power_law([1, 2, 3, 4], [8, 4, 0, 1])
        assert fit.b < 0


class TestDistributions:
    def test_length_histogram_sums_candidates(self):
        stats = [stat(1, 2, 10, 40), stat(2, 2, 5, 20), stat(3, 4, 3, 30)]
        hist = length_histogram(stats)
        assert hist == {2: 15, 4: 3}

    def test_cumulative_savings_sorted_by_benefit(self):
        stats = [stat(1, 2, 10, 40), stat(2, 3, 4, 100), stat(3, 2, 2, 10)]
        curve = cumulative_savings(stats)
        assert curve == [(1, 100), (2, 140), (3, 150)]

    def test_patterns_for_fraction(self):
        stats = [stat(i, 2, 2, b) for i, b in enumerate([50, 30, 15, 5])]
        assert patterns_for_fraction(stats, 0.5) == 1
        assert patterns_for_fraction(stats, 0.9) == 3
        assert patterns_for_fraction([], 0.9) == 0

    def test_fractal_clusters(self):
        stats = [stat(1, 2, 100, 1), stat(2, 3, 100, 1), stat(3, 9, 4, 1),
                 stat(4, 2, 4, 1), stat(5, 5, 4, 1)]
        clusters = fractal_clusters(stats)
        assert clusters[0].frequency == 100
        assert clusters[0].num_patterns == 2
        assert clusters[1].frequency == 4
        assert clusters[1].distinct_lengths == 3
        assert clusters[1].max_length == 9
