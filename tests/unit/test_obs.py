"""Observability subsystem tests: tracer/span mechanics, metrics registry
semantics, Chrome trace export, the report<->trace shared clock, worker
span adoption across fork, and degradation events on the timeline."""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_dict,
    current_tracer,
    metrics_dict,
    profile_lines,
    use_tracer,
    write_chrome_trace,
    write_metrics,
)
from repro.obs import trace as obs_trace
from repro.pipeline import BuildConfig, build_program
from repro.pipeline.faults import FaultPlan

SOURCES = {
    "Lib": """
func work(x: Int) -> Int {
    var acc = x
    for i in 0..<4 { acc += i * x }
    return acc
}
""",
    "Main": """
import Lib
func main() {
    var total = 0
    for i in 0..<5 { total += work(x: i) }
    print(total)
}
""",
}


def _traced_build(config=None):
    tracer = Tracer()
    with use_tracer(tracer):
        result = build_program(dict(SOURCES), config or BuildConfig(
            pipeline="wholeprogram", outline_rounds=2))
    return result, tracer


class TestSpans:
    def test_nesting_and_walk_order(self):
        tracer = Tracer()
        with tracer.span("outer", kind="a"):
            with tracer.span("inner1"):
                pass
            with tracer.span("inner2"):
                tracer.event("marker", n=1)
        assert [s.name for s in tracer.all_spans()] == [
            "outer", "inner1", "inner2", "marker"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner1", "inner2"]
        assert outer.children[1].children[0].instant

    def test_durations_are_monotone_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_end_span_tolerates_exception_unwinding(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.start_span("orphan")  # never explicitly ended
                raise RuntimeError
        # The stack must be fully unwound: new spans land at the root.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "after"]

    def test_structure_excludes_timestamps(self):
        def shape():
            tracer = Tracer()
            with tracer.span("a", kind="x") as sp:
                sp.annotate(delta=3)
                tracer.event("e")
            return tracer.structure()

        assert shape() == shape()

    def test_annotate_merges_attrs(self):
        span = Span(name="s", start=0.0, attrs={"a": 1})
        span.annotate(b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_adopt_relabels_tracks_recursively(self):
        child = Span(name="leaf", start=0.0, end=1.0)
        parent = Span(name="chunk", start=0.0, end=1.0, children=[child])
        tracer = Tracer()
        tracer.adopt([parent], track=3)
        assert {s.track for s in tracer.all_spans()} == {3}


class TestAmbientTracer:
    def test_defaults_to_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with obs_trace.span("via-module", kind="t"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [s.name for s in tracer.all_spans()] == ["via-module"]

    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        with null.span("x") as sp:
            sp.annotate(a=1)
        null.event("y")
        assert list(null.all_spans()) == []
        assert null.structure() == ()
        assert null.metrics is NULL_METRICS

    def test_null_metrics_discard_writes(self):
        NULL_METRICS.inc("c")
        NULL_METRICS.set_gauge("g", 1)
        NULL_METRICS.observe("h", 2.0)
        assert NULL_METRICS.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.inc("c", -2)  # net deltas allowed
        reg.set_gauge("g", 7)
        reg.set_gauge("g", 9)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        dump = reg.as_dict()
        assert dump["counters"]["c"] == 3
        assert dump["gauges"]["g"] == 9
        assert dump["histograms"]["h"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_merge_semantics(self):
        reg = MetricsRegistry()
        reg.inc("c", 1)
        reg.set_gauge("g", 1)
        reg.observe("h", 5.0)
        snap = MetricsSnapshot(
            counters={"c": 2}, gauges={"g": 8},
            histograms={"h": HistogramSummary(count=1, total=1.0,
                                              min=1.0, max=1.0)})
        reg.merge(snap)
        dump = reg.as_dict()
        assert dump["counters"]["c"] == 3          # counters add
        assert dump["gauges"]["g"] == 8            # gauges last-write-wins
        assert dump["histograms"]["h"]["count"] == 2
        assert dump["histograms"]["h"]["min"] == 1.0
        assert dump["histograms"]["h"]["max"] == 5.0

    def test_snapshot_is_independent_copy(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        reg.observe("h", 9.0)
        assert snap.histograms["h"].count == 1

    def test_dump_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.as_dict()["counters"]) == ["a", "z"]


class TestTracedBuild:
    def test_pipeline_spans_present(self):
        _, tracer = _traced_build()
        names = [s.name for s in tracer.all_spans()]
        for phase in ("parse", "sema", "silgen", "lower", "llvm-link",
                      "opt", "llc", "link", "verify"):
            assert phase in names, phase
        assert "build" in names
        assert any(n.startswith("lir-pass:") for n in names)
        assert "outline-round" in names
        assert "verify-image" in names

    def test_trace_structure_is_deterministic(self):
        _, first = _traced_build()
        _, second = _traced_build()
        assert first.structure() == second.structure()

    def test_metrics_cover_the_pipeline(self):
        _, tracer = _traced_build()
        dump = tracer.metrics.as_dict()
        assert any(k.startswith("lir.pass.") for k in dump["counters"])
        # Repeated outlining stops early once a round finds nothing new.
        assert 1 <= dump["counters"]["outliner.rounds"] <= 2
        assert "outliner.bytes_saved" in dump["counters"]
        assert "cache.enabled" in dump["gauges"]
        assert dump["gauges"]["verify.passed"] == 1
        assert dump["gauges"]["image.text_bytes"] > 0
        assert "outliner.round_bytes_saved" in dump["histograms"]

    def test_report_and_trace_share_one_clock(self):
        # Satellite (d): BuildReport phase timings are copied verbatim
        # from the span durations — exact float equality, zero drift.
        result, tracer = _traced_build()
        by_phase = {}
        for span in tracer.all_spans():
            if span.attrs.get("kind") == "phase":
                by_phase[span.name] = by_phase.get(span.name, 0.0) \
                    + span.duration
        assert result.report.phase_wall, "no phases recorded"
        for name, wall in result.report.phase_wall.items():
            assert by_phase.get(name) == wall, name

    def test_untraced_report_still_times_phases(self):
        result = build_program(dict(SOURCES),
                               BuildConfig(pipeline="wholeprogram",
                                           outline_rounds=1))
        assert result.report.phase_wall
        assert all(v >= 0.0 for v in result.report.phase_wall.values())


class TestWorkerAdoption:
    def test_forked_worker_spans_land_on_tracks(self):
        _, tracer = _traced_build(BuildConfig(pipeline="default",
                                              outline_rounds=1, workers=2))
        chunk_spans = [s for s in tracer.all_spans()
                       if s.name.startswith("worker-chunk:")]
        assert chunk_spans, "no worker spans adopted"
        assert all(s.track > 0 for s in chunk_spans)
        # Worker-side pass spans travel with their chunk.
        assert any(c.name.startswith("lir-pass:")
                   for s in chunk_spans for c in s.walk())

    def test_worker_metrics_are_merged(self):
        _, serial = _traced_build(BuildConfig(pipeline="default",
                                              outline_rounds=1, workers=1))
        _, forked = _traced_build(BuildConfig(pipeline="default",
                                              outline_rounds=1, workers=2))
        s_counts = serial.metrics.as_dict()["counters"]
        f_counts = forked.metrics.as_dict()["counters"]
        for name in s_counts:
            if name.startswith("lir.pass.") and name.endswith(".runs"):
                assert f_counts.get(name) == s_counts[name], name

    def test_adoption_order_is_chunk_order(self):
        _, tracer = _traced_build(BuildConfig(pipeline="default",
                                              outline_rounds=1, workers=2))
        chunk_ids = [s.attrs["chunk"] for s in tracer.all_spans()
                     if s.name.startswith("worker-chunk:lower")]
        assert chunk_ids == sorted(chunk_ids)


class TestDegradationEvents:
    def test_degradations_become_instant_annotations(self):
        plan = FaultPlan(seed=42, worker_crash_rate=1.0)
        config = BuildConfig(pipeline="default", outline_rounds=1, workers=3,
                             fault_plan=plan, chunk_timeout=0.5,
                             max_chunk_retries=1, retry_backoff=0.01)
        result, tracer = _traced_build(config)
        instants = [s for s in tracer.all_spans()
                    if s.instant and s.name.startswith("degraded:")]
        assert instants
        assert all(s.attrs["kind"] == "degradation" for s in instants)
        counts = tracer.metrics.as_dict()["counters"]
        assert counts["build.degradations"] == len(
            result.report.degradations)
        assert "build.degradations.worker-crash" in counts


class TestExport:
    def test_chrome_trace_shape(self, tmp_path):
        _, tracer = _traced_build()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert complete and metadata
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["args"], dict)
        assert {"thread_name"} == {e["name"] for e in metadata}
        assert any(e["args"]["name"] == "build" for e in metadata)

    def test_instant_events_marked(self):
        tracer = Tracer()
        with tracer.span("b", kind="build"):
            tracer.event("degraded:worker-crash", kind="degradation")
        events = chrome_trace_dict(tracer)["traceEvents"]
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_worker_tracks_named(self):
        tracer = Tracer()
        tracer.adopt([Span(name="chunk", start=0.0, end=1.0)], track=2)
        events = chrome_trace_dict(tracer)["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "worker chunk 1" in names

    def test_metrics_json_round_trips(self, tmp_path):
        _, tracer = _traced_build()
        path = tmp_path / "metrics.json"
        write_metrics(tracer, str(path))
        doc = json.loads(path.read_text())
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert doc == metrics_dict(tracer)

    def test_profile_lines_render(self):
        _, tracer = _traced_build()
        lines = profile_lines(tracer)
        text = "\n".join(lines)
        assert "profile" in text and "metrics:" in text
        assert "opt" in text

    def test_profile_lines_empty_tracer(self):
        assert "(no spans recorded)" in "\n".join(profile_lines(Tracer()))
