"""SIL pass tests: ARC optimizer and SIL outlining (Table I baselines)."""

from repro.frontend.parser import parse_module
from repro.frontend.sema import analyze_program
from repro.pipeline import BuildConfig, build_program, run_build
from repro.sil import sil
from repro.sil.passes import arc_opt
from repro.sil.passes import outline as sil_outline
from repro.sil.silgen import generate_sil


def gen(source, module="T"):
    info = analyze_program([parse_module(source, module)])
    return generate_sil(info)[0]


class TestArcOpt:
    def test_adjacent_pair_removed(self):
        fn = sil.SILFunction(symbol="t")
        blk = fn.new_block("entry")
        v = fn.new_temp()
        blk.instrs.append(sil.Retain(value=v))
        blk.instrs.append(sil.Release(value=v))
        blk.instrs.append(sil.Return())
        removed = arc_opt.run_on_function(fn)
        assert removed == 2
        assert len(blk.instrs) == 1

    def test_pair_with_neutral_instr_between_removed(self):
        fn = sil.SILFunction(symbol="t")
        blk = fn.new_block("entry")
        v = fn.new_temp()
        w = fn.new_temp()
        blk.instrs.append(sil.Retain(value=v))
        blk.instrs.append(sil.BinOp(result=w, op="+", lhs=v, rhs=v))
        blk.instrs.append(sil.Release(value=v))
        blk.instrs.append(sil.Return())
        assert arc_opt.run_on_function(fn) == 2

    def test_call_between_blocks_removal(self):
        fn = sil.SILFunction(symbol="t")
        blk = fn.new_block("entry")
        v = fn.new_temp()
        blk.instrs.append(sil.Retain(value=v))
        blk.instrs.append(sil.Apply(callee="g", args=(v,)))
        blk.instrs.append(sil.Release(value=v))
        blk.instrs.append(sil.Return())
        assert arc_opt.run_on_function(fn) == 0, \
            "a call can observe/alter refcounts: pair must survive"

    def test_different_values_not_paired(self):
        fn = sil.SILFunction(symbol="t")
        blk = fn.new_block("entry")
        blk.instrs.append(sil.Retain(value=1))
        blk.instrs.append(sil.Release(value=2))
        blk.instrs.append(sil.Return())
        assert arc_opt.run_on_function(fn) == 0

    def test_semantics_preserved_end_to_end(self):
        source = """
class Box { var v: Int
    init(v: Int) { self.v = v } }
func main() {
    let b = Box(v: 3)
    let c = b
    print(c.v + b.v)
}
"""
        with_opt = run_build(build_program({"M": source}, BuildConfig(
            enable_arc_opt=True)))
        without = run_build(build_program({"M": source}, BuildConfig(
            enable_arc_opt=False)))
        assert with_opt.output == without.output == ["6"]
        assert with_opt.leaked == [] and without.leaked == []


class TestSILOutlining:
    SOURCE = """
class Sink { var total: Int
    init() { self.total = 0 }
}
func record(s: Sink) { s.total += 1 }
func main() {
    let s = Sink()
    record(s: s)
    record(s: s)
    record(s: s)
    record(s: s)
    print(s.total)
}
"""

    def test_creates_helper_for_repeated_retain_apply(self):
        module = gen(self.SOURCE, module="M")
        report = sil_outline.run_on_module(module)
        assert report["helpers_created"] >= 1
        assert report["sites_outlined"] >= 3
        helpers = [fn for fn in module.functions
                   if "sil_outlined$" in fn.symbol]
        assert helpers and all(fn.is_bare for fn in helpers)

    def test_semantics_preserved(self):
        plain = run_build(build_program({"M": self.SOURCE}, BuildConfig(
            enable_sil_outlining=False)))
        outlined = run_build(build_program({"M": self.SOURCE}, BuildConfig(
            enable_sil_outlining=True)))
        assert plain.output == outlined.output == ["4"]
        assert outlined.leaked == []

    def test_below_threshold_not_outlined(self):
        source = """
class Sink { var total: Int
    init() { self.total = 0 } }
func record(s: Sink) { s.total += 1 }
func main() {
    let s = Sink()
    record(s: s)
    print(s.total)
}
"""
        module = gen(source, module="M")
        report = sil_outline.run_on_module(module)
        assert report["helpers_created"] == 0
