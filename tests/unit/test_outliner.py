"""MachineOutliner unit tests: legality, cost model, greedy round,
repeated rounds, statistics pass."""

import copy
import itertools

import pytest

from repro.isa.instructions import (
    Label,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Opcode,
    Sym,
)
from repro.isa.registers import FP, LR, SP
from repro.outliner.candidates import (
    InstructionMapper,
    function_saves_lr,
    is_legal_to_outline,
    prune_overlaps,
)
from repro.outliner.cost_model import OutlineClass, classify, cost_of
from repro.outliner.machine_outliner import OUTLINED_PREFIX, run_one_round
from repro.outliner.repeated import repeated_outline_functions
from repro.outliner.stats import collect_patterns
# Byte-exact cost assertions below document the paper's fixed-width
# AArch64 arithmetic, so they pin the arm64 spec rather than inheriting
# the session default (which CI varies via REPRO_TARGET).
from repro.target.arm64 import ARM64


def mi(opcode, *operands, **kw):
    return MachineInstr(opcode, tuple(operands), **kw)


def framed_function(name, body_instrs):
    fn = MachineFunction(name=name)
    blk = fn.new_block("entry")
    blk.append(mi(Opcode.STPXpre, FP, LR, SP, -16))
    blk.instrs.extend(body_instrs)
    blk.append(mi(Opcode.LDPXpost, FP, LR, SP, 16))
    blk.append(mi(Opcode.RET))
    return fn


def seq(*ks):
    return [mi(Opcode.ADDXri, f"x{k}", f"x{k}", k + 1) for k in ks]


class TestLegality:
    def test_plain_alu_legal(self):
        assert is_legal_to_outline(mi(Opcode.ADDXri, "x1", "x1", 4))

    def test_ret_is_legal_terminator(self):
        assert is_legal_to_outline(mi(Opcode.RET))

    def test_branches_illegal(self):
        assert not is_legal_to_outline(mi(Opcode.B, Label("x")))
        assert not is_legal_to_outline(mi(Opcode.Bcc, None, Label("x")))
        assert not is_legal_to_outline(mi(Opcode.CBZX, "x0", Label("x")))

    def test_lr_touching_illegal(self):
        assert not is_legal_to_outline(mi(Opcode.STPXpre, FP, LR, SP, -16))
        assert not is_legal_to_outline(
            mi(Opcode.ORRXrs, "x0", "xzr", "x30"))

    def test_sp_access_illegal(self):
        assert not is_legal_to_outline(mi(Opcode.LDRXui, "x16", SP, 0))
        assert not is_legal_to_outline(mi(Opcode.SUBXri, SP, SP, 32))

    def test_calls_legal(self):
        assert is_legal_to_outline(mi(Opcode.BL, Sym("f")))

    def test_function_saves_lr_detection(self):
        framed = framed_function("a", seq(1))
        assert function_saves_lr(framed)
        leaf = MachineFunction(name="leaf")
        leaf.new_block("entry").append(mi(Opcode.RET))
        assert not function_saves_lr(leaf)


class TestMapper:
    def test_identical_instrs_same_id(self):
        mapper = InstructionMapper()
        program = mapper.map_functions(
            [framed_function("a", seq(1, 2)),
             framed_function("b", seq(1, 2))])
        legal = [i for i in program.ids if i > 0]
        # Each function contributes [add1, add2, RET]: cross-function pairs
        # must intern to the same ids.
        assert len(legal) == 6
        assert legal[0] == legal[3] and legal[1] == legal[4] \
            and legal[2] == legal[5]

    def test_block_boundaries_are_unique(self):
        mapper = InstructionMapper()
        program = mapper.map_functions([framed_function("a", seq(1))])
        negatives = [i for i in program.ids if i < 0]
        assert len(negatives) == len(set(negatives))

    def test_call_implicits_distinguish(self):
        a = mi(Opcode.BL, Sym("f"), implicit_uses=("x0",))
        b = mi(Opcode.BL, Sym("f"), implicit_uses=("x0", "x1"))
        mapper = InstructionMapper()
        fa = MachineFunction(name="fa")
        fa.new_block("entry").instrs.extend([a, b])
        program = mapper.map_functions([fa])
        assert program.ids[0] != program.ids[1]


class TestCostModel:
    def test_classify_tail_call(self):
        assert classify(seq(1) + [mi(Opcode.RET)]) is OutlineClass.TAIL_CALL

    def test_classify_thunk(self):
        assert classify(seq(1) + [mi(Opcode.BL, Sym("f"))]) \
            is OutlineClass.THUNK

    def test_classify_no_lr_save(self):
        assert classify(seq(1, 2)) is OutlineClass.NO_LR_SAVE

    def test_classify_default(self):
        s = [mi(Opcode.BL, Sym("f"))] + seq(1)
        assert classify(s) is OutlineClass.DEFAULT

    def test_benefit_math_no_lr_save(self):
        cost = cost_of(seq(1, 2, 3), ARM64)
        # 3-instr sequence, 4 occurrences: before 4*12=48,
        # after 4*4 (calls) + 16 (fn = seq+RET) = 32 -> benefit 16.
        assert cost.benefit(4) == 16

    def test_two_instr_two_occurrences_unprofitable(self):
        cost = cost_of(seq(1, 2), ARM64)
        # before 2*8=16; after 2*4 + 12 = 20 -> negative.
        assert cost.benefit(2) < 1

    def test_thunk_benefit(self):
        cost = cost_of(seq(1) + [mi(Opcode.BL, Sym("f"))], ARM64)
        # 2-instr thunk, 3 occurrences: before 24, after 3*4 + 8 = 20.
        assert cost.benefit(3) == 4

    def test_prune_overlaps(self):
        assert prune_overlaps([0, 1, 2, 5, 6], 2) == [0, 2, 5]


class TestRounds:
    def test_round_outlines_repeats(self):
        fns = [framed_function("a", seq(1, 2, 3) + seq(9)),
               framed_function("b", seq(1, 2, 3) + seq(8)),
               framed_function("c", seq(1, 2, 3) + seq(7))]
        stats = run_one_round(fns, itertools.count(0), target=ARM64)
        assert stats.functions_created >= 1
        outlined = [f for f in fns if f.is_outlined]
        assert outlined
        assert all(f.name.startswith(OUTLINED_PREFIX) for f in outlined)

    def test_unprofitable_not_outlined(self):
        fns = [framed_function("a", seq(1, 2)),
               framed_function("b", seq(1, 2))]
        stats = run_one_round(fns, itertools.count(0))
        assert stats.functions_created == 0

    def test_size_never_increases(self):
        fns = [framed_function(f"f{k}", seq(1, 2, 3, 4) + seq(10 + k))
               for k in range(6)]
        before = sum(f.num_instrs for f in fns)
        repeated_outline_functions(fns, rounds=5)
        after = sum(f.num_instrs for f in fns)
        assert after <= before

    def test_rounds_monotone_decreasing_size(self):
        base = [framed_function(f"f{k}",
                                seq(1, 2, 3, 4) + seq(20 + k) + seq(2, 3, 4))
                for k in range(6)]
        sizes = []
        for rounds in (1, 2, 3, 4):
            fns = copy.deepcopy(base)
            repeated_outline_functions(fns, rounds=rounds)
            sizes.append(sum(f.num_instrs for f in fns))
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_early_stop_when_nothing_found(self):
        fns = [framed_function("a", seq(1, 2, 3) + seq(9)),
               framed_function("b", seq(1, 2, 3) + seq(8)),
               framed_function("c", seq(1, 2, 3) + seq(7))]
        stats = repeated_outline_functions(fns, rounds=10)
        assert len(stats) < 10, "must stop early once no round finds work"

    def test_name_prefix(self):
        fns = [framed_function("a", seq(1, 2, 3) + seq(9)),
               framed_function("b", seq(1, 2, 3) + seq(8)),
               framed_function("c", seq(1, 2, 3) + seq(7))]
        repeated_outline_functions(fns, rounds=1, name_prefix="Mod::")
        outlined = [f for f in fns if f.is_outlined]
        assert all(f.name.startswith("Mod::" + OUTLINED_PREFIX)
                   for f in outlined)

    def test_leaf_functions_only_tail_call_outlined(self):
        # Leaf (frameless) functions keep LR live: a BL call site would
        # clobber the return address, so only tail-call candidates apply.
        def leaf(name, ks):
            fn = MachineFunction(name=name)
            blk = fn.new_block("entry")
            blk.instrs.extend(seq(*ks))
            blk.append(mi(Opcode.RET))
            return fn

        fns = [leaf("a", (1, 2, 3, 9)), leaf("b", (1, 2, 3, 9)),
               leaf("c", (1, 2, 3, 9))]
        run_one_round(fns, itertools.count(0))
        for fn in fns:
            if fn.is_outlined:
                continue
            for instr in fn.instructions():
                assert instr.opcode is not Opcode.BL, (
                    "leaf call sites must use tail-call B, never BL")

    def test_default_class_saves_lr_in_outlined_function(self):
        body = [mi(Opcode.BL, Sym("ext"))] + seq(1, 2, 3)
        fns = [framed_function(f"f{k}", list(body) + seq(10 + k))
               for k in range(5)]
        run_one_round(fns, itertools.count(0), target=ARM64)
        outlined = [f for f in fns if f.is_outlined]
        defaults = [f for f in outlined
                    if any(i.opcode is Opcode.BL and i.callee() == "ext"
                           for i in f.instructions())]
        assert defaults, "the call-containing pattern should be outlined"
        for fn in defaults:
            instrs = list(fn.instructions())
            assert instrs[0].opcode is Opcode.STRXpre
            assert instrs[-2].opcode is Opcode.LDRXpost
            assert instrs[-1].opcode is Opcode.RET


class TestStats:
    def test_collect_patterns_counts(self):
        fns = [framed_function(f"f{k}", seq(1, 2, 3) + seq(30 + k))
               for k in range(4)]
        stats = collect_patterns(fns, target=ARM64)
        assert stats
        top = stats[0]
        assert top.num_candidates == 4
        assert top.pattern_id == 1
        assert top.functions  # names recorded

    def test_collect_is_readonly(self):
        fns = [framed_function(f"f{k}", seq(1, 2, 3) + seq(30 + k))
               for k in range(4)]
        before = sum(f.num_instrs for f in fns)
        collect_patterns(fns)
        assert sum(f.num_instrs for f in fns) == before
        assert not any(f.is_outlined for f in fns)

    def test_unprofitable_filtered(self):
        fns = [framed_function("a", seq(1, 2)),
               framed_function("b", seq(1, 2))]
        profitable = collect_patterns(fns, require_profitable=True)
        everything = collect_patterns(fns, require_profitable=False)
        assert len(everything) > len(profitable)
