"""Runtime heap and refcounting tests."""

import pytest

from repro.errors import RuntimeTrap
from repro.runtime import layout
from repro.runtime.objects import ClassLayout, Heap, TypeRegistry


@pytest.fixture
def heap():
    registry = TypeRegistry()
    registry.register(ClassLayout(type_id=16, name="Pair", num_fields=2,
                                  ref_field_indices=[1]))
    return Heap({}, base=0x1000, registry=registry)


class TestAllocation:
    def test_class_alloc_header(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        assert heap.memory[obj + layout.HEADER_TYPEID] == 16
        assert heap.memory[obj + layout.HEADER_RC] == 1
        assert obj in heap.live_objects

    def test_array_alloc_and_fill(self, heap):
        arr = heap.alloc_array(3, 7, layout.ELEM_PLAIN)
        buf = heap.memory[arr + layout.ARRAY_BUF]
        assert heap.memory[arr + layout.ARRAY_COUNT] == 3
        assert [heap.memory[buf + 8 * i] for i in range(3)] == [7, 7, 7]

    def test_ref_array_retains_initial(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.alloc_array(4, obj, layout.ELEM_REF)
        assert heap.memory[obj + layout.HEADER_RC] == 5  # 1 + 4 refs

    def test_string_round_trip(self, heap):
        s = heap.alloc_string("héllo")
        assert heap.read_string(s) == "héllo"

    def test_negative_count_traps(self, heap):
        with pytest.raises(RuntimeTrap):
            heap.alloc_array(-1, 0, layout.ELEM_PLAIN)


class TestRefcounting:
    def test_retain_release_balance(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.retain(obj)
        heap.retain(obj)
        assert heap.memory[obj + layout.HEADER_RC] == 3
        heap.release(obj)
        heap.release(obj)
        assert obj in heap.live_objects
        heap.release(obj)
        assert obj not in heap.live_objects

    def test_release_frees_children(self, heap):
        child = heap.alloc_class(16, layout.object_size_for_fields(2))
        parent = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.memory[parent + layout.class_field_offset(1)] = child
        heap.release(parent)
        assert not heap.live_objects, "child must be freed transitively"

    def test_deep_chain_release_no_recursion_limit(self, heap):
        # 20k-deep linked chain: release must be iterative.
        prev = 0
        for _ in range(20000):
            node = heap.alloc_class(16, layout.object_size_for_fields(2))
            heap.memory[node + layout.class_field_offset(1)] = prev
            prev = node
        heap.release(prev)
        assert not heap.live_objects

    def test_nil_retain_release_noop(self, heap):
        heap.retain(0)
        heap.release(0)

    def test_over_release_traps(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.release(obj)
        with pytest.raises(RuntimeTrap):
            heap.release(obj)

    def test_use_after_free_detected(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.release(obj)
        assert heap.memory.get(obj + layout.HEADER_RC) is None

    def test_retain_garbage_traps(self, heap):
        with pytest.raises(RuntimeTrap):
            heap.retain(0xBAD0)

    def test_immortal_ignored(self, heap):
        heap.memory[0x50] = layout.TYPE_ID_STRING
        heap.memory[0x58] = layout.IMMORTAL_RC
        heap.retain(0x50)
        heap.release(0x50)
        assert heap.memory[0x58] == layout.IMMORTAL_RC

    def test_array_of_refs_released(self, heap):
        a = heap.alloc_class(16, layout.object_size_for_fields(2))
        b = heap.alloc_class(16, layout.object_size_for_fields(2))
        arr = heap.alloc_array(2, 0, layout.ELEM_REF)
        buf = heap.memory[arr + layout.ARRAY_BUF]
        heap.memory[buf] = a
        heap.memory[buf + 8] = b
        heap.release(arr)
        assert not heap.live_objects

    def test_closure_releases_captures(self, heap):
        box = heap.alloc_box(layout.ELEM_PLAIN)
        clo = heap.alloc_closure(fnptr=0x4000, ncaptures=1)
        heap.memory[clo + layout.closure_capture_offset(0)] = box
        heap.release(clo)
        assert not heap.live_objects

    def test_box_set_ref_releases_old(self, heap):
        old = heap.alloc_class(16, layout.object_size_for_fields(2))
        new = heap.alloc_class(16, layout.object_size_for_fields(2))
        box = heap.alloc_box(layout.ELEM_REF)
        heap.box_set_ref(box, old)
        heap.box_set_ref(box, new)
        assert old not in heap.live_objects
        assert new in heap.live_objects

    def test_dealloc_partial_skips_children(self, heap):
        child = heap.alloc_class(16, layout.object_size_for_fields(2))
        parent = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.memory[parent + layout.class_field_offset(1)] = child
        heap.dealloc_partial(parent)
        assert child in heap.live_objects
        heap.release(child)

    def test_dealloc_partial_shared_traps(self, heap):
        obj = heap.alloc_class(16, layout.object_size_for_fields(2))
        heap.retain(obj)
        with pytest.raises(RuntimeTrap):
            heap.dealloc_partial(obj)


class TestArrayOps:
    def test_append_grows_capacity(self, heap):
        arr = heap.alloc_array(0, 0, layout.ELEM_PLAIN)
        for i in range(20):
            heap.array_append(arr, i * 3)
        assert heap.memory[arr + layout.ARRAY_COUNT] == 20
        buf = heap.memory[arr + layout.ARRAY_BUF]
        assert [heap.memory[buf + 8 * i] for i in range(20)] == \
            [i * 3 for i in range(20)]

    def test_remove_last(self, heap):
        arr = heap.alloc_array(2, 9, layout.ELEM_PLAIN)
        assert heap.array_remove_last(arr) == 9
        assert heap.memory[arr + layout.ARRAY_COUNT] == 1

    def test_remove_last_empty_traps(self, heap):
        arr = heap.alloc_array(0, 0, layout.ELEM_PLAIN)
        with pytest.raises(RuntimeTrap):
            heap.array_remove_last(arr)

    def test_old_buffer_freed_on_growth(self, heap):
        arr = heap.alloc_array(1, 0, layout.ELEM_PLAIN)
        old_buf = heap.memory[arr + layout.ARRAY_BUF]
        for i in range(10):
            heap.array_append(arr, i)
        assert old_buf not in heap.live_buffers


class TestTypeRegistry:
    def test_from_program(self):
        from repro.frontend.parser import parse_module
        from repro.frontend.sema import analyze_program

        info = analyze_program([parse_module("""
class Node {
    var next: Node
    var value: Int
    var label: String
    init() { self.next = nil\n self.value = 0\n self.label = "x" }
}
""", "M")])
        registry = TypeRegistry.from_program(info)
        decl = info.modules[0].classes[0]
        cls = registry.class_layout(decl.type_id)
        assert cls.num_fields == 3
        assert cls.ref_field_indices == [0, 2]

    def test_unknown_type_traps(self):
        with pytest.raises(RuntimeTrap):
            TypeRegistry().class_layout(999)
