"""Unit tests for the crash-recovery job journal (service/journal.py):
append/replay round trips, torn-tail tolerance, the journal_torn fault
site, checkpoint compaction, and checkpoint atomicity."""

import json
import os

from repro.pipeline.faults import FaultPlan
from repro.service.journal import JobJournal

SOURCES = {"main.swiftlet": "func main() { print(1) }\n"}
CONFIG = {"pipeline": "wholeprogram", "outline_rounds": 2}


def _journal(tmp_path, **kw):
    return JobJournal(str(tmp_path / "journal.jsonl"), **kw)


class TestAppendReplay:
    def test_empty_journal_replays_empty(self, tmp_path):
        replay = _journal(tmp_path).replay()
        assert replay.jobs == {}
        assert replay.order == []
        assert replay.torn_records == 0

    def test_submit_start_done_lifecycle(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, 30.0)
        journal.started("j1", 1)
        journal.done("j1", "ok", {"image": {"text_sha256": "aa"}})
        journal.close()

        replay = _journal(tmp_path).replay()
        state = replay.jobs["j1"]
        assert state.status == "done"
        assert state.sources == SOURCES
        assert state.config == CONFIG
        assert state.deadline == 30.0
        assert state.attempts == 1
        assert state.outcome["status"] == "ok"
        assert state.outcome["image"] == {"text_sha256": "aa"}
        assert replay.pending == []

    def test_unfinished_job_is_pending(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.started("j1", 1)
        journal.submitted("j2", SOURCES, CONFIG, 5.0)
        journal.close()

        replay = _journal(tmp_path).replay()
        assert [s.job_id for s in replay.pending] == ["j1", "j2"]
        assert replay.jobs["j1"].attempts == 1
        assert replay.jobs["j2"].attempts == 0

    def test_module_order_survives_replay_and_checkpoint(self, tmp_path):
        """Module order is semantic: a recovered job must rebuild the
        same program, so the sources map replays in insertion order."""
        ordered = {"Zeta": "z", "Alpha": "a", "Mid": "m"}
        journal = _journal(tmp_path)
        journal.submitted("j1", ordered, CONFIG, None)
        journal.close()
        replay = _journal(tmp_path).replay()
        assert list(replay.jobs["j1"].sources) == ["Zeta", "Alpha", "Mid"]
        compacting = _journal(tmp_path)
        compacting.checkpoint()
        replay = compacting.replay()
        assert list(replay.jobs["j1"].sources) == ["Zeta", "Alpha", "Mid"]

    def test_replay_preserves_submission_order(self, tmp_path):
        journal = _journal(tmp_path)
        ids = [f"job-{i}" for i in range(7)]
        for job_id in ids:
            journal.submitted(job_id, SOURCES, CONFIG, None)
        journal.close()
        assert _journal(tmp_path).replay().order == ids


class TestTornTail:
    def test_torn_tail_loses_only_the_last_record(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.submitted("j2", SOURCES, CONFIG, None)
        journal.close()
        # Simulate kill -9 mid-append: truncate the last line in half.
        path = journal.path
        with open(path, "rb") as fh:
            raw = fh.read()
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:-1]) + b"\n" + lines[-1][:len(lines[-1]) // 2]
        with open(path, "wb") as fh:
            fh.write(torn)

        replay = _journal(tmp_path).replay()
        assert replay.torn_records == 1
        assert list(replay.jobs) == ["j1"]

    def test_injected_torn_append_stays_confined(self, tmp_path):
        plan = FaultPlan(journal_torn_rate=1.0)
        journal = _journal(tmp_path, fault_plan=plan)
        # First append tears (rate 1.0) ...
        assert not journal.append({"rec": "submit", "id": "lost"})
        # ... but the live journal re-synchronises with a newline, so the
        # next record survives intact on its own line.
        journal.fault_plan = None
        assert journal.append({"rec": "submit", "id": "kept", "sources": {},
                               "config": {}, "deadline": None})
        journal.close()

        replay = journal.replay()
        assert replay.torn_records == 1
        assert list(replay.jobs) == ["kept"]

    def test_restart_after_real_crash_keeps_next_append(self, tmp_path):
        """kill -9 mid-append leaves no trailing newline; a *fresh*
        JobJournal over that file must re-sync before its first append,
        or the post-crash record is glued onto the torn line and every
        later replay (including checkpoint) silently drops it."""
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b'{"rec": "submit", "id": "half')  # torn, no newline

        restarted = _journal(tmp_path)
        restarted.submitted("j2", SOURCES, CONFIG, None)
        restarted.close()

        replay = _journal(tmp_path).replay()
        assert replay.torn_records == 1
        assert list(replay.jobs) == ["j1", "j2"]
        # checkpoint() rewrites the journal via replay(): the post-crash
        # submit must survive compaction too (the write-ahead contract).
        compacting = _journal(tmp_path)
        compacting.checkpoint()
        assert list(compacting.replay().jobs) == ["j1", "j2"]

    def test_non_dict_record_counts_as_torn(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b"[1,2,3]\n")
        replay = _journal(tmp_path).replay()
        assert replay.torn_records == 1
        assert list(replay.jobs) == ["j1"]


class TestCheckpoint:
    def test_checkpoint_folds_done_jobs(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.started("j1", 1)
        journal.started("j1", 2)
        journal.done("j1", "ok", {"attempts": 2})
        journal.submitted("j2", SOURCES, CONFIG, None)
        journal.checkpoint()

        with open(journal.path, "rb") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        # j1 folded to submit+done; j2 keeps its pending submit record.
        kinds = [(r["rec"], r["id"]) for r in records]
        assert kinds == [("submit", "j1"), ("done", "j1"), ("submit", "j2")]

        replay = journal.replay()
        assert replay.jobs["j1"].status == "done"
        assert [s.job_id for s in replay.pending] == ["j2"]

    def test_checkpoint_bounds_done_history(self, tmp_path):
        journal = _journal(tmp_path)
        for i in range(10):
            journal.submitted(f"j{i}", SOURCES, CONFIG, None)
            journal.done(f"j{i}", "ok", {})
        journal.checkpoint(keep_done=3)
        replay = journal.replay()
        assert sorted(replay.jobs) == ["j7", "j8", "j9"]

    def test_checkpoint_heals_torn_tail(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b'{"rec": "submit", "id": "half')  # torn, no newline
        journal = _journal(tmp_path)
        journal.checkpoint()
        replay = journal.replay()
        assert replay.torn_records == 0
        assert list(replay.jobs) == ["j1"]

    def test_checkpoint_leaves_no_temp_file(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.checkpoint()
        assert not os.path.exists(journal.path + ".ckpt.tmp")

    def test_append_after_checkpoint_continues_the_log(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submitted("j1", SOURCES, CONFIG, None)
        journal.checkpoint()
        journal.submitted("j2", SOURCES, CONFIG, None)
        journal.close()
        replay = _journal(tmp_path).replay()
        assert sorted(replay.jobs) == ["j1", "j2"]
