"""Unit tests for link-time whole-program stripping (strip_program).

These exercise the reachability walk on hand-built machine modules —
every edge kind the machine code can encode (BL calls, tail-call B,
ADRP/ADDlo address materialization), the no-entry no-op, and the byte
accounting against TargetSpec arithmetic.  The end-to-end behaviour
(identical sim output, monotone text) lives in
tests/property/test_strip_equivalence.py.
"""

from repro.isa.instructions import (
    MachineFunction,
    MachineInstr,
    MachineModule,
    Opcode,
    Sym,
)
from repro.lir.passes.globaldce import StripStats, strip_program
from repro.target import get_target

ARM64 = get_target("arm64")


def _fn(name, *instrs):
    fn = MachineFunction(name=name)
    block = fn.new_block("entry")
    for instr in instrs:
        block.append(instr)
    block.append(MachineInstr(Opcode.RET))
    return fn


def _bl(callee):
    return MachineInstr(Opcode.BL, (Sym(callee),))


def _tail(callee):
    return MachineInstr(Opcode.B, (Sym(callee),))


def _adrp(symbol):
    return MachineInstr(Opcode.ADRP, ("x0", Sym(symbol)))


def _names(modules):
    return {fn.name for m in modules for fn in m.functions}


class TestReachability:
    def test_direct_and_transitive_calls_survive(self):
        modules = [MachineModule(name="M", functions=[
            _fn("main", _bl("a")), _fn("a", _bl("b")), _fn("b"),
            _fn("dead"),
        ])]
        stats = strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main", "a", "b"}
        assert stats.functions_removed == 1
        assert stats.removed == ["dead"]

    def test_tail_call_is_an_edge(self):
        modules = [MachineModule(name="M", functions=[
            _fn("main", _tail("a")), _fn("a"), _fn("dead"),
        ])]
        strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main", "a"}

    def test_address_taken_is_an_edge(self):
        # ADRP @f materializes f's address (a BLR goes through this),
        # so an address-taken function is reachable even with no BL.
        modules = [MachineModule(name="M", functions=[
            _fn("main", _adrp("taken")), _fn("taken"), _fn("dead"),
        ])]
        strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main", "taken"}

    def test_dead_subgraph_removed_as_a_whole(self):
        modules = [MachineModule(name="M", functions=[
            _fn("main"), _fn("droot", _bl("dleaf")), _fn("dleaf"),
        ])]
        stats = strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main"}
        assert stats.functions_removed == 2

    def test_cross_module_edges(self):
        modules = [
            MachineModule(name="A", functions=[_fn("main", _bl("B::f"))]),
            MachineModule(name="B", functions=[_fn("B::f"), _fn("B::g")]),
        ]
        stats = strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main", "B::f"}
        assert set(stats.per_module) == {"B"}

    def test_runtime_symbols_are_not_roots_or_errors(self):
        # swift_retain is not a machine function: the edge just never
        # matches, and nothing blows up.
        modules = [MachineModule(name="M", functions=[
            _fn("main", _bl("swift_retain")), _fn("dead"),
        ])]
        strip_program(modules, "main", ARM64)
        assert _names(modules) == {"main"}


class TestNoOpCases:
    def test_no_entry_is_a_noop(self):
        modules = [MachineModule(name="M", functions=[_fn("f"), _fn("g")])]
        stats = strip_program(modules, None, ARM64)
        assert stats == StripStats()
        assert _names(modules) == {"f", "g"}

    def test_unknown_entry_is_a_noop(self):
        modules = [MachineModule(name="M", functions=[_fn("f")])]
        stats = strip_program(modules, "nope", ARM64)
        assert stats.functions_removed == 0
        assert _names(modules) == {"f"}

    def test_everything_reachable_removes_nothing(self):
        modules = [MachineModule(name="M", functions=[
            _fn("main", _bl("a")), _fn("a"),
        ])]
        stats = strip_program(modules, "main", ARM64)
        assert stats.functions_removed == 0
        assert stats.per_module == {}


class TestByteAccounting:
    def test_bytes_priced_like_the_linker(self):
        dead = _fn("dead", _bl("alsodead"))
        alsodead = _fn("alsodead")
        modules = [MachineModule(name="M", functions=[
            _fn("main"), dead, alsodead,
        ])]
        expected = (ARM64.function_text_bytes(dead)
                    + ARM64.function_text_bytes(alsodead))
        stats = strip_program(modules, "main", ARM64)
        assert stats.bytes_removed == expected
        assert stats.per_module["M"] == {"functions": 2, "bytes": expected}
