"""Smoke tests for every experiment module: each ``run()`` completes on a
tiny corpus, returns its documented result dataclass with populated
fields, ``format_report`` renders a non-empty string, and nothing drags
in a plotting backend as a side effect."""

import dataclasses
import sys

import pytest

from repro.experiments import ALL_EXPERIMENTS

#: name -> (fast kwargs, result field -> truthiness requirement).
#: Fields listed must exist; ``True`` additionally means "non-empty".
SMOKE = {
    "fig1_growth": (dict(scale="tiny", weeks=(0, 8), rounds=2),
                    {"points": True, "baseline_fit": False,
                     "optimized_fit": False}),
    "table1_landscape": (dict(scale="tiny", rounds=2),
                         {"rows": True, "savings": False}),
    "fig5_powerlaw": (dict(scale="tiny"),
                      {"stats": True, "fit": False, "census": True,
                       "top": True}),
    "fig6_fractal": (dict(scale="tiny"), {"clusters": True}),
    "fig7_cumulative": (dict(scale="tiny"),
                        {"curve": True, "patterns_for_90pct": False,
                         "total_patterns": False, "total_bytes": False}),
    "fig8_histogram": (dict(scale="tiny"), {"histogram": True}),
    "fig11_greedy": (dict(scale="tiny", rounds=2),
                     {"anecdote": False, "app_round1_saving_pct": False,
                      "app_final_saving_pct": False}),
    "fig12_rounds": (dict(scale="tiny", rounds_grid=(0, 1, 2)),
                     {"points": True}),
    "table2_stats": (dict(scale="tiny", rounds=2), {"stats": True}),
    "fig13_spans": (dict(scale="tiny", rounds=2, num_spans=3),
                    {"cells": True, "spans": True,
                     "dynamic_outlined_pct": False}),
    "data_layout": (dict(scale="tiny", rounds=2, num_spans=3),
                    {"rows": True}),
    "buildtime": (dict(scale="tiny", rounds_grid=(0, 1, 2)),
                  {"points": True}),
    "table4_benchmarks": (dict(names=("GCD", "QuickSort"), rounds=2,
                               include_pathological=False,
                               max_steps=2_000_000),
                          {"rows": True, "pathological": False}),
    "generality": (dict(rounds=2, targets=("arm64", "thumb2c")),
                   {"corpora": True, "kernel_guard_pattern_found": False,
                    "targets": True}),
    # future_work's report reads the (inlined, rounds=5) grid cell, so it
    # keeps the default round count; tiny scale keeps it fast anyway.
    "future_work": (dict(scale="tiny", num_spans=2),
                    {"headroom": False, "inline_grid": True,
                     "layout_rows": True}),
    "mergeorder": (dict(scale="tiny", rounds=2,
                        targets=("arm64", "thumb2c")),
                   {"rows": True, "targets": True}),
    "layout": (dict(scale="tiny", rounds=2),
               {"cells": True, "profile_edges": True,
                "profile_digest": True}),
}


def test_smoke_table_covers_every_experiment():
    assert set(SMOKE) == set(ALL_EXPERIMENTS)


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_smoke(name):
    module = ALL_EXPERIMENTS[name]
    kwargs, schema = SMOKE[name]
    result = module.run(**kwargs)
    assert dataclasses.is_dataclass(result), name
    for field, must_be_nonempty in schema.items():
        assert hasattr(result, field), f"{name}.{field}"
        if must_be_nonempty:
            assert getattr(result, field), f"{name}.{field} is empty"
    report = module.format_report(result)
    assert isinstance(report, str) and report.strip()
    # Experiments must stay headless: reports are plain text, and running
    # one must not import a plotting backend as a side effect.
    assert "matplotlib" not in sys.modules
    assert "matplotlib.pyplot" not in sys.modules


def test_mergeorder_optimistic_never_exceeds_exact():
    """The experiment's headline claim: in both phase orders, on every
    target, optimistic merging reports no more padded-text bytes than
    exact merging, and merging never beats the outline-only baseline by
    growing text."""
    from repro.experiments import mergeorder

    result = mergeorder.run(scale="tiny", rounds=2,
                            targets=("arm64", "thumb2c"))
    for target in result.targets:
        baseline = result.row(target, "off", "before").text_bytes
        for order in ("merge-only", "before", "after"):
            exact = result.row(target, "exact", order)
            optimistic = result.row(target, "optimistic", order)
            assert optimistic.text_bytes <= exact.text_bytes, \
                (target, order)
        for mode in ("exact", "optimistic"):
            for order in ("before", "after"):
                assert result.row(target, mode, order).text_bytes \
                    <= baseline, (target, mode, order)
    report = mergeorder.format_report(result)
    for token in ("arm64", "thumb2c", "optimistic", "merge-only"):
        assert token in report


def test_layout_c3_strictly_reduces_icache_misses_somewhere():
    """The layout experiment's headline (and this PR's acceptance bar):
    profile-guided callgraph-c3 records strictly fewer simulated icache
    misses than the source layout on at least one DeviceConfig, while the
    random control never beats c3 across the whole grid.

    Pinned to arm64 regardless of $REPRO_TARGET: the strict-reduction
    claim is about the arm64 appgen corpus (on thumb2c's denser code the
    tiny corpus ties on misses and the win shows up in text page faults
    and cycles instead — still covered by the <= assertions below, which
    run on the matrix target via the generic smoke test)."""
    from repro.experiments import layout

    result = layout.run(scale="tiny", rounds=2, target="arm64")
    assert result.c3_beats_source_somewhere, layout.format_report(result)
    total = {mode: sum(c.icache_misses for c in result.cells
                       if c.mode == mode) for mode in layout.MODES}
    assert total["callgraph-c3"] <= total["source"], total
    assert total["callgraph-c3"] <= total["random"], total
    report = layout.format_report(result)
    for token in ("iphone-6s", "iphone-11", "callgraph-c3", "miss rate"):
        assert token in report
