"""Unit tests for the build daemon (service/): wire protocol framing and
typed-error mapping, admission control and backpressure, the circuit
breaker state machine, cooperative cancellation scopes, deadline expiry,
service-level fault sites, and journal-backed restart recovery."""

import io
import time
from contextlib import contextmanager

import pytest

from repro.errors import (
    DeadlineExpiredError,
    JobCancelledError,
    ProtocolError,
    QueueFullError,
    ReproError,
    ServiceError,
)
from repro.pipeline.cancel import CancelScope, checkpoint, clamp_timeout
from repro.pipeline.config import BuildConfig
from repro.pipeline.faults import FaultPlan
from repro.service import (
    BuildService,
    CircuitBreaker,
    JobJournal,
    ServiceClient,
    ServiceConfig,
)
from repro.service import protocol
from repro.service.protocol import (
    config_from_wire,
    config_to_wire,
    error_to_wire,
    recv_frame,
    send_frame,
    wire_to_error,
)

SOURCES = {"main.swiftlet": """
func main() {
    var x = 20
    var y = 22
    print(x + y)
}
"""}


def _service_config(tmp_path, **kw):
    kw.setdefault("job_workers", 1)
    kw.setdefault("build_workers", 1)
    kw.setdefault("default_deadline", 60.0)
    return ServiceConfig(state_dir=str(tmp_path / "state"), **kw)


@contextmanager
def running_service(tmp_path, **kw):
    service = BuildService(_service_config(tmp_path, **kw))
    service.start()
    try:
        yield service
    finally:
        service.close()


class TestProtocolFraming:
    def test_roundtrip(self):
        buf = io.BytesIO()
        send_frame(buf, {"op": "ping", "n": 3})
        buf.seek(0)
        assert recv_frame(buf) == {"op": "ping", "n": 3}

    def test_eof_is_typed(self):
        with pytest.raises(ProtocolError, match="closed before"):
            recv_frame(io.BytesIO(b""))

    def test_torn_frame_is_typed(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(io.BytesIO(b'{"op": "ping"'))

    def test_bad_json_is_typed(self):
        with pytest.raises(ProtocolError, match="malformed"):
            recv_frame(io.BytesIO(b"not json\n"))

    def test_non_object_is_typed(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            recv_frame(io.BytesIO(b"[1,2]\n"))

    def test_oversized_frame_is_typed(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(io.BytesIO(b'{"padding": "xxxxxxxxxxxxxxxx"}\n'))

    def test_module_order_survives_the_wire(self):
        """Module order is semantic (type-id bases, data layout): the
        sources map must round-trip in insertion order, not sorted."""
        sources = {"Zeta": "z", "Alpha": "a", "Mid": "m"}
        buf = io.BytesIO()
        send_frame(buf, {"op": "submit", "sources": sources})
        buf.seek(0)
        received = recv_frame(buf)
        assert list(received["sources"]) == ["Zeta", "Alpha", "Mid"]


class TestWireErrors:
    def test_typed_error_survives_the_wire(self):
        exc = QueueFullError("queue full", depth=4, limit=4)
        back = wire_to_error(error_to_wire(exc))
        assert isinstance(back, QueueFullError)
        assert "queue full" in str(back)

    def test_untyped_exception_becomes_build_error(self):
        wire = error_to_wire(RuntimeError("daemon bug"))
        assert wire["error"] == "BuildError"
        assert "RuntimeError" in wire["message"]
        back = wire_to_error(wire)
        assert isinstance(back, ReproError)

    def test_unknown_class_name_falls_back_to_service_error(self):
        back = wire_to_error({"error": "NoSuchError", "message": "m"})
        assert isinstance(back, ServiceError)

    def test_non_error_class_name_is_rejected(self):
        # A peer cannot make the client instantiate arbitrary attributes.
        back = wire_to_error({"error": "annotations", "message": "m"})
        assert isinstance(back, ServiceError)


class TestConfigWire:
    def test_roundtrip(self):
        config = BuildConfig(pipeline="wholeprogram", outline_rounds=3,
                             merge_mode="exact")
        wire = config_to_wire(config)
        back = config_from_wire(wire)
        assert back.pipeline == "wholeprogram"
        assert back.outline_rounds == 3
        assert back.merge_mode == "exact"

    def test_unknown_field_is_typed(self):
        with pytest.raises(ServiceError, match="unknown build-config"):
            config_from_wire({"workers": 8})

    def test_operational_knobs_never_travel(self):
        # cache_dir/fault_plan/cancel_scope stay daemon-side by design.
        wire = config_to_wire(BuildConfig())
        for forbidden in ("workers", "cache_dir", "fault_plan",
                          "cancel_scope", "chunk_timeout", "incremental"):
            assert forbidden not in wire

    def test_every_fingerprinted_knob_is_wire_settable_or_excluded(self):
        # The whitelist is derived from the config partition, so a new
        # artifact-defining knob (e.g. ``strip``) is automatically
        # round-trippable; this pins the partition itself: every field
        # that enters a fingerprint either travels the wire or carries an
        # explicit exclusion reason in CONFIG_WIRE_EXCLUDED.
        from repro.pipeline.config import SPEED_FIELDS, config_fields
        from repro.service.protocol import (
            CONFIG_WIRE_EXCLUDED,
            CONFIG_WIRE_FIELDS,
        )

        fingerprinted = set(config_fields()) - SPEED_FIELDS
        assert set(CONFIG_WIRE_FIELDS) | CONFIG_WIRE_EXCLUDED == fingerprinted
        assert not set(CONFIG_WIRE_FIELDS) & CONFIG_WIRE_EXCLUDED
        # Exclusions must name real fields, or they rot silently.
        assert CONFIG_WIRE_EXCLUDED <= set(config_fields())
        # The knob this partition exists for: strip travels the wire.
        assert "strip" in CONFIG_WIRE_FIELDS
        roundtrip = config_from_wire(
            config_to_wire(BuildConfig(strip="program")))
        assert roundtrip.strip == "program"


class TestCancelScope:
    def test_live_scope_checkpoint_is_noop(self):
        scope = CancelScope(deadline_seconds=60.0)
        scope.check("anywhere")
        checkpoint(None, "no scope at all")

    def test_expired_deadline_raises_typed(self):
        scope = CancelScope(deadline_seconds=0.0, label="j1")
        time.sleep(0.01)
        with pytest.raises(DeadlineExpiredError, match="llc.*j1"):
            scope.check("llc")

    def test_cancel_raises_typed(self):
        scope = CancelScope()
        scope.cancel("drain")
        with pytest.raises(JobCancelledError, match="drain"):
            scope.check("link")

    def test_clamp_timeout(self):
        scope = CancelScope(deadline_seconds=5.0)
        assert clamp_timeout(None, 30.0) == 30.0
        assert clamp_timeout(CancelScope(), 30.0) == 30.0
        assert clamp_timeout(scope, 30.0) <= 5.0
        assert clamp_timeout(scope, None) <= 5.0


class TestCircuitBreaker:
    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(threshold=3, window=10, cooldown=2)
        breaker.record(True)
        breaker.record(True)
        assert breaker.state == "closed"
        breaker.record(True)
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_cooldown_then_close_with_cleared_window(self):
        breaker = CircuitBreaker(threshold=2, window=5, cooldown=2)
        breaker.record(True)
        breaker.record(True)
        assert breaker.is_open
        breaker.record(False)          # cooldown job 1
        assert breaker.is_open
        breaker.record(False)          # cooldown job 2 -> closes
        assert breaker.state == "closed"
        # The pre-trip failures are forgotten: one more does not re-trip.
        breaker.record(True)
        assert breaker.state == "closed"

    def test_window_slides(self):
        breaker = CircuitBreaker(threshold=2, window=2, cooldown=1)
        breaker.record(True)
        for _ in range(3):
            breaker.record(False)
        breaker.record(True)           # old failure slid out of the window
        assert breaker.state == "closed"


class TestAdmission:
    """Admission control without executors: construct (don't start) the
    service so the queue fills deterministically."""

    def test_queue_full_is_typed_backpressure(self, tmp_path):
        service = BuildService(_service_config(tmp_path, queue_size=2))
        service.submit_job(SOURCES, job_id="a")
        service.submit_job(SOURCES, job_id="b")
        with pytest.raises(QueueFullError) as info:
            service.submit_job(SOURCES, job_id="c")
        assert info.value.depth == 2
        assert info.value.limit == 2
        assert service.metrics.counters["service.rejected_queue_full"] == 1

    def test_rejection_is_never_journaled(self, tmp_path):
        service = BuildService(_service_config(tmp_path, queue_size=1))
        service.submit_job(SOURCES, job_id="kept")
        with pytest.raises(QueueFullError):
            service.submit_job(SOURCES, job_id="rejected")
        replay = JobJournal(service.journal.path).replay()
        assert list(replay.jobs) == ["kept"]

    def test_resubmit_of_known_id_is_idempotent(self, tmp_path):
        service = BuildService(_service_config(tmp_path, queue_size=4))
        first = service.submit_job(SOURCES, job_id="same")
        again = service.submit_job(SOURCES, job_id="same")
        assert first is again
        assert service._queue.qsize() == 1

    def test_draining_rejects_with_typed_error(self, tmp_path):
        service = BuildService(_service_config(tmp_path))
        service.request_drain("test")
        with pytest.raises(ServiceError, match="draining"):
            service.submit_job(SOURCES)
        assert service.metrics.counters["service.rejected_draining"] == 1

    def test_bad_config_rejected_before_admission(self, tmp_path):
        service = BuildService(_service_config(tmp_path))
        with pytest.raises(ServiceError, match="unknown build-config"):
            service.submit_job(SOURCES, wire_config={"cache_dir": "/x"})
        assert service._queue.qsize() == 0

    def test_bad_sources_rejected(self, tmp_path):
        service = BuildService(_service_config(tmp_path))
        with pytest.raises(ServiceError, match="non-empty"):
            service.submit_job({})

    def test_non_string_source_value_rejected_not_stringified(self, tmp_path):
        """A submit frame with a non-string source (a number, a nested
        object) gets the typed rejection — never a silent str() build."""
        service = BuildService(_service_config(tmp_path))
        response = service.handle_request(
            {"op": "submit", "sources": {"Main": 42}, "wait": False})
        assert response["ok"] is False
        assert response["error"] == "ServiceError"
        assert "non-empty" in response["message"]
        assert service._queue.qsize() == 0
        replay = JobJournal(service.journal.path).replay()
        assert replay.jobs == {}

    def test_drain_reason_surfaces_in_summary(self, tmp_path):
        service = BuildService(_service_config(tmp_path))
        assert "drain_reason" not in service.summary()
        service.request_drain("signal 15")
        service.request_drain("second reason is ignored")
        assert service.summary()["drain_reason"] == "signal 15"


class TestRunningService:
    def test_ok_job_reports_image_and_build_report(self, tmp_path):
        with running_service(tmp_path) as service:
            response = service.handle_request(
                {"op": "submit", "sources": SOURCES, "wait": True})
            assert response["ok"] is True
            job = response["job"]
            assert job["status"] == "ok"
            assert len(job["image"]["text_sha256"]) == 64
            assert job["report"]["num_modules"] == 1

    def test_deadline_expiry_is_typed_not_a_hang(self, tmp_path):
        with running_service(tmp_path) as service:
            job = service.submit_job(SOURCES, deadline=0.0)
            assert job.done.wait(timeout=30.0)
            assert job.status == "error"
            assert job.error["error"] == "DeadlineExpiredError"

    def test_deadline_expire_fault_forces_zero_budget(self, tmp_path):
        plan = FaultPlan(deadline_expire_rate=1.0)
        with running_service(tmp_path, fault_plan=plan) as service:
            job = service.submit_job(SOURCES, deadline=120.0)
            assert job.done.wait(timeout=30.0)
            assert job.status == "error"
            assert job.error["error"] == "DeadlineExpiredError"

    def test_sigterm_midphase_fault_drains_but_finishes_job(self, tmp_path):
        plan = FaultPlan(sigterm_midphase_rate=1.0)
        with running_service(tmp_path, fault_plan=plan) as service:
            job = service.submit_job(SOURCES)
            assert job.done.wait(timeout=30.0)
            # Drain never abandons in-flight work: the job completed ...
            assert job.status == "ok"
            assert service._draining.is_set()
            # ... and later submitters get the typed draining rejection.
            with pytest.raises(ServiceError, match="draining"):
                service.submit_job(SOURCES)

    def test_unknown_op_gets_typed_reply(self, tmp_path):
        with running_service(tmp_path) as service:
            response = service.handle_request({"op": "frobnicate"})
            assert response["ok"] is False
            assert isinstance(wire_to_error(response), ServiceError)

    def test_query_unknown_job_gets_typed_reply(self, tmp_path):
        with running_service(tmp_path) as service:
            response = service.handle_request({"op": "query", "id": "nope"})
            assert response["ok"] is False
            assert "unknown job" in response["message"]

    def test_breaker_open_forces_serial_uncached(self, tmp_path):
        with running_service(tmp_path, breaker_threshold=1,
                             breaker_window=2,
                             breaker_cooldown=1) as service:
            service.breaker.record(True)  # trip directly
            assert service.breaker.is_open
            job = service.submit_job(SOURCES)
            assert job.done.wait(timeout=30.0)
            assert job.status == "ok"
            assert job.breaker_open is True
            assert job.report["workers"] == 1
            assert job.report["cache_enabled"] is False


class TestWireAuth:
    """The TCP socket is open to any local user; the shared secret from
    the 0600 endpoint file is what authorises a frame."""

    @contextmanager
    def _server(self, tmp_path):
        service = BuildService(_service_config(tmp_path))
        host, port = service.start_server()
        try:
            yield service, host, port
        finally:
            service.stop_server()
            service.journal.close()

    def test_missing_or_wrong_token_is_rejected_typed(self, tmp_path):
        with self._server(tmp_path) as (service, host, port):
            for bad in (None, "wrong-token"):
                client = ServiceClient(host=host, port=port, timeout=10,
                                       auth_token=bad)
                with pytest.raises(ServiceError, match="authentication"):
                    client.ping()
            assert service.metrics.counters["service.rejected_auth"] == 2

    def test_unauthenticated_drain_does_not_drain(self, tmp_path):
        with self._server(tmp_path) as (service, host, port):
            client = ServiceClient(host=host, port=port, timeout=10)
            with pytest.raises(ServiceError, match="authentication"):
                client.drain()
            assert not service._draining.is_set()

    def test_token_from_endpoint_file_authorises(self, tmp_path):
        with self._server(tmp_path) as (service, _host, _port):
            client = ServiceClient(state_dir=service.config.state_dir,
                                   timeout=10)
            assert client.auth_token == service.auth_token
            assert client.ping() is True

    def test_endpoint_file_is_owner_only(self, tmp_path):
        import os
        import stat

        with self._server(tmp_path) as (service, _host, _port):
            path = BuildService.endpoint_path(service.config.state_dir)
            assert stat.S_IMODE(os.stat(path).st_mode) == 0o600


class TestRecovery:
    def test_pending_jobs_rerun_after_restart(self, tmp_path):
        config = _service_config(tmp_path)
        # First daemon: journal a job, then "crash" before running it
        # (the service is never started, mirroring kill -9 pre-pickup).
        crashed = BuildService(config)
        crashed.submit_job(SOURCES, job_id="interrupted")
        crashed.journal.close()

        restarted = BuildService(_service_config(tmp_path))
        restarted.start()
        try:
            assert restarted.recovered_count == 1
            job = restarted.job("interrupted")
            assert job.done.wait(timeout=30.0)
            assert job.status == "ok"
            assert job.recovered is True
            assert len(job.image["text_sha256"]) == 64
        finally:
            restarted.close()

    def test_done_jobs_served_from_journal_after_restart(self, tmp_path):
        with running_service(tmp_path) as service:
            job = service.submit_job(SOURCES, job_id="finished")
            assert job.done.wait(timeout=30.0)
            reference_sha = job.image["text_sha256"]

        restarted = BuildService(_service_config(tmp_path))
        restarted.start()
        try:
            assert restarted.recovered_count == 0  # nothing to re-run
            response = restarted.handle_request(
                {"op": "query", "id": "finished"})
            assert response["ok"] is True
            assert response["job"]["image"]["text_sha256"] == reference_sha
            assert response["job"]["recovered"] is True
        finally:
            restarted.close()

    def test_recovered_rerun_is_bit_identical(self, tmp_path):
        with running_service(tmp_path) as service:
            job = service.submit_job(SOURCES, job_id="ref")
            assert job.done.wait(timeout=30.0)
            reference_sha = job.image["text_sha256"]

        # Journal a second copy of the same program as pending, restart,
        # and compare the recovered build against the reference.
        crashed = BuildService(_service_config(tmp_path))
        crashed.submit_job(SOURCES, job_id="revenant")
        crashed.journal.close()

        restarted = BuildService(_service_config(tmp_path))
        restarted.start()
        try:
            job = restarted.job("revenant")
            assert job.done.wait(timeout=30.0)
            assert job.status == "ok"
            assert job.image["text_sha256"] == reference_sha
        finally:
            restarted.close()
