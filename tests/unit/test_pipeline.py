"""Pipeline driver tests: configs, reports, phase bookkeeping."""

import pytest

from repro.errors import ReproError
from repro.pipeline import (
    BuildConfig,
    build_lir_modules,
    build_program,
    frontend_to_lir,
    run_build,
)

SOURCE = """
func helper(x: Int) -> Int { return x + 41 }
func main() { print(helper(x: 1)) }
"""


class TestFrontendToLIR:
    def test_produces_optimized_ssa_modules(self):
        program, modules = frontend_to_lir({"M": SOURCE})
        assert len(modules) == 1
        module = modules[0]
        assert module.entry_symbol == "M::main"
        from repro.lir import ir
        from repro.lir.verifier import verify_module

        verify_module(module, check_ssa=True)
        assert not any(isinstance(i, ir.Alloca)
                       for fn in module.functions
                       for i in fn.instructions())

    def test_accepts_pairs_and_dicts(self):
        _, from_dict = frontend_to_lir({"M": SOURCE})
        _, from_pairs = frontend_to_lir([("M", SOURCE)])
        assert from_dict[0].num_instrs == from_pairs[0].num_instrs


class TestBuildProgram:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ReproError):
            build_program({"M": SOURCE}, BuildConfig(pipeline="mystery"))

    def test_phase_work_recorded(self):
        result = build_program({"M": SOURCE},
                               BuildConfig(pipeline="wholeprogram"))
        for phase in ("llvm-link", "opt", "llc", "link"):
            assert result.phase_work[phase] > 0

    def test_default_pipeline_produces_module_per_input(self):
        sources = {
            "A": "func fa() -> Int { return 1 }",
            "Main": "import A\nfunc main() { print(fa()) }",
        }
        result = build_program(sources, BuildConfig(pipeline="default"))
        assert len(result.machine_modules) == 2

    def test_wholeprogram_merges_to_one(self):
        sources = {
            "A": "func fa() -> Int { return 1 }",
            "Main": "import A\nfunc main() { print(fa()) }",
        }
        result = build_program(sources, BuildConfig(pipeline="wholeprogram"))
        assert len(result.machine_modules) == 1

    def test_sizes_report_consistent(self):
        from repro.target import get_target

        result = build_program({"M": SOURCE})
        sizes = result.sizes
        spec = get_target(result.image.target_name)
        encoded = sum(spec.instr_bytes(i) for i in result.image.instrs)
        assert sizes.text_bytes == (encoded
                                    + result.image.alignment_padding_bytes)
        assert sizes.binary_bytes == (sizes.text_bytes + sizes.data_bytes
                                      + sizes.metadata_bytes)

    def test_sizes_memoized_and_stable(self):
        # Regression: `sizes` used to recompute SizeReport.from_image on
        # every access; it must now be computed once and stay stable.
        result = build_program({"M": SOURCE})
        first = result.sizes
        assert result.sizes is first
        assert result.sizes == first

    def test_report_has_phase_walls(self):
        result = build_program({"M": SOURCE})
        for phase in ("parse", "sema", "silgen", "lower", "llc", "link"):
            assert phase in result.report.phase_wall
        assert result.report.num_modules == 1
        assert result.report.total_wall > 0
        assert result.report.summary_lines()

    def test_run_build_executes_entry(self):
        result = build_program({"M": SOURCE})
        execution = run_build(result)
        assert execution.output == ["42"]

    def test_registry_reflects_classes(self):
        source = """
class Thing { var v: Int\n var other: Thing
    init() { self.v = 0\n self.other = nil } }
func main() { let t = Thing()\n print(t.v) }
"""
        result = build_program({"M": source})
        decl = result.program.modules[0].classes[0]
        layout = result.registry.class_layout(decl.type_id)
        assert layout.num_fields == 2
        assert layout.ref_field_indices == [1]


class TestBuildLIRModules:
    def test_standalone_lir_input(self):
        from repro.lir import ir

        fn = ir.LIRFunction(symbol="lib::f", has_return_value=True)
        p = fn.new_value()
        fn.params = [p]
        fn.param_is_float = [False]
        blk = fn.new_block("entry")
        out = fn.new_value()
        blk.instrs.append(ir.BinOp(result=out, op="*", lhs=p, rhs=ir.Const(2)))
        blk.instrs.append(ir.Ret(value=out))
        module = ir.LIRModule(name="lib", functions=[fn])
        result = build_lir_modules([module],
                                   BuildConfig(global_dce=False,
                                               outline_rounds=0))
        assert result.image.symbols["lib::f"]
