"""LIR pass unit tests: mem2reg, constprop, dce, simplifycfg, phielim."""

import pytest

from repro.errors import VerifierError
from repro.lir import ir
from repro.lir.cfg import compute_dominators, dominance_frontiers, reachable_blocks
from repro.lir.passes import constprop, dce, mem2reg, phielim, simplifycfg
from repro.lir.verifier import verify_function


def build_diamond_with_alloca():
    """if (p) x = 1 else x = 2; return x  -- via an alloca."""
    fn = ir.LIRFunction(symbol="f", has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    entry = fn.new_block("entry")
    slot = fn.new_value()
    entry.instrs.append(ir.Alloca(result=slot, name="x"))
    entry.instrs.append(ir.Store(value=ir.Const(0), ptr=slot))
    entry.instrs.append(ir.CondBr(cond=p, true_target="then",
                                  false_target="else"))
    then = fn.new_block("then")
    then.instrs.append(ir.Store(value=ir.Const(1), ptr=slot))
    then.instrs.append(ir.Br(target="join"))
    els = fn.new_block("else")
    els.instrs.append(ir.Store(value=ir.Const(2), ptr=slot))
    els.instrs.append(ir.Br(target="join"))
    join = fn.new_block("join")
    out = fn.new_value()
    join.instrs.append(ir.Load(result=out, ptr=slot))
    join.instrs.append(ir.Ret(value=out))
    return fn


class TestCFG:
    def test_reachable_blocks_rpo(self):
        fn = build_diamond_with_alloca()
        rpo = reachable_blocks(fn)
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "then", "else", "join"}
        assert rpo.index("join") > rpo.index("then")

    def test_dominators(self):
        fn = build_diamond_with_alloca()
        idom = compute_dominators(fn)
        assert idom["entry"] is None
        assert idom["then"] == "entry"
        assert idom["else"] == "entry"
        assert idom["join"] == "entry"

    def test_dominance_frontiers(self):
        fn = build_diamond_with_alloca()
        df = dominance_frontiers(fn)
        assert df["then"] == {"join"}
        assert df["else"] == {"join"}
        assert df["entry"] == set()


class TestMem2Reg:
    def test_diamond_gets_phi(self):
        fn = build_diamond_with_alloca()
        promoted = mem2reg.promote_allocas(fn)
        assert promoted == 1
        verify_function(fn, check_ssa=True)
        phis = fn.block("join").phis()
        assert len(phis) == 1
        incoming = {lbl: op for lbl, op in phis[0].incomings}
        assert incoming["then"] == ir.Const(1)
        assert incoming["else"] == ir.Const(2)
        # No loads/stores/allocas remain.
        kinds = {type(i).__name__ for i in fn.instructions()}
        assert "Alloca" not in kinds and "Load" not in kinds \
            and "Store" not in kinds

    def test_loop_variable(self):
        # i = 0; while (i < p) i = i + 1; return i
        fn = ir.LIRFunction(symbol="loop", has_return_value=True)
        p = fn.new_value()
        fn.params = [p]
        fn.param_is_float = [False]
        entry = fn.new_block("entry")
        slot = fn.new_value()
        entry.instrs.append(ir.Alloca(result=slot, name="i"))
        entry.instrs.append(ir.Store(value=ir.Const(0), ptr=slot))
        entry.instrs.append(ir.Br(target="cond"))
        cond = fn.new_block("cond")
        iv = fn.new_value()
        cond.instrs.append(ir.Load(result=iv, ptr=slot))
        c = fn.new_value()
        cond.instrs.append(ir.Cmp(result=c, pred="<", lhs=iv, rhs=p))
        cond.instrs.append(ir.CondBr(cond=c, true_target="body",
                                     false_target="exit"))
        body = fn.new_block("body")
        iv2 = fn.new_value()
        body.instrs.append(ir.Load(result=iv2, ptr=slot))
        nxt = fn.new_value()
        body.instrs.append(ir.BinOp(result=nxt, op="+", lhs=iv2,
                                    rhs=ir.Const(1)))
        body.instrs.append(ir.Store(value=nxt, ptr=slot))
        body.instrs.append(ir.Br(target="cond"))
        exit_ = fn.new_block("exit")
        out = fn.new_value()
        exit_.instrs.append(ir.Load(result=out, ptr=slot))
        exit_.instrs.append(ir.Ret(value=out))

        mem2reg.promote_allocas(fn)
        verify_function(fn, check_ssa=True)
        phis = fn.block("cond").phis()
        assert len(phis) == 1
        labels = {lbl for lbl, _ in phis[0].incomings}
        assert labels == {"entry", "body"}


class TestConstProp:
    def test_folds_arithmetic(self):
        fn = ir.LIRFunction(symbol="c", has_return_value=True)
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="*", lhs=ir.Const(6),
                                     rhs=ir.Const(7)))
        entry.instrs.append(ir.Ret(value=a))
        constprop.run_on_function(fn)
        ret = fn.entry.terminator
        assert ret.value == ir.Const(42)

    def test_truncating_division_semantics(self):
        # AArch64 SDIV truncates toward zero: -7 / 2 == -3.
        fn = ir.LIRFunction(symbol="d", has_return_value=True)
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="/", lhs=ir.Const(-7),
                                     rhs=ir.Const(2)))
        b = fn.new_value()
        entry.instrs.append(ir.BinOp(result=b, op="%", lhs=ir.Const(-7),
                                     rhs=ir.Const(2)))
        s = fn.new_value()
        entry.instrs.append(ir.BinOp(result=s, op="-", lhs=a, rhs=b))
        entry.instrs.append(ir.Ret(value=s))
        constprop.run_on_function(fn)
        assert fn.entry.terminator.value == ir.Const(-3 - (-1))

    def test_division_by_zero_not_folded(self):
        fn = ir.LIRFunction(symbol="z", has_return_value=True)
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="/", lhs=ir.Const(1),
                                     rhs=ir.Const(0)))
        entry.instrs.append(ir.Ret(value=a))
        constprop.run_on_function(fn)
        # The division must survive (it traps at runtime).
        assert any(isinstance(i, ir.BinOp) for i in fn.instructions())

    def test_folds_conditional_branch(self):
        fn = build_diamond_with_alloca()
        fn.entry.instrs[-1] = ir.CondBr(cond=ir.Const(1), true_target="then",
                                        false_target="else")
        mem2reg.promote_allocas(fn)
        constprop.run_on_function(fn)
        simplifycfg.run_on_function(fn)
        dce.run_on_function(fn)
        labels = {blk.label for blk in fn.blocks}
        assert "else" not in labels

    def test_unsigned_compare_folding(self):
        fn = ir.LIRFunction(symbol="u", has_return_value=True)
        entry = fn.new_block("entry")
        a = fn.new_value()
        # -1 as unsigned is huge: (u>= 5) must fold to 1.
        entry.instrs.append(ir.Cmp(result=a, pred="u>=", lhs=ir.Const(-1),
                                   rhs=ir.Const(5)))
        entry.instrs.append(ir.Ret(value=a))
        constprop.run_on_function(fn)
        assert fn.entry.terminator.value == ir.Const(1)


class TestDCE:
    def test_removes_unused_pure(self):
        fn = ir.LIRFunction(symbol="d")
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="+", lhs=ir.Const(1),
                                     rhs=ir.Const(2)))
        entry.instrs.append(ir.Ret())
        dce.run_on_function(fn)
        assert len(fn.entry.instrs) == 1

    def test_keeps_calls_and_stores(self):
        fn = ir.LIRFunction(symbol="d")
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.Call(result=a, callee="g", args=[]))
        entry.instrs.append(ir.Ret())
        dce.run_on_function(fn)
        assert any(isinstance(i, ir.Call) for i in fn.instructions())

    def test_transitive_removal(self):
        fn = ir.LIRFunction(symbol="d")
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="+", lhs=ir.Const(1),
                                     rhs=ir.Const(2)))
        b = fn.new_value()
        entry.instrs.append(ir.BinOp(result=b, op="*", lhs=a, rhs=a))
        entry.instrs.append(ir.Ret())
        removed = dce.run_on_function(fn)
        assert removed == 2


class TestPhiElim:
    def test_copies_inserted(self):
        fn = build_diamond_with_alloca()
        mem2reg.promote_allocas(fn)
        copies = phielim.run_on_function(fn)
        # one staging copy per incoming edge + one at the phi site
        assert copies == 3
        assert not any(isinstance(i, ir.Phi) for i in fn.instructions())
        verify_function(fn, check_ssa=False)

    def test_swap_problem(self):
        """Two phis that exchange values around a loop (the classic case
        broken by naive sequential copy insertion)."""
        fn = ir.LIRFunction(symbol="swap", has_return_value=True)
        p = fn.new_value()
        fn.params = [p]
        fn.param_is_float = [False]
        entry = fn.new_block("entry")
        entry.instrs.append(ir.Br(target="loop"))
        loop = fn.new_block("loop")
        a = fn.new_value()
        b = fn.new_value()
        phi_a = ir.Phi(result=a, incomings=[("entry", ir.Const(1)),
                                            ("loop", b)])
        phi_b = ir.Phi(result=b, incomings=[("entry", ir.Const(2)),
                                            ("loop", a)])
        loop.instrs.append(phi_a)
        loop.instrs.append(phi_b)
        cond = fn.new_value()
        loop.instrs.append(ir.Cmp(result=cond, pred="<", lhs=a, rhs=p))
        loop.instrs.append(ir.CondBr(cond=cond, true_target="loop",
                                     false_target="exit"))
        exit_ = fn.new_block("exit")
        diff = fn.new_value()
        exit_.instrs.append(ir.BinOp(result=diff, op="-", lhs=a, rhs=b))
        exit_.instrs.append(ir.Ret(value=diff))
        phielim.run_on_function(fn)
        # Semantics: after one iteration a=2, b=1.  Verify by symbolic
        # interpretation of the copies.
        env = {}

        def read(op):
            if isinstance(op, ir.Const):
                return op.value
            return env[op]

        # entry -> loop staging copies:
        for instr in fn.block("entry").instrs:
            if isinstance(instr, ir.Copy):
                env[instr.result] = read(instr.value)
        # loop header copies (first iteration):
        header = [i for i in fn.block("loop").instrs
                  if isinstance(i, ir.Copy)]
        staging = header[:2]
        for instr in staging:
            env[instr.result] = read(instr.value)
        assert env[a] == 1 and env[b] == 2
        # back-edge staging copies read the *current* a/b, then the header
        # copies swap them without interference:
        tail = [i for i in fn.block("loop").instrs if isinstance(i, ir.Copy)
                and i not in staging]
        for instr in tail:
            env[instr.result] = read(instr.value)
        for instr in staging:
            env[instr.result] = read(instr.value)
        assert env[a] == 2 and env[b] == 1


class TestVerifier:
    def test_detects_use_before_def(self):
        fn = ir.LIRFunction(symbol="bad")
        entry = fn.new_block("entry")
        a = fn.new_value()
        b = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="+", lhs=b, rhs=ir.Const(1)))
        entry.instrs.append(ir.Ret())
        with pytest.raises(VerifierError):
            verify_function(fn, check_ssa=True)

    def test_detects_missing_terminator(self):
        fn = ir.LIRFunction(symbol="bad")
        entry = fn.new_block("entry")
        entry.instrs.append(ir.BinOp(result=fn.new_value(), op="+",
                                     lhs=ir.Const(1), rhs=ir.Const(2)))
        with pytest.raises(VerifierError):
            verify_function(fn)

    def test_detects_unknown_branch_target(self):
        fn = ir.LIRFunction(symbol="bad")
        entry = fn.new_block("entry")
        entry.instrs.append(ir.Br(target="nowhere"))
        with pytest.raises(VerifierError):
            verify_function(fn)

    def test_detects_double_definition(self):
        fn = ir.LIRFunction(symbol="bad")
        entry = fn.new_block("entry")
        a = fn.new_value()
        entry.instrs.append(ir.BinOp(result=a, op="+", lhs=ir.Const(1),
                                     rhs=ir.Const(2)))
        entry.instrs.append(ir.BinOp(result=a, op="+", lhs=ir.Const(1),
                                     rhs=ir.Const(2)))
        entry.instrs.append(ir.Ret())
        with pytest.raises(VerifierError):
            verify_function(fn, check_ssa=True)
