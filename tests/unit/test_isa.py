"""ISA model unit tests: registers, instruction metadata, encoding."""

import pytest

from repro.isa.instructions import (
    Cond,
    Label,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    MachineModule,
    Opcode,
    Sym,
    is_mov_rr,
    materialize_constant,
    mov_rr,
)
from repro.isa.registers import (
    ALLOCATABLE_FPRS,
    ALLOCATABLE_GPRS,
    CALLEE_SAVED_GPRS,
    ERROR_REG,
    RegClass,
    VirtualRegisterAllocator,
    is_callee_saved,
    is_physical,
    is_virtual,
    reg_class,
)


class TestRegisters:
    def test_classification(self):
        assert is_physical("x0") and is_physical("d31") and is_physical("sp")
        assert not is_physical("v3")
        assert is_virtual("v3") and is_virtual("fv12")
        assert not is_virtual("x3")

    def test_reg_class(self):
        assert reg_class("x5") is RegClass.GPR
        assert reg_class("d5") is RegClass.FPR
        assert reg_class("v1") is RegClass.GPR
        assert reg_class("fv1") is RegClass.FPR

    def test_error_register_reserved(self):
        assert ERROR_REG == "x21"
        assert ERROR_REG not in ALLOCATABLE_GPRS
        assert ERROR_REG not in CALLEE_SAVED_GPRS

    def test_scratch_not_allocatable(self):
        for scratch in ("x15", "x16", "x17", "x18"):
            assert scratch not in ALLOCATABLE_GPRS
        for scratch in ("d16", "d17"):
            assert scratch not in ALLOCATABLE_FPRS

    def test_callee_saved(self):
        assert is_callee_saved("x19") and is_callee_saved("d8")
        assert is_callee_saved("x29") and is_callee_saved("x30")
        assert not is_callee_saved("x0")

    def test_virtual_allocator(self):
        alloc = VirtualRegisterAllocator()
        assert alloc.new_gpr() == "v0"
        assert alloc.new_gpr() == "v1"
        assert alloc.new_fpr() == "fv0"
        assert alloc.new(RegClass.FPR) == "fv1"


class TestMachineInstr:
    def test_defs_uses_alu(self):
        instr = MachineInstr(Opcode.ADDXrr, ("x0", "x1", "x2"))
        assert instr.defs() == ("x0",)
        assert instr.uses() == ("x1", "x2")

    def test_xzr_filtered(self):
        instr = mov_rr("x0", "x3")
        assert "xzr" not in instr.uses()
        assert is_mov_rr(instr)

    def test_flags_def_use(self):
        subs = MachineInstr(Opcode.SUBSXrr, ("xzr", "x1", "x2"))
        assert "nzcv" in subs.defs()
        cset = MachineInstr(Opcode.CSETXi, ("x0", Cond.EQ))
        assert "nzcv" in cset.uses()

    def test_call_metadata(self):
        bl = MachineInstr(Opcode.BL, (Sym("f"),), implicit_uses=("x0",),
                          implicit_defs=("x0",))
        assert bl.is_call
        assert "x30" in bl.defs()
        assert bl.callee() == "f"
        assert not bl.is_tail_call

    def test_tail_call(self):
        b_sym = MachineInstr(Opcode.B, (Sym("f"),))
        assert b_sym.is_tail_call and b_sym.is_terminator
        b_label = MachineInstr(Opcode.B, (Label("loop"),))
        assert not b_label.is_tail_call
        assert b_label.branch_target() == "loop"

    def test_sp_predicates(self):
        push = MachineInstr(Opcode.STPXpre, ("x29", "x30", "sp", -16))
        assert push.writes_sp() and push.touches_lr()
        load = MachineInstr(Opcode.LDRXui, ("x16", "sp", 8))
        assert load.reads_sp() and not load.writes_sp()

    def test_key_identity(self):
        a = MachineInstr(Opcode.ADDXri, ("x0", "x1", 4))
        b = MachineInstr(Opcode.ADDXri, ("x0", "x1", 4))
        c = MachineInstr(Opcode.ADDXri, ("x0", "x1", 5))
        assert a.key() == b.key() != c.key()

    def test_render(self):
        instr = MachineInstr(Opcode.BL, (Sym("swift_retain"),))
        assert instr.render() == "BL @swift_retain"
        assert mov_rr("x0", "x20").render() == "ORRXrs $x0, $xzr, $x20"

    def test_cond_negate(self):
        assert Cond.EQ.negate() is Cond.NE
        assert Cond.HS.negate() is Cond.LO
        assert Cond.LT.negate() is Cond.GE


class TestContainers:
    def _function(self):
        fn = MachineFunction(name="f")
        entry = fn.new_block("entry")
        entry.append(MachineInstr(Opcode.CBZX, ("x0", Label("exit"))))
        body = fn.new_block("body")
        body.append(MachineInstr(Opcode.ADDXri, ("x0", "x0", 1)))
        exit_ = fn.new_block("exit")
        exit_.append(MachineInstr(Opcode.RET))
        return fn

    def test_block_navigation(self):
        fn = self._function()
        assert fn.block("body").instrs[0].opcode is Opcode.ADDXri
        with pytest.raises(KeyError):
            fn.block("nope")
        assert fn.blocks[0].successors() == ["exit"]
        assert fn.blocks[0].falls_through()
        assert not fn.blocks[2].falls_through()

    def test_size_accounting(self):
        fn = self._function()
        assert fn.num_instrs == 3
        assert fn.size_bytes == 12
        module = MachineModule(name="m", functions=[fn])
        assert module.text_bytes == 12

    def test_size_helpers_on_spec(self):
        from repro.target.arm64 import ARM64

        fn = self._function()
        assert ARM64.function_text_bytes(fn) == 12
        assert ARM64.total_text_bytes([fn, fn]) == 24
        assert (ARM64.total_metadata_bytes([fn, fn])
                == 2 * ARM64.function_metadata_bytes)


class TestMaterializeConstant:
    @pytest.mark.parametrize("value,max_instrs", [
        (0, 1), (1, 1), (0xFFFF, 1), (0x10000, 1), (-1, 1), (-2, 1),
        (0x12345678, 2), (-0x10000, 2),
    ])
    def test_instruction_counts(self, value, max_instrs):
        assert len(materialize_constant("x0", value)) <= max_instrs
