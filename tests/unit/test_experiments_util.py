"""Unit tests for experiment utilities and result dataclasses."""

import pytest

from repro.analysis.regression import linear_fit
from repro.experiments.common import SCALES, app_spec, format_table, pct_saving
from repro.experiments.fig1_growth import GrowthPoint, GrowthResult
from repro.experiments.fig12_rounds import RoundsPoint, RoundsResult
from repro.experiments.table4_benchmarks import BenchmarkRow, Table4Result


class TestCommon:
    def test_pct_saving(self):
        assert pct_saving(100, 77) == pytest.approx(23.0)
        assert pct_saving(100, 100) == 0.0
        assert pct_saving(0, 10) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l.rstrip()) for l in lines[:2])) >= 1
        assert "333" in lines[3]

    def test_scales_monotone(self):
        assert SCALES["tiny"].num_features < SCALES["small"].num_features \
            < SCALES["medium"].num_features < SCALES["large"].num_features

    def test_app_spec_week(self):
        assert app_spec("tiny", week=10).week == 10


class TestGrowthResult:
    def _result(self, base_slope, opt_slope):
        points = [
            GrowthPoint(week=w, baseline_text=1000 + base_slope * w,
                        optimized_text=800 + opt_slope * w)
            for w in (0, 10, 20)
        ]
        xs = [p.week for p in points]
        return GrowthResult(
            points=points,
            baseline_fit=linear_fit(xs, [p.baseline_text for p in points]),
            optimized_fit=linear_fit(xs, [p.optimized_text for p in points]),
        )

    def test_slope_ratio(self):
        result = self._result(base_slope=40, opt_slope=20)
        assert result.slope_ratio == pytest.approx(2.0)

    def test_final_saving(self):
        result = self._result(base_slope=40, opt_slope=20)
        last = result.points[-1]
        expected = 100 * (1 - last.optimized_text / last.baseline_text)
        assert result.final_saving_pct == pytest.approx(expected)


class TestRoundsResult:
    def test_series_and_saving(self):
        points = [
            RoundsPoint("wholeprogram", 0, 1000, 1500),
            RoundsPoint("wholeprogram", 5, 770, 1200),
            RoundsPoint("default", 0, 1000, 1500),
            RoundsPoint("default", 5, 900, 1400),
        ]
        result = RoundsResult(points=points)
        assert result.saving("wholeprogram", 5) == pytest.approx(23.0)
        assert result.wholeprogram_beats_intra


class TestTable4Result:
    def test_overhead_and_average(self):
        rows = [
            BenchmarkRow("a", 100, 110, True),
            BenchmarkRow("b", 200, 190, True),
        ]
        result = Table4Result(rows=rows, pathological=None)
        assert rows[0].overhead_pct == pytest.approx(10.0)
        assert rows[1].overhead_pct == pytest.approx(-5.0)
        assert result.average_overhead_pct == pytest.approx(2.5)
        assert result.all_outputs_match

    def test_mismatch_detected(self):
        result = Table4Result(
            rows=[BenchmarkRow("a", 100, 100, False)], pathological=None)
        assert not result.all_outputs_match
