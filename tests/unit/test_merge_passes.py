"""MergeFunctions and FMSA baseline pass tests (Table I machinery)."""

from repro.lir import ir
from repro.lir.passes import fmsa, mergefunctions


def make_adder(symbol: str, constant: int) -> ir.LIRFunction:
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    entry = fn.new_block("entry")
    out = fn.new_value()
    entry.instrs.append(ir.BinOp(result=out, op="+", lhs=p,
                                 rhs=ir.Const(constant)))
    entry.instrs.append(ir.Ret(value=out))
    return fn


def make_caller(symbol: str, targets) -> ir.LIRFunction:
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    entry = fn.new_block("entry")
    acc = ir.Const(0)
    for target in targets:
        r = fn.new_value()
        entry.instrs.append(ir.Call(result=r, callee=target,
                                    args=[ir.Const(1)]))
        s = fn.new_value()
        entry.instrs.append(ir.BinOp(result=s, op="+", lhs=acc, rhs=r))
        acc = s
    entry.instrs.append(ir.Ret(value=acc))
    return fn


class TestMergeFunctions:
    def test_identical_functions_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 5),
                            make_adder("c", 7),
                            make_caller("main", ["a", "b", "c"])]
        module.entry_symbol = "main"
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 1
        names = {fn.symbol for fn in module.functions}
        assert "b" not in names and "a" in names and "c" in names
        # Calls to the duplicate are redirected.
        main = module.function("main")
        callees = [i.callee for i in main.instructions()
                   if isinstance(i, ir.Call)]
        assert callees == ["a", "a", "c"]

    def test_different_constants_not_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 6)]
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_address_taken_not_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 5)]
        taker = ir.LIRFunction(symbol="taker", has_return_value=True)
        entry = taker.new_block("entry")
        fa = taker.new_value()
        entry.instrs.append(ir.FuncAddr(result=fa, symbol="b"))
        entry.instrs.append(ir.Ret(value=fa))
        module.functions.append(taker)
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_entry_never_merged(self):
        module = ir.LIRModule(name="m", entry_symbol="a")
        module.functions = [make_adder("a", 5), make_adder("b", 5)]
        mergefunctions.run_on_module(module)
        assert any(fn.symbol == "a" for fn in module.functions)


class TestFMSA:
    def test_const_divergent_functions_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 9),
                            make_caller("main", ["a", "b"])]
        module.entry_symbol = "main"
        report = fmsa.run_on_module(module)
        assert report["functions_merged"] == 1
        # One representative remains, parameterised by the constant.
        rep = [fn for fn in module.functions if fn.symbol in ("a", "b")]
        assert len(rep) == 1
        assert len(rep[0].params) == 2  # original + hoisted constant
        # Callers pass the right constants.
        main = module.function("main")
        calls = [i for i in main.instructions() if isinstance(i, ir.Call)]
        passed = [c.args[-1] for c in calls]
        assert ir.Const(5) in passed and ir.Const(9) in passed

    def test_merged_function_execution_equivalent(self):
        """End-to-end: fmsa must preserve program output."""
        from repro.pipeline import BuildConfig, build_program, run_build

        source = """
func f1(x: Int) -> Int { return x * 3 + 10 }
func f2(x: Int) -> Int { return x * 3 + 99 }
func f3(x: Int) -> Int { return x * 3 + 42 }
func main() {
    print(f1(x: 5) + f2(x: 5) + f3(x: 5))
}
"""
        plain = run_build(build_program({"M": source}, BuildConfig(
            enable_fmsa=False)))
        merged = run_build(build_program({"M": source}, BuildConfig(
            enable_fmsa=True)))
        assert plain.output == merged.output

    def test_shape_mismatch_not_merged(self):
        module = ir.LIRModule(name="m")
        a = make_adder("a", 5)
        b = make_adder("b", 9)
        # Give b an extra instruction: shapes differ.
        extra = b.new_value()
        b.entry.instrs.insert(1, ir.BinOp(result=extra, op="*",
                                          lhs=b.params[0], rhs=ir.Const(2)))
        module.functions = [a, b]
        report = fmsa.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_mergefunctions_execution_equivalent(self):
        from repro.pipeline import BuildConfig, build_program, run_build

        source = """
func dup1(x: Int) -> Int { return x * x + 1 }
func dup2(x: Int) -> Int { return x * x + 1 }
func main() { print(dup1(x: 3) + dup2(x: 4)) }
"""
        plain = run_build(build_program({"M": source}, BuildConfig(
            enable_merge_functions=False)))
        merged_build = build_program({"M": source}, BuildConfig(
            enable_merge_functions=True))
        merged = run_build(merged_build)
        assert plain.output == merged.output == ["27"]
        assert merged_build.pass_reports["mergefunctions"][
            "functions_merged"] >= 1
