"""MergeFunctions, FMSA, and optimistic-merge pass tests."""

from repro.lir import ir
from repro.lir.passes import fmsa, mergefunctions, optmerge


def make_adder(symbol: str, constant: int) -> ir.LIRFunction:
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    entry = fn.new_block("entry")
    out = fn.new_value()
    entry.instrs.append(ir.BinOp(result=out, op="+", lhs=p,
                                 rhs=ir.Const(constant)))
    entry.instrs.append(ir.Ret(value=out))
    return fn


def make_caller(symbol: str, targets) -> ir.LIRFunction:
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    entry = fn.new_block("entry")
    acc = ir.Const(0)
    for target in targets:
        r = fn.new_value()
        entry.instrs.append(ir.Call(result=r, callee=target,
                                    args=[ir.Const(1)]))
        s = fn.new_value()
        entry.instrs.append(ir.BinOp(result=s, op="+", lhs=acc, rhs=r))
        acc = s
    entry.instrs.append(ir.Ret(value=acc))
    return fn


class TestMergeFunctions:
    def test_identical_functions_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 5),
                            make_adder("c", 7),
                            make_caller("main", ["a", "b", "c"])]
        module.entry_symbol = "main"
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 1
        names = {fn.symbol for fn in module.functions}
        assert "b" not in names and "a" in names and "c" in names
        # Calls to the duplicate are redirected.
        main = module.function("main")
        callees = [i.callee for i in main.instructions()
                   if isinstance(i, ir.Call)]
        assert callees == ["a", "a", "c"]

    def test_different_constants_not_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 6)]
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_address_taken_not_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 5)]
        taker = ir.LIRFunction(symbol="taker", has_return_value=True)
        entry = taker.new_block("entry")
        fa = taker.new_value()
        entry.instrs.append(ir.FuncAddr(result=fa, symbol="b"))
        entry.instrs.append(ir.Ret(value=fa))
        module.functions.append(taker)
        report = mergefunctions.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_entry_never_merged(self):
        module = ir.LIRModule(name="m", entry_symbol="a")
        module.functions = [make_adder("a", 5), make_adder("b", 5)]
        mergefunctions.run_on_module(module)
        assert any(fn.symbol == "a" for fn in module.functions)


class TestFMSA:
    def test_const_divergent_functions_merged(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_adder("a", 5), make_adder("b", 9),
                            make_caller("main", ["a", "b"])]
        module.entry_symbol = "main"
        report = fmsa.run_on_module(module)
        assert report["functions_merged"] == 1
        # One representative remains, parameterised by the constant.
        rep = [fn for fn in module.functions if fn.symbol in ("a", "b")]
        assert len(rep) == 1
        assert len(rep[0].params) == 2  # original + hoisted constant
        # Callers pass the right constants.
        main = module.function("main")
        calls = [i for i in main.instructions() if isinstance(i, ir.Call)]
        passed = [c.args[-1] for c in calls]
        assert ir.Const(5) in passed and ir.Const(9) in passed

    def test_merged_function_execution_equivalent(self, build_and_run):
        """End-to-end: fmsa must preserve program output."""
        from repro.pipeline import BuildConfig

        source = """
func f1(x: Int) -> Int { return x * 3 + 10 }
func f2(x: Int) -> Int { return x * 3 + 99 }
func f3(x: Int) -> Int { return x * 3 + 42 }
func main() {
    print(f1(x: 5) + f2(x: 5) + f3(x: 5))
}
"""
        _, plain = build_and_run(source, BuildConfig(enable_fmsa=False))
        _, merged = build_and_run(source, BuildConfig(enable_fmsa=True))
        assert plain.output == merged.output

    def test_shape_mismatch_not_merged(self):
        module = ir.LIRModule(name="m")
        a = make_adder("a", 5)
        b = make_adder("b", 9)
        # Give b an extra instruction: shapes differ.
        extra = b.new_value()
        b.entry.instrs.insert(1, ir.BinOp(result=extra, op="*",
                                          lhs=b.params[0], rhs=ir.Const(2)))
        module.functions = [a, b]
        report = fmsa.run_on_module(module)
        assert report["functions_merged"] == 0

    def test_mergefunctions_execution_equivalent(self, build_and_run):
        from repro.pipeline import BuildConfig

        source = """
func dup1(x: Int) -> Int { return x * x + 1 }
func dup2(x: Int) -> Int { return x * x + 1 }
func main() { print(dup1(x: 3) + dup2(x: 4)) }
"""
        _, plain = build_and_run(source, BuildConfig(
            enable_merge_functions=False))
        merged_build, merged = build_and_run(source, BuildConfig(
            enable_merge_functions=True))
        assert plain.output == merged.output == ["27"]
        assert merged_build.pass_reports["mergefunctions"][
            "functions_merged"] >= 1


def make_const_returner(symbol: str, const: ir.Const,
                        is_float: bool = False) -> ir.LIRFunction:
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True,
                        ret_is_float=is_float)
    entry = fn.new_block("entry")
    entry.instrs.append(ir.Ret(value=const, is_float=is_float))
    return fn


class TestConstCanonicalization:
    """Crafted-collision regressions: Python ``==`` conflates constants
    the backend materialises differently, and the canonical key must
    not (0.0 == -0.0, True == 1, 2.0 == 2)."""

    def test_const_token_separates_python_equal_values(self):
        token = mergefunctions.const_token
        assert token(ir.Const(0.0, is_float=True)) \
            != token(ir.Const(-0.0, is_float=True))
        assert token(ir.Const(True)) != token(ir.Const(1))
        assert token(ir.Const(2.0, is_float=True)) != token(ir.Const(2))
        # Same value, same kind: still a stable, equal token.
        assert token(ir.Const(5)) == token(ir.Const(5))

    def test_positive_and_negative_float_zero_do_not_merge(self):
        module = ir.LIRModule(name="m")
        module.functions = [
            make_const_returner("pz", ir.Const(0.0, is_float=True), True),
            make_const_returner("nz", ir.Const(-0.0, is_float=True), True)]
        assert mergefunctions.run_on_module(module)["functions_merged"] == 0
        # FMSA sees them as const-divergent floats and must leave both
        # intact (float diffs are never hoisted), not fold them as equal.
        assert fmsa.run_on_module(module)["functions_merged"] == 0
        assert {fn.symbol for fn in module.functions} == {"pz", "nz"}

    def test_bool_true_and_int_one_do_not_merge(self):
        module = ir.LIRModule(name="m")
        module.functions = [make_const_returner("bt", ir.Const(True)),
                            make_const_returner("i1", ir.Const(1))]
        assert mergefunctions.run_on_module(module)["functions_merged"] == 0

    def test_differing_call_targets_do_not_merge(self):
        def make_forwarder(symbol, callee):
            fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
            entry = fn.new_block("entry")
            r = fn.new_value()
            entry.instrs.append(ir.Call(result=r, callee=callee,
                                        args=[ir.Const(1)]))
            entry.instrs.append(ir.Ret(value=r))
            return fn

        module = ir.LIRModule(name="m")
        module.functions = [make_forwarder("f", "x"),
                            make_forwarder("g", "y"),
                            make_adder("x", 5), make_adder("y", 6)]
        assert mergefunctions.run_on_module(module)["functions_merged"] == 0
        # Positive control: same callee, same body => merged.
        module2 = ir.LIRModule(name="m2")
        module2.functions = [make_forwarder("f", "x"),
                             make_forwarder("g", "x"),
                             make_adder("x", 5)]
        assert mergefunctions.run_on_module(module2)[
            "functions_merged"] == 1


def make_bigfn(symbol: str, constant: int) -> ir.LIRFunction:
    """A body big enough that thunking a clone family pays for itself."""
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    entry = fn.new_block("entry")
    cur = p
    for k in (3, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        nxt = fn.new_value()
        entry.instrs.append(ir.BinOp(result=nxt, op="+", lhs=cur,
                                     rhs=ir.Const(k)))
        cur = nxt
    out = fn.new_value()
    entry.instrs.append(ir.BinOp(result=out, op="*", lhs=cur,
                                 rhs=ir.Const(constant)))
    entry.instrs.append(ir.Ret(value=out))
    return fn


class TestOptMerge:
    # Profitability depends on the target's width model (thumb2c narrows
    # small-immediate arithmetic, shifting the break-even point), so the
    # mechanics tests pin arm64 pricing; per-target behaviour is covered
    # by the property harness and the mergeorder experiment.

    def test_const_divergent_family_merges_via_thunks(self):
        module = ir.LIRModule(name="m", entry_symbol="main")
        module.functions = [make_bigfn("a", 5), make_bigfn("b", 9),
                            make_bigfn("c", 13),
                            make_caller("main", ["a", "b", "c"])]
        report = optmerge.run_on_module(module, target="arm64")
        assert report["parameterized_merged"] == 3
        assert report["thunks_created"] == 3
        assert report["merged_bodies_created"] == 1
        assert report["bytes_saved"] > 0
        symbols = {fn.symbol for fn in module.functions}
        assert {"a", "b", "c", "main", "__merged.0"} <= symbols
        # Every original is now a 2-instruction thunk forwarding its own
        # diverging constant as the extra trailing argument.
        for name, constant in (("a", 5), ("b", 9), ("c", 13)):
            thunk = module.function(name)
            assert thunk.num_instrs == 2
            call = thunk.entry.instrs[0]
            assert call.callee == "__merged.0"
            assert call.args[-1] == ir.Const(constant)

    def test_entry_function_never_groups(self):
        module = ir.LIRModule(name="m", entry_symbol="a")
        module.functions = [make_bigfn("a", 5), make_bigfn("b", 9)]
        report = optmerge.run_on_module(module, target="arm64")
        assert report["functions_merged"] == 0
        assert module.function("a").num_instrs > 2

    def test_unprofitable_family_is_rejected(self):
        module = ir.LIRModule(name="m", entry_symbol="main")
        module.functions = [make_adder("a", 5), make_adder("b", 9),
                            make_caller("main", ["a", "b"])]
        report = optmerge.run_on_module(module, target="arm64")
        assert report["rejected_unprofitable"] >= 1
        assert report["functions_merged"] == 0
        assert not any("__merged" in fn.symbol for fn in module.functions)
        # The original body survives untouched — no call, just arithmetic.
        assert not any(isinstance(i, ir.Call)
                       for i in module.function("a").instructions())

    def test_address_taken_identical_bodies_merge_by_thunk(self):
        """Exact aliasing must skip address-taken functions; the thunk
        design keeps their symbols alive, so optmerge may fold them."""
        module = ir.LIRModule(name="m", entry_symbol="taker")
        module.functions = [make_bigfn("a", 5), make_bigfn("b", 5)]
        taker = ir.LIRFunction(symbol="taker", has_return_value=True)
        entry = taker.new_block("entry")
        fa, fb = taker.new_value(), taker.new_value()
        entry.instrs.append(ir.FuncAddr(result=fa, symbol="a"))
        entry.instrs.append(ir.FuncAddr(result=fb, symbol="b"))
        entry.instrs.append(ir.Ret(value=fb))
        module.functions.append(taker)
        report = optmerge.run_on_module(module, target="arm64")
        assert report["exact_merged"] == 0
        assert report["functions_merged"] == 1
        assert report["thunks_created"] == 1
        # Both symbols survive (pointer identity intact); one is a thunk.
        assert module.function("a").num_instrs > 2
        assert module.function("b").num_instrs == 2
