"""The function-ordering stage: C3 clustering, validation, and the
typed-rejection contract (a bad layout request raises LinkError; it never
links an image that only the post-link verifier could reject)."""

import pytest

from repro.errors import LinkError, ProfileError
from repro.link import funclayout
from repro.link.funclayout import (
    LAYOUT_MODES,
    LayoutDecision,
    order_functions,
    validate_layout_request,
)
from repro.link.linker import link_binary
from repro.pipeline import BuildConfig, build_program
from repro.sim.profile import LayoutProfile
from repro.target import get_target

CALLGRAPH_PROGRAM = """
func hot(x: Int) -> Int {
    return x * 2 + 1
}
func warm(x: Int) -> Int {
    var t = 0
    for i in 0..<3 { t += hot(x: x + i) }
    return t
}
func cold(x: Int) -> Int {
    return x - 9
}
func main() {
    print(warm(x: 4) + cold(x: 1))
}
"""


def _modules(source=CALLGRAPH_PROGRAM, **config_kwargs):
    result = build_program({"Main": source},
                           BuildConfig(outline_rounds=0, **config_kwargs))
    return result.machine_modules, result.image.entry_symbol


class TestValidation:
    @pytest.mark.parametrize("target", ("arm64", "thumb2c"))
    def test_near_callers_plus_reordering_layout_rejected(self, target):
        spec = get_target(target)
        for layout in ("callgraph-c3", "random"):
            with pytest.raises(LinkError, match="near-callers"):
                validate_layout_request(layout, "near-callers", spec)

    def test_near_callers_plus_source_allowed(self):
        validate_layout_request("source", "near-callers",
                                get_target("arm64"))

    def test_unknown_layout_rejected(self):
        with pytest.raises(LinkError, match="unknown layout"):
            validate_layout_request("hot-cold-split", "appended",
                                    get_target("arm64"))

    def test_unknown_outlined_layout_keeps_legacy_message(self):
        with pytest.raises(LinkError, match="unknown outlined layout"):
            validate_layout_request("source", "shuffled",
                                    get_target("arm64"))

    def test_link_binary_rejects_bad_combination_before_linking(self):
        modules, entry = _modules()
        with pytest.raises(LinkError, match="near-callers"):
            link_binary(modules, entry_symbol=entry,
                        outlined_layout="near-callers",
                        layout="callgraph-c3")

    def test_build_config_surfaces_the_rejection(self):
        """End to end: the pipeline raises the typed LinkError, it does
        not produce an unverifiable image."""
        with pytest.raises(LinkError, match="near-callers"):
            build_program({"Main": CALLGRAPH_PROGRAM},
                          BuildConfig(outlined_layout="near-callers",
                                      layout="random"))


class TestPermutationGuard:
    def test_dropped_function_raises_typed_error(self, monkeypatch):
        """An ordering bug that loses a function must surface as LinkError
        at link time, not as a verifier failure (or a sim crash) later."""
        modules, entry = _modules()

        real = funclayout.order_functions

        def lossy(functions, **kwargs):
            decision = real(functions, **kwargs)
            return LayoutDecision(order=decision.order[:-1],
                                  mode=decision.mode)

        monkeypatch.setattr("repro.link.linker.order_functions", lossy)
        with pytest.raises(LinkError, match="not a permutation"):
            link_binary(modules, entry_symbol=entry, layout="random")

    def test_duplicated_function_raises_typed_error(self, monkeypatch):
        modules, entry = _modules()

        real = funclayout.order_functions

        def doubling(functions, **kwargs):
            decision = real(functions, **kwargs)
            return LayoutDecision(order=decision.order + decision.order[:1],
                                  mode=decision.mode)

        monkeypatch.setattr("repro.link.linker.order_functions", doubling)
        with pytest.raises(LinkError, match="not a permutation"):
            link_binary(modules, entry_symbol=entry)


class TestC3Ordering:
    def _functions(self):
        modules, _ = _modules()
        return [fn for m in modules for fn in m.functions]

    def test_profiled_hot_edge_becomes_adjacent(self):
        """With a profile saying warm->hot dominates, C3 must place hot
        directly in warm's cluster (adjacent in the final order)."""
        functions = self._functions()
        profile = LayoutProfile(calls={"Main::warm": {"Main::hot": 500},
                                       "Main::main": {"Main::warm": 1}})
        decision = order_functions(functions, layout="callgraph-c3",
                                   profile=profile, spec=get_target("arm64"))
        names = [fn.name for fn in decision.order]
        assert decision.used_profile
        assert decision.profile_edges == 2
        assert names.index("Main::hot") == names.index("Main::warm") + 1
        # Cold, never-called code sinks behind the profiled cluster.
        assert names.index("Main::cold") > names.index("Main::hot")

    def test_static_census_fallback_is_deterministic(self):
        functions = self._functions()
        spec = get_target("arm64")
        a = order_functions(functions, layout="callgraph-c3", spec=spec)
        b = order_functions(functions, layout="callgraph-c3", spec=spec)
        assert [f.name for f in a.order] == [f.name for f in b.order]
        assert not a.used_profile and a.profile_edges > 0

    def test_cluster_budget_limits_merging(self):
        """With a budget smaller than two functions, every function stays
        its own cluster and the order degenerates to density-sorted."""
        functions = self._functions()
        profile = LayoutProfile(calls={"Main::warm": {"Main::hot": 500}})
        spec = get_target("arm64")
        old = funclayout.C3_CLUSTER_BUDGET_BYTES
        funclayout.C3_CLUSTER_BUDGET_BYTES = 1
        try:
            decision = order_functions(functions, layout="callgraph-c3",
                                       profile=profile, spec=spec)
        finally:
            funclayout.C3_CLUSTER_BUDGET_BYTES = old
        assert decision.clusters == len(functions)

    def test_random_layout_is_seed_deterministic(self):
        functions = self._functions()
        spec = get_target("arm64")
        a = order_functions(functions, layout="random", seed=42, spec=spec)
        b = order_functions(functions, layout="random", seed=42, spec=spec)
        c = order_functions(functions, layout="random", seed=43, spec=spec)
        assert [f.name for f in a.order] == [f.name for f in b.order]
        assert sorted(f.name for f in c.order) == \
            sorted(f.name for f in a.order)

    def test_all_modes_are_permutations(self):
        functions = self._functions()
        expected = sorted(fn.name for fn in functions)
        for target in ("arm64", "thumb2c"):
            spec = get_target(target)
            for layout in LAYOUT_MODES:
                decision = order_functions(functions, layout=layout,
                                           spec=spec)
                assert sorted(f.name for f in decision.order) == expected, \
                    (target, layout)


class TestPipelineIntegration:
    def test_missing_profile_fails_typed_before_linking(self, tmp_path):
        with pytest.raises(ProfileError):
            build_program({"Main": CALLGRAPH_PROGRAM},
                          BuildConfig(layout="callgraph-c3",
                                      profile_path=str(tmp_path / "no.json")))

    def test_layout_changes_addresses_not_symbols(self):
        base = build_program({"Main": CALLGRAPH_PROGRAM},
                             BuildConfig(outline_rounds=0))
        shuffled = build_program({"Main": CALLGRAPH_PROGRAM},
                                 BuildConfig(outline_rounds=0,
                                             layout="random", layout_seed=0))
        assert {f.name for f in base.image.functions} == \
            {f.name for f in shuffled.image.functions}
        assert [f.name for f in base.image.functions] != \
            [f.name for f in shuffled.image.functions]
