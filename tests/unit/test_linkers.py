"""IR linker (llvm-link analog) and system linker / binary image tests."""

import pytest

from repro.errors import GCMetadataConflict, LinkError
from repro.isa.instructions import (
    MachineFunction,
    MachineGlobal,
    MachineInstr,
    MachineModule,
    Opcode,
    Sym,
)
from repro.lir import ir
from repro.lir.linker import LinkOptions, link_modules
from repro.link.binary import PAGE_SIZE, TEXT_BASE
from repro.link.linker import link_binary
from repro.runtime import layout


def lir_module(name, gc_word=100, entry=None, globals_=()):
    module = ir.LIRModule(name=name, entry_symbol=entry, metadata={
        "objc_gc": ("monolithic", gc_word),
        "objc_gc_attrs": {"mode": "none", f"{name}_tag": 1},
    })
    fn = ir.LIRFunction(symbol=f"{name}::f")
    fn.new_block("entry").instrs.append(ir.Ret())
    module.functions.append(fn)
    for gname, init in globals_:
        module.globals.append(ir.LIRGlobal(symbol=f"{name}::{gname}",
                                           init=init, origin_module=name))
    return module


class TestIRLinker:
    def test_merges_functions_and_globals(self):
        merged = link_modules([lir_module("A", globals_=[("g", 1)]),
                               lir_module("B", globals_=[("h", 2)])])
        assert {f.symbol for f in merged.functions} == {"A::f", "B::f"}
        assert {g.symbol for g in merged.globals} == {"A::g", "B::h"}

    def test_duplicate_function_rejected(self):
        a = lir_module("A")
        b = lir_module("B")
        b.functions[0].symbol = "A::f"
        with pytest.raises(LinkError):
            link_modules([a, b])

    def test_entry_propagates(self):
        merged = link_modules([lir_module("A"),
                               lir_module("Main", entry="Main::f")])
        assert merged.entry_symbol == "Main::f"

    def test_two_entries_rejected(self):
        with pytest.raises(LinkError):
            link_modules([lir_module("A", entry="A::f"),
                          lir_module("B", entry="B::f")])

    def test_monolithic_gc_conflict(self):
        with pytest.raises(GCMetadataConflict):
            link_modules([lir_module("A", gc_word=100),
                          lir_module("B", gc_word=200)],
                         LinkOptions(gc_metadata_mode="monolithic"))

    def test_monolithic_same_word_ok(self):
        merged = link_modules([lir_module("A", gc_word=100),
                               lir_module("B", gc_word=100)],
                              LinkOptions(gc_metadata_mode="monolithic"))
        assert merged.metadata["objc_gc"] == ("monolithic", 100)

    def test_attribute_mode_merges_producers(self):
        merged = link_modules([lir_module("A", gc_word=1),
                               lir_module("B", gc_word=2)],
                              LinkOptions(gc_metadata_mode="attributes"))
        attrs = merged.metadata["objc_gc_attrs"]
        assert "A_tag" in attrs and "B_tag" in attrs

    def test_attribute_mode_rejects_mode_disagreement(self):
        a = lir_module("A")
        b = lir_module("B")
        b.metadata["objc_gc_attrs"]["mode"] = "strict"
        with pytest.raises(GCMetadataConflict):
            link_modules([a, b], LinkOptions(gc_metadata_mode="attributes"))

    def test_module_order_layout_preserves_grouping(self):
        mods = [lir_module("A", globals_=[("g0", 1), ("g1", 2)]),
                lir_module("B", globals_=[("g0", 3), ("g1", 4)])]
        merged = link_modules(mods, LinkOptions(data_layout="module-order"))
        origins = [g.origin_module for g in merged.globals]
        assert origins == ["A", "A", "B", "B"]

    def test_interleaved_layout_mixes_modules(self):
        mods = [lir_module("A", globals_=[(f"g{i}", i) for i in range(8)]),
                lir_module("B", globals_=[(f"h{i}", i) for i in range(8)])]
        merged = link_modules(mods, LinkOptions(data_layout="interleaved"))
        origins = [g.origin_module for g in merged.globals]
        # Not grouped: at least one A appears after a B.
        first_b = origins.index("B")
        assert "A" in origins[first_b:]


def make_machine_module():
    fn = MachineFunction(name="main")
    blk = fn.new_block("entry")
    blk.instrs.extend([
        MachineInstr(Opcode.ADRP, ("x0", Sym("m::g"))),
        MachineInstr(Opcode.ADDlo, ("x0", "x0", Sym("m::g"))),
        MachineInstr(Opcode.LDRXui, ("x0", "x0", 0)),
        MachineInstr(Opcode.BL, (Sym("helper"),)),
        MachineInstr(Opcode.RET,),
    ])
    helper = MachineFunction(name="helper")
    helper.new_block("entry").append(MachineInstr(Opcode.RET))
    return MachineModule(
        name="m", functions=[fn, helper],
        globals=[MachineGlobal(name="m::g", values=[41], origin_module="m")],
    )


class TestSystemLinker:
    def test_layout_and_symbols(self):
        # Pinned to arm64: the addresses below document the uniform
        # fixed-width layout rule (base + index * 4).
        image = link_binary([make_machine_module()], entry_symbol="main",
                            target="arm64")
        assert image.symbols["main"] == TEXT_BASE
        assert image.symbols["helper"] == TEXT_BASE + 5 * 4
        assert image.data_base % PAGE_SIZE == 0
        assert image.data_init[image.symbols["m::g"]] == 41

    def test_branch_and_sym_resolution(self):
        image = link_binary([make_machine_module()], entry_symbol="main")
        # BL at index 3 resolves to helper's entry.
        assert image.resolved_target[3] == image.symbols["helper"]
        assert image.resolved_sym[0] == image.symbols["m::g"]

    def test_runtime_stub_assignment(self):
        image = link_binary([make_machine_module()])
        assert "swift_retain" in image.symbols
        stub = image.symbols["swift_retain"]
        assert image.runtime_stubs[stub] == "swift_retain"

    def test_duplicate_symbol_rejected(self):
        a = make_machine_module()
        b = make_machine_module()
        b.globals = []
        with pytest.raises(LinkError):
            link_binary([a, b])

    def test_undefined_symbol_rejected(self):
        fn = MachineFunction(name="main")
        fn.new_block("entry").append(
            MachineInstr(Opcode.BL, (Sym("missing"),)))
        with pytest.raises(LinkError):
            link_binary([MachineModule(name="m", functions=[fn])])

    def test_string_global_materialized_as_object(self):
        module = MachineModule(name="m", globals=[
            MachineGlobal(name="m::s", values="hi", origin_module="m")])
        image = link_binary([module])
        addr = image.symbols["m::s"]
        assert image.data_init[addr + layout.HEADER_RC] == layout.IMMORTAL_RC
        assert image.data_init[addr + layout.STRING_COUNT] == 2
        buf = image.data_init[addr + layout.STRING_BUF]
        assert image.data_init[buf] == ord("h")

    def test_const_array_global_header(self):
        module = MachineModule(name="m", globals=[
            MachineGlobal(name="m::a", values=[5, 6, 7], origin_module="m",
                          is_object=True)])
        image = link_binary([module])
        addr = image.symbols["m::a"]
        word = image.data_init[addr + layout.HEADER_TYPEID]
        assert layout.unpack_typeid(word) == layout.TYPE_ID_ARRAY
        assert image.data_init[addr + layout.ARRAY_COUNT] == 3

    def test_function_extent_lookup(self):
        image = link_binary([make_machine_module()], entry_symbol="main")
        ext = image.function_at(image.symbols["helper"])
        assert ext.name == "helper"
        assert image.function_at(image.symbols["main"] + 8).name == "main"
        assert image.function_at(0x5) is None

    def test_size_accounting(self):
        image = link_binary([make_machine_module()], target="arm64")
        assert image.text_bytes == 6 * 4
        assert image.metadata_bytes == 2 * 32
        assert image.binary_bytes == (image.text_bytes + image.data_bytes
                                      + image.metadata_bytes)

    def test_data_extent_per_module(self):
        image = link_binary([make_machine_module()])
        lo, hi = image.data_extent_of_module["m"]
        assert lo == image.symbols["m::g"]
        assert hi > lo
