"""Lexer unit tests."""

import pytest

from repro.errors import LexerError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.NEWLINE]


def test_simple_tokens():
    toks = tokenize("let x = 42")
    assert [t.kind for t in toks] == [
        TokenKind.KW_LET, TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.INT,
        TokenKind.EOF,
    ]
    assert toks[3].value == 42


def test_keywords_vs_identifiers():
    toks = tokenize("func funcy throws throwsy")
    assert toks[0].kind is TokenKind.KW_FUNC
    assert toks[1].kind is TokenKind.IDENT
    assert toks[2].kind is TokenKind.KW_THROWS
    assert toks[3].kind is TokenKind.IDENT


def test_float_literals():
    toks = tokenize("1.5 0.25 2e3 1.5e-2")
    values = [t.value for t in toks[:-1]]
    assert values == [1.5, 0.25, 2000.0, 0.015]
    assert all(t.kind is TokenKind.FLOAT for t in toks[:-1])


def test_int_dot_dot_is_not_float():
    toks = tokenize("0..<10")
    assert toks[0].kind is TokenKind.INT
    assert toks[1].kind is TokenKind.RANGE_HALF
    assert toks[2].kind is TokenKind.INT


def test_inclusive_range():
    toks = tokenize("0...10")
    assert toks[1].kind is TokenKind.RANGE_FULL


def test_hex_literals():
    toks = tokenize("0xFF 0x10")
    assert toks[0].value == 255
    assert toks[1].value == 16


def test_underscore_separators():
    assert tokenize("1_000_000")[0].value == 1000000


def test_string_literal_escapes():
    toks = tokenize(r'"a\nb\t\"q\""')
    assert toks[0].value == 'a\nb\t"q"'


def test_unterminated_string():
    with pytest.raises(LexerError):
        tokenize('"abc')


def test_unknown_escape():
    with pytest.raises(LexerError):
        tokenize(r'"\q"')


def test_line_comments_skipped():
    assert kinds("x // comment\ny") == [TokenKind.IDENT, TokenKind.IDENT,
                                        TokenKind.EOF]


def test_block_comments_nest():
    assert kinds("a /* x /* y */ z */ b") == [
        TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF]


def test_unterminated_block_comment():
    with pytest.raises(LexerError):
        tokenize("/* never closed")


def test_two_char_operators():
    src = "-> == != <= >= && || += -= *= /= << >>"
    expected = [
        TokenKind.ARROW, TokenKind.EQ, TokenKind.NE, TokenKind.LE,
        TokenKind.GE, TokenKind.AND, TokenKind.OR, TokenKind.PLUS_ASSIGN,
        TokenKind.MINUS_ASSIGN, TokenKind.STAR_ASSIGN, TokenKind.SLASH_ASSIGN,
        TokenKind.SHL, TokenKind.SHR, TokenKind.EOF,
    ]
    assert kinds(src) == expected


def test_newlines_collapse():
    toks = tokenize("a\n\n\nb")
    newlines = [t for t in toks if t.kind is TokenKind.NEWLINE]
    assert len(newlines) == 1


def test_positions():
    toks = tokenize("let x =\n  42")
    assert toks[0].line == 1 and toks[0].column == 1
    int_tok = [t for t in toks if t.kind is TokenKind.INT][0]
    assert int_tok.line == 2 and int_tok.column == 3


def test_unexpected_character():
    with pytest.raises(LexerError):
        tokenize("let x = @")
