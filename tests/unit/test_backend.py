"""Backend tests: isel patterns, register allocation, frame lowering."""

from repro.backend.frame import lower_frame
from repro.backend.isel import select_function
from repro.backend.liveness import block_liveness, compute_intervals
from repro.backend.llc import compile_function
from repro.backend.regalloc import allocate_function
from repro.isa.instructions import Opcode
from repro.isa.registers import (
    ALLOCATABLE_FPRS,
    ALLOCATABLE_GPRS,
    CALLEE_SAVED_GPRS,
)
from repro.lir import ir
from repro.pipeline import build_program, frontend_to_lir


def lower(source, symbol_suffix):
    _, modules = frontend_to_lir({"T": source})
    for fn in modules[0].functions:
        if fn.symbol.endswith(symbol_suffix):
            return compile_function(fn)
    raise KeyError(symbol_suffix)


def ops_of(mf):
    return [i.opcode for i in mf.instructions()]


def renders(mf):
    return [i.render() for i in mf.instructions()]


class TestISel:
    def test_fused_compare_and_branch(self):
        mf = lower("func f(x: Int) -> Int { if x < 3 { return 1 }\n"
                   "return 0 }", "::f")
        text = renders(mf)
        assert any(r.startswith("SUBSXri") for r in text)
        assert any(r.startswith("Bcc lt") for r in text)
        # The comparison was fused: no CSET materialisation.
        assert not any(r.startswith("CSETXi") for r in text)

    def test_standalone_compare_uses_cset(self):
        mf = lower("func f(x: Int) -> Bool { let b = x < 3\n return b }",
                   "::f")
        assert Opcode.CSETXi in ops_of(mf)

    def test_field_access_folds_to_ui_offset(self):
        mf = lower("""
class Box { var a: Int\n var b: Int
    init() { self.a = 1\n self.b = 2 } }
func f(x: Box) -> Int { return x.b }
""", "::f")
        text = renders(mf)
        # field b is at offset 24; the PtrAdd folds into LDRXui.
        assert any(r.startswith("LDRXui") and r.endswith("24") for r in text)
        assert Opcode.ADDXri not in ops_of(mf) or True

    def test_array_indexing_uses_scaled_load(self):
        mf = lower("func f(a: [Int], i: Int) -> Int { return a[i] }", "::f")
        assert Opcode.LDRXroX in ops_of(mf)

    def test_global_access_uses_adrp_pair(self):
        mf = lower("let g = 7\nfunc f() -> Int { return g }", "::f")
        ops = ops_of(mf)
        assert Opcode.ADRP in ops and Opcode.ADDlo in ops

    def test_call_argument_moves(self):
        mf = lower("""
func callee(a: Int, b: Int) -> Int { return a + b }
func f(x: Int) -> Int { return callee(a: x, b: 3) }
""", "::f")
        text = renders(mf)
        bl = [i for i in mf.instructions() if i.opcode is Opcode.BL][0]
        assert bl.implicit_uses == ("x0", "x1")
        assert bl.implicit_defs == ("x0",)
        assert any("MOVZXi $x1, 3" in r for r in text)

    def test_division_guarded_by_zero_check(self):
        mf = lower("func f(a: Int, b: Int) -> Int { return a / b }", "::f")
        ops = ops_of(mf)
        assert Opcode.CBZX in ops and Opcode.SDIVXrr in ops
        assert Opcode.BRK in ops

    def test_division_by_constant_unguarded(self):
        mf = lower("func f(a: Int) -> Int { return a / 4 }", "::f")
        assert Opcode.CBZX not in ops_of(mf)

    def test_float_ops_use_d_registers(self):
        mf = lower("func f(a: Double, b: Double) -> Double "
                   "{ return a * b + 0.5 }", "::f")
        ops = ops_of(mf)
        assert Opcode.FMULDrr in ops and Opcode.FADDDrr in ops
        assert Opcode.FMOVDi in ops

    def test_modulo_uses_msub(self):
        mf = lower("func f(a: Int) -> Int { return a % 7 }", "::f")
        ops = ops_of(mf)
        assert Opcode.SDIVXrr in ops and Opcode.MSUBXrrr in ops

    def test_large_constant_materialization(self):
        mf = lower("func f() -> Int { return 1311768467463790320 }", "::f")
        ops = ops_of(mf)
        assert ops.count(Opcode.MOVKXi) >= 3

    def test_fallthrough_branch_removed(self):
        mf = lower("func f(x: Int) -> Int { if x > 0 { print(1) }\n"
                   "return x }", "::f")
        # No B jumping to the immediately following block.
        for i, blk in enumerate(mf.blocks[:-1]):
            if blk.instrs and blk.instrs[-1].opcode is Opcode.B:
                target = blk.instrs[-1].operands[0]
                assert getattr(target, "name", None) != mf.blocks[i + 1].label


class TestRegAlloc:
    def test_no_overlapping_assignments(self):
        source = """
func busy(a: Int, b: Int, c: Int, d: Int) -> Int {
    let e = a + b
    let f = c + d
    let g = e * f
    let h = a * d
    let i = b * c
    return g + h + i + e + f
}
"""
        _, modules = frontend_to_lir({"T": source})
        fn = [f for f in modules[0].functions
              if f.symbol.endswith("::busy")][0]
        from repro.lir.passes import phielim

        phielim.run_on_function(fn)
        mf = select_function(fn)
        liveness = compute_intervals(mf)
        alloc = allocate_function(mf)
        # Overlapping intervals never share a register.
        assigned = [iv for iv in liveness.intervals
                    if alloc.assignment.get(iv.reg)]
        for i, a in enumerate(assigned):
            for b in assigned[i + 1:]:
                if alloc.assignment[a.reg] != alloc.assignment[b.reg]:
                    continue
                overlap = not (a.end < b.start or b.end < a.start)
                assert not overlap, (a, b)

    def test_call_crossing_values_get_callee_saved(self):
        source = """
func g() -> Int { return 1 }
func f(x: Int) -> Int {
    let keep = x * 3
    let other = g()
    return keep + other
}
"""
        _, modules = frontend_to_lir({"T": source})
        fn = [f for f in modules[0].functions if f.symbol.endswith("::f")][0]
        from repro.lir.passes import phielim

        phielim.run_on_function(fn)
        mf = select_function(fn)
        alloc = allocate_function(mf)
        assert any(reg in CALLEE_SAVED_GPRS
                   for reg in alloc.assignment.values())

    def test_high_pressure_spills_execute_correctly(self):
        # 20 live values across a call force spills; output must be exact.
        decls = "\n".join(f"    let v{i} = x * {i + 2}" for i in range(20))
        uses = " + ".join(f"v{i}" for i in range(20))
        source = f"""
func g() -> Int {{ return 5 }}
func f(x: Int) -> Int {{
{decls}
    let mid = g()
    return {uses} + mid
}}
func main() {{ print(f(x: 3)) }}
"""
        from repro.pipeline import run_build

        build = build_program({"T": source})
        run = run_build(build)
        expected = sum(3 * (i + 2) for i in range(20)) + 5
        assert run.output == [str(expected)]
        mf = build.machine_modules[0].function("T::f")
        assert mf.num_spill_slots > 0, "test must actually exercise spills"

    def test_no_virtual_registers_remain(self):
        mf = lower("func f(a: Int, b: Int) -> Int { return a * b + a }",
                   "::f")
        from repro.isa.registers import is_virtual

        for instr in mf.instructions():
            for op in instr.operands:
                if isinstance(op, str):
                    assert not is_virtual(op), instr.render()


class TestFrame:
    def test_leaf_function_has_no_frame(self):
        mf = lower("func f(a: Int) -> Int { return a + 1 }", "::f")
        assert mf.frame_bytes == 0
        assert Opcode.STPXpre not in ops_of(mf)

    def test_calling_function_saves_fp_lr(self):
        mf = lower("func g() { }\nfunc f() { g() }", "::f")
        first = mf.blocks[0].instrs[0]
        assert first.opcode is Opcode.STPXpre
        assert first.operands[:2] == ("x29", "x30")

    def test_epilogue_at_every_return(self):
        mf = lower("""
func g() { }
func f(x: Int) -> Int {
    if x > 0 { g()\n return 1 }
    g()
    return 0
}
""", "::f")
        rets = [i for i in mf.instructions() if i.opcode is Opcode.RET]
        ldps = [i for i in mf.instructions() if i.opcode is Opcode.LDPXpost]
        assert len(rets) == 2
        assert len(ldps) >= 2

    def test_callee_saved_pairs_balanced(self):
        mf = lower("""
func g() -> Int { return 1 }
func f(a: Int, b: Int, c: Int) -> Int {
    let x = a * b
    let y = b * c
    let z = g()
    return x + y + z
}
""", "::f")
        pushes = [i for i in mf.instructions()
                  if i.opcode is Opcode.STPXpre]
        pops = [i for i in mf.instructions() if i.opcode is Opcode.LDPXpost]
        # one epilogue per RET; pushes happen once
        rets = len([i for i in mf.instructions()
                    if i.opcode is Opcode.RET])
        assert len(pops) == len(pushes) * rets


class TestLiveness:
    def test_block_liveness_through_branch(self):
        mf = lower("""
func f(x: Int) -> Int {
    var t = x * 2
    if x > 0 { t += 1 }
    return t
}
""", "::f")
        info = block_liveness(mf)
        assert set(info) == {blk.label for blk in mf.blocks}

    def test_intervals_cover_defs_and_uses(self):
        source = "func f(a: Int, b: Int) -> Int { return a * b + a }"
        _, modules = frontend_to_lir({"T": source})
        fn = modules[0].functions[0]
        from repro.lir.passes import phielim

        phielim.run_on_function(fn)
        mf = select_function(fn)
        liveness = compute_intervals(mf)
        for interval in liveness.intervals:
            assert interval.start <= interval.end
