"""Semantic analysis unit tests."""

import pytest

from repro.errors import SemaError
from repro.frontend.parser import parse_module
from repro.frontend.sema import analyze_program
from repro.frontend.types import INT, ArrayType, ClassType, FuncType


def check(source, module="T"):
    return analyze_program([parse_module(source, module)])


def check_many(**sources):
    return analyze_program([parse_module(s, n) for n, s in sources.items()])


def expect_error(source, fragment):
    with pytest.raises(SemaError) as exc:
        check(source)
    assert fragment in str(exc.value), str(exc.value)


# -- basic typing --------------------------------------------------------------


def test_arithmetic_types():
    check("func f(a: Int, b: Int) -> Int { return a * b + 1 }")
    check("func f(a: Double) -> Double { return a * 2.0 }")


def test_mixed_numeric_rejected():
    expect_error("func f(a: Int, b: Double) -> Int { return a + b }",
                 "requires matching numeric")


def test_explicit_conversions():
    check("func f(a: Int) -> Double { return Double(a) + 0.5 }")
    check("func f(a: Double) -> Int { return Int(a) }")


def test_bool_conditions_required():
    expect_error("func f(x: Int) { if x { } }", "must be Bool")
    expect_error("func f(x: Int) { while x { } }", "must be Bool")


def test_unresolved_identifier():
    expect_error("func f() -> Int { return nope }", "unresolved identifier")


def test_unknown_type():
    expect_error("func f(x: Widget) { }", "unknown type")


def test_return_type_checked():
    expect_error('func f() -> Int { return "s" }', "cannot return")


def test_missing_return_detected():
    expect_error("func f(x: Int) -> Int { if x > 0 { return 1 } }",
                 "missing return")


def test_if_else_exhaustive_return_ok():
    check("func f(x: Int) -> Int { if x > 0 { return 1 } else { return 0 } }")


def test_void_cannot_return_value():
    expect_error("func f() { return 3 }", "void function")


# -- variables -----------------------------------------------------------------


def test_let_reassignment_rejected():
    expect_error("func f() { let x = 1\n x = 2 }", "cannot assign to 'let'")


def test_var_needs_type_or_initializer():
    expect_error("func f() { var x }", "needs a type or an initializer")


def test_let_requires_initializer():
    expect_error("func f() { let x: Int }", "must be initialized")


def test_redeclaration_rejected():
    expect_error("func f() { let x = 1\n let x = 2 }", "redeclaration")


def test_shadowing_in_nested_scope_allowed():
    check("func f() { let x = 1\n if x > 0 { let x = 2\n print(x) } }")


def test_discard_binding_repeats():
    check("func g() -> Int { return 1 }\n"
          "func f() { let _ = g()\n let _ = g() }")


def test_nil_needs_annotation():
    expect_error("func f() { let x = nil }", "cannot infer")


def test_nil_for_value_type_rejected():
    expect_error("func f() { var x: Int = nil }", "cannot initialize")


# -- globals ---------------------------------------------------------------------


def test_global_constant_folding():
    info = check("let a = 2 + 3 * 4\nfunc f() { print(a) }")
    gbl = info.modules[0].globals[0]
    assert gbl.const_value == 14


def test_global_requires_constant():
    expect_error("func g() -> Int { return 1 }\nlet a = g()",
                 "compile-time constant")


def test_ref_global_must_be_let():
    expect_error('var s = "hello"', "must be 'let'")


def test_global_array_fold():
    info = check("let a = [1, 2, 3]\nfunc f() { print(a[0]) }")
    assert info.modules[0].globals[0].const_value == [1, 2, 3]


# -- classes ---------------------------------------------------------------------


_CLASS = """
class Box {
    var value: Int
    let name: String
    init(value: Int) {
        self.value = value
        self.name = "box"
    }
    func bump() { self.value += 1 }
}
"""


def test_class_usage():
    check(_CLASS + """
func f() -> Int {
    let b = Box(value: 3)
    b.bump()
    return b.value
}
""")


def test_let_field_assign_outside_init_rejected():
    expect_error(_CLASS + """
func f() {
    let b = Box(value: 1)
    b.name = "nope"
}
""", "outside init")


def test_unknown_field():
    expect_error(_CLASS + "func f(b: Box) { print(b.missing) }",
                 "has no field")


def test_unknown_method():
    expect_error(_CLASS + "func f(b: Box) { b.missing() }", "has no method")


def test_ctor_arity_resolution():
    source = """
class P {
    var x: Int
    var y: Int
    init(x: Int) { self.x = x\n self.y = 0 }
    init(x: Int, y: Int) { self.x = x\n self.y = y }
}
func f() { let a = P(x: 1)\n let b = P(x: 1, y: 2) }
"""
    info = check(source)
    cls = info.modules[0].classes[0]
    assert len(cls.inits) == 2


def test_ctor_wrong_arity():
    expect_error(_CLASS + "func f() { let b = Box() }", "no init with 0")


def test_nil_comparison_ref_only():
    expect_error("func f(x: Int) -> Bool { return x == nil }",
                 "cannot compare")


def test_self_outside_class():
    expect_error("func f() { print(self.x) }", "'self' outside a class")


# -- throws discipline ------------------------------------------------------------


_THROWING = "func risky() throws -> Int { throw 3 }\n"


def test_try_required():
    expect_error(_THROWING + "func f() throws -> Int { return risky() }",
                 "requires 'try'")


def test_try_in_throwing_function():
    check(_THROWING + "func f() throws -> Int { return try risky() }")


def test_try_needs_handler_or_throws():
    expect_error(_THROWING + "func f() -> Int { return try risky() }",
                 "requires a throwing function or do/catch")


def test_do_catch_allows_try():
    check(_THROWING + """
func f() -> Int {
    do {
        return try risky()
    } catch {
        return error
    }
}
""")


def test_throw_outside_handler_rejected():
    expect_error("func f() { throw 3 }", "requires a throwing")


def test_throw_requires_int():
    expect_error('func f() throws { throw "oops" }', "must be Int")


def test_catch_binds_error():
    check(_THROWING + """
func f() -> Int {
    do { let x = try risky()\n return x } catch { return error * 2 }
}
""")


# -- closures and captures -----------------------------------------------------------


def test_closure_capture_boxed():
    info = check("""
func f() -> Int {
    var acc = 0
    let add = { (k: Int) -> Int in
        acc += k
        return acc
    }
    return add(2)
}
""")
    clo = info.closures[0]
    assert [c.name for c in clo.captures] == ["acc"]
    assert clo.captures[0].boxed


def test_nested_closures_capture_transitively():
    info = check("""
func f() -> Int {
    var total = 0
    let outer = { (a: Int) -> Int in
        let inner = { (b: Int) -> Int in
            total += b
            return total
        }
        return inner(a)
    }
    return outer(3)
}
""")
    assert len(info.closures) == 2
    for clo in info.closures:
        assert any(c.name == "total" for c in clo.captures)


def test_closure_type_mismatch():
    expect_error("""
func f() {
    let g: (Int) -> Int = { (a: Int, b: Int) -> Int in
        return a
    }
}
""", "cannot initialize")


def test_function_as_value():
    info = check("""
func double(x: Int) -> Int { return x * 2 }
func apply(f: (Int) -> Int, x: Int) -> Int { return f(x) }
func main() { print(apply(f: double, x: 4)) }
""")
    assert info is not None


def test_call_non_function_value():
    expect_error("func f(x: Int) { x(1) }", "cannot call")


# -- arrays / strings -------------------------------------------------------------


def test_array_operations():
    check("""
func f() -> Int {
    var a = [1, 2]
    a.append(3)
    let last = a.removeLast()
    return a.count + a[0] + last
}
""")


def test_empty_array_needs_annotation():
    expect_error("func f() { let a = [] }", "needs a type annotation")


def test_empty_array_with_annotation():
    check("func f() { var a: [Int] = []\n a.append(1) }")


def test_heterogeneous_array_rejected():
    expect_error('func f() { let a = [1, "x"] }', "does not match")


def test_subscript_index_must_be_int():
    expect_error("func f(a: [Int]) { print(a[1.5]) }", "must be Int")


def test_string_operations():
    check("""
func f(s: String) -> Int {
    let t = s + "suffix"
    if t == "x" { return 0 }
    return t.count + t[0]
}
""")


def test_array_method_unknown():
    expect_error("func f(a: [Int]) { a.sort() }", "no method")


# -- modules ----------------------------------------------------------------------


def test_cross_module_calls():
    info = check_many(
        Lib="func helper(x: Int) -> Int { return x + 1 }\n"
            "class Thing { var v: Int\n init(v: Int) { self.v = v } }",
        App="import Lib\n"
            "func main() { let t = Thing(v: helper(x: 1))\n print(t.v) }",
    )
    assert "Lib::Thing" in info.classes_by_qualified_name


def test_unimported_module_invisible():
    with pytest.raises(SemaError):
        check_many(
            Lib="func helper() -> Int { return 1 }",
            App="func main() { print(helper()) }",
        )


def test_unknown_import():
    with pytest.raises(SemaError):
        check("import Nowhere\nfunc f() {}")


def test_duplicate_module_names():
    with pytest.raises(SemaError):
        analyze_program([parse_module("func a() {}", "M"),
                         parse_module("func b() {}", "M")])


def test_same_class_name_in_two_modules():
    info = check_many(
        A="class Node { var v: Int\n init(v: Int) { self.v = v } }\n"
          "func makeA() -> Node { return Node(v: 1) }",
        B="class Node { var w: Double\n init(w: Double) { self.w = w } }\n"
          "func makeB() -> Node { return Node(w: 2.0) }",
    )
    assert "A::Node" in info.classes_by_qualified_name
    assert "B::Node" in info.classes_by_qualified_name


def test_user_function_shadows_builtin():
    check("func log(code: Int) { print(code) }\nfunc f() { log(code: 3) }")


def test_builtin_signatures():
    check("func f() -> Double { return sqrt(2.0) + pow(2.0, 3.0) }")
    expect_error("func f() -> Double { return sqrt(2) }", "does not match")


def test_break_outside_loop():
    expect_error("func f() { break }", "outside a loop")
