"""Outlined-code layout (future-work #3) and semantic headroom (#1) tests."""

from repro.analysis.semantic import measure_headroom
from repro.isa.instructions import MachineFunction, MachineInstr, Opcode, Sym
from repro.isa.registers import FP, LR, SP
from repro.pipeline import BuildConfig, build_program, run_build
from repro.target.arm64 import ARM64
from repro.workloads.appgen import AppSpec, generate_app


def framed(name, body):
    fn = MachineFunction(name=name)
    blk = fn.new_block("entry")
    blk.append(MachineInstr(Opcode.STPXpre, (FP, LR, SP, -16)))
    blk.instrs.extend(body)
    blk.append(MachineInstr(Opcode.LDPXpost, (FP, LR, SP, 16)))
    blk.append(MachineInstr(Opcode.RET))
    return fn


def seq(*ks):
    # Same immediate everywhere: sequences differ only in registers.
    return [MachineInstr(Opcode.ADDXri, (f"x{k}", f"x{k}", 7))
            for k in ks]


class TestNearCallersLayout:
    def _app(self):
        return generate_app(AppSpec(base_features=4, num_vendors=2))

    def test_layouts_semantics_identical(self):
        sources = self._app()
        appended = build_program(sources, BuildConfig(
            outline_rounds=3, outlined_layout="appended"))
        near = build_program(sources, BuildConfig(
            outline_rounds=3, outlined_layout="near-callers"))
        assert run_build(appended).output == run_build(near).output
        # Reordering functions can change *alignment padding* on a
        # variable-width target; the encoded code bytes must not move.
        assert (appended.sizes.text_bytes
                - appended.image.alignment_padding_bytes
                == near.sizes.text_bytes
                - near.image.alignment_padding_bytes)

    def test_outlined_functions_relocate(self):
        sources = self._app()
        appended = build_program(sources, BuildConfig(
            outline_rounds=3, outlined_layout="appended"))
        near = build_program(sources, BuildConfig(
            outline_rounds=3, outlined_layout="near-callers"))

        def positions(build):
            return {ext.name: ext.start for ext in build.image.functions
                    if ext.is_outlined}

        a, b = positions(appended), positions(near)
        assert set(a) == set(b) and a, "same outlined functions"
        assert a != b, "near-callers must change outlined placement"

    def test_outlined_adjacent_to_a_caller(self):
        sources = self._app()
        near = build_program(sources, BuildConfig(
            outline_rounds=1, outlined_layout="near-callers"))
        extents = near.image.functions
        # For at least half the outlined functions, the previous extent in
        # layout order calls them.
        call_targets = {}
        for module in near.machine_modules:
            for fn in module.functions:
                call_targets[fn.name] = {
                    i.callee() for i in fn.instructions() if i.callee()}
        adjacent = 0
        outlined = 0
        for i, ext in enumerate(extents):
            if not ext.is_outlined:
                continue
            outlined += 1
            window = extents[max(0, i - 3):i]
            if any(ext.name in call_targets.get(prev.name, set())
                   for prev in window):
                adjacent += 1
        assert outlined > 0
        assert adjacent >= outlined // 2


class TestSemanticHeadroom:
    def test_detects_renamed_sequences(self):
        # Same computation in different registers: invisible to exact
        # matching, visible to the abstract upper bound.
        fns = [
            framed("a", seq(1, 2, 3)),
            framed("b", seq(4, 5, 6)),
            framed("c", seq(7, 8, 9)),
            framed("d", seq(10, 11, 12)),
        ]
        # Pinned to the fixed-width spec: the profitability thresholds
        # below document the paper's AArch64 cost arithmetic.
        h = measure_headroom(fns, target=ARM64)
        assert h.exact_benefit_bytes == 0
        assert h.abstract_benefit_bytes > 0
        assert h.extra_benefit_bytes == h.abstract_benefit_bytes

    def test_abstract_at_least_exact(self):
        fns = [framed(f"f{k}", seq(1, 2, 3) + seq(20 + k))
               for k in range(4)]
        h = measure_headroom(fns, target=ARM64)
        assert h.abstract_benefit_bytes >= h.exact_benefit_bytes > 0

    def test_app_headroom_positive(self):
        sources = generate_app(AppSpec(base_features=3, num_vendors=2))
        build = build_program(sources, BuildConfig(outline_rounds=0))
        fns = [fn for m in build.machine_modules for fn in m.functions]
        h = measure_headroom(fns)
        assert h.exact_benefit_bytes > 0
        assert h.headroom_pct > 0, (
            "register-assignment diversity must leave headroom "
            "(Listings 1 vs 2)")
