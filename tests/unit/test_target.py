"""Unit tests for the target abstraction (repro.target).

Covers the width model's narrowing rules, the derived outlining
overheads, registry behaviour (including the ``REPRO_TARGET`` override),
fingerprint stability, and a grep-based lint that keeps instruction-width
arithmetic from leaking back outside ``isa/`` and ``target/``.
"""

import os
import re
import subprocess
import sys

import pytest

from repro.isa.instructions import MachineInstr, Opcode, Sym
from repro.target import (
    available_targets,
    default_target_name,
    get_target,
)
from repro.target.arm64 import ARM64
from repro.target.spec import TargetSpec, WidthModel
from repro.target.thumb2c import THUMB2C


# --- registry ----------------------------------------------------------------


def test_registry_lists_both_shipped_targets():
    assert "arm64" in available_targets()
    assert "thumb2c" in available_targets()


def test_get_target_accepts_name_spec_and_none():
    assert get_target("arm64") is ARM64
    assert get_target(THUMB2C) is THUMB2C
    assert get_target(None).name == default_target_name()


def test_get_target_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="arm64"):
        get_target("riscv128")


def test_repro_target_env_var_sets_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_TARGET", "thumb2c")
    assert default_target_name() == "thumb2c"
    assert get_target(None) is THUMB2C
    monkeypatch.delenv("REPRO_TARGET")
    assert default_target_name() == "arm64"


# --- width model -------------------------------------------------------------


def test_arm64_is_fixed_width_four_bytes():
    assert ARM64.is_fixed_width
    assert ARM64.min_instr_bytes == 4
    assert ARM64.instr_bytes(MachineInstr(Opcode.NOP)) == 4
    assert ARM64.instr_bytes(
        MachineInstr(Opcode.ADDXri, ["x0", "x1", 2])) == 4


def test_thumb2c_narrows_small_register_ops():
    assert not THUMB2C.is_fixed_width
    assert THUMB2C.min_instr_bytes == 2
    assert THUMB2C.instr_bytes(
        MachineInstr(Opcode.ADDXri, ["x0", "x1", 2])) == 2
    assert THUMB2C.instr_bytes(MachineInstr(Opcode.RET)) == 2


def test_thumb2c_wide_when_immediate_is_large():
    small = MachineInstr(Opcode.MOVZXi, ["x0", 255])
    large = MachineInstr(Opcode.MOVZXi, ["x0", 256])
    assert THUMB2C.instr_bytes(small) == 2
    assert THUMB2C.instr_bytes(large) == 4


def test_thumb2c_symbolic_operands_are_always_wide():
    # A BL/ADRP-style symbolic reference needs a full-width relocation
    # even when the opcode itself is in the narrow set.
    assert THUMB2C.instr_bytes(MachineInstr(Opcode.B, [Sym("f")])) == 4
    label_branch = MachineInstr(Opcode.B, ["L1"])
    # Render-level labels stay eligible for the narrow encoding; only the
    # opcode not being narrow (or a big imm) widens them.
    assert THUMB2C.instr_bytes(label_branch) == 2


def test_thumb2c_non_narrow_opcode_stays_wide():
    assert THUMB2C.instr_bytes(
        MachineInstr(Opcode.STRXpre, ["lr", "sp", -16])) == 4


def test_seq_and_alignment_helpers():
    seq = [MachineInstr(Opcode.RET)]
    assert ARM64.seq_bytes(seq) == 4
    assert THUMB2C.seq_bytes(seq) == 2
    assert THUMB2C.align_up(2) == 4
    assert THUMB2C.align_up(4) == 4
    assert ARM64.align_up(5) == 8


# --- derived outlining overheads ---------------------------------------------


def test_arm64_outline_overheads_match_fixed_width():
    assert ARM64.outline_call_bytes == 4
    assert ARM64.outline_ret_bytes == 4
    assert ARM64.outline_lr_save_bytes == 4
    assert ARM64.call_site_alignment_slack == 0


def test_thumb2c_outline_overheads_follow_the_width_model():
    # BL <sym> is symbolic, so the call stays wide; RET narrows; the
    # LR save/restore pair uses pre/post-index ops outside the narrow set.
    assert THUMB2C.outline_call_bytes == 4
    assert THUMB2C.outline_ret_bytes == 2
    assert THUMB2C.outline_lr_save_bytes == 4
    assert THUMB2C.outline_lr_restore_bytes == 4
    assert THUMB2C.call_site_alignment_slack == 2


# --- fingerprints ------------------------------------------------------------


def test_fingerprints_are_stable_and_distinct():
    assert ARM64.fingerprint() != THUMB2C.fingerprint()
    assert ARM64.fingerprint() == ARM64.fingerprint()


def test_fingerprint_is_stable_across_processes():
    # frozenset/enum iteration order varies across interpreter runs with
    # hash randomization; the fingerprint must not.
    code = ("from repro.target.thumb2c import THUMB2C;"
            "print(THUMB2C.fingerprint())")
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="0")
    a = subprocess.run([sys.executable, "-c", code], env=env, cwd=_repo_root(),
                       capture_output=True, text=True, check=True)
    env["PYTHONHASHSEED"] = "424242"
    b = subprocess.run([sys.executable, "-c", code], env=env, cwd=_repo_root(),
                       capture_output=True, text=True, check=True)
    assert a.stdout == b.stdout == THUMB2C.fingerprint() + "\n"


def test_spec_is_frozen():
    with pytest.raises(Exception):
        ARM64.function_alignment = 8  # type: ignore[misc]


# --- width-arithmetic lint ---------------------------------------------------

#: Modules allowed to import INSTR_BYTES: the ISA itself, the target specs
#: built from it, and the two link-layer owners of the fixed-width uniform
#: address rule (binary image fast path + linker fast path / stub stride).
#: Everything else must go through a TargetSpec.  Add to this list only
#: with a comment explaining why the module cannot take a spec.
_INSTR_BYTES_ALLOWED = {
    "src/repro/isa",
    "src/repro/target",
    "src/repro/link/binary.py",
    "src/repro/link/linker.py",
}


def _repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def test_no_new_bare_instr_bytes_imports_outside_isa_and_target():
    root = _repo_root()
    pattern = re.compile(r"^\s*from\s+repro\.isa[.\w]*\s+import\s+.*\bINSTR_BYTES\b"
                         r"|^\s*import\s+repro\.isa\.instructions\b",
                         re.MULTILINE)
    offenders = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if any(rel == allowed or rel.startswith(allowed + "/")
                   for allowed in _INSTR_BYTES_ALLOWED):
                continue
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            if pattern.search(text):
                offenders.append(rel)
    assert not offenders, (
        f"bare INSTR_BYTES imports outside isa/, target/ and the "
        f"allowlisted link fast paths: {offenders}; use "
        f"TargetSpec.instr_bytes()/seq_bytes() instead")
