"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_module
from repro.frontend.types import (
    BOOL,
    DOUBLE,
    INT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    FuncType,
)


def parse(source):
    return parse_module(source, "T")


def test_function_declaration():
    m = parse("func add(a: Int, b: Int) -> Int { return a + b }")
    fn = m.functions[0]
    assert fn.name == "add"
    assert [p.name for p in fn.params] == ["a", "b"]
    assert fn.ret_type == INT
    assert not fn.throws


def test_throws_function():
    m = parse("func f() throws -> Double { return 1.0 }")
    assert m.functions[0].throws
    assert m.functions[0].ret_type == DOUBLE


def test_void_function():
    m = parse("func f() { }")
    assert m.functions[0].ret_type == VOID


def test_imports():
    m = parse("import A\nimport B\nfunc f() {}")
    assert m.imports == ["A", "B"]


def test_class_declaration():
    m = parse("""
class Point {
    var x: Int
    let tag: String
    init(x: Int) { self.x = x }
    func get() -> Int { return self.x }
}
""")
    cls = m.classes[0]
    assert cls.name == "Point"
    assert [f.name for f in cls.fields] == ["x", "tag"]
    assert cls.fields[1].is_let
    assert len(cls.inits) == 1
    assert len(cls.methods) == 1


def test_global_declaration():
    m = parse("let limit = 10\nvar counter = 0")
    assert m.globals[0].is_let and m.globals[0].name == "limit"
    assert not m.globals[1].is_let


def test_array_and_function_types():
    m = parse("func f(a: [Int], g: (Int, Int) -> Bool) {}")
    params = m.functions[0].params
    assert params[0].ty == ArrayType(INT)
    assert params[1].ty == FuncType((INT, INT), BOOL)


def test_nested_array_type():
    m = parse("func f(a: [[Double]]) {}")
    assert m.functions[0].params[0].ty == ArrayType(ArrayType(DOUBLE))


def test_precedence():
    m = parse("func f() -> Int { return 1 + 2 * 3 }")
    ret = m.functions[0].body.stmts[0]
    expr = ret.value
    assert isinstance(expr, ast.BinaryExpr) and expr.op == "+"
    assert isinstance(expr.right, ast.BinaryExpr) and expr.right.op == "*"


def test_logical_precedence():
    m = parse("func f(a: Bool, b: Bool, c: Bool) -> Bool { return a || b && c }")
    expr = m.functions[0].body.stmts[0].value
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_comparison_binds_looser_than_arithmetic():
    m = parse("func f(x: Int) -> Bool { return x + 1 < x * 2 }")
    expr = m.functions[0].body.stmts[0].value
    assert expr.op == "<"


def test_unary_operators():
    m = parse("func f(x: Int, b: Bool) -> Int { return -x }")
    assert isinstance(m.functions[0].body.stmts[0].value, ast.UnaryExpr)


def test_call_with_labels():
    m = parse("func f() { g(x: 1, y: 2) }")
    call = m.functions[0].body.stmts[0].expr
    assert call.labels == ["x", "y"]


def test_member_chain_and_index():
    m = parse("func f() { a.b.c[0].d() }")
    call = m.functions[0].body.stmts[0].expr
    assert isinstance(call, ast.CallExpr)
    assert isinstance(call.callee, ast.MemberExpr)


def test_array_literal():
    m = parse("func f() { let a = [1, 2, 3] }")
    lit = m.functions[0].body.stmts[0].init
    assert isinstance(lit, ast.ArrayLit) and len(lit.elements) == 3


def test_array_repeating_ctor():
    m = parse("func f() { let a = [Int](repeating: 0, count: 5) }")
    ctor = m.functions[0].body.stmts[0].init
    assert isinstance(ctor, ast.ArrayRepeating)
    assert ctor.elem_type == INT


def test_array_repeating_requires_labels():
    with pytest.raises(ParseError):
        parse("func f() { let a = [Int](0, 5) }")


def test_closure_literal():
    m = parse("""
func f() {
    let g = { (a: Int) -> Int in
        return a + 1
    }
}
""")
    clo = m.functions[0].body.stmts[0].init
    assert isinstance(clo, ast.ClosureExpr)
    assert clo.params[0].name == "a"
    assert clo.ret_type == INT


def test_if_else_if_chain():
    m = parse("""
func f(x: Int) -> Int {
    if x > 0 { return 1 } else if x < 0 { return -1 } else { return 0 }
}
""")
    stmt = m.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.IfStmt)
    nested = stmt.else_block.stmts[0]
    assert isinstance(nested, ast.IfStmt)
    assert nested.else_block is not None


def test_for_range_and_for_each():
    m = parse("""
func f(a: [Int]) {
    for i in 0..<10 { }
    for j in 0...5 { }
    for x in a { }
}
""")
    stmts = m.functions[0].body.stmts
    assert isinstance(stmts[0], ast.ForRangeStmt) and not stmts[0].inclusive
    assert isinstance(stmts[1], ast.ForRangeStmt) and stmts[1].inclusive
    assert isinstance(stmts[2], ast.ForEachStmt)


def test_while_break_continue():
    m = parse("""
func f() {
    while true {
        break
        continue
    }
}
""")
    body = m.functions[0].body.stmts[0].body
    assert isinstance(body.stmts[0], ast.BreakStmt)
    assert isinstance(body.stmts[1], ast.ContinueStmt)


def test_do_catch():
    m = parse("""
func f() {
    do {
        g()
    } catch {
        h()
    }
}
""")
    stmt = m.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.DoCatchStmt)


def test_throw_and_try():
    m = parse("""
func f(x: Int) throws -> Int {
    if x > 0 { throw x }
    return try g(x: x)
}
""")
    stmts = m.functions[0].body.stmts
    assert isinstance(stmts[0].then_block.stmts[0], ast.ThrowStmt)
    assert isinstance(stmts[1].value, ast.TryExpr)


def test_compound_assignment():
    m = parse("func f() { var x = 0\n x += 2\n x *= 3 }")
    stmts = m.functions[0].body.stmts
    assert stmts[1].op == "+"
    assert stmts[2].op == "*"


def test_semicolons_as_separators():
    m = parse("func f() { let a = 1; let b = 2 }")
    assert len(m.functions[0].body.stmts) == 2


def test_missing_statement_separator_rejected():
    with pytest.raises(ParseError):
        parse("func f() { let a = 1 let b = 2 }")


def test_public_and_final_modifiers_accepted():
    m = parse("public func f() {}\nfinal class C { }")
    assert m.functions[0].name == "f"
    assert m.classes[0].name == "C"


def test_parse_error_has_location():
    with pytest.raises(ParseError) as exc:
        parse("func f( {}")
    assert "expected" in str(exc.value)


def test_external_parameter_labels():
    m = parse("func f(with value: Int) {}")
    assert m.functions[0].params[0].name == "value"
