"""Unit tests for the seeded fault-injection framework (pipeline/faults.py)."""

import pickle

import pytest

from repro.pipeline.faults import FaultPlan, describe


class TestDecisions:
    def test_deterministic_across_calls_and_instances(self):
        a = FaultPlan(seed=7, worker_crash_rate=0.5)
        b = FaultPlan(seed=7, worker_crash_rate=0.5)
        sites = [f"lower:{i}:a{j}" for i in range(20) for j in range(3)]
        assert ([a.should_fire("worker_crash", s) for s in sites]
                == [b.should_fire("worker_crash", s) for s in sites])

    def test_seed_changes_the_schedule(self):
        sites = [f"llc:{i}:a0" for i in range(64)]
        one = [FaultPlan(seed=1, worker_crash_rate=0.5)
               .should_fire("worker_crash", s) for s in sites]
        two = [FaultPlan(seed=2, worker_crash_rate=0.5)
               .should_fire("worker_crash", s) for s in sites]
        assert one != two

    def test_rate_zero_never_fires_rate_one_always(self):
        off = FaultPlan(seed=3)
        on = FaultPlan(seed=3, worker_crash_rate=1.0, cache_corrupt_rate=1.0)
        for i in range(50):
            assert not off.should_fire("worker_crash", f"s{i}")
            assert on.should_fire("worker_crash", f"s{i}")
            assert on.should_fire("cache_corrupt", f"s{i}")

    def test_rate_is_roughly_respected(self):
        plan = FaultPlan(seed=11, worker_hang_rate=0.3)
        fired = sum(plan.should_fire("worker_hang", f"site{i}")
                    for i in range(2000))
        assert 450 < fired < 750  # 0.3 +/- generous slack

    def test_attempts_draw_fresh_decisions(self):
        # A transient fault: some chunk that fails on attempt 0 must pass
        # on a later attempt (this is what makes in-pool retry useful).
        plan = FaultPlan(seed=5, worker_crash_rate=0.5)
        recovered = any(
            plan.should_fire("worker_crash", f"lower:{i}:a0")
            and not plan.should_fire("worker_crash", f"lower:{i}:a1")
            for i in range(32))
        assert recovered

    def test_fault_kinds_are_independent(self):
        plan = FaultPlan(seed=9, worker_crash_rate=0.5,
                         torn_write_rate=0.5)
        sites = [f"s{i}" for i in range(256)]
        crash = [plan.should_fire("worker_crash", s) for s in sites]
        torn = [plan.should_fire("torn_write", s) for s in sites]
        assert crash != torn

    def test_plans_are_picklable(self):
        plan = FaultPlan(seed=4, pickle_failure_rate=0.25,
                         fork_unavailable=True)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7, crash=0.3, hang=0.1, pickle=0.2, corrupt=1, torn=0.5,"
            " nofork=1, hangsecs=0.25")
        assert plan == FaultPlan(seed=7, worker_crash_rate=0.3,
                                 worker_hang_rate=0.1,
                                 pickle_failure_rate=0.2,
                                 cache_corrupt_rate=1.0,
                                 torn_write_rate=0.5,
                                 fork_unavailable=True, hang_seconds=0.25)

    def test_empty_spec_is_the_default_plan(self):
        assert FaultPlan.parse("") == FaultPlan()

    @pytest.mark.parametrize("spec", ["bogus=1", "crash", "crash=lots"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_describe(self):
        assert describe(None) == "faults off"
        text = describe(FaultPlan(seed=2, worker_crash_rate=0.5))
        assert "seed=2" in text and "worker_crash_rate=0.5" in text
