"""Synthetic app generator tests."""

from repro.workloads.appgen import AppSpec, generate_app, span_symbols


class TestDeterminism:
    def test_same_seed_same_app(self):
        spec = AppSpec(base_features=5, seed=7)
        assert generate_app(spec) == generate_app(spec)

    def test_different_seed_different_app(self):
        a = generate_app(AppSpec(base_features=5, seed=7))
        b = generate_app(AppSpec(base_features=5, seed=8))
        assert a != b


class TestGrowthModel:
    def test_week_adds_modules(self):
        spec = AppSpec(base_features=6, features_per_week=1.0)
        week0 = generate_app(spec.at_week(0))
        week4 = generate_app(spec.at_week(4))
        assert len(week4) == len(week0) + 4

    def test_existing_modules_stable_across_weeks(self):
        """Incremental growth: week N+k keeps week N's feature modules
        byte-identical except for handler additions."""
        spec = AppSpec(base_features=6, features_per_week=1.0,
                       handler_growth_per_week=0.0)
        week0 = generate_app(spec.at_week(0))
        week4 = generate_app(spec.at_week(4))
        for name, source in week0.items():
            if name == "Main":
                continue  # Main grows new span calls
            assert week4[name] == source, name

    def test_handlers_grow(self):
        spec = AppSpec(base_features=4, handler_growth_per_week=0.5)
        assert spec.at_week(8).handlers_per_feature > \
            spec.at_week(0).handlers_per_feature


class TestStructure:
    def test_expected_modules_present(self):
        spec = AppSpec(base_features=3, num_vendors=2)
        app = generate_app(spec)
        assert "Base" in app and "Main" in app
        assert "Vendor0" in app and "Vendor1" in app
        assert "Feature0" in app and "Feature2" in app

    def test_span_symbols_match_features(self):
        spec = AppSpec(base_features=4)
        assert span_symbols(spec) == [
            "Feature0::m0Span", "Feature1::m1Span",
            "Feature2::m2Span", "Feature3::m3Span",
        ]

    def test_sources_contain_key_patterns(self):
        app = generate_app(AppSpec(base_features=3))
        feature = app["Feature0"]
        assert "throws" in feature, "decoder init must throw (Listing 10)"
        assert "try src." in feature
        assert "class M0Record" in feature
        assert "in" in feature  # closure shape appears somewhere

    def test_app_compiles_and_runs(self):
        from repro.pipeline import build_program, run_build

        app = generate_app(AppSpec(base_features=3, num_vendors=2))
        result = build_program(app)
        run = run_build(result)
        assert len(run.output) == 2  # logCount + eventCount
        assert run.leaked == []
