"""Interpreter semantics tests: hand-assembled machine programs."""

import pytest

from repro.errors import SimulationError, TrapError
from repro.isa.instructions import (
    Cond,
    Label,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    MachineModule,
    Opcode,
    Sym,
    materialize_constant,
)
from repro.link.linker import link_binary
from repro.sim.cpu import CPU, run_binary


def mi(opcode, *operands, **kw):
    return MachineInstr(opcode, tuple(operands), **kw)


def assemble(body, extra_functions=()):
    """Wrap *body* (list of instrs) as function 'main' and link it."""
    fn = MachineFunction(name="main")
    blk = fn.new_block("entry")
    blk.instrs.extend(body)
    module = MachineModule(name="m", functions=[fn, *extra_functions])
    return link_binary([module], entry_symbol="main")


def run_and_get(body, reg="x0", extra_functions=()):
    image = assemble(body, extra_functions)
    cpu = CPU(image)
    cpu.run(check_leaks=False)
    return cpu.regs[reg]


class TestALU:
    def test_movz_movk_chain(self):
        value = 0x1234_5678_9ABC_DEF0
        body = materialize_constant("x0", value) + [mi(Opcode.RET)]
        assert run_and_get(body) == value

    def test_movz_movk_sign_wrap(self):
        value = 0xF234_5678_9ABC_DEF0  # top bit set: signed view negative
        body = materialize_constant("x0", value) + [mi(Opcode.RET)]
        assert run_and_get(body) == value - (1 << 64)

    def test_movn_negative(self):
        body = materialize_constant("x0", -5) + [mi(Opcode.RET)]
        assert run_and_get(body) == -5

    def test_add_sub_wrap(self):
        body = materialize_constant("x1", (1 << 63) - 1) + [
            mi(Opcode.ADDXri, "x0", "x1", 1),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == -(1 << 63)

    def test_madd_msub(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 7, 0),
            mi(Opcode.MOVZXi, "x2", 6, 0),
            mi(Opcode.MOVZXi, "x3", 100, 0),
            mi(Opcode.MADDXrrr, "x0", "x1", "x2", "x3"),
            mi(Opcode.MSUBXrrr, "x4", "x1", "x2", "x3"),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["x0"] == 142
        assert cpu.regs["x4"] == 58

    def test_sdiv_truncates_toward_zero(self):
        body = materialize_constant("x1", -7) + [
            mi(Opcode.MOVZXi, "x2", 2, 0),
            mi(Opcode.SDIVXrr, "x0", "x1", "x2"),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == -3

    def test_sdiv_by_zero_yields_zero(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 9, 0),
            mi(Opcode.MOVZXi, "x2", 0, 0),
            mi(Opcode.SDIVXrr, "x0", "x1", "x2"),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == 0

    def test_shifts(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 1, 0),
            mi(Opcode.MOVZXi, "x2", 4, 0),
            mi(Opcode.LSLVXrr, "x0", "x1", "x2"),
            mi(Opcode.MOVZXi, "x3", 32, 0),
            mi(Opcode.MOVZXi, "x4", 2, 0),
            mi(Opcode.ASRVXrr, "x5", "x3", "x4"),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["x0"] == 16
        assert cpu.regs["x5"] == 8

    def test_asr_negative(self):
        body = materialize_constant("x1", -16) + [
            mi(Opcode.MOVZXi, "x2", 2, 0),
            mi(Opcode.ASRVXrr, "x0", "x1", "x2"),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == -4

    def test_lsr_is_unsigned(self):
        body = materialize_constant("x1", -1) + [
            mi(Opcode.MOVZXi, "x2", 60, 0),
            mi(Opcode.LSRVXrr, "x0", "x1", "x2"),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == 15


class TestFlagsAndBranches:
    @pytest.mark.parametrize("a,b,cond,expect", [
        (3, 3, Cond.EQ, 1), (3, 4, Cond.EQ, 0),
        (3, 4, Cond.NE, 1),
        (-2, 3, Cond.LT, 1), (3, 3, Cond.LT, 0),
        (3, 3, Cond.GE, 1), (5, 3, Cond.GT, 1),
        (3, 3, Cond.LE, 1),
        (-1, 5, Cond.HS, 1),   # unsigned: -1 is huge
        (2, 5, Cond.LO, 1),
    ])
    def test_cset_conditions(self, a, b, cond, expect):
        body = (materialize_constant("x1", a)
                + materialize_constant("x2", b)
                + [mi(Opcode.SUBSXrr, "xzr", "x1", "x2"),
                   mi(Opcode.CSETXi, "x0", cond),
                   mi(Opcode.RET)])
        assert run_and_get(body) == expect

    def test_conditional_branch_taken(self):
        fn = MachineFunction(name="main")
        entry = fn.new_block("entry")
        entry.instrs.extend([
            mi(Opcode.MOVZXi, "x1", 1, 0),
            mi(Opcode.SUBSXri, "xzr", "x1", 5),
            mi(Opcode.Bcc, Cond.LT, Label("less")),
        ])
        other = fn.new_block("other")
        other.instrs.extend([mi(Opcode.MOVZXi, "x0", 99, 0), mi(Opcode.RET)])
        less = fn.new_block("less")
        less.instrs.extend([mi(Opcode.MOVZXi, "x0", 7, 0), mi(Opcode.RET)])
        image = link_binary([MachineModule(name="m", functions=[fn])],
                            entry_symbol="main")
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["x0"] == 7

    def test_cbz_cbnz(self):
        fn = MachineFunction(name="main")
        entry = fn.new_block("entry")
        entry.instrs.extend([
            mi(Opcode.MOVZXi, "x1", 0, 0),
            mi(Opcode.CBZX, "x1", Label("zero")),
        ])
        no = fn.new_block("no")
        no.instrs.extend([mi(Opcode.BRK, 0)])
        zero = fn.new_block("zero")
        zero.instrs.extend([mi(Opcode.MOVZXi, "x0", 1, 0), mi(Opcode.RET)])
        image = link_binary([MachineModule(name="m", functions=[fn])],
                            entry_symbol="main")
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["x0"] == 1

    def test_fallthrough_between_blocks(self):
        fn = MachineFunction(name="main")
        a = fn.new_block("a")
        a.append(mi(Opcode.MOVZXi, "x0", 5, 0))
        b = fn.new_block("b")
        b.instrs.extend([mi(Opcode.ADDXri, "x0", "x0", 1), mi(Opcode.RET)])
        image = link_binary([MachineModule(name="m", functions=[fn])],
                            entry_symbol="main")
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["x0"] == 6


class TestCallsAndStack:
    def test_bl_ret(self):
        callee = MachineFunction(name="callee")
        cblk = callee.new_block("entry")
        cblk.instrs.extend([mi(Opcode.MOVZXi, "x0", 42, 0), mi(Opcode.RET)])
        body = [
            mi(Opcode.STPXpre, "x29", "x30", "sp", -16),
            mi(Opcode.BL, Sym("callee")),
            mi(Opcode.ADDXri, "x0", "x0", 1),
            mi(Opcode.LDPXpost, "x29", "x30", "sp", 16),
            mi(Opcode.RET),
        ]
        assert run_and_get(body, extra_functions=[callee]) == 43

    def test_tail_call(self):
        callee = MachineFunction(name="callee")
        cblk = callee.new_block("entry")
        cblk.instrs.extend([mi(Opcode.MOVZXi, "x0", 9, 0), mi(Opcode.RET)])
        # main tail-calls callee: callee's RET returns to the harness.
        body = [mi(Opcode.B, Sym("callee"))]
        assert run_and_get(body, extra_functions=[callee]) == 9

    def test_str_ldr_pre_post_index(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 77, 0),
            mi(Opcode.STRXpre, "x1", "sp", -16),
            mi(Opcode.MOVZXi, "x1", 0, 0),
            mi(Opcode.LDRXpost, "x0", "sp", 16),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == 77

    def test_stack_overflow_detected(self):
        fn = MachineFunction(name="main")
        blk = fn.new_block("entry")
        blk.instrs.extend([
            mi(Opcode.STPXpre, "x29", "x30", "sp", -16),
            mi(Opcode.BL, Sym("main")),  # infinite recursion
        ])
        image = link_binary([MachineModule(name="m", functions=[fn])],
                            entry_symbol="main")
        with pytest.raises(SimulationError):
            CPU(image).run(check_leaks=False)


class TestFloat:
    def test_float_arithmetic(self):
        body = [
            mi(Opcode.FMOVDi, "d1", 2.5),
            mi(Opcode.FMOVDi, "d2", 4.0),
            mi(Opcode.FMULDrr, "d0", "d1", "d2"),
            mi(Opcode.FSUBDrr, "d3", "d0", "d2"),
            mi(Opcode.FDIVDrr, "d4", "d3", "d1"),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["d0"] == 10.0
        assert cpu.regs["d3"] == 6.0
        assert cpu.regs["d4"] == 2.4

    def test_conversions(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 7, 0),
            mi(Opcode.SCVTFDX, "d1", "x1"),
            mi(Opcode.FMOVDi, "d2", 3.9),
            mi(Opcode.FCVTZSXD, "x0", "d2"),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["d1"] == 7.0
        assert cpu.regs["x0"] == 3

    def test_fcmp_branching(self):
        body = [
            mi(Opcode.FMOVDi, "d1", 1.5),
            mi(Opcode.FMOVDi, "d2", 2.5),
            mi(Opcode.FCMPDrr, "d1", "d2"),
            mi(Opcode.CSETXi, "x0", Cond.LT),
            mi(Opcode.RET),
        ]
        assert run_and_get(body) == 1

    def test_fsqrt(self):
        body = [
            mi(Opcode.FMOVDi, "d1", 9.0),
            mi(Opcode.FSQRTDr, "d0", "d1"),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        cpu.run(check_leaks=False)
        assert cpu.regs["d0"] == 3.0


class TestTrapsAndErrors:
    def test_brk_raises_trap(self):
        with pytest.raises(TrapError) as exc:
            run_and_get([mi(Opcode.BRK, 1)])
        assert exc.value.code == 1

    def test_undefined_memory_read(self):
        body = [
            mi(Opcode.MOVZXi, "x1", 0x100, 0),
            mi(Opcode.LDRXui, "x0", "x1", 0),
            mi(Opcode.RET),
        ]
        with pytest.raises(SimulationError):
            run_and_get(body)

    def test_step_limit(self):
        fn = MachineFunction(name="main")
        blk = fn.new_block("entry")
        blk.append(mi(Opcode.B, Label("entry")))
        image = link_binary([MachineModule(name="m", functions=[fn])],
                            entry_symbol="main")
        with pytest.raises(SimulationError):
            CPU(image, max_steps=1000).run(check_leaks=False)

    def test_missing_entry_symbol(self):
        image = assemble([mi(Opcode.RET)])
        with pytest.raises(SimulationError):
            CPU(image).run(entry_symbol="nope")


class TestRuntimeDispatch:
    def test_native_call_via_bl(self):
        body = [
            mi(Opcode.STPXpre, "x29", "x30", "sp", -16),
            mi(Opcode.MOVZXi, "x0", 123, 0),
            mi(Opcode.BL, Sym("print_int")),
            mi(Opcode.LDPXpost, "x29", "x30", "sp", 16),
            mi(Opcode.RET),
        ]
        image = assemble(body)
        cpu = CPU(image)
        result = cpu.run(check_leaks=False)
        assert result.output == ["123"]

    def test_native_tail_call(self):
        body = [
            mi(Opcode.MOVZXi, "x0", 5, 0),
            mi(Opcode.B, Sym("print_int")),
        ]
        image = assemble(body)
        cpu = CPU(image)
        result = cpu.run(check_leaks=False)
        assert result.output == ["5"]
