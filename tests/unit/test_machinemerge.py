"""Machine-level identical-code folding (:mod:`repro.outliner.machinemerge`).

The fold runs on real llc output: programs are built end-to-end, the
machine modules folded, relinked, re-verified, and re-executed — the same
route the mergeorder experiment's "merge after outline" arm takes.
"""

import copy

import pytest

from repro.link.linker import link_binary
from repro.link.verify import verify_image
from repro.outliner import machinemerge
from repro.pipeline import BuildConfig, build_program
from repro.sim.cpu import run_binary

#: Two clone families: s* are self-recursive twins (exact-foldable once
#: self-calls are normalised), p*/q* are mutually-recursive pairs that
#: only fold under the optimistic class-equivalence refinement.
SOURCE = """
func sa(n: Int) -> Int {
    if n < 1 { return 3 }
    return sa(n: n - 2) + n
}
func sb(n: Int) -> Int {
    if n < 1 { return 3 }
    return sb(n: n - 2) + n
}
func pa(n: Int) -> Int {
    if n < 1 { return 7 }
    return pb(n: n - 1) + 1
}
func pb(n: Int) -> Int {
    if n < 1 { return 7 }
    return pa(n: n - 1) + 1
}
func qa(n: Int) -> Int {
    if n < 1 { return 7 }
    return qb(n: n - 1) + 1
}
func qb(n: Int) -> Int {
    if n < 1 { return 7 }
    return qa(n: n - 1) + 1
}
func main() {
    print(sa(n: 9) + sb(n: 12) + pa(n: 6) + qa(n: 9))
}
"""


@pytest.fixture(scope="module")
def base():
    return build_program({"Main": SOURCE},
                         BuildConfig(outline_rounds=0, merge_mode="off"))


def _fold_and_run(base, mode):
    modules = copy.deepcopy(base.machine_modules)
    stats = {"functions_folded": 0, "instrs_removed": 0}
    for module in modules:
        s = machinemerge.fold_module(module, mode=mode,
                                     entry_symbol=base.image.entry_symbol)
        for key in stats:
            stats[key] += s[key]
    image = link_binary(modules, entry_symbol=base.image.entry_symbol,
                        outlined_layout=base.config.outlined_layout,
                        target=base.config.target)
    verify_image(image)
    return stats, image


def test_exact_folds_self_recursive_twins(base):
    reference = run_binary(base.image, registry=base.registry)
    stats, image = _fold_and_run(base, "exact")
    # sa/sb fold (self-calls normalised); the mutual pairs cannot — their
    # bodies name different callee symbols.
    assert stats["functions_folded"] == 1
    assert stats["instrs_removed"] > 0
    assert image.text_bytes < base.image.text_bytes
    assert run_binary(image, registry=base.registry).output \
        == reference.output


def test_optimistic_folds_mutually_recursive_clones(base):
    reference = run_binary(base.image, registry=base.registry)
    stats, image = _fold_and_run(base, "optimistic")
    # The p/q family is one equivalence class of four (plus the s twins):
    # optimistic folding strictly dominates exact.
    assert stats["functions_folded"] >= 4
    assert image.text_bytes < base.image.text_bytes
    assert run_binary(image, registry=base.registry).output \
        == reference.output


def test_entry_symbol_is_never_dropped(base):
    for mode in ("exact", "optimistic"):
        _, image = _fold_and_run(base, mode)
        assert base.image.entry_symbol in image.symbols


def test_unknown_mode_rejected(base):
    with pytest.raises(ValueError, match="machine-merge mode"):
        machinemerge.fold_module(copy.deepcopy(base.machine_modules[0]),
                                 mode="bogus")


def test_address_taken_functions_survive_folding():
    # Closures materialise function addresses: their thunks are
    # address-taken and must never be deleted, even when bit-identical.
    source = """
func main() {
    let c1 = { (k: Int) -> Int in return k * 4 + 9 }
    let c2 = { (k: Int) -> Int in return k * 4 + 9 }
    print(c1(3) + c2(4))
}
"""
    base = build_program({"Main": source},
                         BuildConfig(outline_rounds=0, merge_mode="off"))
    reference = run_binary(base.image, registry=base.registry)
    modules = copy.deepcopy(base.machine_modules)
    before = {fn.name for m in modules for fn in m.functions}
    for module in modules:
        machinemerge.fold_module(module, mode="optimistic",
                                 entry_symbol=base.image.entry_symbol)
    taken = set()
    for module in copy.deepcopy(base.machine_modules):
        taken |= machinemerge._address_taken(module)
    after = {fn.name for m in modules for fn in m.functions}
    assert taken <= after, "address-taken functions must survive"
    assert before >= after
    image = link_binary(modules, entry_symbol=base.image.entry_symbol,
                        outlined_layout=base.config.outlined_layout,
                        target=base.config.target)
    verify_image(image)
    assert run_binary(image, registry=base.registry).output \
        == reference.output
