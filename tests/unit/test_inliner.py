"""Trivial inliner tests (future-work #2 machinery)."""

from repro.lir import ir
from repro.lir.passes import inliner
from repro.pipeline import BuildConfig, build_program, run_build


def tiny_callee(symbol="inc"):
    fn = ir.LIRFunction(symbol=symbol, has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    blk = fn.new_block("entry")
    out = fn.new_value()
    blk.instrs.append(ir.BinOp(result=out, op="+", lhs=p, rhs=ir.Const(1)))
    blk.instrs.append(ir.Ret(value=out))
    return fn


def caller_of(symbol="inc"):
    fn = ir.LIRFunction(symbol="caller", has_return_value=True)
    p = fn.new_value()
    fn.params = [p]
    fn.param_is_float = [False]
    blk = fn.new_block("entry")
    r = fn.new_value()
    blk.instrs.append(ir.Call(result=r, callee=symbol, args=[p]))
    blk.instrs.append(ir.Ret(value=r))
    return fn


class TestMechanics:
    def test_tiny_call_inlined(self):
        module = ir.LIRModule(name="m",
                              functions=[tiny_callee(), caller_of()])
        report = inliner.run_on_module(module)
        assert report["sites_inlined"] == 1
        caller = module.function("caller")
        assert not any(isinstance(i, ir.Call)
                       for i in caller.instructions())

    def test_large_callee_skipped(self):
        big = tiny_callee("big")
        blk = big.blocks[0]
        pad = []
        for _ in range(inliner.MAX_INLINE_INSTRS + 2):
            v = big.new_value()
            pad.append(ir.BinOp(result=v, op="+", lhs=big.params[0],
                                rhs=ir.Const(1)))
        blk.instrs = pad + blk.instrs
        module = ir.LIRModule(name="m",
                              functions=[big, caller_of("big")])
        assert inliner.run_on_module(module)["sites_inlined"] == 0

    def test_multi_block_callee_skipped(self):
        callee = tiny_callee("branchy")
        callee.new_block("extra").instrs.append(ir.Ret(value=ir.Const(0)))
        module = ir.LIRModule(name="m",
                              functions=[callee, caller_of("branchy")])
        assert inliner.run_on_module(module)["sites_inlined"] == 0

    def test_recursive_callee_skipped(self):
        rec = ir.LIRFunction(symbol="rec", has_return_value=True)
        p = rec.new_value()
        rec.params = [p]
        rec.param_is_float = [False]
        blk = rec.new_block("entry")
        r = rec.new_value()
        blk.instrs.append(ir.Call(result=r, callee="rec", args=[p]))
        blk.instrs.append(ir.Ret(value=r))
        module = ir.LIRModule(name="m", functions=[rec, caller_of("rec")])
        assert inliner.run_on_module(module)["sites_inlined"] == 0

    def test_address_taken_callee_skipped(self):
        taker = ir.LIRFunction(symbol="taker", has_return_value=True)
        blk = taker.new_block("entry")
        fa = taker.new_value()
        blk.instrs.append(ir.FuncAddr(result=fa, symbol="inc"))
        blk.instrs.append(ir.Ret(value=fa))
        module = ir.LIRModule(
            name="m", functions=[tiny_callee(), caller_of(), taker])
        assert inliner.run_on_module(module)["sites_inlined"] == 0

    def test_throwing_call_site_skipped(self):
        module = ir.LIRModule(name="m",
                              functions=[tiny_callee(), caller_of()])
        call = [i for i in module.function("caller").instructions()
                if isinstance(i, ir.Call)][0]
        call.throws = True
        assert inliner.run_on_module(module)["sites_inlined"] == 0


class TestSemantics:
    SOURCE = """
class Pair {
    var a: Int
    var b: Int
    init(a: Int, b: Int) { self.a = a\n self.b = b }
    func first() -> Int { return self.a }
    func second() -> Int { return self.b }
}
func addOne(x: Int) -> Int { return x + 1 }
func main() {
    let p = Pair(a: 10, b: 32)
    var total = 0
    for i in 0..<5 {
        total += addOne(x: p.first()) + p.second() + i
    }
    print(total)
}
"""

    def test_end_to_end_equivalence(self):
        off = run_build(build_program({"M": self.SOURCE},
                                      BuildConfig(enable_inliner=False)))
        on_build = build_program({"M": self.SOURCE},
                                 BuildConfig(enable_inliner=True))
        on = run_build(on_build)
        assert off.output == on.output
        assert on.leaked == []
        assert on_build.pass_reports["inliner"]["sites_inlined"] >= 1

    def test_inliner_with_outlining_equivalence(self):
        configs = [
            BuildConfig(enable_inliner=True, outline_rounds=0),
            BuildConfig(enable_inliner=True, outline_rounds=5),
            BuildConfig(enable_inliner=False, outline_rounds=5),
        ]
        outputs = []
        for cfg in configs:
            outputs.append(run_build(build_program({"M": self.SOURCE},
                                                   cfg)).output)
        assert outputs[0] == outputs[1] == outputs[2]
