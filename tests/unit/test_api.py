"""The public facade (repro.api) and named presets.

The contracts pinned here:

* ``explicit knob > preset > default`` precedence, in the facade and in
  ``BuildConfig.preset``;
* ``config=`` is mutually exclusive with ``preset=``/knobs;
* a facade build is bit-identical to calling ``build_program`` with the
  same configuration;
* every named preset is bit-identical to its explicit-knob spelling;
* speed-only knobs (workers, caching, persistent pool) never change the
  produced binary.
"""

import pytest

import repro
from repro import api
from repro.errors import ReproError
from repro.pipeline import BuildConfig, build_program
from repro.pipeline.config import PRESETS, SPEED_FIELDS

SOURCES = {
    "App": """
func helper(x: Int) -> Int { return x * 3 + 1 }
func main() {
    var total = 0
    for i in 0..<8 { total += helper(x: i) }
    print(total)
}
""",
    "Lib": """
func triple(x: Int) -> Int { return x * 3 }
""",
}


def _text(result):
    return result.image.text_section()


class TestResolveConfig:
    def test_defaults(self):
        assert api.resolve_config() == BuildConfig()

    def test_knobs_only(self):
        config = api.resolve_config(outline_rounds=2, target="thumb2c")
        assert config.outline_rounds == 2
        assert config.target == "thumb2c"

    def test_preset_fields_land(self):
        config = api.resolve_config(preset="fast-build")
        assert config.pipeline == "default"
        assert config.outline_rounds == 1
        assert config.incremental
        assert config.persistent_workers

    def test_explicit_knob_beats_preset(self):
        config = api.resolve_config(preset="min-size", outline_rounds=2)
        assert config.outline_rounds == 2
        assert config.pipeline == "wholeprogram"  # untouched preset field

    def test_config_object_passes_through(self):
        config = BuildConfig(outline_rounds=4)
        assert api.resolve_config(config) is config

    def test_config_plus_preset_is_an_error(self):
        with pytest.raises(ReproError):
            api.resolve_config(BuildConfig(), preset="min-size")

    def test_config_plus_knob_is_an_error(self):
        with pytest.raises(ReproError):
            api.resolve_config(BuildConfig(), outline_rounds=2)

    def test_unknown_knob_is_a_typed_error(self):
        with pytest.raises(ReproError):
            api.resolve_config(no_such_knob=True)

    def test_unknown_preset_is_a_typed_error(self):
        with pytest.raises(ReproError):
            api.resolve_config(preset="speedy")


class TestFacadeEquivalence:
    def test_build_matches_build_program(self):
        config = BuildConfig(outline_rounds=2)
        assert (_text(api.build(SOURCES, config))
                == _text(build_program(SOURCES, config)))

    def test_build_via_knobs_matches_explicit_config(self):
        assert (_text(api.build(SOURCES, outline_rounds=2))
                == _text(build_program(SOURCES,
                                       BuildConfig(outline_rounds=2))))

    def test_run_executes(self):
        result = api.run(SOURCES)
        assert result.output == ("92",)
        assert result.build.image is not None

    def test_top_level_reexports(self):
        assert repro.build is api.build
        assert repro.run is api.run
        assert repro.connect is api.connect


class TestPresetEquivalence:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_matches_explicit_spelling(self, name, tmp_path):
        overrides = {"cache_dir": str(tmp_path)}
        via_preset = api.build(SOURCES, preset=name, **overrides)
        explicit = build_program(
            SOURCES, BuildConfig(**{**PRESETS[name], **overrides}))
        assert _text(via_preset) == _text(explicit)

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_fields_match_table(self, name):
        config = BuildConfig.preset(name)
        for field_name, value in PRESETS[name].items():
            assert getattr(config, field_name) == value

    def test_presets_only_use_known_fields(self):
        defaults = BuildConfig()
        for name, fields in PRESETS.items():
            for field_name in fields:
                assert hasattr(defaults, field_name), (name, field_name)

    @pytest.mark.parametrize("target", ["arm64", "thumb2c"])
    def test_speed_knobs_never_change_bits(self, target, tmp_path):
        """SPEED_FIELDS is the bit-identity contract: flipping every
        speed knob must reproduce the plain serial uncached build."""
        base = BuildConfig(outline_rounds=2, target=target)
        speedy = BuildConfig(outline_rounds=2, target=target,
                             workers=2, incremental=True,
                             cache_dir=str(tmp_path),
                             persistent_workers=True)
        assert (_text(build_program(SOURCES, base))
                == _text(build_program(SOURCES, speedy)))

    def test_speed_fields_cover_preset_speed_knobs(self):
        """Every preset field that is not fingerprinted (i.e. not part of
        cache keys) must be declared in SPEED_FIELDS."""
        fingerprinted = {"pipeline", "outline_rounds", "merge_mode",
                         "global_dce", "strip", "target", "data_layout"}
        for name, fields in PRESETS.items():
            for field_name in fields:
                assert (field_name in fingerprinted
                        or field_name in SPEED_FIELDS), (name, field_name)
