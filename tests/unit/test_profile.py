"""Layout-profile collector, serialization, and typed failure modes."""

import pytest

from repro.errors import ProfileError
from repro.pipeline import BuildConfig, build_program, run_build
from repro.sim.profile import (
    PROFILE_VERSION,
    LayoutProfile,
    ProfileCollector,
    profile_file_digest,
)

KNOWN_PROGRAM = """
func leaf(x: Int) -> Int {
    return x + 1
}
func mid(x: Int) -> Int {
    var t = 0
    for i in 0..<7 { t += leaf(x: x + i) }
    return t
}
func main() {
    print(mid(x: 1) + mid(x: 2) + leaf(x: 0))
}
"""


def _collect(source, **config_kwargs):
    result = build_program({"Main": source}, BuildConfig(**config_kwargs))
    collector = ProfileCollector()
    run_build(result, profile=collector)
    return result, collector


class TestCollector:
    def test_known_call_counts(self):
        """Exact dynamic edge counts for a program with known control flow:
        main calls mid twice and leaf once; each mid call makes 7 leaf
        calls from its loop."""
        result, collector = _collect(KNOWN_PROGRAM, outline_rounds=0)
        profile = collector.finalize(result.image)
        weights = profile.edge_weights()
        main = result.image.entry_symbol
        assert weights[(main, "Main::mid")] == 2
        assert weights[(main, "Main::leaf")] == 1
        assert weights[("Main::mid", "Main::leaf")] == 14

    def test_taken_branches_recorded_per_function(self):
        """mid's loop back-edge is taken 6 times per call (7 iterations),
        and the profile attributes them to mid, not its callees."""
        result, collector = _collect(KNOWN_PROGRAM, outline_rounds=0)
        profile = collector.finalize(result.image)
        assert profile.taken_branches.get("Main::mid", 0) >= 12

    def test_runtime_calls_excluded(self):
        """BL to runtime stubs (print -> swift_* natives) resolves to no
        text function and must not appear in the profile."""
        result, collector = _collect(KNOWN_PROGRAM, outline_rounds=0)
        profile = collector.finalize(result.image)
        for caller, callees in profile.calls.items():
            for callee in callees:
                assert not callee.startswith("swift_"), (caller, callee)
                assert result.image.symbols[callee] >= 0

    def test_collector_without_run_is_empty(self):
        collector = ProfileCollector()
        assert collector.raw_transfers == 0

    def test_profile_metadata(self):
        result, collector = _collect(KNOWN_PROGRAM, outline_rounds=0)
        profile = collector.finalize(result.image)
        assert profile.target == result.image.target_name
        assert profile.entry == result.image.entry_symbol


class TestSerialization:
    def test_round_trip_preserves_everything(self, tmp_path):
        result, collector = _collect(KNOWN_PROGRAM, outline_rounds=0)
        profile = collector.finalize(result.image)
        path = str(tmp_path / "p.json")
        digest = profile.save(path)
        loaded = LayoutProfile.load(path)
        assert loaded.calls == profile.calls
        assert loaded.taken_branches == profile.taken_branches
        assert loaded.target == profile.target
        assert loaded.entry == profile.entry
        assert loaded.digest() == digest == profile.digest()

    def test_digest_ignores_insertion_order(self):
        a = LayoutProfile(calls={"f": {"g": 1, "h": 2}, "g": {"h": 3}})
        b = LayoutProfile(calls={"g": {"h": 3}, "f": {"h": 2, "g": 1}})
        assert a.to_json_bytes() == b.to_json_bytes()
        assert a.digest() == b.digest()

    def test_digest_is_content_sensitive(self):
        a = LayoutProfile(calls={"f": {"g": 1}})
        b = LayoutProfile(calls={"f": {"g": 2}})
        assert a.digest() != b.digest()

    def test_file_digest_matches_in_memory_digest(self, tmp_path):
        profile = LayoutProfile(calls={"f": {"g": 5}},
                                taken_branches={"f": 2})
        path = str(tmp_path / "p.json")
        profile.save(path)
        assert profile_file_digest(path) == profile.digest()


class TestTypedErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ProfileError, match="cannot read"):
            LayoutProfile.load(str(tmp_path / "absent.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_bytes(b"{not json")
        with pytest.raises(ProfileError, match="not valid JSON"):
            LayoutProfile.load(str(path))

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_bytes(b"[1,2,3]")
        with pytest.raises(ProfileError, match="top level"):
            LayoutProfile.load(str(path))

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_bytes(b'{"version":%d,"calls":{},"taken_branches":{}}'
                         % (PROFILE_VERSION + 1))
        with pytest.raises(ProfileError, match="version"):
            LayoutProfile.load(str(path))

    def test_negative_count_rejected(self, tmp_path):
        path = tmp_path / "neg.json"
        path.write_bytes(b'{"version":%d,"calls":{"f":{"g":-1}},'
                         b'"taken_branches":{}}' % PROFILE_VERSION)
        with pytest.raises(ProfileError, match="non-negative"):
            LayoutProfile.load(str(path))

    def test_non_int_count_rejected(self, tmp_path):
        path = tmp_path / "str.json"
        path.write_bytes(b'{"version":%d,"calls":{},'
                         b'"taken_branches":{"f":"many"}}' % PROFILE_VERSION)
        with pytest.raises(ProfileError, match="non-negative"):
            LayoutProfile.load(str(path))

    def test_corrupt_profile_fails_fingerprint(self, tmp_path):
        """A bad --profile-in must die at backend-fingerprint time (before
        any cache lookup), as a ProfileError, not poison a cache key."""
        path = tmp_path / "bad.json"
        path.write_bytes(b"\x00\xff")
        config = BuildConfig(layout="callgraph-c3",
                             profile_path=str(path))
        with pytest.raises(ProfileError):
            config.backend_fingerprint()

    def test_fingerprint_folds_profile_digest(self, tmp_path):
        """Two different profiles -> different image cache keys; the same
        profile at two paths -> the same key."""
        p1 = LayoutProfile(calls={"f": {"g": 1}})
        p2 = LayoutProfile(calls={"f": {"g": 2}})
        path1 = str(tmp_path / "a.json")
        path2 = str(tmp_path / "b.json")
        path1_copy = str(tmp_path / "c.json")
        p1.save(path1)
        p2.save(path2)
        p1.save(path1_copy)
        fp = lambda p: BuildConfig(layout="callgraph-c3",
                                   profile_path=p).backend_fingerprint()
        assert fp(path1) != fp(path2)
        assert fp(path1) == fp(path1_copy)
        assert fp(path1) != BuildConfig(layout="callgraph-c3"
                                        ).backend_fingerprint()
