"""Unit tests for the fault-tolerant chunk runner (pipeline/parallel.py):
the degradation ladder, worker-count resolution, and shared-state safety
for concurrent builds."""

import os
import threading

import pytest

from repro.errors import BuildError, WorkerCrashError
from repro.pipeline import parallel
from repro.pipeline.faults import FaultPlan
from repro.pipeline.report import BuildReport


def _square_chunk(payload, chunk):
    bias = payload["bias"]
    return [x * x + bias for x in chunk]


@pytest.fixture(autouse=True)
def _test_kind(monkeypatch):
    monkeypatch.setitem(parallel._CHUNK_FUNCS, "square", _square_chunk)


def _run(chunks, *, plan=None, report=None, bias=0, workers=2, **kw):
    return parallel.run_chunks("square", {"bias": bias}, chunks, workers,
                               plan=plan, report=report,
                               retry_backoff=0.01, **kw)


EXPECTED = [[1, 4], [9, 16], [25]]
CHUNKS = [[1, 2], [3, 4], [5]]


class TestResolveWorkers:
    def test_explicit_counts_pass_through(self):
        assert parallel.resolve_workers(3) == 3
        assert parallel.resolve_workers(1) == 1

    def test_negative_requests_clamp_to_serial(self):
        assert parallel.resolve_workers(-4) == 1

    def test_auto_uses_os_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 9)
        assert parallel.resolve_workers(0) == 8

    def test_auto_survives_unknown_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert parallel.resolve_workers(0) == 1

    def test_auto_survives_raising_cpu_count(self, monkeypatch):
        def boom():
            raise NotImplementedError
        monkeypatch.setattr(os, "cpu_count", boom)
        assert parallel.resolve_workers(0) == 1


class TestLadder:
    def test_healthy_pool(self):
        report = BuildReport()
        assert _run(CHUNKS, report=report) == EXPECTED
        assert report.degradations == []

    def test_worker_crash_retries_then_serial_rerun(self):
        report = BuildReport()
        plan = FaultPlan(seed=1, worker_crash_rate=1.0)
        assert _run(CHUNKS, plan=plan, report=report,
                    max_retries=1) == EXPECTED
        kinds = {e.kind for e in report.degradations}
        assert "worker-crash" in kinds
        assert "chunk-serial-rerun" in kinds

    def test_transient_crash_recovers_in_pool(self):
        # With a sub-1.0 rate and fresh decisions per attempt, enough
        # retries let every chunk finish inside the pool eventually; the
        # serial rung stays available either way — all results are right.
        report = BuildReport()
        plan = FaultPlan(seed=2, worker_crash_rate=0.5)
        assert _run(CHUNKS, plan=plan, report=report,
                    max_retries=4) == EXPECTED
        assert any(e.kind == "worker-crash" for e in report.degradations)

    def test_hung_chunk_hits_deadline_then_serial_rerun(self):
        report = BuildReport()
        plan = FaultPlan(seed=3, worker_hang_rate=1.0, hang_seconds=5.0)
        assert _run(CHUNKS, plan=plan, report=report, chunk_timeout=0.1,
                    max_retries=0) == EXPECTED
        kinds = [e.kind for e in report.degradations]
        assert "chunk-timeout" in kinds
        assert "chunk-serial-rerun" in kinds

    def test_unpicklable_result_degrades(self):
        report = BuildReport()
        plan = FaultPlan(seed=4, pickle_failure_rate=1.0)
        assert _run(CHUNKS, plan=plan, report=report,
                    max_retries=1) == EXPECTED
        errors = [e for e in report.degradations if e.kind == "chunk-error"]
        assert errors and "pickle" in errors[0].detail.lower()

    def test_fork_unavailable_runs_serially(self):
        report = BuildReport()
        plan = FaultPlan(seed=5, fork_unavailable=True,
                         worker_crash_rate=1.0)  # workers never exist
        assert _run(CHUNKS, plan=plan, report=report) == EXPECTED
        kinds = [e.kind for e in report.degradations]
        assert kinds.count("no-fork") == 1
        assert kinds.count("chunk-serial-rerun") == len(CHUNKS)

    def test_serial_rerun_failure_propagates(self, monkeypatch):
        def broken(payload, chunk):
            raise ZeroDivisionError("genuine compiler bug")
        monkeypatch.setitem(parallel._CHUNK_FUNCS, "square", broken)
        plan = FaultPlan(seed=6, fork_unavailable=True)
        with pytest.raises(ZeroDivisionError):
            _run(CHUNKS, plan=plan, report=BuildReport())

    def test_empty_chunk_list(self):
        assert _run([]) == []


class TestFailFast:
    """fail_fast=True disables the ladder: the first chunk failure raises
    a typed error instead of degrading (for CI, where a flaky worker
    should be noticed, not absorbed)."""

    def test_crash_raises_worker_crash_error(self):
        plan = FaultPlan(seed=3, worker_crash_rate=1.0)
        with pytest.raises(WorkerCrashError):
            _run(CHUNKS, plan=plan, fail_fast=True)

    def test_hang_raises_worker_crash_error(self):
        plan = FaultPlan(seed=4, worker_hang_rate=1.0, hang_seconds=5.0)
        with pytest.raises(WorkerCrashError) as excinfo:
            _run(CHUNKS, plan=plan, fail_fast=True, chunk_timeout=0.1)
        assert "no result" in str(excinfo.value)

    def test_unpicklable_result_raises_build_error(self):
        plan = FaultPlan(seed=5, pickle_failure_rate=1.0)
        with pytest.raises(BuildError) as excinfo:
            _run(CHUNKS, plan=plan, fail_fast=True)
        assert not isinstance(excinfo.value, WorkerCrashError)

    def test_healthy_pool_is_unaffected(self):
        report = BuildReport()
        assert _run(CHUNKS, report=report, fail_fast=True) == EXPECTED
        assert report.degradations == []


class TestSharedStateIsolation:
    def test_registry_is_cleared_after_a_run(self):
        _run(CHUNKS)
        assert parallel._REGISTRY == {}

    def test_concurrent_runs_do_not_clobber_each_other(self):
        # Two builds in different threads share the module-level registry;
        # distinct tokens must keep their payloads (bias) apart.
        results = {}
        errors = []

        def build(bias):
            try:
                results[bias] = parallel.run_chunks(
                    "square", {"bias": bias}, CHUNKS, 2, retry_backoff=0.01)
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [threading.Thread(target=build, args=(bias,))
                   for bias in (0, 1000)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results[0] == EXPECTED
        assert results[1000] == [[v + 1000 for v in chunk]
                                 for chunk in EXPECTED]


class TestPoolTeardown:
    """An interrupted or cancelled build must never leak forked workers:
    run_chunks tears its pool down on every exit path, and the atexit
    sweep catches pools that escape."""

    @pytest.fixture(autouse=True)
    def _no_persistent_pool(self):
        # The cross-build persistent pool stays in _LIVE_POOLS by design
        # (earlier tests may have built under the fast-build preset);
        # clear it so the zero-live-pools invariant checks only the
        # per-build pools these tests create.
        parallel.shutdown_persistent_pool()
        yield

    def test_success_leaves_no_live_pools(self, tmp_path):
        report = BuildReport()
        assert _run(CHUNKS, report=report) == EXPECTED
        assert len(parallel._LIVE_POOLS) == 0

    def test_failfast_error_leaves_no_live_pools(self):
        plan = FaultPlan(seed=3, worker_crash_rate=1.0)
        with pytest.raises(WorkerCrashError):
            _run(CHUNKS, plan=plan, fail_fast=True)
        assert len(parallel._LIVE_POOLS) == 0
        for proc in parallel.multiprocessing.active_children():
            proc.join(timeout=10)
        assert parallel.multiprocessing.active_children() == []

    def test_cancelled_scope_raises_before_any_fork(self):
        from repro.errors import JobCancelledError
        from repro.pipeline.cancel import CancelScope

        scope = CancelScope(label="jx")
        scope.cancel("daemon drain")
        with pytest.raises(JobCancelledError, match="daemon drain"):
            _run(CHUNKS, cancel_scope=scope)
        assert len(parallel._LIVE_POOLS) == 0

    def test_expired_deadline_is_typed_and_kills_workers(self):
        from repro.errors import DeadlineExpiredError
        from repro.pipeline.cancel import CancelScope

        scope = CancelScope(deadline_seconds=0.0, label="jy")
        with pytest.raises(DeadlineExpiredError):
            _run(CHUNKS, cancel_scope=scope)
        assert len(parallel._LIVE_POOLS) == 0
        for proc in parallel.multiprocessing.active_children():
            proc.join(timeout=10)
        assert parallel.multiprocessing.active_children() == []

    def test_teardown_pool_terminates_running_workers(self):
        import concurrent.futures
        import time as _time

        ctx = parallel.multiprocessing.get_context("fork")
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=2,
                                                      mp_context=ctx)
        pool.submit(_time.sleep, 60)  # occupy a worker for a long time
        deadline = _time.time() + 10
        while not getattr(pool, "_processes", None) and _time.time() < deadline:
            _time.sleep(0.01)
        workers = list(pool._processes.values())
        assert workers
        parallel._LIVE_POOLS.add(pool)
        parallel._terminate_live_pools()  # the atexit sweep
        assert len(parallel._LIVE_POOLS) == 0
        for proc in workers:
            proc.join(timeout=10)
            # Terminated, not still sleeping out its 60s task.
            assert proc.exitcode is not None

    def test_workers_die_despite_inherited_sigterm_handler(self):
        """The CLI and the daemon install Python-level SIGTERM handlers,
        and fork workers inherit them (plus this module's atexit sweep).
        Without the worker initializer resetting the disposition,
        terminate() used to leave such workers wedged in the inherited
        handler/atexit machinery instead of dead — leaking a fork per
        pool for the life of the parent."""
        import concurrent.futures
        import signal
        import time as _time

        def _on_sigterm(signum, frame):  # what the CLI installs
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            ctx = parallel.multiprocessing.get_context("fork")
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=2, mp_context=ctx,
                initializer=parallel._worker_init)
            pool.submit(_time.sleep, 60)
            deadline = _time.time() + 10
            while (not getattr(pool, "_processes", None)
                   and _time.time() < deadline):
                _time.sleep(0.01)
            workers = list(pool._processes.values())
            assert workers
            parallel._teardown_pool(pool)
            for proc in workers:
                proc.join(timeout=10)
                assert proc.exitcode is not None
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestPersistentPool:
    """The cross-build worker pool: reuse, growth, retirement, shutdown."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self):
        parallel.shutdown_persistent_pool()
        yield
        parallel.shutdown_persistent_pool()

    def _run_persistent(self, *, workers=2, plan=None, report=None,
                        max_retries=2):
        payloads = [{"bias": 0} for _ in CHUNKS]
        return parallel.run_chunks("square", {"bias": 0}, CHUNKS, workers,
                                   plan=plan, report=report,
                                   retry_backoff=0.01,
                                   max_retries=max_retries,
                                   persistent=True, chunk_payloads=payloads)

    def test_requires_chunk_payloads(self):
        with pytest.raises(BuildError):
            parallel.run_chunks("square", {"bias": 0}, CHUNKS, 2,
                                persistent=True)

    def test_results_match_per_build_pool(self):
        assert self._run_persistent() == _run(CHUNKS)

    def test_pool_is_reused_across_runs(self):
        assert self._run_persistent() == EXPECTED
        first = parallel._PERSISTENT_POOL
        assert first is not None
        assert self._run_persistent() == EXPECTED
        assert parallel._PERSISTENT_POOL is first

    def test_pool_grows_for_a_bigger_build(self):
        self._run_persistent(workers=1)
        small = parallel._PERSISTENT_POOL
        self._run_persistent(workers=3)
        assert parallel._PERSISTENT_POOL is not small
        assert parallel._PERSISTENT_SIZE == 3
        # ... and a smaller build reuses the bigger pool.
        self._run_persistent(workers=2)
        assert parallel._PERSISTENT_SIZE == 3

    def test_crash_retires_the_pool_but_results_survive(self):
        assert self._run_persistent() == EXPECTED
        first = parallel._PERSISTENT_POOL
        report = BuildReport()
        plan = FaultPlan(seed=11, worker_crash_rate=1.0)
        assert self._run_persistent(plan=plan, report=report,
                                    max_retries=1) == EXPECTED
        assert parallel._PERSISTENT_POOL is not first
        assert any(e.kind == "worker-crash" for e in report.degradations)

    def test_shutdown_is_idempotent(self):
        self._run_persistent()
        parallel.shutdown_persistent_pool()
        assert parallel._PERSISTENT_POOL is None
        parallel.shutdown_persistent_pool()  # no-op, no error
        # The pool comes back on demand.
        assert self._run_persistent() == EXPECTED
        assert parallel._PERSISTENT_POOL is not None
