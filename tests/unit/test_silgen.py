"""SILGen structural tests: ARC insertion, error unwinding, init flags."""

from repro.frontend.parser import parse_module
from repro.frontend.sema import analyze_program
from repro.sil import sil
from repro.sil.silgen import generate_sil


def gen(source, module="T"):
    info = analyze_program([parse_module(source, module)])
    return generate_sil(info)[0]


def func(module, suffix):
    for fn in module.functions:
        if fn.symbol.endswith(suffix):
            return fn
    raise KeyError(suffix)


def instrs_of(fn, kind):
    return [i for blk in fn.blocks for i in blk.instrs
            if isinstance(i, kind)]


def test_param_release_on_exit():
    m = gen("""
class Box { var v: Int
    init(v: Int) { self.v = v } }
func consume(b: Box) { print(b.v) }
""")
    fn = func(m, "::consume")
    # The +1 parameter convention: the ref param is released on exit.
    assert instrs_of(fn, sil.Release), "ref param must be released"


def test_int_params_not_released():
    m = gen("func f(x: Int) -> Int { return x + 1 }")
    fn = func(m, "::f")
    assert not instrs_of(fn, sil.Release)
    assert not instrs_of(fn, sil.Retain)


def test_call_args_retained():
    m = gen("""
class Box { var v: Int
    init(v: Int) { self.v = v } }
func use(b: Box) { }
func caller(b: Box) { use(b: b) }
""")
    fn = func(m, "::caller")
    # Borrowed local passed as +1 arg: retain before the call.
    retains = instrs_of(fn, sil.Retain)
    assert retains, "argument must be retained to +1"


def test_field_store_is_ref_flagged():
    m = gen("""
class Node { var next: Node\n var v: Int
    init() { self.next = nil\n self.v = 0 } }
func link(a: Node, b: Node) { a.next = b }
""")
    fn = func(m, "::link")
    stores = instrs_of(fn, sil.FieldStore)
    assert any(s.is_ref for s in stores)


def test_throwing_init_has_flags_and_cleanup_block():
    m = gen("""
class D {
    let name: String
    let label: String
    init(x: Int) throws {
        self.name = "a"
        if x > 0 { throw x }
        self.label = "b"
    }
}
""")
    fn = func(m, "D.init#1")
    # Per-ref-field init flags exist (AllocStack named <field>$init).
    flag_names = [i.name for i in instrs_of(fn, sil.AllocStack)]
    assert "name$init" in flag_names and "label$init" in flag_names
    # A shared cleanup block conditionally releases fields, deallocates the
    # partial object, and rethrows (the Figure 9 structure).
    labels = [blk.label for blk in fn.blocks]
    assert "init_error_cleanup" in labels
    cleanup = fn.block("init_error_cleanup")
    assert any(isinstance(i, sil.ApplyBuiltin) and
               i.builtin == "dealloc_partial"
               for blk in fn.blocks for i in blk.instrs)
    assert instrs_of(fn, sil.Throw)


def test_nonthrowing_init_has_no_flags():
    m = gen("""
class D {
    let name: String
    init() { self.name = "a" }
}
""")
    fn = func(m, "D.init#0")
    flag_names = [i.name for i in instrs_of(fn, sil.AllocStack)]
    assert "name$init" not in flag_names


def test_try_apply_terminator_shape():
    m = gen("""
func risky() throws -> Int { throw 1 }
func driver() -> Int {
    do { return try risky() } catch { return error }
}
""")
    fn = func(m, "::driver")
    try_applies = instrs_of(fn, sil.TryApply)
    assert len(try_applies) == 1
    ta = try_applies[0]
    labels = {blk.label for blk in fn.blocks}
    assert ta.normal_target in labels and ta.error_target in labels


def test_closure_gets_context_param_and_box_loads():
    m = gen("""
func f() -> Int {
    var acc = 0
    let add = { (k: Int) -> Int in
        acc += k
        return acc
    }
    return add(1)
}
""")
    clo = [fn for fn in m.functions if "closure#" in fn.symbol][0]
    # declared param + hidden context param
    assert len(clo.param_temps) == 2
    assert instrs_of(clo, sil.FieldLoad), "must extract captured box from ctx"
    assert instrs_of(clo, sil.BoxGet) or instrs_of(clo, sil.BoxSet)


def test_make_closure_captures_box():
    m = gen("""
func f() -> Int {
    var acc = 0
    let add = { (k: Int) -> Int in
        acc += k
        return acc
    }
    return add(1)
}
""")
    fn = func(m, "::f")
    boxes = instrs_of(fn, sil.AllocBox)
    closures = instrs_of(fn, sil.MakeClosure)
    assert len(boxes) == 1 and len(closures) == 1
    assert len(closures[0].captures) == 1


def test_function_as_value_creates_bare_thunk():
    m = gen("""
func double(x: Int) -> Int { return x * 2 }
func apply(f: (Int) -> Int) -> Int { return f(7) }
func main() { print(apply(f: double)) }
""")
    thunks = [fn for fn in m.functions if fn.symbol.endswith("$thunk")]
    assert len(thunks) == 1
    assert thunks[0].is_bare


def test_entry_symbol_set():
    m = gen("func main() { }", module="Main")
    assert m.entry_symbol == "Main::main"


def test_no_entry_symbol_without_main():
    m = gen("func helper() { }")
    assert m.entry_symbol is None


def test_global_lowering():
    m = gen('let a = 5\nlet s = "hi"\nfunc f() { print(a)\n print(s) }')
    symbols = {g.symbol for g in m.globals}
    assert symbols == {"T::a", "T::s"}
    fn = func(m, "::f")
    loads = instrs_of(fn, sil.GlobalLoad)
    assert {l.is_object for l in loads} == {False, True}


def test_for_each_releases_iterable():
    m = gen("""
func make() -> [Int] { return [1, 2] }
func f() -> Int {
    var t = 0
    for x in make() { t += x }
    return t
}
""")
    fn = func(m, "::f")
    assert instrs_of(fn, sil.ArrayCount)
    assert instrs_of(fn, sil.Release), "owned iterable must be released"


def test_blocks_all_terminated():
    m = gen("""
func f(x: Int) -> Int {
    if x > 0 { return 1 }
    while x < 0 { break }
    return 0
}
""")
    for fn in m.functions:
        for blk in fn.blocks:
            assert blk.terminator is not None, f"{fn.symbol}:{blk.label}"
