"""Unit tests for the content-addressed build cache (pipeline/cache.py):
keying, hit/miss behaviour on edits, invalidation on config/version
changes, corrupted-entry recovery (quarantine), torn-write crash safety,
and advisory locking for concurrent builds sharing one cache dir."""

import glob
import multiprocessing
import os
import threading
import time

from repro.frontend.parser import parse_module
from repro.pipeline import BuildConfig, build_program
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import (
    ModuleCache,
    count_closures,
    fingerprint_source,
    meta_from_ast,
    module_keys,
)
from repro.pipeline.faults import FaultPlan

LIB = """
class Pair {
    var a: Int
    var b: Int
    init(a: Int, b: Int) {
        self.a = a
        self.b = b
    }
}

func scale(x: Int) -> Int { return x * 3 }
"""

MAIN = """
import Lib

func main() {
    let p = Pair(a: scale(x: 2), b: 5)
    print(p.a + p.b)
}
"""

OTHER = """
func unrelated(x: Int) -> Int { return x - 1 }
"""


def _sources():
    return [("Lib", LIB), ("Other", OTHER), ("Main", MAIN)]


def _keys(items, fingerprint="fp"):
    hashes = {name: fingerprint_source(text) for name, text in items}
    metas = {name: meta_from_ast(parse_module(text, name))
             for name, text in items}
    return dict(zip([n for n, _ in items],
                    module_keys(items, hashes, metas, fingerprint)))


class TestModuleKeys:
    def test_stable_across_calls(self):
        assert _keys(_sources()) == _keys(_sources())

    def test_edit_invalidates_module_and_importers_only(self):
        before = _keys(_sources())
        edited = [("Lib", LIB + "\nfunc extra() -> Int { return 7 }\n"),
                  ("Other", OTHER), ("Main", MAIN)]
        after = _keys(edited)
        assert after["Lib"] != before["Lib"]
        assert after["Main"] != before["Main"]  # imports Lib
        assert after["Other"] == before["Other"]  # independent, no new classes

    def test_new_class_shifts_type_id_bases_of_later_modules(self):
        before = _keys(_sources())
        with_class = [("Lib", LIB + "\nclass Extra {\n    var v: Int\n"
                              "    init(v: Int) {\n        self.v = v\n"
                              "    }\n}\n"),
                      ("Other", OTHER), ("Main", MAIN)]
        after = _keys(with_class)
        # Other never imports Lib, but its type-id base moved.
        assert after["Other"] != before["Other"]

    def test_config_fingerprint_invalidates(self):
        assert (_keys(_sources(), "fp-a")["Main"]
                != _keys(_sources(), "fp-b")["Main"])

    def test_version_bump_invalidates(self, monkeypatch):
        before = _keys(_sources())
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "999-test")
        assert _keys(_sources())["Lib"] != before["Lib"]

    def test_count_closures(self):
        module = parse_module(
            "func f() -> Int {\n"
            "    let g = { (x: Int) -> Int in return x + 1 }\n"
            "    let h = { (x: Int) -> Int in return x * 2 }\n"
            "    return g(1) + h(2)\n"
            "}\n", "M")
        assert count_closures(module) == 2


class TestModuleCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        assert cache.load("ab" * 32) is None
        assert cache.store("ab" * 32, {"payload": [1, 2, 3]})
        assert cache.load("ab" * 32) == {"payload": [1, 2, 3]}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "cd" * 32
        cache.store(key, {"ok": True})
        path = cache._path(key)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 this is not a pickle")
        assert cache.load(key) is None
        assert cache.stats.errors == 1
        assert not os.path.exists(path)
        # The build can repopulate it afterwards.
        assert cache.store(key, {"ok": True})
        assert cache.load(key) == {"ok": True}

    def test_corrupted_entry_is_quarantined_for_inspection(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "ef" * 32
        cache.store(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"garbage bytes")
        assert cache.load(key) is None
        assert cache.stats.quarantined == 1
        qpath = cache._quarantine_path(key)
        assert os.path.exists(qpath)
        with open(qpath, "rb") as fh:
            assert fh.read() == b"garbage bytes"

    def test_stuck_corrupt_entry_raises_typed_error(self, tmp_path,
                                                    monkeypatch):
        # A corrupt entry that can be neither quarantined nor deleted
        # would poison every future build, so that one case escalates to
        # CacheCorruptionError rather than failing silently forever.
        import pytest

        from repro.errors import CacheCorruptionError

        cache = ModuleCache(str(tmp_path))
        key = "ba" * 32
        cache.store(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"garbage bytes")

        def deny(*_args, **_kw):
            raise PermissionError("read-only filesystem")

        monkeypatch.setattr(cache_mod.os, "replace", deny)
        monkeypatch.setattr(cache_mod.os, "unlink", deny)
        with pytest.raises(CacheCorruptionError):
            cache.load(key)

    def test_injected_corruption_recovers(self, tmp_path):
        plan = FaultPlan(seed=1, cache_corrupt_rate=1.0)
        cache = ModuleCache(str(tmp_path), fault_plan=plan)
        key = "01" * 32
        cache.store(key, {"ok": True})
        assert cache.load(key) is None  # scrambled on the way in
        assert cache.stats.quarantined == 1
        # A fault-free cache on the same dir sees a clean (empty) slot.
        clean = ModuleCache(str(tmp_path))
        assert clean.load(key) is None
        assert clean.stats.errors == 0

    def test_torn_write_never_publishes_the_key(self, tmp_path):
        plan = FaultPlan(seed=2, torn_write_rate=1.0)
        cache = ModuleCache(str(tmp_path), fault_plan=plan)
        key = "23" * 32
        assert not cache.store(key, {"ok": True})
        assert cache.stats.torn_writes == 1
        assert not os.path.exists(cache._path(key))
        # No temp droppings under the objects tree either.
        leftovers = glob.glob(str(tmp_path / "objects" / "*" / "*.tmp"))
        assert leftovers == []
        # And the previous value (if any) must survive a later torn write.
        healthy = ModuleCache(str(tmp_path))
        healthy.store(key, {"v": 1})
        assert not cache.store(key, {"v": 2})
        assert healthy.load(key) == {"v": 1}

    def test_lock_contention_blocks_then_succeeds(self, tmp_path):
        fcntl = cache_mod.fcntl
        if fcntl is None:
            return  # platform without flock: locking is a no-op
        cache = ModuleCache(str(tmp_path))
        key = "45" * 32
        # Hold the entry's advisory lock from a second descriptor, as a
        # concurrent build process would.
        lock_dir = os.path.join(cache.root, "locks")
        os.makedirs(lock_dir, exist_ok=True)
        fd = os.open(os.path.join(lock_dir, f"{key[:16]}.lock"),
                     os.O_CREAT | os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX)
        stored = []
        t = threading.Thread(target=lambda: stored.append(
            cache.store(key, {"ok": True})))
        t.start()
        time.sleep(0.15)
        assert not stored  # writer is parked on the lock, not failing
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
        t.join(timeout=5)
        assert stored == [True]
        assert cache.stats.lock_failures == 1
        assert cache.load(key) == {"ok": True}


class TestBuildLevelCaching:
    def _config(self, tmp_path, **kw):
        return BuildConfig(outline_rounds=1, incremental=True,
                           cache_dir=str(tmp_path), **kw)

    def test_hit_on_rebuild_miss_on_edit(self, tmp_path):
        sources = dict(_sources())
        cold = build_program(sources, self._config(tmp_path))
        assert cold.report.cache_misses == 3
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.cache_hits == 3
        assert warm.report.image_cache_hit
        edited = dict(sources)
        edited["Other"] = OTHER + "\nfunc more(x: Int) -> Int { return x }\n"
        partial = build_program(edited, self._config(tmp_path))
        assert partial.report.cache_hits == 2
        assert partial.report.cache_misses == 1
        assert not partial.report.image_cache_hit
        # Identical to an uncached build of the edited program.
        fresh = build_program(edited, BuildConfig(outline_rounds=1))
        assert (partial.image.text_section() == fresh.image.text_section())
        assert (partial.image.data_section() == fresh.image.data_section())

    def test_frontend_config_change_invalidates_modules(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        flipped = build_program(sources,
                                self._config(tmp_path, enable_arc_opt=False))
        assert flipped.report.cache_misses == 3

    def test_backend_config_change_keeps_module_hits(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        rebuilt = build_program(
            sources, BuildConfig(outline_rounds=4, incremental=True,
                                 cache_dir=str(tmp_path)))
        assert rebuilt.report.cache_hits == 3
        assert not rebuilt.report.image_cache_hit
        fresh = build_program(sources, BuildConfig(outline_rounds=4))
        assert rebuilt.image.text_section() == fresh.image.text_section()

    def test_version_bump_invalidates_everything(self, tmp_path, monkeypatch):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "test-bump")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert rebuilt.report.cache_misses == 3

    def test_corrupted_module_entry_recovers(self, tmp_path):
        sources = dict(_sources())
        reference = build_program(sources, self._config(tmp_path))
        # Smash every stored object; the rebuild must neither crash nor
        # return stale results.
        for path in glob.glob(str(tmp_path / "objects" / "*" / "*.pkl")):
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert (rebuilt.image.text_section()
                == reference.image.text_section())
        # Recovery shows up as a structured degradation event.
        assert any(e.kind == "cache-quarantine"
                   for e in rebuilt.report.degradations)
        # And the repaired cache serves hits again.
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.image_cache_hit


def _build_into_queue(cache_dir, queue):
    sources = dict(_sources())
    result = build_program(sources, BuildConfig(
        outline_rounds=1, incremental=True, cache_dir=cache_dir))
    queue.put((result.image.text_section(), result.image.data_section()))


class TestConcurrentBuilds:
    def test_two_processes_sharing_one_cache_dir(self, tmp_path):
        """Races on a shared cache_dir (both builds probing, storing, and
        image-caching the same keys) must corrupt nothing and change no
        bits of the output."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_build_into_queue,
                             args=(str(tmp_path), queue)) for _ in range(2)]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
        assert [p.exitcode for p in procs] == [0, 0]
        reference = build_program(dict(_sources()),
                                  BuildConfig(outline_rounds=1))
        expected = (reference.image.text_section(),
                    reference.image.data_section())
        assert results == [expected, expected]
        # The populated cache serves a clean warm hit afterwards.
        warm = build_program(dict(_sources()), BuildConfig(
            outline_rounds=1, incremental=True, cache_dir=str(tmp_path)))
        assert warm.report.image_cache_hit


# --- bounded-cache maintenance (prune / eviction / GC) -----------------------


def _entry(cache, key, payload=None, mtime=None):
    """Store one entry and optionally pin its mtime (LRU position)."""
    cache.store(key, payload if payload is not None else {"k": key})
    if mtime is not None:
        os.utime(cache._path(key), (mtime, mtime))
    return os.path.getsize(cache._path(key))


class TestPrune:
    def test_lru_evicts_oldest_first(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        now = time.time()
        sizes = {}
        for i, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32,
                                 "dd" * 32]):
            sizes[key] = _entry(cache, key, mtime=now - 1000 + i)
        budget = sizes["cc" * 32] + sizes["dd" * 32]
        removed = cache.prune(budget)
        assert removed == 2
        assert cache.stats.evictions == 2
        assert cache.stats.evicted_bytes == sizes["aa" * 32] + sizes["bb" * 32]
        assert cache.load("aa" * 32) is None
        assert cache.load("bb" * 32) is None
        assert cache.load("cc" * 32) == {"k": "cc" * 32}
        assert cache.load("dd" * 32) == {"k": "dd" * 32}
        assert cache.total_bytes() <= budget

    def test_load_refreshes_recency(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        now = time.time()
        size_a = _entry(cache, "aa" * 32, mtime=now - 1000)
        _entry(cache, "bb" * 32, mtime=now - 500)
        # Using "aa" makes it the most recently used entry again.
        assert cache.load("aa" * 32) is not None
        cache.prune(size_a)
        assert cache.load("aa" * 32) is not None
        assert cache.load("bb" * 32) is None

    def test_under_budget_is_a_noop(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        _entry(cache, "aa" * 32)
        assert cache.prune(1 << 30) == 0
        assert cache.stats.evictions == 0
        assert cache.load("aa" * 32) is not None

    def test_quarantine_is_reclaimed(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "ee" * 32
        cache.store(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"corrupt bytes")
        assert cache.load(key) is None           # quarantines the entry
        assert os.path.exists(cache._quarantine_path(key))
        removed = cache.prune(1 << 30)           # quarantine budget 0
        assert removed == 1
        assert cache.stats.quarantine_reclaimed == 1
        assert not os.path.exists(cache._quarantine_path(key))

    def test_quarantine_budget_keeps_newest(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        qdir = tmp_path / "quarantine"
        qdir.mkdir()
        now = time.time()
        for i, name in enumerate(["old.pkl", "mid.pkl", "new.pkl"]):
            path = qdir / name
            path.write_bytes(b"x" * 100)
            os.utime(path, (now - 300 + i * 100, now - 300 + i * 100))
        cache.prune(1 << 30, quarantine_max_bytes=150)
        assert cache.stats.quarantine_reclaimed == 2
        assert sorted(p.name for p in qdir.iterdir()) == ["new.pkl"]

    def test_stale_tmp_reaped_live_writer_spared(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        _entry(cache, "aa" * 32)
        shard = tmp_path / "objects" / "aa"
        stale = shard / "crashed-writer.tmp"
        stale.write_bytes(b"half a pickle")     # kill -9 mid-store leftover
        os.utime(stale, (time.time() - 3600,) * 2)
        fresh = shard / "live-writer.tmp"
        fresh.write_bytes(b"still being written")
        cache.prune(1 << 30, tmp_ttl=60.0)
        assert cache.stats.tmp_reaped == 1
        assert not stale.exists()
        assert fresh.exists()                   # not deleted out from under
        assert cache.load("aa" * 32) is not None

    def test_torn_write_during_prune_window(self, tmp_path):
        """A store that tears while a prune sweeps the same shard: the
        prune must neither publish nor trip over the torn temp file, and
        the entry stays recoverable by a later healthy store."""
        plan = FaultPlan(seed=5, torn_write_rate=1.0)
        torn_cache = ModuleCache(str(tmp_path), fault_plan=plan)
        key = "ab" * 32
        assert not torn_cache.store(key, {"v": 1})
        healthy = ModuleCache(str(tmp_path))
        _entry(healthy, "cd" * 32, mtime=time.time() - 100)
        assert healthy.prune(1 << 30, tmp_ttl=0.0) == 0  # nothing stale left
        assert healthy.load(key) is None        # torn store never published
        assert healthy.store(key, {"v": 2})
        assert healthy.load(key) == {"v": 2}

    def test_quarantine_of_concurrently_evicted_entry(self, tmp_path):
        """Quarantining an entry another process already evicted must be
        a silent no-op, not an error (the corruption is gone either way)."""
        cache = ModuleCache(str(tmp_path))
        key = "ef" * 32
        cache.store(key, {"ok": True})
        path = cache._path(key)
        os.unlink(path)                         # concurrent prune got here
        cache._quarantine(key, path)            # load()'s recovery path
        assert cache.stats.quarantined == 0
        assert not os.path.exists(cache._quarantine_path(key))

    def test_eviction_races_concurrent_removal(self, tmp_path):
        """prune() must treat an entry deleted between listing and unlink
        as already evicted (count the bytes gone, no crash)."""
        cache = ModuleCache(str(tmp_path))
        now = time.time()
        _entry(cache, "aa" * 32, mtime=now - 1000)
        size_b = _entry(cache, "bb" * 32, mtime=now - 500)
        entries = cache._object_entries()
        assert len(entries) == 2
        os.unlink(cache._path("aa" * 32))       # the other process evicts
        removed = cache.prune(size_b)
        # Only bb's budget remains; aa was already gone and is not counted.
        assert cache.stats.evictions == removed
        assert cache.total_bytes() <= size_b


def _prune_into_queue(cache_dir, budget, queue):
    cache = ModuleCache(cache_dir)
    try:
        cache.prune(budget)
        queue.put(("ok", cache.stats.evictions))
    except Exception as exc:  # pragma: no cover - the failure under test
        queue.put(("error", repr(exc)))


class TestPruneContention:
    def test_two_processes_pruning_one_cache_dir(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        now = time.time()
        per_entry = None
        for i in range(12):
            key = f"{i:02x}" * 32
            per_entry = _entry(cache, key, mtime=now - 1200 + i * 10)
        budget = per_entry * 4
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_prune_into_queue,
                             args=(str(tmp_path), budget, queue))
                 for _ in range(2)]
        for p in procs:
            p.start()
        results = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
        assert [p.exitcode for p in procs] == [0, 0]
        assert all(status == "ok" for status, _ in results)
        fresh = ModuleCache(str(tmp_path))
        assert fresh.total_bytes() <= budget
        # Survivors are intact, loadable entries (no torn evictions).
        for _, _, key, _ in fresh._object_entries():
            assert fresh.load(key) is not None

    def test_prune_vs_store_contention(self, tmp_path):
        """A prune sweeping while another thread stores fresh entries:
        every published survivor must load cleanly."""
        cache = ModuleCache(str(tmp_path))
        now = time.time()
        for i in range(8):
            _entry(cache, f"{i:02x}" * 32, mtime=now - 800 + i * 10)
        budget = cache.total_bytes() // 2
        writer_keys = [f"f{i:x}" * 32 for i in range(8)]
        errors = []

        def _writer():
            try:
                other = ModuleCache(str(tmp_path))
                for key in writer_keys:
                    other.store(key, {"k": key})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=_writer)
        t.start()
        cache.prune(budget)
        t.join(timeout=30)
        assert errors == []
        fresh = ModuleCache(str(tmp_path))
        for _, _, key, _ in fresh._object_entries():
            assert fresh.load(key) is not None


class TestPruneProperty:
    """Random interleavings of store / load / corrupt / prune keep the
    cache's invariants: prune never errors, the footprint lands under
    budget, and every surviving entry loads back exactly."""

    from hypothesis import given, settings, strategies as st

    _ops = st.lists(
        st.one_of(
            st.tuples(st.just("store"), st.integers(0, 9)),
            st.tuples(st.just("load"), st.integers(0, 9)),
            st.tuples(st.just("corrupt"), st.integers(0, 9)),
            st.tuples(st.just("prune"), st.integers(0, 4))),
        min_size=1, max_size=30)

    @given(ops=_ops)
    @settings(max_examples=30, deadline=None)
    def test_random_op_interleavings(self, ops, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("prune-prop"))
        cache = ModuleCache(root)
        expected = {}
        clock = [time.time() - 10_000]

        def _key(i):
            return f"{i:02x}" * 32

        for op, arg in ops:
            if op == "store":
                key = _key(arg)
                if cache.store(key, {"payload": arg}):
                    expected[key] = {"payload": arg}
                    clock[0] += 60
                    os.utime(cache._path(key), (clock[0], clock[0]))
            elif op == "load":
                key = _key(arg)
                value = cache.load(key)
                if key in expected and value is not None:
                    assert value == expected[key]
            elif op == "corrupt":
                key = _key(arg)
                if os.path.exists(cache._path(key)):
                    with open(cache._path(key), "wb") as fh:
                        fh.write(b"not a pickle")
                    expected.pop(key, None)
            elif op == "prune":
                budget = arg * 200
                cache.prune(budget, tmp_ttl=0.0)
                assert cache.total_bytes() <= budget or budget == 0
        # Whatever survived must round-trip bit-exactly.
        for _, _, key, _ in cache._object_entries():
            value = cache.load(key)
            if key in expected:
                assert value == expected[key] or value is None
