"""Unit tests for the content-addressed build cache (pipeline/cache.py):
keying, hit/miss behaviour on edits, invalidation on config/version
changes, corrupted-entry recovery (quarantine), torn-write crash safety,
and advisory locking for concurrent builds sharing one cache dir."""

import glob
import multiprocessing
import os
import threading
import time

from repro.frontend.parser import parse_module
from repro.pipeline import BuildConfig, build_program
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import (
    ModuleCache,
    count_closures,
    fingerprint_source,
    meta_from_ast,
    module_keys,
)
from repro.pipeline.faults import FaultPlan

LIB = """
class Pair {
    var a: Int
    var b: Int
    init(a: Int, b: Int) {
        self.a = a
        self.b = b
    }
}

func scale(x: Int) -> Int { return x * 3 }
"""

MAIN = """
import Lib

func main() {
    let p = Pair(a: scale(x: 2), b: 5)
    print(p.a + p.b)
}
"""

OTHER = """
func unrelated(x: Int) -> Int { return x - 1 }
"""


def _sources():
    return [("Lib", LIB), ("Other", OTHER), ("Main", MAIN)]


def _keys(items, fingerprint="fp"):
    hashes = {name: fingerprint_source(text) for name, text in items}
    metas = {name: meta_from_ast(parse_module(text, name))
             for name, text in items}
    return dict(zip([n for n, _ in items],
                    module_keys(items, hashes, metas, fingerprint)))


class TestModuleKeys:
    def test_stable_across_calls(self):
        assert _keys(_sources()) == _keys(_sources())

    def test_edit_invalidates_module_and_importers_only(self):
        before = _keys(_sources())
        edited = [("Lib", LIB + "\nfunc extra() -> Int { return 7 }\n"),
                  ("Other", OTHER), ("Main", MAIN)]
        after = _keys(edited)
        assert after["Lib"] != before["Lib"]
        assert after["Main"] != before["Main"]  # imports Lib
        assert after["Other"] == before["Other"]  # independent, no new classes

    def test_new_class_shifts_type_id_bases_of_later_modules(self):
        before = _keys(_sources())
        with_class = [("Lib", LIB + "\nclass Extra {\n    var v: Int\n"
                              "    init(v: Int) {\n        self.v = v\n"
                              "    }\n}\n"),
                      ("Other", OTHER), ("Main", MAIN)]
        after = _keys(with_class)
        # Other never imports Lib, but its type-id base moved.
        assert after["Other"] != before["Other"]

    def test_config_fingerprint_invalidates(self):
        assert (_keys(_sources(), "fp-a")["Main"]
                != _keys(_sources(), "fp-b")["Main"])

    def test_version_bump_invalidates(self, monkeypatch):
        before = _keys(_sources())
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "999-test")
        assert _keys(_sources())["Lib"] != before["Lib"]

    def test_count_closures(self):
        module = parse_module(
            "func f() -> Int {\n"
            "    let g = { (x: Int) -> Int in return x + 1 }\n"
            "    let h = { (x: Int) -> Int in return x * 2 }\n"
            "    return g(1) + h(2)\n"
            "}\n", "M")
        assert count_closures(module) == 2


class TestModuleCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        assert cache.load("ab" * 32) is None
        assert cache.store("ab" * 32, {"payload": [1, 2, 3]})
        assert cache.load("ab" * 32) == {"payload": [1, 2, 3]}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "cd" * 32
        cache.store(key, {"ok": True})
        path = cache._path(key)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 this is not a pickle")
        assert cache.load(key) is None
        assert cache.stats.errors == 1
        assert not os.path.exists(path)
        # The build can repopulate it afterwards.
        assert cache.store(key, {"ok": True})
        assert cache.load(key) == {"ok": True}

    def test_corrupted_entry_is_quarantined_for_inspection(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "ef" * 32
        cache.store(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"garbage bytes")
        assert cache.load(key) is None
        assert cache.stats.quarantined == 1
        qpath = cache._quarantine_path(key)
        assert os.path.exists(qpath)
        with open(qpath, "rb") as fh:
            assert fh.read() == b"garbage bytes"

    def test_stuck_corrupt_entry_raises_typed_error(self, tmp_path,
                                                    monkeypatch):
        # A corrupt entry that can be neither quarantined nor deleted
        # would poison every future build, so that one case escalates to
        # CacheCorruptionError rather than failing silently forever.
        import pytest

        from repro.errors import CacheCorruptionError

        cache = ModuleCache(str(tmp_path))
        key = "ba" * 32
        cache.store(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"garbage bytes")

        def deny(*_args, **_kw):
            raise PermissionError("read-only filesystem")

        monkeypatch.setattr(cache_mod.os, "replace", deny)
        monkeypatch.setattr(cache_mod.os, "unlink", deny)
        with pytest.raises(CacheCorruptionError):
            cache.load(key)

    def test_injected_corruption_recovers(self, tmp_path):
        plan = FaultPlan(seed=1, cache_corrupt_rate=1.0)
        cache = ModuleCache(str(tmp_path), fault_plan=plan)
        key = "01" * 32
        cache.store(key, {"ok": True})
        assert cache.load(key) is None  # scrambled on the way in
        assert cache.stats.quarantined == 1
        # A fault-free cache on the same dir sees a clean (empty) slot.
        clean = ModuleCache(str(tmp_path))
        assert clean.load(key) is None
        assert clean.stats.errors == 0

    def test_torn_write_never_publishes_the_key(self, tmp_path):
        plan = FaultPlan(seed=2, torn_write_rate=1.0)
        cache = ModuleCache(str(tmp_path), fault_plan=plan)
        key = "23" * 32
        assert not cache.store(key, {"ok": True})
        assert cache.stats.torn_writes == 1
        assert not os.path.exists(cache._path(key))
        # No temp droppings under the objects tree either.
        leftovers = glob.glob(str(tmp_path / "objects" / "*" / "*.tmp"))
        assert leftovers == []
        # And the previous value (if any) must survive a later torn write.
        healthy = ModuleCache(str(tmp_path))
        healthy.store(key, {"v": 1})
        assert not cache.store(key, {"v": 2})
        assert healthy.load(key) == {"v": 1}

    def test_lock_contention_blocks_then_succeeds(self, tmp_path):
        fcntl = cache_mod.fcntl
        if fcntl is None:
            return  # platform without flock: locking is a no-op
        cache = ModuleCache(str(tmp_path))
        key = "45" * 32
        # Hold the entry's advisory lock from a second descriptor, as a
        # concurrent build process would.
        lock_dir = os.path.join(cache.root, "locks")
        os.makedirs(lock_dir, exist_ok=True)
        fd = os.open(os.path.join(lock_dir, f"{key[:16]}.lock"),
                     os.O_CREAT | os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX)
        stored = []
        t = threading.Thread(target=lambda: stored.append(
            cache.store(key, {"ok": True})))
        t.start()
        time.sleep(0.15)
        assert not stored  # writer is parked on the lock, not failing
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
        t.join(timeout=5)
        assert stored == [True]
        assert cache.stats.lock_failures == 1
        assert cache.load(key) == {"ok": True}


class TestBuildLevelCaching:
    def _config(self, tmp_path, **kw):
        return BuildConfig(outline_rounds=1, incremental=True,
                           cache_dir=str(tmp_path), **kw)

    def test_hit_on_rebuild_miss_on_edit(self, tmp_path):
        sources = dict(_sources())
        cold = build_program(sources, self._config(tmp_path))
        assert cold.report.cache_misses == 3
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.cache_hits == 3
        assert warm.report.image_cache_hit
        edited = dict(sources)
        edited["Other"] = OTHER + "\nfunc more(x: Int) -> Int { return x }\n"
        partial = build_program(edited, self._config(tmp_path))
        assert partial.report.cache_hits == 2
        assert partial.report.cache_misses == 1
        assert not partial.report.image_cache_hit
        # Identical to an uncached build of the edited program.
        fresh = build_program(edited, BuildConfig(outline_rounds=1))
        assert (partial.image.text_section() == fresh.image.text_section())
        assert (partial.image.data_section() == fresh.image.data_section())

    def test_frontend_config_change_invalidates_modules(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        flipped = build_program(sources,
                                self._config(tmp_path, enable_arc_opt=False))
        assert flipped.report.cache_misses == 3

    def test_backend_config_change_keeps_module_hits(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        rebuilt = build_program(
            sources, BuildConfig(outline_rounds=4, incremental=True,
                                 cache_dir=str(tmp_path)))
        assert rebuilt.report.cache_hits == 3
        assert not rebuilt.report.image_cache_hit
        fresh = build_program(sources, BuildConfig(outline_rounds=4))
        assert rebuilt.image.text_section() == fresh.image.text_section()

    def test_version_bump_invalidates_everything(self, tmp_path, monkeypatch):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "test-bump")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert rebuilt.report.cache_misses == 3

    def test_corrupted_module_entry_recovers(self, tmp_path):
        sources = dict(_sources())
        reference = build_program(sources, self._config(tmp_path))
        # Smash every stored object; the rebuild must neither crash nor
        # return stale results.
        for path in glob.glob(str(tmp_path / "objects" / "*" / "*.pkl")):
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert (rebuilt.image.text_section()
                == reference.image.text_section())
        # Recovery shows up as a structured degradation event.
        assert any(e.kind == "cache-quarantine"
                   for e in rebuilt.report.degradations)
        # And the repaired cache serves hits again.
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.image_cache_hit


def _build_into_queue(cache_dir, queue):
    sources = dict(_sources())
    result = build_program(sources, BuildConfig(
        outline_rounds=1, incremental=True, cache_dir=cache_dir))
    queue.put((result.image.text_section(), result.image.data_section()))


class TestConcurrentBuilds:
    def test_two_processes_sharing_one_cache_dir(self, tmp_path):
        """Races on a shared cache_dir (both builds probing, storing, and
        image-caching the same keys) must corrupt nothing and change no
        bits of the output."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_build_into_queue,
                             args=(str(tmp_path), queue)) for _ in range(2)]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
        assert [p.exitcode for p in procs] == [0, 0]
        reference = build_program(dict(_sources()),
                                  BuildConfig(outline_rounds=1))
        expected = (reference.image.text_section(),
                    reference.image.data_section())
        assert results == [expected, expected]
        # The populated cache serves a clean warm hit afterwards.
        warm = build_program(dict(_sources()), BuildConfig(
            outline_rounds=1, incremental=True, cache_dir=str(tmp_path)))
        assert warm.report.image_cache_hit
