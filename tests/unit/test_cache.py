"""Unit tests for the content-addressed build cache (pipeline/cache.py):
keying, hit/miss behaviour on edits, invalidation on config/version
changes, and corrupted-entry recovery."""

import glob
import os

from repro.frontend.parser import parse_module
from repro.pipeline import BuildConfig, build_program
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import (
    ModuleCache,
    count_closures,
    fingerprint_source,
    meta_from_ast,
    module_keys,
)

LIB = """
class Pair {
    var a: Int
    var b: Int
    init(a: Int, b: Int) {
        self.a = a
        self.b = b
    }
}

func scale(x: Int) -> Int { return x * 3 }
"""

MAIN = """
import Lib

func main() {
    let p = Pair(a: scale(x: 2), b: 5)
    print(p.a + p.b)
}
"""

OTHER = """
func unrelated(x: Int) -> Int { return x - 1 }
"""


def _sources():
    return [("Lib", LIB), ("Other", OTHER), ("Main", MAIN)]


def _keys(items, fingerprint="fp"):
    hashes = {name: fingerprint_source(text) for name, text in items}
    metas = {name: meta_from_ast(parse_module(text, name))
             for name, text in items}
    return dict(zip([n for n, _ in items],
                    module_keys(items, hashes, metas, fingerprint)))


class TestModuleKeys:
    def test_stable_across_calls(self):
        assert _keys(_sources()) == _keys(_sources())

    def test_edit_invalidates_module_and_importers_only(self):
        before = _keys(_sources())
        edited = [("Lib", LIB + "\nfunc extra() -> Int { return 7 }\n"),
                  ("Other", OTHER), ("Main", MAIN)]
        after = _keys(edited)
        assert after["Lib"] != before["Lib"]
        assert after["Main"] != before["Main"]  # imports Lib
        assert after["Other"] == before["Other"]  # independent, no new classes

    def test_new_class_shifts_type_id_bases_of_later_modules(self):
        before = _keys(_sources())
        with_class = [("Lib", LIB + "\nclass Extra {\n    var v: Int\n"
                              "    init(v: Int) {\n        self.v = v\n"
                              "    }\n}\n"),
                      ("Other", OTHER), ("Main", MAIN)]
        after = _keys(with_class)
        # Other never imports Lib, but its type-id base moved.
        assert after["Other"] != before["Other"]

    def test_config_fingerprint_invalidates(self):
        assert (_keys(_sources(), "fp-a")["Main"]
                != _keys(_sources(), "fp-b")["Main"])

    def test_version_bump_invalidates(self, monkeypatch):
        before = _keys(_sources())
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "999-test")
        assert _keys(_sources())["Lib"] != before["Lib"]

    def test_count_closures(self):
        module = parse_module(
            "func f() -> Int {\n"
            "    let g = { (x: Int) -> Int in return x + 1 }\n"
            "    let h = { (x: Int) -> Int in return x * 2 }\n"
            "    return g(1) + h(2)\n"
            "}\n", "M")
        assert count_closures(module) == 2


class TestModuleCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        assert cache.load("ab" * 32) is None
        assert cache.store("ab" * 32, {"payload": [1, 2, 3]})
        assert cache.load("ab" * 32) == {"payload": [1, 2, 3]}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ModuleCache(str(tmp_path))
        key = "cd" * 32
        cache.store(key, {"ok": True})
        path = cache._path(key)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 this is not a pickle")
        assert cache.load(key) is None
        assert cache.stats.errors == 1
        assert not os.path.exists(path)
        # The build can repopulate it afterwards.
        assert cache.store(key, {"ok": True})
        assert cache.load(key) == {"ok": True}


class TestBuildLevelCaching:
    def _config(self, tmp_path, **kw):
        return BuildConfig(outline_rounds=1, incremental=True,
                           cache_dir=str(tmp_path), **kw)

    def test_hit_on_rebuild_miss_on_edit(self, tmp_path):
        sources = dict(_sources())
        cold = build_program(sources, self._config(tmp_path))
        assert cold.report.cache_misses == 3
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.cache_hits == 3
        assert warm.report.image_cache_hit
        edited = dict(sources)
        edited["Other"] = OTHER + "\nfunc more(x: Int) -> Int { return x }\n"
        partial = build_program(edited, self._config(tmp_path))
        assert partial.report.cache_hits == 2
        assert partial.report.cache_misses == 1
        assert not partial.report.image_cache_hit
        # Identical to an uncached build of the edited program.
        fresh = build_program(edited, BuildConfig(outline_rounds=1))
        assert (partial.image.text_section() == fresh.image.text_section())
        assert (partial.image.data_section() == fresh.image.data_section())

    def test_frontend_config_change_invalidates_modules(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        flipped = build_program(sources,
                                self._config(tmp_path, enable_arc_opt=False))
        assert flipped.report.cache_misses == 3

    def test_backend_config_change_keeps_module_hits(self, tmp_path):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        rebuilt = build_program(
            sources, BuildConfig(outline_rounds=4, incremental=True,
                                 cache_dir=str(tmp_path)))
        assert rebuilt.report.cache_hits == 3
        assert not rebuilt.report.image_cache_hit
        fresh = build_program(sources, BuildConfig(outline_rounds=4))
        assert rebuilt.image.text_section() == fresh.image.text_section()

    def test_version_bump_invalidates_everything(self, tmp_path, monkeypatch):
        sources = dict(_sources())
        build_program(sources, self._config(tmp_path))
        monkeypatch.setattr(cache_mod, "PIPELINE_CACHE_VERSION", "test-bump")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert rebuilt.report.cache_misses == 3

    def test_corrupted_module_entry_recovers(self, tmp_path):
        sources = dict(_sources())
        reference = build_program(sources, self._config(tmp_path))
        # Smash every stored object; the rebuild must neither crash nor
        # return stale results.
        for path in glob.glob(str(tmp_path / "objects" / "*" / "*.pkl")):
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        rebuilt = build_program(sources, self._config(tmp_path))
        assert rebuilt.report.cache_hits == 0
        assert (rebuilt.image.text_section()
                == reference.image.text_section())
        # And the repaired cache serves hits again.
        warm = build_program(sources, self._config(tmp_path))
        assert warm.report.image_cache_hit
