"""Tracing must be observationally free: the same build with the tracer
on and off produces a bit-identical binary, and the traced build stays
within a generous wall-clock envelope of the untraced one."""

from repro.obs import Tracer, use_tracer
from repro.obs import trace as obs_trace
from repro.pipeline import BuildConfig, build_program

SOURCES = {
    "Lib": """
func mix(a: Int, b: Int) -> Int {
    var acc = a * 3 + b
    for i in 0..<6 { acc += (acc ^ i) % 11 }
    return acc
}
""",
    "Main": """
import Lib
func main() {
    var total = 0
    for i in 0..<8 { total += mix(a: i, b: total) }
    print(total)
}
""",
}

CONFIG = dict(pipeline="wholeprogram", outline_rounds=3)


def _image_fingerprint(result):
    image = result.image
    return (
        [instr.render() for instr in image.instrs],
        [(ext.name, ext.start, ext.end, ext.is_outlined)
         for ext in image.functions],
        dict(image.symbols),
        dict(image.data_init),
        result.sizes.text_bytes,
        result.sizes.data_bytes,
        result.sizes.binary_bytes,
    )


def _timed_build(traced):
    start = obs_trace.now()
    if traced:
        with use_tracer(Tracer()):
            result = build_program(dict(SOURCES), BuildConfig(**CONFIG))
    else:
        result = build_program(dict(SOURCES), BuildConfig(**CONFIG))
    return result, obs_trace.now() - start


def test_traced_build_is_bit_identical_and_cheap():
    # Warm-up evens out import/JIT-ish first-run costs before timing.
    _timed_build(traced=False)
    untraced, untraced_secs = _timed_build(traced=False)
    traced, traced_secs = _timed_build(traced=True)
    assert _image_fingerprint(traced) == _image_fingerprint(untraced)
    # Generous envelope: tracing adds bookkeeping, never real work.
    assert traced_secs <= untraced_secs * 5.0 + 0.75, (
        f"traced {traced_secs:.3f}s vs untraced {untraced_secs:.3f}s")


def test_untraced_build_allocates_no_spans():
    result, _ = _timed_build(traced=False)
    assert result.report.phase_wall  # still timed, via the same clock
    assert not obs_trace.current_tracer().enabled
    assert list(obs_trace.current_tracer().all_spans()) == []
