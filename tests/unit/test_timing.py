"""Cache/TLB models and the cycle timing model."""

from repro.sim.caches import TLB, SetAssociativeCache
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel


class TestCache:
    def test_hit_after_miss(self):
        cache = SetAssociativeCache(1024, 64, 2)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x13F)  # same 64B line
        assert cache.hits == 2 and cache.misses == 1

    def test_lru_eviction(self):
        cache = SetAssociativeCache(128, 64, 1)  # 2 sets, direct-mapped
        assert not cache.access(0x0)
        assert not cache.access(0x80)   # same set, evicts 0x0
        assert not cache.access(0x0)    # miss again

    def test_associativity_prevents_conflict(self):
        cache = SetAssociativeCache(256, 64, 2)  # 2 sets, 2 ways
        cache.access(0x0)
        cache.access(0x80)   # same set, second way
        assert cache.access(0x0)
        assert cache.access(0x80)

    def test_tlb_page_granularity(self):
        tlb = TLB(entries=4, page_bytes=1024)
        assert not tlb.access(0)
        assert tlb.access(1023)
        assert not tlb.access(1024)


class TestTimingModel:
    def test_base_cost_per_instruction(self):
        t = TimingModel(DeviceConfig())
        before = t.cycles
        t.on_instr(0x1000)
        # 1 base + miss costs on a cold machine
        assert t.cycles > before

    def test_warm_instruction_costs_one_cycle(self):
        t = TimingModel(DeviceConfig())
        t.on_instr(0x1000)
        warm_before = t.cycles
        t.on_instr(0x1000)
        assert t.cycles == warm_before + 1

    def test_text_page_fault_once(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(0x1000)
        t.on_instr(0x1000 + cfg.page_bytes)
        assert t.text_page_faults == 2
        t.on_instr(0x1004)
        assert t.text_page_faults == 2

    def test_data_page_fault_once_per_page(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_data_access(0x9000)
        t.on_data_access(0x9008)
        t.on_data_access(0x9000 + cfg.page_bytes)
        assert t.data_page_faults == 2

    def test_conditional_branch_mispredict_then_learn(self):
        t = TimingModel(DeviceConfig())
        t.on_taken_branch(0x100, 0x200)
        assert t.mispredicts == 1
        t.on_taken_branch(0x100, 0x200)
        assert t.mispredicts == 1
        t.on_taken_branch(0x100, 0x300)
        assert t.mispredicts == 2

    def test_unconditional_branch_never_mispredicts(self):
        t = TimingModel(DeviceConfig())
        t.on_uncond_branch(0x100, 0x200)
        t.on_uncond_branch(0x100, 0x300)
        assert t.mispredicts == 0

    def test_native_call_cost(self):
        t = TimingModel(DeviceConfig())
        t.on_native_call(40)
        assert t.cycles == 40

    def test_device_grid_ordered_by_capability(self):
        oldest, newest = DEVICE_GRID[0], DEVICE_GRID[-1]
        assert oldest.icache_bytes < newest.icache_bytes
        assert oldest.data_page_fault_cycles > newest.data_page_fault_cycles
