"""Cache/TLB models and the cycle timing model."""

from repro.sim.caches import TLB, SetAssociativeCache
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel


class TestCache:
    def test_hit_after_miss(self):
        cache = SetAssociativeCache(1024, 64, 2)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x13F)  # same 64B line
        assert cache.hits == 2 and cache.misses == 1

    def test_lru_eviction(self):
        cache = SetAssociativeCache(128, 64, 1)  # 2 sets, direct-mapped
        assert not cache.access(0x0)
        assert not cache.access(0x80)   # same set, evicts 0x0
        assert not cache.access(0x0)    # miss again

    def test_associativity_prevents_conflict(self):
        cache = SetAssociativeCache(256, 64, 2)  # 2 sets, 2 ways
        cache.access(0x0)
        cache.access(0x80)   # same set, second way
        assert cache.access(0x0)
        assert cache.access(0x80)

    def test_tlb_page_granularity(self):
        tlb = TLB(entries=4, page_bytes=1024)
        assert not tlb.access(0)
        assert tlb.access(1023)
        assert not tlb.access(1024)

    def test_lru_eviction_order_is_recency_not_insertion(self):
        """Re-accessing a resident line must refresh its LRU position: in
        a 2-way set holding {A, B}, touching A again and then inserting C
        evicts B (least recently used), never A (oldest inserted)."""
        cache = SetAssociativeCache(128, 64, 2)  # 1 set, 2 ways
        a, b, c = 0x0, 0x40, 0x80
        assert not cache.access(a)
        assert not cache.access(b)
        assert cache.access(a)       # refresh A: LRU order is now [B, A]
        assert not cache.access(c)   # evicts B
        assert cache.access(a), "refreshed line was evicted"
        assert not cache.access(b), "stale line survived the eviction"

    def test_eviction_chain_walks_lru_order(self):
        """Filling a 4-way set and streaming new lines evicts strictly in
        LRU order, one victim per insertion."""
        cache = SetAssociativeCache(256, 64, 4)  # 1 set, 4 ways
        lines = [0x40 * i for i in range(4)]
        for addr in lines:
            assert not cache.access(addr)
        for extra, victim in enumerate(lines):
            newcomer = 0x40 * (4 + extra)
            assert not cache.access(newcomer)
            assert not cache.access(victim)  # exactly the LRU way died
            # Re-inserting the victim displaces the next-oldest line,
            # keeping the chain going.


class TestTimingModel:
    def test_base_cost_per_instruction(self):
        t = TimingModel(DeviceConfig())
        before = t.cycles
        t.on_instr(0x1000)
        # 1 base + miss costs on a cold machine
        assert t.cycles > before

    def test_warm_instruction_costs_one_cycle(self):
        t = TimingModel(DeviceConfig())
        t.on_instr(0x1000)
        warm_before = t.cycles
        t.on_instr(0x1000)
        assert t.cycles == warm_before + 1

    def test_text_page_fault_once(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(0x1000)
        t.on_instr(0x1000 + cfg.page_bytes)
        assert t.text_page_faults == 2
        t.on_instr(0x1004)
        assert t.text_page_faults == 2

    def test_data_page_fault_once_per_page(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_data_access(0x9000)
        t.on_data_access(0x9008)
        t.on_data_access(0x9000 + cfg.page_bytes)
        assert t.data_page_faults == 2

    def test_conditional_branch_mispredict_then_learn(self):
        t = TimingModel(DeviceConfig())
        t.on_taken_branch(0x100, 0x200)
        assert t.mispredicts == 1
        t.on_taken_branch(0x100, 0x200)
        assert t.mispredicts == 1
        t.on_taken_branch(0x100, 0x300)
        assert t.mispredicts == 2

    def test_unconditional_branch_never_mispredicts(self):
        t = TimingModel(DeviceConfig())
        t.on_uncond_branch(0x100, 0x200)
        t.on_uncond_branch(0x100, 0x300)
        assert t.mispredicts == 0

    def test_native_call_cost(self):
        t = TimingModel(DeviceConfig())
        t.on_native_call(40)
        assert t.cycles == 40

    def test_device_grid_ordered_by_capability(self):
        oldest, newest = DEVICE_GRID[0], DEVICE_GRID[-1]
        assert oldest.icache_bytes < newest.icache_bytes
        assert oldest.data_page_fault_cycles > newest.data_page_fault_cycles


class TestLineStraddle:
    """Icache accounting at cache-line boundaries — the thumb2c cases.

    On a compressed target a 4-byte instruction can start 2 bytes before
    a line boundary; the fetch must touch (and can miss) both lines.  A
    2-byte instruction whose last byte stays inside the line must not.
    """

    def test_4byte_instr_at_line_minus_2_touches_both_lines(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        addr = cfg.line_bytes - 2  # bytes 62..65: straddles lines 0 and 1
        t.on_instr(addr, width=4)
        assert t.icache.misses == 2
        # Both lines are now resident: refetching either half is warm.
        before = t.cycles
        t.on_instr(addr, width=4)
        assert t.icache.misses == 2
        assert t.cycles == before + 1

    def test_2byte_instr_at_line_minus_2_stays_in_line(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(cfg.line_bytes - 2, width=2)  # bytes 62..63: line 0 only
        assert t.icache.misses == 1

    def test_2byte_instr_at_line_minus_1_straddles(self):
        """Pathological-but-legal on a byte-addressed model: last byte in
        the next line means two line touches even at width 2."""
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(cfg.line_bytes - 1, width=2)  # bytes 63..64
        assert t.icache.misses == 2

    def test_aligned_4byte_instr_never_straddles(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        for addr in range(0, cfg.line_bytes, 4):  # every aligned slot
            t.on_instr(addr, width=4)
        assert t.icache.misses == 1  # one line, one cold miss

    def test_straddle_charges_two_miss_penalties_when_both_cold(self):
        cfg = DeviceConfig()
        cold = TimingModel(cfg)
        cold.on_instr(cfg.line_bytes - 2, width=4)
        aligned = TimingModel(cfg)
        aligned.on_instr(0, width=4)
        assert (cold.cycles - aligned.cycles) == cfg.icache_miss_cycles


class TestITLBPageBoundary:
    """iTLB accounting at page boundaries.

    The model checks the iTLB at the *start* address only: instruction
    fetch translation is per-fetch, and the straddling byte's page is
    charged when the PC actually lands there (the very next instruction),
    so per-page costs (iTLB miss, text page fault) are never double-
    charged for one boundary crossing.
    """

    def test_last_instr_of_page_charges_only_its_own_page(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(cfg.page_bytes - 2, width=4)  # straddles pages 0 and 1
        assert t.text_page_faults == 1
        assert t.text_pages == {0}

    def test_next_fetch_charges_the_new_page(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(cfg.page_bytes - 2, width=4)
        t.on_instr(cfg.page_bytes + 2, width=4)
        assert t.text_page_faults == 2
        assert t.text_pages == {0, 1}

    def test_first_touch_of_page_faults_once(self):
        cfg = DeviceConfig()
        t = TimingModel(cfg)
        t.on_instr(0, width=4)
        cycles_after_first = t.cycles
        t.on_instr(4, width=4)  # same page, same line, iTLB warm
        assert t.text_page_faults == 1
        assert t.cycles == cycles_after_first + 1

    def test_itlb_capacity_miss_does_not_refault_resident_page(self):
        """Thrashing the iTLB re-charges the translation-miss cycles but
        never the page fault: residency outlives the TLB entry."""
        cfg = DeviceConfig(itlb_entries=2, icache_bytes=1 << 20)
        t = TimingModel(cfg)
        pages = list(range(6))  # 6 pages > the TLB's 4-way floor capacity
        for p in pages:
            t.on_instr(p * cfg.page_bytes, width=4)
        assert t.text_page_faults == 6
        faults_cycles = t.cycles
        for p in pages:  # streaming 6 pages through a 4-entry LRU: all miss
            t.on_instr(p * cfg.page_bytes, width=4)
        assert t.text_page_faults == 6, "resident page refaulted"
        # But the second sweep did pay iTLB miss cycles (capacity misses).
        assert t.cycles > faults_cycles + 6
