"""Statistics-collection pass (Section IV).

The paper inserts a pass after machine-code generation that "logs the
patterns of machine instructions ... with their frequency of repetitions
(high-to-low) including the corresponding function names".  This module is
that pass: it mines every profitable repeated pattern without mutating the
program, producing the raw data behind Figures 5-8 and Listings 1-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import MachineFunction, MachineModule
from repro.outliner.candidates import (
    InstructionMapper,
    prune_overlaps,
    sequence_uses_sp,
)
from repro.outliner.cost_model import OutlineClass, cost_of
from repro.outliner.suffix_tree import SuffixTree
from repro.target import get_target
from repro.target.spec import TargetSpec


@dataclass
class PatternStat:
    """One unique repeated pattern with its occurrence census."""

    #: Rank (1 = most frequent); assigned by collect_patterns.
    pattern_id: int
    length: int
    num_candidates: int
    outline_class: OutlineClass
    benefit_bytes: int
    rendered: Tuple[str, ...]
    #: Names of functions containing occurrences (first few).
    functions: Tuple[str, ...] = ()
    #: Encoded size of one occurrence under the mining target's widths.
    seq_bytes: int = 0


def collect_patterns(functions: Sequence[MachineFunction],
                     min_len: int = 2,
                     require_profitable: bool = True,
                     max_function_names: int = 4,
                     target: Optional[TargetSpec] = None) -> List[PatternStat]:
    """Mine repeated patterns across *functions* (read-only).

    Patterns are returned sorted by occurrence count (descending), then by
    length (descending) — the rank order of Figure 5's x-axis.
    """
    spec = get_target(target)
    mapper = InstructionMapper()
    program = mapper.map_functions(list(functions))
    if not program.ids:
        return []
    tree = SuffixTree(program.ids)
    raw: List[Tuple[int, int, List[int]]] = []
    for rs in tree.repeated_substrings(min_len=min_len):
        s0 = rs.starts[0]
        if any(program.ids[s0 + i] < 0 for i in range(rs.length)):
            continue
        starts = prune_overlaps(rs.starts, rs.length)
        if len(starts) < 2:
            continue
        raw.append((rs.length, s0, starts))

    stats: List[PatternStat] = []
    for length, s0, starts in raw:
        seq = program.instr_seq(s0, length)
        cost = cost_of(seq, spec)
        benefit = cost.benefit(len(starts))
        if require_profitable and benefit < 1:
            continue
        names: List[str] = []
        for s in starts[:max_function_names]:
            loc = program.locations[s]
            if loc is not None:
                names.append(loc.fn.name)
        stats.append(PatternStat(
            pattern_id=0, length=length, num_candidates=len(starts),
            outline_class=cost.outline_class, benefit_bytes=benefit,
            rendered=tuple(i.render() for i in seq),
            functions=tuple(names), seq_bytes=cost.seq_bytes))
    stats.sort(key=lambda p: (-p.num_candidates, -p.length, p.rendered))
    for i, stat in enumerate(stats):
        stat.pattern_id = i + 1
    return stats


def collect_module_patterns(module: MachineModule,
                            **kwargs) -> List[PatternStat]:
    return collect_patterns(module.functions, **kwargs)


def pattern_census(stats: Sequence[PatternStat]) -> Dict[str, float]:
    """Aggregate numbers quoted in Section IV."""
    if not stats:
        return {"num_patterns": 0, "num_candidates": 0,
                "pct_call_or_ret_candidates": 0.0, "max_length": 0}
    total_candidates = sum(s.num_candidates for s in stats)
    call_ret = sum(
        s.num_candidates for s in stats
        if s.outline_class in (OutlineClass.THUNK, OutlineClass.TAIL_CALL))
    return {
        "num_patterns": len(stats),
        "num_candidates": total_candidates,
        "pct_call_or_ret_candidates": 100.0 * call_ret / total_candidates,
        "max_length": max(s.length for s in stats),
    }
