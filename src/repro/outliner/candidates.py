"""Instruction mapping and outlining legality.

Mirrors LLVM's ``InstructionMapper`` + ``getOutliningType``:

* legal instructions intern to small positive integers — identical
  instructions (opcode + all operands, including call-site implicit
  registers) map to the same integer;
* illegal instructions and block boundaries get unique negative integers so
  no repeated substring can cross them;
* ``RET`` is *legal-terminator*: it may appear only as the last element of a
  candidate (enabling the tail-call outlining class).

Illegal: branches and other terminators, anything that explicitly names the
link register (frame save/restore pairs), and anything that writes the
stack pointer.  SP-*reading* instructions (spill reloads) are legal but
restrict the candidate to classes that do not move SP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Opcode,
)
from repro.isa.registers import LR, SP


def is_legal_to_outline(instr: MachineInstr) -> bool:
    if instr.opcode is Opcode.RET:
        return True
    if instr.is_terminator:
        return False
    if instr.touches_lr():
        return False
    # Any SP access is illegal: outlined bodies may run under a shifted SP
    # (the default class pushes LR), so SP-relative spill slots would read
    # the wrong frame.  LLVM permits some of these with offset fixups; we
    # take the conservative rule.
    if instr.reads_sp() or instr.writes_sp():
        return False
    return True


@dataclass
class MappedLocation:
    """Where one mapped element lives."""

    fn: MachineFunction
    block: MachineBlock
    index: int  # index within block.instrs


@dataclass
class MappedProgram:
    """Flattened program: integer string + location of every element."""

    ids: List[int] = field(default_factory=list)
    locations: List[Optional[MappedLocation]] = field(default_factory=list)
    instrs: List[Optional[MachineInstr]] = field(default_factory=list)
    #: functions in which LR is live throughout (no frame, or outlined):
    #: only tail-call-class candidates may be taken from them.
    lr_live_functions: frozenset = frozenset()

    def instr_seq(self, start: int, length: int) -> List[MachineInstr]:
        return [self.instrs[i] for i in range(start, start + length)]


def function_saves_lr(fn: MachineFunction) -> bool:
    """True if the prologue spills x29/x30 (LR dead in the body)."""
    for instr in fn.blocks[0].instrs if fn.blocks else ():
        if instr.opcode is Opcode.STPXpre and LR in instr.operands[:2]:
            return True
    return False


class InstructionMapper:
    """Builds the flat integer string for one outlining round."""

    def __init__(self) -> None:
        self._intern: Dict[Tuple, int] = {}
        self._next_legal = 1
        self._next_unique = -2  # -1 reserved for the suffix-tree terminator

    def _legal_id(self, instr: MachineInstr) -> int:
        key = instr.key()
        if key not in self._intern:
            self._intern[key] = self._next_legal
            self._next_legal += 1
        return self._intern[key]

    def _unique_id(self) -> int:
        uid = self._next_unique
        self._next_unique -= 1
        return uid

    def unique_id(self) -> int:
        """Fresh never-repeating id (segment sentinels, boundaries)."""
        return self._unique_id()

    def map_instr(self, instr: MachineInstr) -> int:
        """Id for one instruction: interned if legal, unique otherwise."""
        if is_legal_to_outline(instr):
            return self._legal_id(instr)
        return self._unique_id()

    def map_functions(self,
                      functions: Sequence[MachineFunction]) -> MappedProgram:
        program = MappedProgram()
        lr_live = set()
        for fn in functions:
            if fn.is_outlined or not function_saves_lr(fn):
                lr_live.add(fn.name)
            for block in fn.blocks:
                for index, instr in enumerate(block.instrs):
                    if is_legal_to_outline(instr):
                        program.ids.append(self._legal_id(instr))
                    else:
                        program.ids.append(self._unique_id())
                    program.locations.append(MappedLocation(fn, block, index))
                    program.instrs.append(instr)
                # Block boundary separator.
                program.ids.append(self._unique_id())
                program.locations.append(None)
                program.instrs.append(None)
        program.lr_live_functions = frozenset(lr_live)
        return program


def sequence_uses_sp(instrs: Iterable[MachineInstr]) -> bool:
    return any(SP in i.uses() or SP in i.defs() for i in instrs)


def sequence_calls(instrs: Sequence[MachineInstr]) -> List[int]:
    return [i for i, instr in enumerate(instrs) if instr.is_call]


def prune_overlaps(starts: List[int], length: int) -> List[int]:
    """Greedy left-to-right non-overlapping occurrence selection."""
    out: List[int] = []
    last_end = -1
    for start in sorted(starts):
        if start > last_end:
            out.append(start)
            last_end = start + length - 1
    return out
