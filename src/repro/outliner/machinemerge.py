"""Machine-level identical-code folding (the "merge after outline" arm).

LIR-level merging (:mod:`repro.lir.passes.optmerge`) necessarily runs
*before* llc, so it can never see the duplicates the outliner leaves
behind.  This module folds machine functions after outlining, in two
modes that mirror the LIR pass's split:

* ``exact`` — one-shot folding of bit-identical bodies (labels normalised
  to block indices, self-calls normalised so ``f calls f`` and ``g calls
  g`` can fold);
* ``optimistic`` — partition refinement over call-target *equivalence
  classes*: all functions start in one class, and the partition is
  refined until two functions share a class iff their bodies are
  identical up to callees in equal classes.  This is the coarsest
  congruence, so mutually-recursive clone groups fold where exact
  comparison sees differing symbols — the classic "optimistic" ICF from
  linker folding and LLVM's MergeFunctions.

Safety rules match the linker's safe-ICF mode: the entry function and any
function whose symbol is referenced outside a direct-call position
(address-taken: ``ADRP``/page-offset literals, stored function pointers)
are never *dropped* — they may still serve as fold representatives.
Folding only deletes bodies and retargets direct calls; it never changes
pointer identity.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import (
    Cond,
    Label,
    MachineFunction,
    MachineModule,
    Sym,
)

#: Marker classes for callee normalisation inside body keys.
_SELF = ("self",)


def _address_taken(module: MachineModule) -> set:
    """Function symbols referenced outside a direct-call position."""
    names = {fn.name for fn in module.functions}
    taken = set()
    for fn in module.functions:
        for instr in fn.instructions():
            callee = instr.callee()
            for op in instr.operands:
                if (isinstance(op, Sym) and op.name in names
                        and op.name != callee):
                    taken.add(op.name)
    return taken


def _op_key(op) -> Tuple:
    if isinstance(op, Sym):
        return ("sym", op.name)
    if isinstance(op, Label):
        return ("lbl", op.name)
    if isinstance(op, Cond):
        return ("cc", op.value)
    if isinstance(op, float):
        # Bit pattern, not value: -0.0 and 0.0 encode differently.
        return ("imm-f", struct.pack(">d", op))
    if isinstance(op, bool):
        return ("imm-b", op)
    if isinstance(op, (int, str)):
        return ("imm" if isinstance(op, int) else "reg", op)
    return ("?", repr(op))


def body_key(fn: MachineFunction,
             callee_class: Optional[Dict[str, int]] = None) -> Tuple:
    """Canonical form of a machine function body.

    Labels become block indices; a direct call to *fn* itself becomes a
    self marker; other direct-call targets are represented by their
    equivalence class when *callee_class* is given (optimistic mode) and
    verbatim otherwise (exact mode).  Everything else — opcodes, register
    names, immediates, implicit operand lists, frame metadata, the
    outlined flag — is included verbatim.
    """
    label_index = {blk.label: i for i, blk in enumerate(fn.blocks)}
    rows: List[Tuple] = []
    for blk in fn.blocks:
        rows.append(("#block", label_index[blk.label]))
        for instr in blk.instrs:
            callee = instr.callee()
            ops: List[Tuple] = []
            for op in instr.operands:
                if isinstance(op, Sym) and op.name == callee:
                    if callee_class is not None and callee in callee_class:
                        # Optimistic: the class map covers self-calls too
                        # (fn is its own class member), so it subsumes the
                        # self marker and folds strictly more.
                        ops.append(("cls", callee_class[callee]))
                    elif callee == fn.name:
                        ops.append(_SELF)
                    else:
                        ops.append(("sym", op.name))
                elif isinstance(op, Label):
                    ops.append(("lbl", label_index.get(op.name, -1)))
                else:
                    ops.append(_op_key(op))
            rows.append((instr.opcode, tuple(ops), instr.implicit_uses,
                         instr.implicit_defs))
    return (fn.is_outlined, fn.frame_bytes, fn.num_spill_slots, tuple(rows))


def _equivalence_classes(module: MachineModule) -> Tuple[Dict[str, int], int]:
    """Coarsest partition where same class => identical up to callees in
    equal classes.  Starts with every function potentially equal and
    refines to a fixpoint; folding the previous class id into each key
    makes every iteration a strict refinement, so it terminates in at
    most ``len(functions)`` rounds."""
    functions = module.functions
    cls: Dict[str, int] = {fn.name: 0 for fn in functions}
    iterations = 0
    while True:
        iterations += 1
        id_of: Dict[Tuple, int] = {}
        new_cls: Dict[str, int] = {}
        for fn in functions:
            key = (cls[fn.name], body_key(fn, callee_class=cls))
            if key not in id_of:
                id_of[key] = len(id_of)
            new_cls[fn.name] = id_of[key]
        if new_cls == cls:
            return cls, iterations
        cls = new_cls


def fold_module(module: MachineModule, mode: str = "exact",
                entry_symbol: Optional[str] = None) -> Dict[str, int]:
    """Fold identical functions in *module* in place; returns stats."""
    if mode not in ("exact", "optimistic"):
        raise ValueError(f"unknown machine-merge mode {mode!r}")
    taken = _address_taken(module)
    iterations = 1
    if mode == "optimistic":
        cls, iterations = _equivalence_classes(module)
        groups: Dict[int, List[MachineFunction]] = {}
        for fn in module.functions:
            groups.setdefault(cls[fn.name], []).append(fn)
        grouped = list(groups.values())
    else:
        by_key: Dict[Tuple, List[MachineFunction]] = {}
        for fn in module.functions:
            by_key.setdefault(body_key(fn), []).append(fn)
        grouped = list(by_key.values())

    remap: Dict[str, str] = {}
    removed_instrs = 0
    for members in grouped:
        if len(members) < 2:
            continue
        undroppable = [fn for fn in members
                       if fn.name == entry_symbol or fn.name in taken]
        rep = undroppable[0] if undroppable else members[0]
        for fn in members:
            if fn is rep or fn.name == entry_symbol or fn.name in taken:
                continue
            remap[fn.name] = rep.name
            removed_instrs += fn.num_instrs

    if remap:
        module.functions = [fn for fn in module.functions
                            if fn.name not in remap]
        for fn in module.functions:
            for blk in fn.blocks:
                for i, instr in enumerate(blk.instrs):
                    callee = instr.callee()
                    if callee in remap:
                        instr.operands = tuple(
                            Sym(remap[callee]) if (isinstance(op, Sym)
                                                   and op.name == callee)
                            else op
                            for op in instr.operands)
    return {"functions_folded": len(remap),
            "instrs_removed": removed_instrs,
            "refinement_iterations": iterations}
