"""The MachineOutliner: one greedy outlining round.

Faithful to LLVM's pass structure (§II-C):

1. map every instruction to an integer (illegal -> unique ints);
2. build a suffix tree over the whole program's integer string;
3. each internal node = a repeated pattern; prune overlapping occurrences,
   classify (tail-call / thunk / no-LR-save / default) and price it;
4. greedily take patterns in order of immediate byte benefit, skipping
   occurrences that overlap already-outlined regions ("if a lengthier
   sequence beta has substring alpha, the alpha part of beta will be
   outlined, but the rest of beta is discarded from further consideration");
5. materialise an ``OUTLINED_FUNCTION_<N>`` per chosen pattern and replace
   each occurrence with the class's call sequence.

The greedy step-4 myopia is exactly what repeated outlining
(:mod:`repro.outliner.repeated`) recovers (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Opcode,
    Sym,
)
from repro.outliner.candidates import (
    InstructionMapper,
    MappedProgram,
    prune_overlaps,
    sequence_uses_sp,
)
from repro.outliner.cost_model import CandidateCost, OutlineClass, cost_of
from repro.outliner.suffix_tree import SuffixTree
from repro.target import get_target
from repro.target.spec import TargetSpec

OUTLINED_PREFIX = "OUTLINED_FUNCTION_"


@dataclass
class OutlinedPattern:
    """Record of one materialised outlined function."""

    name: str
    length: int
    num_occurrences: int
    outline_class: OutlineClass
    benefit_bytes: int
    round_no: int
    rendered: Tuple[str, ...] = ()


@dataclass
class RoundStats:
    round_no: int
    sequences_outlined: int = 0
    functions_created: int = 0
    outlined_fn_bytes: int = 0
    bytes_saved: int = 0
    #: Profitable candidate patterns the greedy step chose among (before
    #: overlap pruning against already-taken regions).
    candidates_considered: int = 0
    patterns: List[OutlinedPattern] = field(default_factory=list)


@dataclass
class _Action:
    block: MachineBlock
    start: int
    length: int
    replacement: List[MachineInstr]


def _copy_instr(instr: MachineInstr) -> MachineInstr:
    return MachineInstr(instr.opcode, instr.operands, instr.implicit_uses,
                        instr.implicit_defs)


def _make_outlined_function(name: str, seq: Sequence[MachineInstr],
                            cls: OutlineClass, round_no: int,
                            spec: TargetSpec) -> MachineFunction:
    lr, sp = spec.regs.lr, spec.regs.sp
    body = [_copy_instr(i) for i in seq]
    if cls is OutlineClass.THUNK:
        last = body[-1]
        body[-1] = MachineInstr(Opcode.B, last.operands, last.implicit_uses,
                                last.implicit_defs)
    elif cls is OutlineClass.NO_LR_SAVE:
        body.append(MachineInstr(Opcode.RET))
    elif cls is OutlineClass.DEFAULT:
        # The body contains calls that clobber LR: save the return address
        # in the outlined function's own micro-frame.
        body = (
            [MachineInstr(Opcode.STRXpre, (lr, sp, -16))]
            + body
            + [MachineInstr(Opcode.LDRXpost, (lr, sp, 16)),
               MachineInstr(Opcode.RET)]
        )
    fn = MachineFunction(name=name, is_outlined=True, outline_round=round_no,
                         source_module="<outlined>")
    fn.new_block("entry").instrs.extend(body)
    return fn


def _call_site_replacement(name: str, cls: OutlineClass) -> List[MachineInstr]:
    if cls is OutlineClass.TAIL_CALL:
        return [MachineInstr(Opcode.B, (Sym(name),))]
    return [MachineInstr(Opcode.BL, (Sym(name),))]


def run_one_round(functions: List[MachineFunction], name_counter: Iterator[int],
                  round_no: int = 1, min_benefit: int = 1,
                  name_prefix: str = "",
                  target: Optional[TargetSpec] = None) -> RoundStats:
    """Run one outlining round over *functions* (mutated in place).

    New outlined functions are appended to *functions*.  ``name_prefix``
    namespaces outlined symbols (per-module builds would otherwise emit
    clashing OUTLINED_FUNCTION_N clones in every object file — the very
    duplication the paper's whole-program pipeline eliminates).
    """
    spec = get_target(target)
    stats = RoundStats(round_no=round_no)
    mapper = InstructionMapper()
    program = mapper.map_functions(functions)
    if not program.ids:
        return stats
    tree = SuffixTree(program.ids)

    candidates = []
    for rs in tree.repeated_substrings(min_len=2):
        s0 = rs.starts[0]
        if any(program.ids[s0 + i] < 0 for i in range(rs.length)):
            continue  # contains an illegal instruction or block boundary
        seq = program.instr_seq(s0, rs.length)
        cost = cost_of(seq, spec)
        if (cost.outline_class is OutlineClass.DEFAULT
                and sequence_uses_sp(seq)):
            continue  # SP shifts by the LR save at default-class call sites
        starts = rs.starts
        if cost.outline_class is not OutlineClass.TAIL_CALL:
            lr_live = program.lr_live_functions
            starts = [
                s for s in starts
                if program.locations[s].fn.name not in lr_live
            ]
        starts = prune_overlaps(starts, rs.length)
        if len(starts) < 2:
            continue
        benefit = cost.benefit(len(starts))
        if benefit < min_benefit:
            continue
        candidates.append((benefit, rs.length, s0, starts, seq, cost))

    # Greedy: maximum immediate benefit first; deterministic tie-breaks.
    candidates.sort(key=lambda c: (-c[0], -c[1], c[2]))
    stats.candidates_considered = len(candidates)

    taken = bytearray(len(program.ids))
    actions: List[_Action] = []
    new_functions: List[MachineFunction] = []
    for _benefit, length, _s0, starts, seq, cost in candidates:
        free = [s for s in starts if not any(taken[s:s + length])]
        if len(free) < 2:
            continue
        benefit = cost.benefit(len(free))
        if benefit < min_benefit:
            continue
        name = f"{name_prefix}{OUTLINED_PREFIX}{next(name_counter)}"
        outlined = _make_outlined_function(name, seq, cost.outline_class,
                                           round_no, spec)
        new_functions.append(outlined)
        replacement_template = _call_site_replacement(name, cost.outline_class)
        for s in free:
            loc = program.locations[s]
            actions.append(_Action(
                block=loc.block, start=loc.index, length=length,
                replacement=[_copy_instr(i) for i in replacement_template]))
            for i in range(s, s + length):
                taken[i] = 1
        stats.functions_created += 1
        stats.sequences_outlined += len(free)
        stats.outlined_fn_bytes += spec.function_body_bytes(outlined)
        stats.bytes_saved += benefit
        stats.patterns.append(OutlinedPattern(
            name=name, length=length, num_occurrences=len(free),
            outline_class=cost.outline_class, benefit_bytes=benefit,
            round_no=round_no,
            rendered=tuple(i.render() for i in seq)))

    # Apply per block, highest start first (indices stay valid).
    by_block = {}
    for action in actions:
        by_block.setdefault(id(action.block), []).append(action)
    for block_actions in by_block.values():
        block_actions.sort(key=lambda a: -a.start)
        for action in block_actions:
            block = action.block
            block.instrs[action.start:action.start + action.length] = (
                action.replacement)

    functions.extend(new_functions)
    return stats
