"""The MachineOutliner: one greedy outlining round.

Faithful to LLVM's pass structure (§II-C):

1. map every instruction to an integer (illegal -> unique ints);
2. build a suffix tree over the whole program's integer string;
3. each internal node = a repeated pattern; prune overlapping occurrences,
   classify (tail-call / thunk / no-LR-save / default) and price it;
4. greedily take patterns in order of immediate byte benefit, skipping
   occurrences that overlap already-outlined regions ("if a lengthier
   sequence beta has substring alpha, the alpha part of beta will be
   outlined, but the rest of beta is discarded from further consideration");
5. materialise an ``OUTLINED_FUNCTION_<N>`` per chosen pattern and replace
   each occurrence with the class's call sequence.

The greedy step-4 myopia is exactly what repeated outlining
(:mod:`repro.outliner.repeated`) recovers (Figure 11).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Opcode,
    Sym,
)
from repro.outliner.candidates import (
    InstructionMapper,
    MappedLocation,
    MappedProgram,
    function_saves_lr,
    is_legal_to_outline,
    prune_overlaps,
    sequence_uses_sp,
)
from repro.outliner.cost_model import CandidateCost, OutlineClass, cost_of
from repro.outliner.suffix_tree import SuffixTree
from repro.target import get_target
from repro.target.spec import TargetSpec

OUTLINED_PREFIX = "OUTLINED_FUNCTION_"


@dataclass
class OutlinedPattern:
    """Record of one materialised outlined function."""

    name: str
    length: int
    num_occurrences: int
    outline_class: OutlineClass
    benefit_bytes: int
    round_no: int
    rendered: Tuple[str, ...] = ()


@dataclass
class RoundStats:
    round_no: int
    sequences_outlined: int = 0
    functions_created: int = 0
    outlined_fn_bytes: int = 0
    bytes_saved: int = 0
    #: Profitable candidate patterns the greedy step chose among (before
    #: overlap pruning against already-taken regions).
    candidates_considered: int = 0
    patterns: List[OutlinedPattern] = field(default_factory=list)


@dataclass
class _Action:
    block: MachineBlock
    start: int
    length: int
    replacement: List[MachineInstr]


def _copy_instr(instr: MachineInstr) -> MachineInstr:
    return MachineInstr(instr.opcode, instr.operands, instr.implicit_uses,
                        instr.implicit_defs)


def _make_outlined_function(name: str, seq: Sequence[MachineInstr],
                            cls: OutlineClass, round_no: int,
                            spec: TargetSpec) -> MachineFunction:
    lr, sp = spec.regs.lr, spec.regs.sp
    body = [_copy_instr(i) for i in seq]
    if cls is OutlineClass.THUNK:
        last = body[-1]
        body[-1] = MachineInstr(Opcode.B, last.operands, last.implicit_uses,
                                last.implicit_defs)
    elif cls is OutlineClass.NO_LR_SAVE:
        body.append(MachineInstr(Opcode.RET))
    elif cls is OutlineClass.DEFAULT:
        # The body contains calls that clobber LR: save the return address
        # in the outlined function's own micro-frame.
        body = (
            [MachineInstr(Opcode.STRXpre, (lr, sp, -16))]
            + body
            + [MachineInstr(Opcode.LDRXpost, (lr, sp, 16)),
               MachineInstr(Opcode.RET)]
        )
    fn = MachineFunction(name=name, is_outlined=True, outline_round=round_no,
                         source_module="<outlined>")
    fn.new_block("entry").instrs.extend(body)
    return fn


def _call_site_replacement(name: str, cls: OutlineClass) -> List[MachineInstr]:
    if cls is OutlineClass.TAIL_CALL:
        return [MachineInstr(Opcode.B, (Sym(name),))]
    return [MachineInstr(Opcode.BL, (Sym(name),))]


@dataclass
class _Segment:
    """One block's (latest) appearance in the index's history text."""

    fn: MachineFunction
    block: MachineBlock
    start: int  # history offset of the block's first instruction id
    length: int  # instruction count (the segment sentinel sits at the end)


class OutlineIndex:
    """Persistent outlining state reused across rounds.

    Rebuilding the instruction mapper and suffix tree from scratch every
    round is the dominant cost of repeated outlining.  Ukkonen's algorithm
    is *online*, so the tree can instead absorb only what changed: the
    index keeps one append-only history text for the whole program, in
    which every basic block appears as a segment (its instruction ids plus
    a unique sentinel, so no match crosses a block), and a block rewritten
    by an outlining round is simply appended *again* — the superseded
    segment's positions are marked dead in a ``live`` bitmap rather than
    removed from the tree.  Queries then ask the history tree for repeated
    substrings that still have >= 2 live, right-branching occurrences,
    which is exactly the internal-node set of a fresh tree over the
    current program.

    Candidate *positions* are translated into the virtual coordinates of
    that fresh text (blocks in program order, one sentinel after each), so
    benefits, overlap pruning, and greedy tie-breaks are bit-identical to
    the from-scratch path; a differential test and the determinism harness
    hold the two paths to the same output.
    """

    #: Compact (rebuild from live blocks only) when the live text falls
    #: below this fraction of the history: queries walk the whole history
    #: tree, so a mostly-dead one costs more than a from-scratch build.
    #: Heavy rounds (the first few, which rewrite most blocks) therefore
    #: compact — costing what a fresh rebuild costs — while sparse rounds
    #: (the tail, and warm rebuilds) reuse the tree and skip re-mapping
    #: and re-indexing the untouched bulk of the program.
    COMPACT_THRESHOLD = 0.5

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self.mapper = InstructionMapper()
        self.tree = SuffixTree()
        self.live = bytearray()
        self.segments: List[_Segment] = []
        self._seg_starts: List[int] = []  # segments[i].start, ascending
        self._seg_of_block: Dict[int, int] = {}  # id(block) -> segment index
        self._known_functions = 0
        self._live_count = 0
        self._dirty: List[Tuple[MachineFunction, MachineBlock]] = []
        self._dirty_seen: set = set()

    def _kill_segment(self, seg_index: int) -> None:
        seg = self.segments[seg_index]
        live = self.live
        for pos in range(seg.start, seg.start + seg.length + 1):
            if live[pos]:
                live[pos] = 0
                self._live_count -= 1

    def note_rewritten(self, fn: MachineFunction, block: MachineBlock) -> None:
        """Mark a block whose instructions changed since the last round."""
        if id(block) in self._dirty_seen:
            return
        self._dirty_seen.add(id(block))
        self._dirty.append((fn, block))
        old = self._seg_of_block.get(id(block))
        if old is not None:
            self._kill_segment(old)

    def _append_segment(self, fn: MachineFunction,
                        block: MachineBlock) -> None:
        old = self._seg_of_block.get(id(block))
        if old is not None:
            self._kill_segment(old)
        mapper = self.mapper
        ids = [mapper._legal_id(i) if is_legal_to_outline(i)
               else mapper._unique_id() for i in block.instrs]
        ids.append(mapper._unique_id())
        start = len(self.tree.seq)
        self.tree.extend(ids)
        self.live.extend(b"\x01" * len(ids))
        self._live_count += len(ids)
        self._seg_of_block[id(block)] = len(self.segments)
        self.segments.append(_Segment(fn, block, start, len(ids) - 1))
        self._seg_starts.append(start)

    def refresh(self, functions: Sequence[MachineFunction]) -> None:
        """Absorb rewritten blocks and newly appended functions."""
        history = len(self.tree.seq)
        if history and self._live_count < history * self.COMPACT_THRESHOLD:
            self._reset()
        for fn, block in self._dirty:
            self._append_segment(fn, block)
        self._dirty.clear()
        self._dirty_seen.clear()
        for fn in functions[self._known_functions:]:
            for block in fn.blocks:
                self._append_segment(fn, block)
        self._known_functions = len(functions)

    def segment_at(self, pos: int) -> int:
        """Index of the segment containing history position *pos*."""
        return bisect.bisect_right(self._seg_starts, pos) - 1


#: (benefit, length, first-start, pruned starts, instr sequence, cost).
_Candidate = Tuple[int, int, int, List[int], List[MachineInstr], CandidateCost]


def _fresh_candidates(tree: SuffixTree, program: MappedProgram,
                      spec: TargetSpec, min_benefit: int) -> List[_Candidate]:
    candidates = []
    for rs in tree.repeated_substrings(min_len=2):
        s0 = rs.starts[0]
        if any(program.ids[s0 + i] < 0 for i in range(rs.length)):
            continue  # contains an illegal instruction or block boundary
        seq = program.instr_seq(s0, rs.length)
        cost = cost_of(seq, spec)
        if (cost.outline_class is OutlineClass.DEFAULT
                and sequence_uses_sp(seq)):
            continue  # SP shifts by the LR save at default-class call sites
        starts = rs.starts
        if cost.outline_class is not OutlineClass.TAIL_CALL:
            lr_live = program.lr_live_functions
            starts = [
                s for s in starts
                if program.locations[s].fn.name not in lr_live
            ]
        starts = prune_overlaps(starts, rs.length)
        if len(starts) < 2:
            continue
        benefit = cost.benefit(len(starts))
        if benefit < min_benefit:
            continue
        candidates.append((benefit, rs.length, s0, starts, seq, cost))
    return candidates


def _indexed_candidates(
        index: OutlineIndex, functions: Sequence[MachineFunction],
        spec: TargetSpec, min_benefit: int,
) -> Tuple[List[_Candidate], Optional[Callable[[int], MappedLocation]], int]:
    """Candidates from the persistent index, in fresh-text coordinates.

    Returns ``(candidates, locate, total_positions)`` where *locate* maps
    a virtual position back to its (function, block, index) and
    *total_positions* is the length of the virtual fresh text.
    """
    segments = index.segments
    history = len(index.tree.seq)
    # History position -> virtual fresh-text position / owning segment,
    # filled only for positions of currently-live segments.
    vpos: List[int] = [-1] * history
    vseg: List[int] = [-1] * history
    vstarts: List[int] = []
    vsegs: List[int] = []
    total = 0
    for fn in functions:
        for block in fn.blocks:
            si = index._seg_of_block[id(block)]
            seg = segments[si]
            vstarts.append(total)
            vsegs.append(si)
            for k in range(seg.length + 1):
                vpos[seg.start + k] = total + k
                vseg[seg.start + k] = si
            total += seg.length + 1
    if total == 0:
        return [], None, 0

    def locate(v: int) -> MappedLocation:
        k = bisect.bisect_right(vstarts, v) - 1
        seg = segments[vsegs[k]]
        return MappedLocation(seg.fn, seg.block, v - vstarts[k])

    lr_live = frozenset(fn.name for fn in functions
                        if fn.is_outlined or not function_saves_lr(fn))
    seq = index.tree.seq
    candidates = []
    for rs in index.tree.live_repeated_substrings(index.live, min_len=2):
        length = rs.length
        occs = []
        for s in rs.starts:
            v = vpos[s]
            if v < 0:
                continue  # block not reachable from *functions*
            occs.append((v, vseg[s], s))
        if len(occs) < 2:
            continue
        occs.sort()
        v0, si0, s0 = occs[0]
        if any(seq[s0 + i] < 0 for i in range(length)):
            continue  # contains an illegal instruction or a sentinel
        seg0 = segments[si0]
        off0 = s0 - seg0.start
        instr_seq = seg0.block.instrs[off0:off0 + length]
        cost = cost_of(instr_seq, spec)
        if (cost.outline_class is OutlineClass.DEFAULT
                and sequence_uses_sp(instr_seq)):
            continue
        if cost.outline_class is not OutlineClass.TAIL_CALL:
            starts = [v for v, si, _s in occs
                      if segments[si].fn.name not in lr_live]
        else:
            starts = [v for v, _si, _s in occs]
        starts = prune_overlaps(starts, length)
        if len(starts) < 2:
            continue
        benefit = cost.benefit(len(starts))
        if benefit < min_benefit:
            continue
        candidates.append((benefit, length, v0, starts, instr_seq, cost))
    return candidates, locate, total


def run_one_round(functions: List[MachineFunction], name_counter: Iterator[int],
                  round_no: int = 1, min_benefit: int = 1,
                  name_prefix: str = "",
                  target: Optional[TargetSpec] = None,
                  index: Optional[OutlineIndex] = None) -> RoundStats:
    """Run one outlining round over *functions* (mutated in place).

    New outlined functions are appended to *functions*.  ``name_prefix``
    namespaces outlined symbols (per-module builds would otherwise emit
    clashing OUTLINED_FUNCTION_N clones in every object file — the very
    duplication the paper's whole-program pipeline eliminates).

    With *index* (an :class:`OutlineIndex` owned by the caller across
    rounds) the round reuses the persistent mapper and suffix tree instead
    of rebuilding them, producing bit-identical results.
    """
    spec = get_target(target)
    stats = RoundStats(round_no=round_no)
    if index is None:
        mapper = InstructionMapper()
        program = mapper.map_functions(functions)
        if not program.ids:
            return stats
        tree = SuffixTree(program.ids)
        candidates = _fresh_candidates(tree, program, spec, min_benefit)
        locate = program.locations.__getitem__
        total_positions = len(program.ids)
    else:
        index.refresh(functions)
        candidates, locate, total_positions = _indexed_candidates(
            index, functions, spec, min_benefit)
        if total_positions == 0:
            return stats

    # Greedy: maximum immediate benefit first; deterministic tie-breaks.
    candidates.sort(key=lambda c: (-c[0], -c[1], c[2]))
    stats.candidates_considered = len(candidates)

    taken = bytearray(total_positions)
    actions: List[_Action] = []
    new_functions: List[MachineFunction] = []
    for _benefit, length, _s0, starts, seq, cost in candidates:
        free = [s for s in starts if not any(taken[s:s + length])]
        if len(free) < 2:
            continue
        benefit = cost.benefit(len(free))
        if benefit < min_benefit:
            continue
        name = f"{name_prefix}{OUTLINED_PREFIX}{next(name_counter)}"
        outlined = _make_outlined_function(name, seq, cost.outline_class,
                                           round_no, spec)
        new_functions.append(outlined)
        replacement_template = _call_site_replacement(name, cost.outline_class)
        for s in free:
            loc = locate(s)
            actions.append(_Action(
                block=loc.block, start=loc.index, length=length,
                replacement=[_copy_instr(i) for i in replacement_template]))
            if index is not None:
                index.note_rewritten(loc.fn, loc.block)
            for i in range(s, s + length):
                taken[i] = 1
        stats.functions_created += 1
        stats.sequences_outlined += len(free)
        stats.outlined_fn_bytes += spec.function_body_bytes(outlined)
        stats.bytes_saved += benefit
        stats.patterns.append(OutlinedPattern(
            name=name, length=length, num_occurrences=len(free),
            outline_class=cost.outline_class, benefit_bytes=benefit,
            round_no=round_no,
            rendered=tuple(i.render() for i in seq)))

    # Apply per block, highest start first (indices stay valid).
    by_block = {}
    for action in actions:
        by_block.setdefault(id(action.block), []).append(action)
    for block_actions in by_block.values():
        block_actions.sort(key=lambda a: -a.start)
        for action in block_actions:
            block = action.block
            block.instrs[action.start:action.start + action.length] = (
                action.replacement)

    functions.extend(new_functions)
    return stats
