"""Whole-program repeated machine-code outlining (the paper's contribution)."""

from repro.outliner.cost_model import CandidateCost, OutlineClass, classify, cost_of
from repro.outliner.machine_outliner import (
    OUTLINED_PREFIX,
    OutlinedPattern,
    RoundStats,
    run_one_round,
)
from repro.outliner.repeated import (
    OutlineRoundStats,
    repeated_outline,
    repeated_outline_functions,
)
from repro.outliner.suffix_tree import SuffixTree

__all__ = [
    "CandidateCost",
    "OutlineClass",
    "classify",
    "cost_of",
    "OUTLINED_PREFIX",
    "OutlinedPattern",
    "RoundStats",
    "run_one_round",
    "OutlineRoundStats",
    "repeated_outline",
    "repeated_outline_functions",
    "SuffixTree",
]
