"""Generalised suffix tree over integer sequences (Ukkonen's algorithm).

This is the data structure at the heart of LLVM's MachineOutliner ("it
maintains machine instructions belonging to every basic block of a function
in a suffix tree", §II-C).  The instruction mapper turns every machine
instruction into an integer (identical instructions -> identical integers,
illegal instructions and block boundaries -> unique integers), and each
internal node of the tree is a *repeated substring* — an outlining pattern.

The implementation is iterative (no recursion limits) and linear-time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Sentinel id guaranteed unique (appended internally).
_END_SYMBOL_BASE = -1


class _Node:
    __slots__ = ("start", "end", "link", "children", "suffix_index")

    def __init__(self, start: int, end: Optional[int]):
        self.start = start
        self.end = end  # None = leaf (grows to current end)
        self.link: Optional["_Node"] = None
        self.children: Dict[int, "_Node"] = {}
        self.suffix_index = -1


@dataclass
class RepeatedSubstring:
    """A substring of length >= min_len occurring >= 2 times."""

    length: int
    #: Start offsets of every occurrence in the input sequence.
    starts: List[int]

    def substring(self, seq: List[int]) -> Tuple[int, ...]:
        s = self.starts[0]
        return tuple(seq[s:s + self.length])


class SuffixTree:
    """Ukkonen suffix tree over ``seq`` (a list of ints).

    Construction is *online*: Ukkonen's algorithm processes the input one
    symbol at a time, so the tree also supports :meth:`extend` — appending
    more symbols after construction.  The incremental outliner feeds each
    basic block in as a segment ending with a unique sentinel and queries
    via :meth:`live_repeated_substrings`; rewritten blocks are appended
    again rather than rebuilding the whole tree.
    """

    def __init__(self, seq: Optional[List[int]] = None):
        self.seq: List[int] = []
        self.root = _Node(-1, -1)
        self._active_node = self.root
        self._active_edge = -1  # index into seq of the edge's first symbol
        self._active_length = 0
        self._remainder = 0
        self._leaf_end = -1
        if seq is not None:
            self.extend(seq)
            # Unique terminator so every suffix ends at a leaf.
            self.extend((_END_SYMBOL_BASE,))

    # -- construction -----------------------------------------------------

    def extend(self, symbols: Sequence[int]) -> None:
        """Append *symbols* to the indexed text.

        Every complete suffix becomes explicit as soon as a never-seen
        symbol (a unique sentinel) is fed in, so callers that terminate
        each appended segment with one may query immediately after.
        """
        seq = self.seq
        root = self.root
        active_node = self._active_node
        active_edge = self._active_edge
        active_length = self._active_length
        remainder = self._remainder

        for symbol in symbols:
            seq.append(symbol)
            i = len(seq) - 1
            self._leaf_end = i
            remainder += 1
            last_internal: Optional[_Node] = None
            while remainder > 0:
                if active_length == 0:
                    active_edge = i
                edge_symbol = seq[active_edge]
                child = active_node.children.get(edge_symbol)
                if child is None:
                    # New leaf directly below active_node.
                    leaf = _Node(i, None)
                    active_node.children[edge_symbol] = leaf
                    if last_internal is not None:
                        last_internal.link = active_node
                        last_internal = None
                else:
                    edge_len = self._edge_length(child)
                    if active_length >= edge_len:
                        active_edge += edge_len
                        active_length -= edge_len
                        active_node = child
                        continue
                    if seq[child.start + active_length] == symbol:
                        # Symbol already on the edge: extend active point.
                        active_length += 1
                        if last_internal is not None:
                            last_internal.link = active_node
                        break
                    # Split the edge.
                    split = _Node(child.start, child.start + active_length)
                    active_node.children[edge_symbol] = split
                    leaf = _Node(i, None)
                    split.children[symbol] = leaf
                    child.start += active_length
                    split.children[seq[child.start]] = child
                    if last_internal is not None:
                        last_internal.link = split
                    last_internal = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = i - remainder + 1
                elif active_node is not root:
                    active_node = active_node.link or root

        self._active_node = active_node
        self._active_edge = active_edge
        self._active_length = active_length
        self._remainder = remainder

    def _edge_length(self, node: _Node) -> int:
        end = node.end if node.end is not None else self._leaf_end + 1
        return end - node.start

    # -- queries -----------------------------------------------------------

    def repeated_substrings(self, min_len: int = 2,
                            max_len: int = 2048) -> Iterator[RepeatedSubstring]:
        """Yield every right-maximal repeated substring (internal node).

        A substring is yielded once per internal node at depth in
        [min_len, max_len]; ``starts`` lists all its occurrences.
        """
        n = len(self.seq)
        # Iterative DFS carrying path depth; collect leaf suffix indices.
        stack: List[Tuple[_Node, int, bool]] = [(self.root, 0, False)]
        leaves_of: Dict[int, List[int]] = {}
        order: List[Tuple[_Node, int]] = []
        while stack:
            node, depth, processed = stack.pop()
            if processed:
                order.append((node, depth))
                continue
            stack.append((node, depth, True))
            for child in node.children.values():
                stack.append((child, depth + self._edge_length(child), False))
        # Post-order: accumulate leaf suffix starts upward.
        for node, depth in order:
            if not node.children:
                # Leaf: suffix start = n - depth.
                leaves_of[id(node)] = [n - depth]
                continue
            acc: List[int] = []
            for child in node.children.values():
                acc.extend(leaves_of.pop(id(child), ()))
            leaves_of[id(node)] = acc
            if node is self.root:
                continue
            if depth < min_len or depth > max_len:
                continue
            if len(acc) >= 2:
                starts = [s for s in acc if s + depth <= n - 1]
                if len(starts) >= 2:
                    yield RepeatedSubstring(length=depth, starts=sorted(starts))

    def live_repeated_substrings(
            self, live: Sequence[int], min_len: int = 2,
            max_len: int = 2048) -> Iterator[RepeatedSubstring]:
        """Repeated substrings of the *live* sub-text of the history.

        ``live`` flags each history position (1 = current, 0 = superseded).
        When every appended segment ends with its own unique sentinel, no
        repeat can cross a segment boundary, and this yields exactly the
        internal-node set a fresh tree over the concatenation of live
        segments would yield: a history node survives only if >= 2 live
        occurrences remain *and* they still branch right (>= 2 distinct
        following symbols) — dead occurrences may have been the only
        reason the node existed.
        """
        n = len(self.seq)
        seq = self.seq
        stack: List[Tuple[_Node, int, bool]] = [(self.root, 0, False)]
        leaves_of: Dict[int, List[int]] = {}
        order: List[Tuple[_Node, int]] = []
        while stack:
            node, depth, processed = stack.pop()
            if processed:
                order.append((node, depth))
                continue
            stack.append((node, depth, True))
            for child in node.children.values():
                stack.append((child, depth + self._edge_length(child), False))
        for node, depth in order:
            if not node.children:
                leaves_of[id(node)] = [n - depth]
                continue
            acc: List[int] = []
            for child in node.children.values():
                acc.extend(leaves_of.pop(id(child), ()))
            leaves_of[id(node)] = acc
            if node is self.root:
                continue
            if depth < min_len or depth > max_len:
                continue
            if len(acc) < 2:
                continue
            starts = [s for s in acc if s + depth <= n - 1 and live[s]]
            if len(starts) < 2:
                continue
            if len(starts) < len(acc):
                # Dead occurrences may have carried the branching; an
                # all-live node branches by construction.
                if len({seq[s + depth] for s in starts}) < 2:
                    continue
            yield RepeatedSubstring(length=depth, starts=sorted(starts))


def naive_repeated_substrings(seq: List[int], min_len: int = 2,
                              max_len: int = 64) -> Dict[Tuple[int, ...], List[int]]:
    """O(n^2) reference implementation used by property tests.

    Returns every *right-maximal* repeated substring, i.e. substrings whose
    occurrence set cannot be extended one symbol to the right without
    shrinking — matching what the suffix tree's internal nodes represent.
    """
    n = len(seq)
    occurrences: Dict[Tuple[int, ...], List[int]] = {}
    for length in range(min_len, min(max_len, n) + 1):
        for start in range(n - length + 1):
            key = tuple(seq[start:start + length])
            occurrences.setdefault(key, []).append(start)
    repeated = {k: v for k, v in occurrences.items() if len(v) >= 2}
    # Keep only right-maximal substrings.
    out: Dict[Tuple[int, ...], List[int]] = {}
    for key, starts in repeated.items():
        extensions = set()
        for s in starts:
            end = s + len(key)
            extensions.add(seq[end] if end < n else ("$", s))
        if len(extensions) > 1:
            out[key] = starts
    return out
