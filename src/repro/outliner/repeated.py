"""Repeated machine outlining (the paper's core contribution, §V-B).

Instead of discarding lengthier candidates whose substrings were already
outlined, the greedy round is simply *re-run*: the new candidates now
contain one or more calls to already-outlined functions and are matched and
outlined like any other instruction sequence (``BL OUTLINED_FUNCTION_N`` is
an ordinary, internable instruction to the mapper).

The externally visible knob is ``rounds`` — the paper's
``-outline-repeat-count=<uint>`` llc flag; Uber ships 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import MachineFunction, MachineModule
from repro.obs import trace
from repro.outliner.machine_outliner import (
    OutlineIndex,
    RoundStats,
    run_one_round,
)
from repro.target.spec import TargetSpec


@dataclass
class OutlineRoundStats:
    """Cumulative statistics after each round (the shape of Table II)."""

    round_no: int
    sequences_outlined: int
    functions_created: int
    outlined_fn_bytes: int
    bytes_saved: int
    #: Per-round (non-cumulative) detail.
    round_detail: RoundStats = None  # type: ignore[assignment]


def repeated_outline(module: MachineModule, rounds: int = 5,
                     collect_stats: bool = True, name_counter=None,
                     name_prefix: str = "",
                     target: Optional[TargetSpec] = None,
                     incremental: Optional[bool] = None) -> List[OutlineRoundStats]:
    """Run up to *rounds* outlining rounds over a whole machine module."""
    return repeated_outline_functions(module.functions, rounds,
                                      collect_stats, name_counter,
                                      name_prefix, target, incremental)


def repeated_outline_functions(functions: List[MachineFunction],
                               rounds: int = 5, collect_stats: bool = True,
                               name_counter=None,
                               name_prefix: str = "",
                               target: Optional[TargetSpec] = None,
                               incremental: Optional[bool] = None) -> List[OutlineRoundStats]:
    """Outline repeatedly; later rounds match calls into earlier rounds.

    ``incremental`` reuses one :class:`OutlineIndex` (persistent mapper +
    online suffix tree) across rounds instead of rebuilding both from
    scratch each round; results are bit-identical either way.  Defaults to
    on for multi-round runs, where the reuse pays for itself.
    """
    if name_counter is None:
        name_counter = itertools.count(0)
    if incremental is None:
        incremental = rounds > 1
    index = OutlineIndex() if incremental else None
    cumulative: List[OutlineRoundStats] = []
    total_seqs = 0
    total_fns = 0
    total_bytes = 0
    total_saved = 0
    metrics = trace.metrics()
    for round_no in range(1, rounds + 1):
        with trace.span("outline-round", kind="outline-round",
                        round_no=round_no, prefix=name_prefix) as span:
            stats = run_one_round(functions, name_counter, round_no=round_no,
                                  name_prefix=name_prefix, target=target,
                                  index=index)
            span.annotate(candidates=stats.candidates_considered,
                          sequences_outlined=stats.sequences_outlined,
                          functions_created=stats.functions_created,
                          bytes_saved=stats.bytes_saved)
        metrics.inc("outliner.rounds")
        metrics.inc("outliner.candidates", stats.candidates_considered)
        metrics.inc("outliner.sequences_outlined", stats.sequences_outlined)
        metrics.inc("outliner.functions_created", stats.functions_created)
        metrics.inc("outliner.bytes_saved", stats.bytes_saved)
        metrics.observe("outliner.round_bytes_saved", stats.bytes_saved)
        total_seqs += stats.sequences_outlined
        total_fns += stats.functions_created
        total_bytes += stats.outlined_fn_bytes
        total_saved += stats.bytes_saved
        if collect_stats:
            cumulative.append(OutlineRoundStats(
                round_no=round_no,
                sequences_outlined=total_seqs,
                functions_created=total_fns,
                outlined_fn_bytes=total_bytes,
                bytes_saved=total_saved,
                round_detail=stats,
            ))
        if stats.functions_created == 0:
            break
    return cumulative
