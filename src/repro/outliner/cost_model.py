"""Outlining cost model, parameterized by target width model.

Classifies a candidate sequence into the four AArch64-style outlining
classes and prices each in bytes through the target's
:class:`~repro.target.spec.WidthModel` (on ``arm64`` every instruction is
4 bytes, reproducing the paper's fixed-width accounting exactly):

============  ======================  ==============================  =====
class         call at each site       outlined function body          frame
============  ======================  ==============================  =====
tail-call     ``B``                   sequence as-is (ends RET)       0
thunk         ``BL``                  prefix + tail ``B callee``      0
no-LR-save    ``BL``                  sequence + ``RET``              RET
default       ``BL``                  push LR + sequence + pop LR +   3 in.
                                      ``RET`` (body contains calls,
                                      so LR is saved in the outlined
                                      function's own frame)
============  ======================  ==============================  =====

A candidate is profitable iff it saves at least one byte over the whole
binary — the paper's Section IV profitability criterion.  On
variable-width targets the model is deliberately conservative so that an
accepted candidate can never grow the aligned text section:

* the outlined body is priced at its *alignment-padded* size
  (``align_up``), the exact amount the linker will lay out;
* each call site is additionally billed ``call_site_alignment_slack``
  bytes (alignment − minimum width): shrinking a caller body can expose
  at most that much fresh padding at the caller's end.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Union

from repro.isa.instructions import MachineInstr, Opcode
from repro.target import get_target
from repro.target.spec import TargetSpec


class OutlineClass(Enum):
    TAIL_CALL = "tail-call"
    THUNK = "thunk"
    NO_LR_SAVE = "no-lr-save"
    DEFAULT = "default"


@dataclass(frozen=True)
class CandidateCost:
    outline_class: OutlineClass
    #: Bytes of instructions inserted at each call site.
    call_bytes: int
    #: Bytes of the outlined function body (alignment-padded).
    outlined_fn_bytes: int
    seq_bytes: int
    #: Per-site worst-case alignment padding exposed by shrinking the
    #: caller (0 on fixed-width targets).
    call_site_slack_bytes: int = 0

    def benefit(self, num_occurrences: int) -> int:
        """Whole-binary byte saving when all occurrences are outlined."""
        before = self.seq_bytes * num_occurrences
        after = ((self.call_bytes + self.call_site_slack_bytes)
                 * num_occurrences + self.outlined_fn_bytes)
        return before - after


def classify(seq: Sequence[MachineInstr]) -> OutlineClass:
    """Determine the outlining class of a candidate sequence."""
    last = seq[-1]
    calls = [i for i, instr in enumerate(seq) if instr.is_call]
    if last.opcode is Opcode.RET:
        return OutlineClass.TAIL_CALL
    if last.opcode is Opcode.BL and len(calls) == 1:
        return OutlineClass.THUNK
    if not calls:
        return OutlineClass.NO_LR_SAVE
    return OutlineClass.DEFAULT


def cost_of(seq: Sequence[MachineInstr],
            target: Union[str, TargetSpec, None] = None) -> CandidateCost:
    spec = get_target(target)
    seq_bytes = spec.seq_bytes(seq)
    slack = spec.call_site_alignment_slack
    cls = classify(seq)
    if cls is OutlineClass.TAIL_CALL:
        return CandidateCost(cls, call_bytes=spec.outline_tail_call_bytes,
                             outlined_fn_bytes=spec.align_up(seq_bytes),
                             seq_bytes=seq_bytes,
                             call_site_slack_bytes=slack)
    if cls is OutlineClass.THUNK:
        # The final BL becomes a tail B; both are symbolic (always wide).
        body = seq_bytes - spec.instr_bytes(seq[-1]) \
            + spec.outline_tail_call_bytes
        return CandidateCost(cls, call_bytes=spec.outline_call_bytes,
                             outlined_fn_bytes=spec.align_up(body),
                             seq_bytes=seq_bytes,
                             call_site_slack_bytes=slack)
    if cls is OutlineClass.NO_LR_SAVE:
        body = seq_bytes + spec.outline_ret_bytes
        return CandidateCost(cls, call_bytes=spec.outline_call_bytes,
                             outlined_fn_bytes=spec.align_up(body),
                             seq_bytes=seq_bytes,
                             call_site_slack_bytes=slack)
    body = (spec.outline_lr_save_bytes + seq_bytes
            + spec.outline_lr_restore_bytes + spec.outline_ret_bytes)
    return CandidateCost(cls, call_bytes=spec.outline_call_bytes,
                         outlined_fn_bytes=spec.align_up(body),
                         seq_bytes=seq_bytes,
                         call_site_slack_bytes=slack)
