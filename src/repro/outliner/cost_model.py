"""AArch64-style outlining cost model.

Classifies a candidate sequence into the four AArch64 outlining classes and
prices each in bytes (fixed-width ISA: 4 bytes per instruction):

============  ======================  ==============================  =====
class         call at each site       outlined function body          frame
============  ======================  ==============================  =====
tail-call     ``B`` (4B)              sequence as-is (ends RET)       0
thunk         ``BL`` (4B)             prefix + tail ``B callee``      0
no-LR-save    ``BL`` (4B)             sequence + ``RET``              4B
default       ``BL`` (4B)             push LR + sequence + pop LR +   12B
                                      ``RET`` (body contains calls,
                                      so LR is saved in the outlined
                                      function's own frame)
============  ======================  ==============================  =====

A candidate is profitable iff it saves at least one byte over the whole
binary — the paper's Section IV profitability criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.isa.instructions import INSTR_BYTES, MachineInstr, Opcode


class OutlineClass(Enum):
    TAIL_CALL = "tail-call"
    THUNK = "thunk"
    NO_LR_SAVE = "no-lr-save"
    DEFAULT = "default"


@dataclass(frozen=True)
class CandidateCost:
    outline_class: OutlineClass
    #: Bytes of instructions inserted at each call site.
    call_bytes: int
    #: Bytes of the outlined function body.
    outlined_fn_bytes: int
    seq_bytes: int

    def benefit(self, num_occurrences: int) -> int:
        """Whole-binary byte saving when all occurrences are outlined."""
        before = self.seq_bytes * num_occurrences
        after = self.call_bytes * num_occurrences + self.outlined_fn_bytes
        return before - after


def classify(seq: Sequence[MachineInstr]) -> OutlineClass:
    """Determine the outlining class of a candidate sequence."""
    last = seq[-1]
    calls = [i for i, instr in enumerate(seq) if instr.is_call]
    if last.opcode is Opcode.RET:
        return OutlineClass.TAIL_CALL
    if last.opcode is Opcode.BL and len(calls) == 1:
        return OutlineClass.THUNK
    if not calls:
        return OutlineClass.NO_LR_SAVE
    return OutlineClass.DEFAULT


def cost_of(seq: Sequence[MachineInstr]) -> CandidateCost:
    seq_bytes = INSTR_BYTES * len(seq)
    cls = classify(seq)
    if cls is OutlineClass.TAIL_CALL:
        return CandidateCost(cls, call_bytes=INSTR_BYTES,
                             outlined_fn_bytes=seq_bytes, seq_bytes=seq_bytes)
    if cls is OutlineClass.THUNK:
        return CandidateCost(cls, call_bytes=INSTR_BYTES,
                             outlined_fn_bytes=seq_bytes, seq_bytes=seq_bytes)
    if cls is OutlineClass.NO_LR_SAVE:
        return CandidateCost(cls, call_bytes=INSTR_BYTES,
                             outlined_fn_bytes=seq_bytes + INSTR_BYTES,
                             seq_bytes=seq_bytes)
    return CandidateCost(cls, call_bytes=INSTR_BYTES,
                         outlined_fn_bytes=seq_bytes + 3 * INSTR_BYTES,
                         seq_bytes=seq_bytes)
