"""Figure 7: cumulative size savings vs number of patterns outlined.

The paper's point: one cannot hard-code a few patterns — more than 10^2
patterns are needed to reach 90% of the achievable saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.distributions import cumulative_savings, patterns_for_fraction
from repro.analysis.patterns import mine_build_patterns
from repro.experiments.common import app_spec, build_app, format_table
from repro.pipeline import BuildConfig


@dataclass
class CumulativeResult:
    curve: List[Tuple[int, int]]
    patterns_for_90pct: int
    total_patterns: int
    total_bytes: int


def run(scale: str = "small", week: int = 0) -> CumulativeResult:
    build = build_app(app_spec(scale, week=week),
                      BuildConfig(pipeline="wholeprogram", outline_rounds=0))
    stats = mine_build_patterns(build)
    curve = cumulative_savings(stats)
    return CumulativeResult(
        curve=curve,
        patterns_for_90pct=patterns_for_fraction(stats, 0.9),
        total_patterns=len(stats),
        total_bytes=curve[-1][1] if curve else 0,
    )


def format_report(result: CumulativeResult) -> str:
    samples = []
    marks = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
    for mark in marks:
        if mark <= len(result.curve):
            count, total = result.curve[mark - 1]
            samples.append((count, total,
                            f"{100.0 * total / result.total_bytes:.1f}%"))
    table = format_table(["patterns outlined", "bytes saved", "% of max"],
                         samples)
    return (
        "Figure 7: cumulative savings by number of patterns outlined\n"
        f"{table}\n"
        f"patterns needed for 90% of max saving: {result.patterns_for_90pct} "
        f"of {result.total_patterns}   [paper: > 10^2]"
    )
