"""Phase-ordering experiment: function merging stacked with the outliner.

One table (mirroring the paper's presentation) answering, per target:
how do {off, exact, optimistic} merging combine with repeated outlining,
and does the phase order matter?

* ``merge-only`` — merging at the LIR level, outliner disabled;
* ``before``    — LIR merging, then llc + repeated outlining (the natural
  pipeline order: :mod:`repro.lir.passes.optmerge` runs pre-llc);
* ``after``     — outline first (merge off), then machine-level identical
  code folding (:mod:`repro.outliner.machinemerge`) on the outlined
  module, relinked.  LIR merging cannot literally run after llc, so the
  "after" arm is folding at the machine layer — the same layer the
  outliner works at.

For ``mode=off`` the two orders collapse to plain outline-only; both rows
are reported so the {mode} x {order} grid is complete.  The headline
claims the harness asserts: optimistic never reports more padded-text
bytes than exact in either order, and every relinked "after" image still
passes the structural verifier.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.common import PAPER_ROUNDS, app_spec, format_table
from repro.link.linker import link_binary
from repro.link.verify import verify_image
from repro.outliner import machinemerge
from repro.pipeline import BuildConfig, build_program
from repro.target import get_target
from repro.workloads.appgen import generate_app

DEFAULT_TARGETS = ("arm64", "thumb2c")
MODES = ("off", "exact", "optimistic")


@dataclass
class MergeOrderRow:
    target: str
    mode: str       # off | exact | optimistic
    order: str      # merge-only | before | after
    rounds: int
    #: Padded __text bytes (alignment padding included on variable-width
    #: targets) — the paper's primary size metric.
    text_bytes: int
    padding_bytes: int
    num_functions: int
    #: Functions the merge stage rewrote (LIR merged or machine folded).
    merged: int


@dataclass
class MergeOrderResult:
    rows: List[MergeOrderRow]
    targets: Tuple[str, ...]
    rounds: int
    scale: str

    def row(self, target: str, mode: str, order: str) -> MergeOrderRow:
        for r in self.rows:
            if (r.target, r.mode, r.order) == (target, mode, order):
                return r
        raise KeyError((target, mode, order))


def _build_row(sources, target: str, mode: str, order: str,
               rounds: int) -> MergeOrderRow:
    result = build_program(sources, BuildConfig(
        outline_rounds=rounds, target=target, merge_mode=mode))
    return MergeOrderRow(
        target=target, mode=mode, order=order, rounds=rounds,
        text_bytes=result.sizes.text_bytes,
        padding_bytes=result.image.alignment_padding_bytes,
        num_functions=result.sizes.num_functions,
        merged=result.report.merge_stats.get("functions_merged", 0))


def _after_row(base, target: str, mode: str, rounds: int) -> MergeOrderRow:
    """Fold the outlined machine module(s), relink, re-verify."""
    modules = copy.deepcopy(base.machine_modules)
    folded = 0
    for module in modules:
        stats = machinemerge.fold_module(
            module, mode=mode, entry_symbol=base.image.entry_symbol)
        folded += stats["functions_folded"]
    image = link_binary(modules, entry_symbol=base.image.entry_symbol,
                        outlined_layout=base.config.outlined_layout,
                        target=target)
    verify_image(image, target=target)
    return MergeOrderRow(
        target=target, mode=mode, order="after", rounds=rounds,
        text_bytes=image.text_bytes,
        padding_bytes=image.alignment_padding_bytes,
        num_functions=image.num_functions,
        merged=folded)


def run(scale: str = "tiny", rounds: int = PAPER_ROUNDS,
        targets: Sequence[str] = DEFAULT_TARGETS) -> MergeOrderResult:
    targets = tuple(get_target(t).name for t in targets)
    sources = generate_app(app_spec(scale))
    rows: List[MergeOrderRow] = []
    for target in targets:
        # Outline-only: the shared baseline and the mode=off grid rows.
        outline_only = build_program(sources, BuildConfig(
            outline_rounds=rounds, target=target, merge_mode="off"))
        for order in ("before", "after"):
            rows.append(MergeOrderRow(
                target=target, mode="off", order=order, rounds=rounds,
                text_bytes=outline_only.sizes.text_bytes,
                padding_bytes=outline_only.image.alignment_padding_bytes,
                num_functions=outline_only.sizes.num_functions,
                merged=0))
        for mode in ("exact", "optimistic"):
            rows.append(_build_row(sources, target, mode, "merge-only", 0))
            rows.append(_build_row(sources, target, mode, "before", rounds))
            rows.append(_after_row(outline_only, target, mode, rounds))
    return MergeOrderResult(rows=rows, targets=targets, rounds=rounds,
                            scale=scale)


def format_report(result: MergeOrderResult) -> str:
    table_rows = []
    for row in result.rows:
        base = result.row(row.target, "off", "before").text_bytes
        delta = row.text_bytes - base
        table_rows.append((
            row.target, row.mode, row.order, row.rounds, row.text_bytes,
            row.padding_bytes, row.num_functions, row.merged,
            f"{delta:+d}" if row.mode != "off" else "-"))
    table = format_table(
        ["target", "merge", "order", "rounds", "text B", "pad B",
         "funcs", "merged", "vs outline-only"],
        table_rows)
    return (
        "Merge/outline phase ordering (padded __text bytes per arm)\n"
        f"scale={result.scale}, outline rounds={result.rounds}\n"
        f"{table}\n"
        "[before = LIR merge then outline; after = outline then "
        "machine-level fold; optimistic must never exceed exact]"
    )
