"""Section VII-C: build-time cost model.

The paper measures wall-clock build minutes on an iMac Pro; a Python
toolchain's absolute times are meaningless, so we model each phase's cost
as work-proportional synthetic minutes, calibrated so the reference app
scale lands on the paper's numbers:

* default pipeline total: 21 min;
* whole-program without outlining: 53 min (7 llvm-link + 14 opt + 11 llc +
  3 system linker on top of per-module frontends);
* first outlining round ~7 min, second ~2 min, later rounds < 30s each;
* five rounds total: 66 min.

The *measured* quantities feeding the model (instruction counts per phase
and per outlining round) come from real builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import (app_spec, build_app, format_table,
                                      phase_seconds, traced_build)
from repro.pipeline import BuildConfig

# Synthetic minutes per unit of phase work, calibrated on the reference
# build (see module docstring).
_FRONTEND_MIN_PER_INSTR = 21.0
_LINK_MIN_PER_INSTR = 7.0
_OPT_MIN_PER_INSTR = 14.0
_LLC_MIN_PER_INSTR = 11.0
_SYSLD_MIN_PER_INSTR = 3.0
#: Outlining round cost is proportional to the instructions scanned that
#: round; the first round scans everything, later rounds scan the shrunk
#: program, hence the paper's rapidly diminishing extra time.
_OUTLINE_MIN_PER_INSTR = 7.0


@dataclass
class BuildTimePoint:
    configuration: str
    rounds: int
    minutes: float
    phase_minutes: Dict[str, float]
    #: Measured host seconds per phase (from ``BuildResult.report``) — the
    #: *real* cost next to the modeled minutes.
    measured_seconds: Dict[str, float] = None  # type: ignore[assignment]

    @property
    def total_measured_seconds(self) -> float:
        return sum((self.measured_seconds or {}).values())


@dataclass
class BuildTimeResult:
    points: List[BuildTimePoint]

    def minutes_of(self, configuration: str, rounds: int) -> float:
        for p in self.points:
            if p.configuration == configuration and p.rounds == rounds:
                return p.minutes
        raise KeyError((configuration, rounds))

    @property
    def round_cost_diminishes(self) -> bool:
        wp = sorted((p for p in self.points
                     if p.configuration == "wholeprogram"),
                    key=lambda p: p.rounds)
        # Per-round marginal cost (grids may skip round counts).
        extras = [
            (b.minutes - a.minutes) / max(1, b.rounds - a.rounds)
            for a, b in zip(wp, wp[1:])
        ]
        return all(b <= a + 1e-9 for a, b in zip(extras, extras[1:]))


def run(scale: str = "small", week: int = 0,
        rounds_grid: Sequence[int] = (0, 1, 2, 3, 4, 5)) -> BuildTimeResult:
    spec = app_spec(scale, week=week)
    points: List[BuildTimePoint] = []

    # Reference work unit: instructions in the unoptimized merged program.
    reference = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                            outline_rounds=0))
    unit = max(1, reference.phase_work.get("llc", 1))

    # Measured seconds come from tracer-backed builds: the same spans the
    # trace exporter sees are what lands in measured_seconds (§VII-C).
    default_build, _ = traced_build(spec, BuildConfig(pipeline="default",
                                                      outline_rounds=1))
    default_work = default_build.phase_work.get("llc", unit)
    points.append(BuildTimePoint(
        configuration="default", rounds=1,
        minutes=_FRONTEND_MIN_PER_INSTR * default_work / unit,
        phase_minutes={"per-module compile":
                       _FRONTEND_MIN_PER_INSTR * default_work / unit},
        measured_seconds=phase_seconds(default_build)))

    for rounds in rounds_grid:
        build, _ = traced_build(spec, BuildConfig(pipeline="wholeprogram",
                                                  outline_rounds=rounds))
        link_work = build.phase_work.get("llvm-link", unit) / unit
        opt_work = build.phase_work.get("opt", unit) / unit
        llc_work = build.phase_work.get("llc", unit) / unit
        sysld_work = build.phase_work.get("link", unit) / unit
        phases = {
            "frontends": _FRONTEND_MIN_PER_INSTR * link_work,
            "llvm-link": _LINK_MIN_PER_INSTR * link_work,
            "opt": _OPT_MIN_PER_INSTR * opt_work,
            "llc": _LLC_MIN_PER_INSTR * llc_work,
            "system linker": _SYSLD_MIN_PER_INSTR * sysld_work,
        }
        # Round cost is dominated by candidate materialisation: it scales
        # with the sequences outlined that round, plus a small fixed scan.
        # (Paper: round 1 ~7 min, round 2 ~2 min, later rounds < 30 s.)
        outline_minutes = 0.0
        round1_seqs = None
        for stat in build.outline_stats:
            new_seqs = stat.round_detail.sequences_outlined
            if round1_seqs is None:
                round1_seqs = max(1, new_seqs)
            outline_minutes += (
                _OUTLINE_MIN_PER_INSTR * llc_work * new_seqs / round1_seqs
                + 0.2  # fixed suffix-tree rescan
            )
        phases["outlining"] = outline_minutes
        points.append(BuildTimePoint(
            configuration="wholeprogram", rounds=rounds,
            minutes=sum(phases.values()), phase_minutes=phases,
            measured_seconds=phase_seconds(build)))
    return BuildTimeResult(points=points)


def format_report(result: BuildTimeResult) -> str:
    rows = []
    for p in result.points:
        detail = ", ".join(f"{k} {v:.1f}" for k, v in p.phase_minutes.items())
        rows.append((p.configuration, p.rounds, f"{p.minutes:.1f}",
                     f"{p.total_measured_seconds:.2f}", detail))
    table = format_table(
        ["pipeline", "rounds", "model minutes", "real seconds",
         "model phase breakdown"], rows)
    measured = next((p for p in result.points
                     if p.configuration == "wholeprogram"
                     and p.measured_seconds), None)
    real_detail = ""
    if measured:
        real_detail = (
            "real phases (rounds={}): {}\n".format(
                measured.rounds,
                ", ".join(f"{k} {v:.2f}s"
                          for k, v in measured.measured_seconds.items())))
    return (
        "Section VII-C: build-time model (synthetic minutes) "
        "vs measured host seconds\n"
        f"{table}\n{real_detail}"
        "calibration targets: default 21 min; whole-program +outlining "
        "rounds 53/60/62/... min; five rounds ~66 min\n"
        f"per-round extra time diminishes: {result.round_cost_diminishes}"
    )
