"""Section VI-3: the llvm-link data-layout regression and its fix.

Builds the whole-program app twice — once with the legacy *interleaved*
global ordering (llvm-link destroying module data affinity) and once with
the paper's *module-order* fix — and measures span cost and first-touch
data page faults.  The regression exists "whether or not we performed
machine outlining but used the new build pipeline", so outlining is held
constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import app_spec, build_app, format_table
from repro.pipeline import BuildConfig
from repro.sim.timing import DEVICE_GRID
from repro.workloads.spans import OS_GRID, measure_span, select_spans


@dataclass
class LayoutResult:
    rows: List[Tuple[str, int, int, int, int]]
    # (span, ordered_cycles, interleaved_cycles, ordered_faults,
    #  interleaved_faults)

    @property
    def mean_regression_pct(self) -> float:
        ratios = [inter / order for _, order, inter, _, _ in self.rows
                  if order]
        gm = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        return 100.0 * (gm - 1.0)

    @property
    def interleaved_has_more_faults(self) -> bool:
        ordered = sum(r[3] for r in self.rows)
        interleaved = sum(r[4] for r in self.rows)
        return interleaved > ordered


def run(scale: str = "small", week: int = 0, rounds: int = 5,
        num_spans: int = 6) -> LayoutResult:
    spec = app_spec(scale, week=week)
    ordered_build = build_app(spec, BuildConfig(
        pipeline="wholeprogram", outline_rounds=rounds,
        data_layout="module-order"))
    interleaved_build = build_app(spec, BuildConfig(
        pipeline="wholeprogram", outline_rounds=rounds,
        data_layout="interleaved"))
    spans = select_spans(spec, count=num_spans)
    device = DEVICE_GRID[0]  # oldest device: highest paging cost
    os_version = OS_GRID[0]
    rows = []
    for span in spans:
        ordered = measure_span(ordered_build, span, device, os_version)
        inter = measure_span(interleaved_build, span, device, os_version)
        rows.append((span.split("::")[0], ordered.cycles, inter.cycles,
                     ordered.data_page_faults, inter.data_page_faults))
    return LayoutResult(rows=rows)


def format_report(result: LayoutResult) -> str:
    table = format_table(
        ["span", "module-order cycles", "interleaved cycles",
         "module-order pagefaults", "interleaved pagefaults"],
        result.rows)
    return (
        "Section VI-3: llvm-link data layout ordering\n"
        f"{table}\n"
        f"interleaving regresses spans by {result.mean_regression_pct:+.1f}% "
        "(geomean)   [paper: ~10% regression from data page faults]\n"
        f"interleaved layout touches more data pages: "
        f"{result.interleaved_has_more_faults}"
    )
