"""Table IV + §VII-B: outlining overhead on the 26 Swift benchmarks.

Each benchmark is built single-module (as in the paper's artifact) without
and with five rounds of outlining, then executed in the timing simulator on
the reference device.  Reported overhead = (outlined - baseline) / baseline
cycles; negative = speedup.

Also reproduces the pathological case: a long-running loop whose tiny body
is outlined ("it showed only an 8.67% slowdown ... outlined branches are
predictable by modern hardware").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import copy

from repro.experiments.common import format_table
from repro.isa.instructions import (
    Cond,
    Label,
    MachineFunction,
    MachineInstr,
    MachineModule,
    Opcode,
)
from repro.isa.registers import FP, LR, SP
from repro.link.linker import link_binary
from repro.outliner.repeated import repeated_outline_functions
from repro.pipeline import BuildConfig, build_program, run_build
from repro.sim.cpu import run_binary
from repro.sim.timing import DeviceConfig, TimingModel
from repro.workloads.swift_benchmarks import BENCHMARK_NAMES, load_benchmark


def _pathological_functions(iterations: int = 4000):
    """The §VII-B pathological case, built at the machine level: a
    long-running loop whose tiny body is profitably outlined (the same
    body repeats in warm helper functions)."""

    def mi(op, *ops):
        return MachineInstr(op, tuple(ops))

    body = [  # the repeated 3-instruction sequence
        mi(Opcode.EORXrr, "x1", "x1", "x2"),
        mi(Opcode.ADDXrr, "x2", "x2", "x1"),
        mi(Opcode.EORXrr, "x1", "x1", "x2"),
    ]

    def warm(name, seed):
        fn = MachineFunction(name=name)
        blk = fn.new_block("entry")
        blk.append(mi(Opcode.STPXpre, FP, LR, SP, -16))
        blk.append(mi(Opcode.MOVZXi, "x1", seed, 0))
        blk.append(mi(Opcode.MOVZXi, "x2", seed + 3, 0))
        blk.instrs.extend(copy.deepcopy(body))
        # Distinct suffix per warm function so the *only* repeated pattern
        # is exactly the loop body (otherwise a longer warm-only pattern
        # wins greedily and the hot occurrence is dropped).
        blk.append(mi(Opcode.ADDXri, "x0", "x1", seed))
        blk.append(mi(Opcode.LDPXpost, FP, LR, SP, 16))
        blk.append(mi(Opcode.RET))
        return fn

    main = MachineFunction(name="main")
    entry = main.new_block("entry")
    entry.append(mi(Opcode.STPXpre, FP, LR, SP, -16))
    entry.append(mi(Opcode.MOVZXi, "x1", 7, 0))
    entry.append(mi(Opcode.MOVZXi, "x2", 13, 0))
    entry.append(mi(Opcode.MOVZXi, "x3", 0, 0))
    loop = main.new_block("loop")
    loop.instrs.extend(copy.deepcopy(body))
    loop.append(mi(Opcode.ADDXri, "x3", "x3", 1))
    loop.append(mi(Opcode.SUBSXri, "xzr", "x3", iterations))
    loop.append(mi(Opcode.Bcc, Cond.LT, Label("loop")))
    done = main.new_block("done")
    done.append(mi(Opcode.ADDXrr, "x0", "x1", "x2"))
    done.append(mi(Opcode.LDPXpost, FP, LR, SP, 16))
    done.append(mi(Opcode.RET))
    return [main, warm("warm1", 5), warm("warm2", 9), warm("warm3", 11)]


def _measure_pathological(rounds: int) -> "BenchmarkRow":
    from repro.sim.cpu import CPU

    base_fns = _pathological_functions()
    opt_fns = copy.deepcopy(base_fns)
    repeated_outline_functions(opt_fns, rounds=rounds)
    assert any(f.is_outlined for f in opt_fns), \
        "pathological loop body must actually be outlined"
    finals = []
    cycles = []
    for fns in (base_fns, opt_fns):
        image = link_binary([MachineModule(name="p", functions=fns)],
                            entry_symbol="main")
        cpu = CPU(image, timing=TimingModel(DeviceConfig()))
        result = cpu.run(check_leaks=False)
        finals.append(cpu.regs["x0"])
        cycles.append(result.cycles or 0)
    return BenchmarkRow(
        name="Pathological(hot 3-instr loop body outlined)",
        baseline_cycles=cycles[0],
        outlined_cycles=cycles[1],
        output_matches=finals[0] == finals[1],
    )


@dataclass
class BenchmarkRow:
    name: str
    baseline_cycles: int
    outlined_cycles: int
    output_matches: bool

    @property
    def overhead_pct(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * (self.outlined_cycles - self.baseline_cycles) \
            / self.baseline_cycles


@dataclass
class Table4Result:
    rows: List[BenchmarkRow]
    pathological: Optional[BenchmarkRow]

    @property
    def average_overhead_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.overhead_pct for r in self.rows) / len(self.rows)

    @property
    def all_outputs_match(self) -> bool:
        rows = list(self.rows)
        if self.pathological:
            rows.append(self.pathological)
        return all(r.output_matches for r in rows)


def _measure(name: str, source: str, rounds: int,
             max_steps: int) -> BenchmarkRow:
    base_build = build_program({name: source}, BuildConfig(outline_rounds=0))
    base_run = run_build(base_build, timing=TimingModel(DeviceConfig()),
                         max_steps=max_steps)
    opt_build = build_program({name: source},
                              BuildConfig(outline_rounds=rounds))
    opt_run = run_build(opt_build, timing=TimingModel(DeviceConfig()),
                        max_steps=max_steps)
    return BenchmarkRow(
        name=name,
        baseline_cycles=base_run.cycles or 0,
        outlined_cycles=opt_run.cycles or 0,
        output_matches=base_run.output == opt_run.output,
    )


def run(names: Sequence[str] = tuple(BENCHMARK_NAMES), rounds: int = 5,
        include_pathological: bool = True,
        max_steps: int = 30_000_000) -> Table4Result:
    rows = [
        _measure(name, load_benchmark(name), rounds, max_steps)
        for name in names
    ]
    pathological = None
    if include_pathological:
        pathological = _measure_pathological(rounds)
    return Table4Result(rows=rows, pathological=pathological)


def format_report(result: Table4Result) -> str:
    rows = [
        (r.name, f"{r.overhead_pct:+.2f}%", r.baseline_cycles,
         r.outlined_cycles, "yes" if r.output_matches else "NO")
        for r in result.rows
    ]
    table = format_table(
        ["benchmark", "%overhead", "baseline cyc", "outlined cyc",
         "output same"], rows)
    lines = [
        "Table IV: performance overhead of five rounds of outlining",
        table,
        f"average overhead: {result.average_overhead_pct:+.2f}%   "
        "[paper: ~1.7% average, worst ~10.8% (Dijkstra)]",
    ]
    if result.pathological is not None:
        p = result.pathological
        lines.append(
            f"pathological hot-loop case: {p.overhead_pct:+.2f}% overhead   "
            "[paper: 8.67%]")
    lines.append(f"all outputs preserved: {result.all_outputs_match}")
    return "\n".join(lines)
