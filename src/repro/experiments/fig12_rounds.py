"""Figure 12: binary and code size vs rounds of outlining, per-module vs
whole-program.

The three claims under reproduction:

1. whole-program repeated outlining significantly beats intra-module;
2. gains diminish with rounds and plateau (paper: most by round 3, flat
   after 5);
3. binary size tracks code size (minus fixed data/metadata).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import app_spec, build_app, format_table, pct_saving
from repro.pipeline import BuildConfig


@dataclass
class RoundsPoint:
    pipeline: str
    rounds: int
    text_bytes: int
    binary_bytes: int


@dataclass
class RoundsResult:
    points: List[RoundsPoint]

    def series(self, pipeline: str) -> List[RoundsPoint]:
        return [p for p in self.points if p.pipeline == pipeline]

    def saving(self, pipeline: str, rounds: int) -> float:
        base = self.series(pipeline)[0]
        for p in self.series(pipeline):
            if p.rounds == rounds:
                return pct_saving(base.text_bytes, p.text_bytes)
        raise KeyError(rounds)

    @property
    def wholeprogram_beats_intra(self) -> bool:
        wp = min(p.text_bytes for p in self.series("wholeprogram"))
        intra = min(p.text_bytes for p in self.series("default"))
        return wp < intra

    @property
    def plateaus(self) -> bool:
        wp = self.series("wholeprogram")
        if len(wp) < 3:
            return True
        return wp[-1].text_bytes == wp[-2].text_bytes


def run(scale: str = "small", week: int = 0,
        rounds_grid: Sequence[int] = (0, 1, 2, 3, 4, 5, 6)) -> RoundsResult:
    spec = app_spec(scale, week=week)
    points: List[RoundsPoint] = []
    for pipeline in ("default", "wholeprogram"):
        for rounds in rounds_grid:
            build = build_app(spec, BuildConfig(pipeline=pipeline,
                                                outline_rounds=rounds))
            points.append(RoundsPoint(
                pipeline=pipeline, rounds=rounds,
                text_bytes=build.sizes.text_bytes,
                binary_bytes=build.sizes.binary_bytes))
    return RoundsResult(points=points)


def format_report(result: RoundsResult) -> str:
    rows = []
    for p in result.points:
        base = result.series(p.pipeline)[0]
        rows.append((p.pipeline, p.rounds, p.text_bytes, p.binary_bytes,
                     f"{pct_saving(base.text_bytes, p.text_bytes):.1f}%"))
    table = format_table(
        ["pipeline", "rounds", "code B", "binary B", "code saving"], rows)
    wp_final = result.saving("wholeprogram", max(
        p.rounds for p in result.series("wholeprogram")))
    return (
        "Figure 12: size vs rounds of machine outlining\n"
        f"{table}\n"
        f"whole-program beats intra-module: "
        f"{result.wholeprogram_beats_intra}   [paper: yes, by 13.7%]\n"
        f"gains plateau at high rounds: {result.plateaus}   "
        "[paper: no benefit beyond five rounds]\n"
        f"final whole-program code saving: {wp_final:.1f}%   [paper: 22.8%]"
    )
