"""Profile-guided function layout: does C3 clustering pay on cold spans?

The closed loop the layout subsystem exists for:

1. build the whole-program app with ``layout="source"`` and run its cold
   entry path under a :class:`~repro.sim.profile.ProfileCollector` — the
   exact workload being optimized produces the call-graph profile;
2. serialize the profile to disk and rebuild once per layout mode —
   ``source`` (baseline), ``callgraph-c3`` (profile-guided), ``random``
   (seeded control arm that shows ordering *can* hurt);
3. re-run the same cold span per :data:`~repro.sim.timing.DEVICE_GRID`
   device and compare icache misses, miss rate, cycles, and text page
   faults.

Profiles are name-keyed, so the profile collected under the source layout
is valid input for relinking under any other — step 2 never re-profiles.
The claim under test (arXiv 2211.09285, and the paper's "possibly less
icache and iTLB pressure" remark): clustering hot call chains onto shared
lines and pages strictly reduces simulated icache misses vs source order
on at least one device.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import app_spec, build_app, format_table
from repro.pipeline import BuildConfig
from repro.sim.cpu import run_binary
from repro.sim.profile import LayoutProfile, ProfileCollector
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel

#: Orderings compared, baseline first.
MODES = ("source", "callgraph-c3", "random")


@dataclass
class LayoutCell:
    """One (device, layout-mode) measurement of the cold entry span."""

    device: str
    mode: str
    cycles: int
    icache_misses: int
    icache_accesses: int
    text_page_faults: int

    @property
    def miss_rate_pct(self) -> float:
        if not self.icache_accesses:
            return 0.0
        return 100.0 * self.icache_misses / self.icache_accesses


@dataclass
class FuncLayoutResult:
    cells: List[LayoutCell]
    profile_edges: int
    profile_digest: str

    def cell(self, device: str, mode: str) -> LayoutCell:
        for c in self.cells:
            if c.device == device and c.mode == mode:
                return c
        raise KeyError((device, mode))

    @property
    def devices(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.device not in seen:
                seen.append(c.device)
        return seen

    @property
    def c3_beats_source_somewhere(self) -> bool:
        """The experiment's headline: strictly fewer icache misses than the
        source layout on at least one device."""
        return any(
            self.cell(d, "callgraph-c3").icache_misses
            < self.cell(d, "source").icache_misses
            for d in self.devices)


def _measure_cold_main(build, device: DeviceConfig) -> LayoutCell:
    timing = TimingModel(device)
    run_binary(build.image, registry=build.registry, timing=timing,
               check_leaks=False)
    return LayoutCell(device=device.name, mode="",
                      cycles=timing.cycles,
                      icache_misses=timing.icache.misses,
                      icache_accesses=timing.icache.misses
                      + timing.icache.hits,
                      text_page_faults=timing.text_page_faults)


def run(scale: str = "small", week: int = 0, rounds: int = 5,
        seed: int = 1, target: Optional[str] = None,
        profile_dir: Optional[str] = None) -> FuncLayoutResult:
    spec = app_spec(scale, week=week)

    def config(**kw) -> BuildConfig:
        if target is not None:
            kw["target"] = target
        return BuildConfig(pipeline="wholeprogram", outline_rounds=rounds,
                           **kw)

    # Step 1: profile the cold entry span under the baseline layout.
    base_build = build_app(spec, config(layout="source"))
    collector = ProfileCollector()
    run_binary(base_build.image, registry=base_build.registry,
               check_leaks=False, profile=collector)
    profile = collector.finalize(base_build.image)

    # Step 2: round-trip through the serialized form — the experiment
    # exercises the same file-based handoff the CLI uses.
    own_tmp = profile_dir is None
    directory = profile_dir or tempfile.mkdtemp(prefix="repro-layout-")
    path = os.path.join(directory, "main.profile.json")
    digest = profile.save(path)
    assert LayoutProfile.load(path).digest() == digest

    try:
        builds = {
            "source": base_build,
            "callgraph-c3": build_app(spec, config(layout="callgraph-c3",
                                                   profile_path=path)),
            "random": build_app(spec, config(layout="random",
                                             layout_seed=seed)),
        }
        cells: List[LayoutCell] = []
        for device in DEVICE_GRID:
            for mode in MODES:
                cell = _measure_cold_main(builds[mode], device)
                cell.mode = mode
                cells.append(cell)
    finally:
        if own_tmp:
            try:
                os.unlink(path)
                os.rmdir(directory)
            except OSError:
                pass
    return FuncLayoutResult(cells=cells, profile_edges=profile.num_edges,
                            profile_digest=digest)


def format_report(result: FuncLayoutResult) -> str:
    rows: List[Tuple] = []
    for device in result.devices:
        src = result.cell(device, "source")
        for mode in MODES:
            c = result.cell(device, mode)
            delta = c.icache_misses - src.icache_misses
            rows.append((device if mode == MODES[0] else "",
                         mode, c.icache_misses,
                         f"{c.miss_rate_pct:.2f}%",
                         f"{delta:+d}" if mode != "source" else "-",
                         c.text_page_faults, c.cycles))
    table = format_table(
        ["device", "layout", "icache misses", "miss rate", "vs source",
         "text pagefaults", "cycles"], rows)
    return (
        "Profile-guided function layout (cold app entry, per device)\n"
        f"profile: {result.profile_edges} call edges, "
        f"sha256 {result.profile_digest[:12]}\n"
        f"{table}\n"
        f"callgraph-c3 strictly reduces icache misses on >=1 device: "
        f"{result.c3_beats_source_somewhere}"
    )
