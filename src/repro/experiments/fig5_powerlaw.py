"""Figure 5 + Listings 1-8: pattern frequency census and power-law fit.

Mines every profitable repeated pattern in the baseline (no-outlining)
whole-program build, ranks patterns by repetition count, and fits
``y = a * x^b`` on the log-log rank/frequency data.  Also surfaces the
most-repeated patterns (the paper's Listings 1-8, dominated by
retain/release and calling-convention sequences) and the %, of candidates
ending in a call or return (paper: 67%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.patterns import mine_build_patterns, top_patterns
from repro.analysis.powerlaw import PowerLawFit, fit_power_law, rank_frequency
from repro.experiments.common import app_spec, build_app, format_table
from repro.outliner.stats import PatternStat, pattern_census
from repro.pipeline import BuildConfig


@dataclass
class PowerLawResult:
    stats: List[PatternStat]
    fit: PowerLawFit
    census: dict
    top: List[PatternStat]


def run(scale: str = "small", week: int = 0) -> PowerLawResult:
    build = build_app(app_spec(scale, week=week),
                      BuildConfig(pipeline="wholeprogram", outline_rounds=0))
    stats = mine_build_patterns(build)
    ranks, freqs = rank_frequency([s.num_candidates for s in stats])
    fit = fit_power_law(ranks, freqs)
    return PowerLawResult(stats=stats, fit=fit, census=pattern_census(stats),
                          top=top_patterns(stats, count=8))


def format_report(result: PowerLawResult) -> str:
    lines = [
        "Figure 5: pattern repetition frequency (rank order)",
        f"patterns: {result.census['num_patterns']}, "
        f"candidates: {result.census['num_candidates']}, "
        f"longest pattern: {result.census['max_length']} instructions",
        f"power-law fit: {result.fit.equation()}   [paper: R^2 = 0.994]",
        f"candidates ending in call/return: "
        f"{result.census['pct_call_or_ret_candidates']:.1f}%   [paper: 67%]",
        "",
        "Most-repeated profitable patterns (cf. Listings 1-8):",
    ]
    rows = []
    for stat in result.top:
        rows.append((stat.pattern_id, stat.num_candidates, stat.length,
                     stat.outline_class.value,
                     " ; ".join(stat.rendered[:3])))
    lines.append(format_table(
        ["rank", "repeats", "len", "class", "instructions"], rows))
    return "\n".join(lines)
