"""Table I: the landscape of binary-size savings at each abstraction level.

Measures, on the same app snapshot:

* AST level  — PMD-style token-shingle clone rate over the source;
* SIL level  — the SIL Outlining pass alone;
* LLVM-IR    — MergeFunctions alone, and FMSA alone;
* ISA level  — whole-program repeated machine outlining.

The paper's ordering (fractions of a percent at high levels, ~23% at the
machine level) is the claim under reproduction; sub-IR-opcode repetition is
simply invisible above the ISA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    app_spec,
    build_app,
    format_table,
    optimized_config,
    pct_saving,
)
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind
from repro.pipeline import BuildConfig
from repro.workloads.appgen import generate_app


def source_clone_rate(sources: Dict[str, str], window: int = 100) -> float:
    """PMD-style clone detection: % of token shingles that are duplicates.

    Like PMD's CPD, identifiers are kept verbatim (renamed clones are not
    matched) and only literal values are abstracted; this is why source-level
    clone detection sees so little of the machine-level repetition.
    """
    shingles: Dict[Tuple, int] = {}
    total = 0
    for name, text in sources.items():
        kinds = [
            (t.kind.name,
             "_" if t.kind in (TokenKind.INT, TokenKind.FLOAT,
                               TokenKind.STRING) else t.text)
            for t in tokenize(text, name)
            if t.kind is not TokenKind.NEWLINE
        ]
        for i in range(0, max(0, len(kinds) - window)):
            key = tuple(kinds[i:i + window])
            shingles[key] = shingles.get(key, 0) + 1
            total += 1
    if total == 0:
        return 0.0
    duplicated = sum(c for c in shingles.values() if c > 1)
    return 100.0 * duplicated / total


@dataclass
class LandscapeRow:
    level: str
    optimization: str
    metric: str
    paper_note: str


@dataclass
class LandscapeResult:
    rows: List[LandscapeRow]
    savings: Dict[str, float]


def run(scale: str = "small", week: int = 0, rounds: int = 5) -> LandscapeResult:
    spec = app_spec(scale, week=week)
    sources = generate_app(spec)

    plain = BuildConfig(pipeline="wholeprogram", outline_rounds=0,
                        enable_sil_outlining=False,
                        enable_merge_functions=False, enable_fmsa=False)
    base = build_app(spec, plain)
    base_text = base.sizes.text_bytes

    def text_with(**overrides) -> int:
        cfg = BuildConfig(pipeline="wholeprogram", outline_rounds=0,
                          enable_sil_outlining=False,
                          enable_merge_functions=False, enable_fmsa=False)
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return build_app(spec, cfg).sizes.text_bytes

    clone_rate = source_clone_rate(sources)
    sil_saving = pct_saving(base_text, text_with(enable_sil_outlining=True))
    merge_saving = pct_saving(base_text, text_with(enable_merge_functions=True))
    fmsa_saving = pct_saving(base_text, text_with(enable_fmsa=True))
    outlined = build_app(spec, optimized_config(rounds))
    machine_saving = pct_saving(base_text, outlined.sizes.text_bytes)

    savings = {
        "ast_clone_rate": clone_rate,
        "sil_outlining": sil_saving,
        "merge_functions": merge_saving,
        "fmsa": fmsa_saving,
        "repeated_machine_outlining": machine_saving,
    }
    rows = [
        LandscapeRow("AST", "Source function replicas (PMD-style)",
                     f"{clone_rate:.2f}% shingle replication",
                     "<1% replication (higher here: the synthetic app is "
                     "template-generated)"),
        LandscapeRow("SIL", "SIL outlining",
                     f"{sil_saving:.2f}% size saving", "0.41% size saving"),
        LandscapeRow("LLVM-IR", "MergeFunctions",
                     f"{merge_saving:.2f}% size saving", "0.9% size saving"),
        LandscapeRow("LLVM-IR", "FMSA",
                     f"{fmsa_saving:.2f}% size saving", "2% size savings"),
        LandscapeRow("ISA", "Repeated machine outlining",
                     f"{machine_saving:.2f}% size saving",
                     "23% size reduction"),
    ]
    return LandscapeResult(rows=rows, savings=savings)


def format_report(result: LandscapeResult) -> str:
    table = format_table(
        ["Level", "Optimization considered", "Measured", "Paper"],
        [(r.level, r.optimization, r.metric, r.paper_note)
         for r in result.rows])
    return "Table I: the landscape of binary-size savings\n" + table
