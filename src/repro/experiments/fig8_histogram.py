"""Figure 8: histogram of outlining candidates by sequence length.

The paper: length-2 patterns dominate, with a long thin tail of length
(the longest repeating pattern in UberRider was 279 instructions, repeating
three times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.distributions import length_histogram
from repro.analysis.patterns import mine_build_patterns
from repro.experiments.common import app_spec, build_app, format_table
from repro.pipeline import BuildConfig


@dataclass
class HistogramResult:
    histogram: Dict[int, int]

    @property
    def shortest_dominates(self) -> bool:
        if not self.histogram:
            return False
        two = self.histogram.get(2, 0)
        return two == max(self.histogram.values())

    @property
    def max_length(self) -> int:
        return max(self.histogram) if self.histogram else 0


def run(scale: str = "small", week: int = 0) -> HistogramResult:
    build = build_app(app_spec(scale, week=week),
                      BuildConfig(pipeline="wholeprogram", outline_rounds=0))
    stats = mine_build_patterns(build)
    return HistogramResult(histogram=length_histogram(stats))


def format_report(result: HistogramResult) -> str:
    rows = [(length, count) for length, count in result.histogram.items()]
    table = format_table(["sequence length", "candidates"], rows[:25])
    return (
        "Figure 8: candidates per sequence length\n"
        f"{table}\n"
        f"length-2 dominates: {result.shortest_dominates}   [paper: yes]\n"
        f"longest repeating pattern: {result.max_length} instructions   "
        "[paper: 279]"
    )
