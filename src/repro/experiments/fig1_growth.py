"""Figure 1 + §VII-D: lifelong code-size growth, baseline vs optimized.

Builds the synthetic app at a series of weekly snapshots under (a) the
default iOS pipeline (per-module, one outlining round) and (b) the
whole-program pipeline with repeated outlining, fits linear trend lines to
both series, and reports the slope ratio — the paper's "~2x reduction in
code-size growth rate" headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.regression import LinearFit, linear_fit
from repro.experiments.common import (
    app_spec,
    baseline_config,
    build_app,
    format_table,
    optimized_config,
    pct_saving,
)


@dataclass
class GrowthPoint:
    week: int
    baseline_text: int
    optimized_text: int


@dataclass
class GrowthResult:
    points: List[GrowthPoint]
    baseline_fit: LinearFit
    optimized_fit: LinearFit

    @property
    def slope_ratio(self) -> float:
        if self.optimized_fit.slope == 0:
            return float("inf")
        return self.baseline_fit.slope / self.optimized_fit.slope

    @property
    def final_saving_pct(self) -> float:
        last = self.points[-1]
        return pct_saving(last.baseline_text, last.optimized_text)


def run(scale: str = "small", weeks: Sequence[int] = (0, 8, 16, 24, 32, 40),
        rounds: int = 5) -> GrowthResult:
    points: List[GrowthPoint] = []
    for week in weeks:
        spec = app_spec(scale, week=week)
        base = build_app(spec, baseline_config())
        opt = build_app(spec, optimized_config(rounds))
        points.append(GrowthPoint(week=week,
                                  baseline_text=base.sizes.text_bytes,
                                  optimized_text=opt.sizes.text_bytes))
    xs = [p.week for p in points]
    return GrowthResult(
        points=points,
        baseline_fit=linear_fit(xs, [p.baseline_text for p in points]),
        optimized_fit=linear_fit(xs, [p.optimized_text for p in points]),
    )


def format_report(result: GrowthResult) -> str:
    rows = [
        (p.week, p.baseline_text, p.optimized_text,
         f"{pct_saving(p.baseline_text, p.optimized_text):.1f}%")
        for p in result.points
    ]
    table = format_table(
        ["week", "baseline code B", "optimized code B", "saving"], rows)
    return (
        "Figure 1: code size growth over time\n"
        f"{table}\n"
        f"baseline  trend: {result.baseline_fit.equation('week')}\n"
        f"optimized trend: {result.optimized_fit.equation('week')}\n"
        f"slope ratio (growth-rate reduction): "
        f"{result.slope_ratio:.2f}x   [paper: ~2x]\n"
        f"final-week saving: {result.final_saving_pct:.1f}%   [paper: 23%]"
    )
