"""Table II: outlining statistics at different levels of repeats.

Cumulative counts after each round of the whole-program build: sequences
outlined, outlined functions created, and bytes consumed by the outlined
functions.  The paper's shape: large first round, sharply diminishing
additions, nearly flat by round 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import app_spec, build_app, format_table, optimized_config
from repro.outliner.repeated import OutlineRoundStats


@dataclass
class Table2Result:
    stats: List[OutlineRoundStats]

    @property
    def diminishing(self) -> bool:
        seqs = [s.sequences_outlined for s in self.stats]
        increments = [b - a for a, b in zip(seqs, seqs[1:])]
        return all(b <= a for a, b in zip(increments, increments[1:]))


def run(scale: str = "small", week: int = 0, rounds: int = 5) -> Table2Result:
    build = build_app(app_spec(scale, week=week), optimized_config(rounds))
    return Table2Result(stats=list(build.outline_stats))


def format_report(result: Table2Result) -> str:
    rows = [
        (s.round_no, s.sequences_outlined, s.functions_created,
         s.outlined_fn_bytes)
        for s in result.stats
    ]
    table = format_table(
        ["round", "# sequences outlined (cum)", "# functions created (cum)",
         "outlined fn bytes (cum)"], rows)
    return (
        "Table II: outlining statistics at different levels of repeats\n"
        f"{table}\n"
        f"per-round additions diminish: {result.diminishing}   "
        "[paper: 3.08M -> 4.30M -> 4.62M -> 4.70M -> 4.71M sequences]"
    )
