"""One module per reproduced table/figure (see DESIGN.md experiment index).

Every experiment exposes ``run(...) -> <Result>`` and
``format_report(result) -> str`` printing the paper-style rows.
"""

from repro.experiments import (  # noqa: F401
    buildtime,
    data_layout,
    fig1_growth,
    fig5_powerlaw,
    fig6_fractal,
    fig7_cumulative,
    fig8_histogram,
    fig11_greedy,
    fig12_rounds,
    fig13_spans,
    future_work,
    generality,
    layout,
    mergeorder,
    table1_landscape,
    table2_stats,
    table4_benchmarks,
)

ALL_EXPERIMENTS = {
    "fig1_growth": fig1_growth,
    "table1_landscape": table1_landscape,
    "fig5_powerlaw": fig5_powerlaw,
    "fig6_fractal": fig6_fractal,
    "fig7_cumulative": fig7_cumulative,
    "fig8_histogram": fig8_histogram,
    "fig11_greedy": fig11_greedy,
    "fig12_rounds": fig12_rounds,
    "table2_stats": table2_stats,
    "fig13_spans": fig13_spans,
    "data_layout": data_layout,
    "buildtime": buildtime,
    "table4_benchmarks": table4_benchmarks,
    "generality": generality,
    "future_work": future_work,
    "mergeorder": mergeorder,
    "layout": layout,
}
