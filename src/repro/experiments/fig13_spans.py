"""Figure 13 + Table III: production span performance, optimized/baseline.

Runs every core span cold on a device x OS grid for the baseline (default
pipeline) and optimized (whole-program, repeated outlining, module-order
data layout) builds.  Cell value = optimized cycles / baseline cycles:
> 1.0 is a regression (red in the paper), < 1.0 an improvement (blue).

The paper's claims: cold, footprint-heavy spans mildly improve (geomean
-3.4%), the shortest span may mildly regress, and nothing regresses with
statistical significance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    app_spec,
    baseline_config,
    build_app,
    format_table,
    optimized_config,
)
from repro.sim.timing import DEVICE_GRID
from repro.workloads.appgen import AppSpec
from repro.workloads.spans import OS_GRID, select_spans, span_grid


@dataclass
class SpanCell:
    span: str
    device: str
    os_version: str
    ratio: float
    baseline_cycles: int
    optimized_cycles: int


@dataclass
class SpansResult:
    cells: List[SpanCell]
    spans: List[str]
    #: % of dynamic instructions inside outlined functions (paper: ~3%).
    dynamic_outlined_pct: float = 0.0

    @property
    def geomean_ratio(self) -> float:
        logs = [math.log(c.ratio) for c in self.cells if c.ratio > 0]
        return math.exp(sum(logs) / len(logs)) if logs else 1.0

    def span_means(self) -> List[Tuple[str, float, int, int]]:
        """Per-span mean ratio and mean cycles (the Table III view)."""
        out = []
        for span in self.spans:
            cells = [c for c in self.cells if c.span == span]
            mean_ratio = math.exp(
                sum(math.log(c.ratio) for c in cells) / len(cells))
            base = sum(c.baseline_cycles for c in cells) // len(cells)
            opt = sum(c.optimized_cycles for c in cells) // len(cells)
            out.append((span, mean_ratio, base, opt))
        return out

    @property
    def pct_improved_cells(self) -> float:
        improved = sum(1 for c in self.cells if c.ratio < 1.0)
        return 100.0 * improved / len(self.cells) if self.cells else 0.0


def run(scale: str = "small", week: int = 0, rounds: int = 5,
        num_spans: int = 9, devices=DEVICE_GRID,
        os_versions=OS_GRID) -> SpansResult:
    spec = app_spec(scale, week=week)
    base_build = build_app(spec, baseline_config())
    opt_build = build_app(spec, optimized_config(rounds))
    spans = select_spans(spec, count=num_spans)
    base_grid = span_grid(base_build, spans, devices, os_versions)
    opt_grid = span_grid(opt_build, spans, devices, os_versions)
    cells = []
    for key, base_m in base_grid.items():
        opt_m = opt_grid[key]
        cells.append(SpanCell(
            span=key[0], device=key[1], os_version=key[2],
            ratio=opt_m.cycles / base_m.cycles if base_m.cycles else 1.0,
            baseline_cycles=base_m.cycles, optimized_cycles=opt_m.cycles))
    result = SpansResult(cells=cells, spans=spans)
    # "About 3% of dynamic instructions execute outlined instructions":
    # measure the dynamic-outlined fraction on one representative span.
    from repro.sim.cpu import run_binary

    probe = run_binary(opt_build.image, registry=opt_build.registry,
                       entry_symbol=spans[-1], check_leaks=False)
    result.dynamic_outlined_pct = (
        100.0 * probe.outlined_steps / max(1, probe.steps))
    return result


def format_report(result: SpansResult) -> str:
    rows = [
        (span.split("::")[0], f"{ratio:.3f}", base, opt)
        for span, ratio, base, opt in result.span_means()
    ]
    table = format_table(
        ["span", "P50 ratio (opt/base)", "baseline cycles",
         "optimized cycles"], rows)
    gm = result.geomean_ratio
    return (
        "Figure 13 / Table III: core-span performance\n"
        f"{table}\n"
        f"geomean ratio over all cells: {gm:.3f} "
        f"({100 * (1 - gm):+.1f}% change)   [paper: 3.4% gain]\n"
        f"cells improved: {result.pct_improved_cells:.0f}%   "
        "[paper: 'more blue cells']\n"
        f"dynamic instructions in outlined functions: "
        f"{result.dynamic_outlined_pct:.1f}%   [paper: ~3%]"
    )
