"""§VIII future-work ablations.

The paper closes with three directions; this experiment quantifies each on
the synthetic app:

1. **Semantic equivalence of machine sequences** — headroom of matching up
   to register renaming (optimistic upper bound; see analysis.semantic).
2. **Inlining interaction** — the -Osize trivial inliner duplicates code
   that whole-program outlining then re-deduplicates: sizes for the four
   {inliner} x {outliner} combinations.
3. **Layout of outlined code** — placing each outlined function near its
   dominant caller vs appending them all at the end (span cycle delta).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.semantic import SemanticHeadroom, measure_headroom
from repro.experiments.common import (
    app_spec,
    build_app,
    format_table,
    optimized_config,
    pct_saving,
)
from repro.pipeline import BuildConfig
from repro.sim.timing import DEVICE_GRID
from repro.workloads.spans import OS_GRID, measure_span, select_spans


@dataclass
class FutureWorkResult:
    headroom: SemanticHeadroom
    #: (inliner on?, rounds) -> text bytes
    inline_grid: Dict[Tuple[bool, int], int]
    #: span -> (appended cycles, near-callers cycles)
    layout_rows: List[Tuple[str, int, int]]

    @property
    def layout_geomean_ratio(self) -> float:
        ratios = [near / appended for _, appended, near in self.layout_rows
                  if appended]
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    @property
    def inlining_recovered_by_outlining(self) -> bool:
        """Inlining grows unoutlined code; outlining claws most of it back."""
        grow = self.inline_grid[(True, 0)] - self.inline_grid[(False, 0)]
        residual = self.inline_grid[(True, 5)] - self.inline_grid[(False, 5)]
        return residual < grow


def run(scale: str = "small", week: int = 0, rounds: int = 5,
        num_spans: int = 4) -> FutureWorkResult:
    spec = app_spec(scale, week=week)

    # 1. Semantic headroom on the unoutlined whole program.
    base = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                       outline_rounds=0))
    functions = [fn for m in base.machine_modules for fn in m.functions]
    headroom = measure_headroom(functions)

    # 2. Inliner x outliner grid.
    inline_grid: Dict[Tuple[bool, int], int] = {}
    for inline in (False, True):
        for r in (0, rounds):
            build = build_app(spec, BuildConfig(
                pipeline="wholeprogram", outline_rounds=r,
                enable_inliner=inline))
            inline_grid[(inline, r)] = build.sizes.text_bytes

    # 3. Outlined-code layout.
    appended = build_app(spec, optimized_config(rounds))
    near = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                       outline_rounds=rounds,
                                       outlined_layout="near-callers"))
    spans = select_spans(spec, count=num_spans)
    device, os_version = DEVICE_GRID[2], OS_GRID[2]
    layout_rows = []
    for span in spans:
        a = measure_span(appended, span, device, os_version)
        b = measure_span(near, span, device, os_version)
        layout_rows.append((span.split("::")[0], a.cycles, b.cycles))

    return FutureWorkResult(headroom=headroom, inline_grid=inline_grid,
                            layout_rows=layout_rows)


def format_report(result: FutureWorkResult) -> str:
    h = result.headroom
    lines = [
        "Section VIII: future-work ablations",
        "",
        "(1) semantic equivalence headroom (register-renaming upper bound):",
        f"    exact-match outlinable benefit:    {h.exact_benefit_bytes} B",
        f"    register-abstracted upper bound:   {h.abstract_benefit_bytes} B",
        f"    headroom: +{h.headroom_pct:.1f}% over syntactic matching",
        "",
        "(2) inlining x outlining interaction (code bytes):",
    ]
    rows = []
    for inline in (False, True):
        row = ["-Osize inliner " + ("on" if inline else "off")]
        for r in sorted({k[1] for k in result.inline_grid}):
            row.append(result.inline_grid[(inline, r)])
        rows.append(tuple(row))
    round_cols = sorted({k[1] for k in result.inline_grid})
    lines.append(format_table(
        ["configuration"] + [f"rounds={r}" for r in round_cols], rows))
    lines.append(f"    outlining re-deduplicates inlined copies: "
                 f"{result.inlining_recovered_by_outlining}")
    lines.append("")
    lines.append("(3) outlined-code layout (span cycles):")
    lines.append(format_table(
        ["span", "appended", "near-callers"], result.layout_rows))
    gm = result.layout_geomean_ratio
    lines.append(f"    near-callers / appended geomean: {gm:.3f} "
                 f"({100 * (1 - gm):+.1f}%)")
    return "\n".join(lines)
