"""Shared experiment infrastructure: app presets and build helpers.

Experiments default to the ``small`` scale so the whole harness runs on a
laptop in minutes; ``medium`` exercises app-scale behaviour more faithfully
(more modules, longer mining).  The paper's absolute sizes (a 100+ MB
binary) are out of reach of a Python-interpreted toolchain; every
experiment reports *relative* quantities, which is where the paper's claims
live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import api
from repro.obs import Tracer
from repro.pipeline import BuildConfig, BuildResult
from repro.workloads.appgen import AppSpec, generate_app

#: Scale presets for the synthetic app.
SCALES: Dict[str, AppSpec] = {
    "tiny": AppSpec(base_features=4, num_vendors=2, base_handlers=3),
    "small": AppSpec(base_features=8, num_vendors=3, base_handlers=4),
    "medium": AppSpec(base_features=16, num_vendors=4, base_handlers=5),
    "large": AppSpec(base_features=28, num_vendors=5, base_handlers=6),
}

#: The paper's shipping configuration.
PAPER_ROUNDS = 5


def app_spec(scale: str = "small", week: int = 0) -> AppSpec:
    return SCALES[scale].at_week(week)


def build_app(spec: AppSpec, config: Optional[BuildConfig] = None) -> BuildResult:
    """Generate + build the synthetic app under one configuration."""
    sources = generate_app(spec)
    return api.build(sources, config or BuildConfig())


def traced_build(spec: AppSpec,
                 config: Optional[BuildConfig] = None) -> Tuple[BuildResult,
                                                                Tracer]:
    """Build under a fresh :class:`~repro.obs.Tracer` via the facade.

    This is the experiments' *only* timing source: with a tracer active,
    ``BuildResult.report.phase_wall`` is copied verbatim from the span
    durations (one shared monotonic clock), so a figure script reports
    exactly the numbers the pipeline recorded — no ad-hoc stopwatches.
    """
    tracer = Tracer()
    result = api.build(generate_app(spec), config or BuildConfig(),
                       tracer=tracer)
    return result, tracer


def phase_seconds(result: BuildResult) -> Dict[str, float]:
    """Measured wall seconds per phase, as the pipeline recorded them."""
    return dict(result.report.phase_wall)


def baseline_config() -> BuildConfig:
    """The default iOS pipeline: per-module -Osize with one outlining round
    (Swift 5.2 enables the MachineOutliner per module at -Osize)."""
    return BuildConfig(pipeline="default", outline_rounds=1)


def optimized_config(rounds: int = PAPER_ROUNDS,
                     data_layout: str = "module-order") -> BuildConfig:
    """The paper's whole-program pipeline with repeated outlining."""
    return BuildConfig(pipeline="wholeprogram", outline_rounds=rounds,
                       data_layout=data_layout)


def pct_saving(before: int, after: int) -> float:
    return 100.0 * (1.0 - after / before) if before else 0.0


def format_table(headers, rows) -> str:
    """Plain-text table for experiment reports."""
    cols = [str(h) for h in headers]
    text_rows = [[str(c) for c in row] for row in rows]
    widths = [len(c) for c in cols]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(cols), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
