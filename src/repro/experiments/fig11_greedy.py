"""Figure 11 + Listings 12-13: greedy vs repeated outlining.

Two parts:

1. The paper's anecdote reproduced literally: a program with 5 occurrences
   of ABCD and 3 standalone occurrences of BCD.  One greedy round picks BCD
   (maximum immediate saving) and discards the ABCD candidates; repeated
   outlining recovers them as ``A + BL OUTLINED(BCD)`` thunks.

2. On the app: the share of the total size saving contributed by rounds
   beyond the first (the paper attributes 27% of the 22.8% saving to
   repetition).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import List

from repro.experiments.common import (
    app_spec,
    build_app,
    format_table,
    optimized_config,
    pct_saving,
)
from repro.isa.instructions import MachineFunction, MachineInstr, Opcode
from repro.isa.registers import FP, LR, SP
from repro.outliner.repeated import repeated_outline_functions
from repro.pipeline import BuildConfig


def _abcd_program() -> List[MachineFunction]:
    def instr(k: int) -> MachineInstr:
        return MachineInstr(Opcode.ADDXri, (f"x{k}", f"x{k}", k + 1))

    def filler(i: int) -> MachineInstr:
        return MachineInstr(Opcode.ADDXri, ("x9", "x9", 100 + i))

    seq_abcd = [1, 2, 3, 4]
    seq_bcd = [2, 3, 4]
    layouts = [
        ("f1", [seq_abcd, seq_abcd]),
        ("f2", [seq_abcd, seq_bcd]),
        ("f3", [seq_abcd, seq_bcd]),
        ("f4", [seq_abcd, seq_bcd]),
    ]
    functions = []
    filler_id = 0
    for name, seqs in layouts:
        fn = MachineFunction(name=name)
        blk = fn.new_block("entry")
        blk.append(MachineInstr(Opcode.STPXpre, (FP, LR, SP, -16)))
        for seq in seqs:
            for k in seq:
                blk.append(instr(k))
            blk.append(filler(filler_id))
            filler_id += 1
        blk.append(MachineInstr(Opcode.LDPXpost, (FP, LR, SP, 16)))
        blk.append(MachineInstr(Opcode.RET))
        functions.append(fn)
    return functions


@dataclass
class AnecdoteResult:
    baseline_instrs: int
    greedy_instrs: int
    repeated_instrs: int
    first_round_pattern_len: int


@dataclass
class GreedyResult:
    anecdote: AnecdoteResult
    app_round1_saving_pct: float
    app_final_saving_pct: float

    @property
    def repeat_contribution_pct(self) -> float:
        """Share of total saving delivered by rounds >= 2 (paper: 27%)."""
        if self.app_final_saving_pct == 0:
            return 0.0
        extra = self.app_final_saving_pct - self.app_round1_saving_pct
        return 100.0 * extra / self.app_final_saving_pct


def run(scale: str = "small", week: int = 0, rounds: int = 5) -> GreedyResult:
    # Part 1: anecdote.
    baseline = _abcd_program()
    greedy = copy.deepcopy(baseline)
    stats1 = repeated_outline_functions(greedy, rounds=1)
    repeated = copy.deepcopy(baseline)
    repeated_outline_functions(repeated, rounds=rounds)
    first_len = 0
    if stats1 and stats1[0].round_detail.patterns:
        first_len = stats1[0].round_detail.patterns[0].length
    anecdote = AnecdoteResult(
        baseline_instrs=sum(f.num_instrs for f in baseline),
        greedy_instrs=sum(f.num_instrs for f in greedy),
        repeated_instrs=sum(f.num_instrs for f in repeated),
        first_round_pattern_len=first_len,
    )

    # Part 2: app-level contribution of repetition.
    spec = app_spec(scale, week=week)
    base = build_app(spec, BuildConfig(pipeline="wholeprogram",
                                       outline_rounds=0))
    one = build_app(spec, optimized_config(rounds=1))
    full = build_app(spec, optimized_config(rounds=rounds))
    return GreedyResult(
        anecdote=anecdote,
        app_round1_saving_pct=pct_saving(base.sizes.text_bytes,
                                         one.sizes.text_bytes),
        app_final_saving_pct=pct_saving(base.sizes.text_bytes,
                                        full.sizes.text_bytes),
    )


def format_report(result: GreedyResult) -> str:
    a = result.anecdote
    rows = [
        ("no outlining", a.baseline_instrs),
        ("one greedy round", a.greedy_instrs),
        ("repeated outlining", a.repeated_instrs),
    ]
    table = format_table(["configuration", "total instructions"], rows)
    return (
        "Figure 11: greedy vs repeated outlining (ABCD/BCD anecdote)\n"
        f"{table}\n"
        f"greedy first picks the length-{a.first_round_pattern_len} pattern "
        "(BCD), discarding ABCD; the repeat round recovers it.\n"
        f"repeated < greedy < baseline: "
        f"{a.repeated_instrs < a.greedy_instrs < a.baseline_instrs}\n\n"
        f"App: 1-round saving {result.app_round1_saving_pct:.1f}%, "
        f"{5}-round saving {result.app_final_saving_pct:.1f}%\n"
        f"share of saving from repetition: "
        f"{result.repeat_contribution_pct:.0f}%   [paper: 27%]"
    )
