"""Figure 6: the fractal frequency/length cluster structure.

Groups patterns by repetition count; the paper's observation is that
high-frequency clusters contain few, short patterns while low-frequency
clusters grow in both pattern variety and maximum sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.distributions import FrequencyCluster, fractal_clusters
from repro.analysis.patterns import mine_build_patterns
from repro.experiments.common import app_spec, build_app, format_table
from repro.pipeline import BuildConfig


@dataclass
class FractalResult:
    clusters: List[FrequencyCluster]

    def diversity_increases_down_tail(self) -> bool:
        """The qualitative Figure 6 claim: later (lower-frequency) clusters
        have at least as much length diversity as the head on average."""
        if len(self.clusters) < 4:
            return True
        mid = len(self.clusters) // 2
        head = self.clusters[:mid]
        tail = self.clusters[mid:]
        head_avg = sum(c.distinct_lengths for c in head) / len(head)
        tail_avg = sum(c.distinct_lengths for c in tail) / len(tail)
        return tail_avg >= head_avg


def run(scale: str = "small", week: int = 0) -> FractalResult:
    build = build_app(app_spec(scale, week=week),
                      BuildConfig(pipeline="wholeprogram", outline_rounds=0))
    stats = mine_build_patterns(build)
    return FractalResult(clusters=fractal_clusters(stats))


def format_report(result: FractalResult) -> str:
    rows = [
        (c.frequency, c.num_patterns, c.min_length, c.max_length,
         c.distinct_lengths)
        for c in result.clusters[:20]
    ]
    table = format_table(
        ["repeats", "#patterns", "min len", "max len", "distinct lens"], rows)
    verdict = result.diversity_increases_down_tail()
    return (
        "Figure 6: frequency clusters (head of the distribution)\n"
        f"{table}\n"
        f"length diversity grows down the tail: {verdict}   "
        "[paper: yes — 'as the repetition frequency decreases, both the "
        "variety of patterns and sequence lengths increase']"
    )
