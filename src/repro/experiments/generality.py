"""Section VII-E: generality beyond iOS apps.

Applies five rounds of whole-program repeated outlining to the clang-like
and Linux-kernel-like LIR corpora, and checks the kernel-specific claim
that the stack-protector epilogue is a common repeating pattern.

The sweep also runs **cross-target**: each corpus is built once per
registered target specification (fixed-width arm64 and the compressed
2/4-byte thumb2c by default), showing that the outliner's saving is a
property of the code's repetitiveness, not of one instruction encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.experiments.common import format_table, pct_saving
from repro.outliner.stats import collect_patterns
from repro.pipeline import BuildConfig
from repro.pipeline.build import build_lir_modules
from repro.target import get_target
from repro.workloads.corpora import clang_like_modules, kernel_like_modules

DEFAULT_TARGETS = ("arm64", "thumb2c")


@dataclass
class CorpusResult:
    corpus: str
    baseline_text: int
    outlined_text: int
    per_round_text: List[int]
    target: str = "arm64"

    @property
    def saving_pct(self) -> float:
        return pct_saving(self.baseline_text, self.outlined_text)


@dataclass
class GeneralityResult:
    corpora: List[CorpusResult]
    kernel_guard_pattern_found: bool
    targets: Tuple[str, ...] = ("arm64",)


def _build_corpus(factory: Callable, rounds: int, target: str = "arm64"):
    modules = factory()
    cfg = BuildConfig(pipeline="wholeprogram", outline_rounds=rounds,
                      global_dce=False, target=target)
    return build_lir_modules(modules, cfg)


def run(rounds: int = 5,
        targets: Sequence[str] = DEFAULT_TARGETS) -> GeneralityResult:
    targets = tuple(get_target(t).name for t in targets)
    corpora: List[CorpusResult] = []
    for target in targets:
        for name, factory in (("linux-kernel", kernel_like_modules),
                              ("clang", clang_like_modules)):
            baseline = _build_corpus(factory, 0, target)
            per_round = []
            for r in range(1, rounds + 1):
                per_round.append(
                    _build_corpus(factory, r, target).sizes.text_bytes)
            corpora.append(CorpusResult(
                corpus=name,
                baseline_text=baseline.sizes.text_bytes,
                outlined_text=per_round[-1],
                per_round_text=per_round,
                target=target,
            ))

    # Is the stack-protector epilogue among the kernel's mined patterns?
    kernel_baseline = _build_corpus(kernel_like_modules, 0)
    functions = []
    for module in kernel_baseline.machine_modules:
        functions.extend(module.functions)
    stats = collect_patterns(functions)
    guard_found = any(
        any("__stack_chk" in line or "stack_chk_guard" in line
            for line in stat.rendered)
        for stat in stats[:25]
    )
    return GeneralityResult(corpora=corpora,
                            kernel_guard_pattern_found=guard_found,
                            targets=targets)


def format_report(result: GeneralityResult) -> str:
    rows = []
    for c in result.corpora:
        rounds = " -> ".join(str(t) for t in c.per_round_text)
        rows.append((c.target, c.corpus, c.baseline_text, rounds,
                     f"{c.saving_pct:.1f}%"))
    table = format_table(
        ["target", "corpus", "baseline code B", "code B by round", "saving"],
        rows)
    return (
        "Section VII-E: generality on non-iOS corpora\n"
        f"{table}\n"
        "[paper: Linux kernel 14%, clang 25% with five rounds]\n"
        f"kernel stack-protector check among top repeating patterns: "
        f"{result.kernel_guard_pattern_found}"
    )
