"""Content-addressed build cache for the pipeline.

Two artifact levels, both keyed by stable content hashes so that any change
to an input produces a different key (never a stale hit):

* **Module LIR** — one entry per source module holding its optimized
  :class:`~repro.lir.ir.LIRModule` plus the class layouts sema assigned to
  it.  Because Swiftlet sema numbers class type-ids and closure symbols
  *program-wide* (in module order), a module's generated code depends on
  more than its own text; the key therefore covers

  - the module's source text,
  - the sources of its transitive imports (headers, folded constants),
  - the type-id/closure-counter bases contributed by every earlier module,
  - the :class:`BuildConfig` fields that affect frontend codegen, and
  - :data:`PIPELINE_CACHE_VERSION`.

* **Linked image** — the fully linked :class:`BinaryImage` (plus machine
  modules, outlining stats and the type registry), keyed by the ordered
  module keys and the backend config fields.  A warm rebuild of an
  unchanged program under an unchanged config deserializes the image and
  skips every compilation phase.

Entries are pickles under ``cache_dir/objects/<k[:2]>/<k>.pkl`` written
atomically (temp file + rename, so a crashed writer can never leave a
half-written entry under a live key); a corrupted or truncated entry is
treated as a miss, quarantined out of the way, and never an error.
Mutating operations take a cross-process advisory lock (``flock`` where
available) so concurrent builds sharing one ``cache_dir`` cannot race a
store against a quarantine of the same key.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field, is_dataclass, fields as dc_fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import CacheCorruptionError
from repro.frontend import ast
from repro.pipeline.faults import FaultPlan

#: Bump whenever codegen output can change (invalidates every entry).
#: "2": BinaryImage grew target/layout fields; backend keys carry the
#: target fingerprint.
#: "3": function-level LIR entries and per-module machine-code entries
#: layered under the module keys (new "fn"/"mllc" namespaces; module
#: entries themselves are unchanged, but one version covers them all).
#: "4": the image entry carries class layouts and sheds its machine
#: listing into an "imgmm" sidecar, so an image hit deserializes only
#: the linked image.
PIPELINE_CACHE_VERSION = "4"


def fingerprint_source(text: str) -> str:
    """Stable content hash of one module's source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


# --- module metadata (what a module contributes to global counters) ---------


@dataclass(frozen=True)
class ModuleMeta:
    """Syntactic facts needed to compute another module's cache key."""

    imports: Tuple[str, ...]
    class_count: int
    closure_count: int


def count_closures(node: object) -> int:
    """Number of ``ClosureExpr`` nodes in an AST subtree.

    Sema numbers closures with one program-wide counter in visit order; the
    *count* per module is all a later module's key needs.
    """
    count = 0
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, (list, tuple)):
            stack.extend(item)
            continue
        if not is_dataclass(item) or isinstance(item, type):
            continue
        if isinstance(item, ast.ClosureExpr):
            count += 1
        for f in dc_fields(item):
            value = getattr(item, f.name, None)
            if isinstance(value, (ast.Node, list, tuple)):
                stack.append(value)
    return count


def meta_from_ast(module: ast.Module) -> ModuleMeta:
    return ModuleMeta(imports=tuple(module.imports),
                      class_count=len(module.classes),
                      closure_count=count_closures(module))


# --- key computation ---------------------------------------------------------


def _transitive_imports(name: str, metas: Dict[str, ModuleMeta],
                        order: Sequence[str]) -> List[str]:
    """Transitive import closure of ``name``, in program order."""
    seen = {name}
    stack = list(metas[name].imports)
    while stack:
        dep = stack.pop()
        if dep in seen or dep not in metas:
            continue
        seen.add(dep)
        stack.extend(metas[dep].imports)
    seen.discard(name)
    return [m for m in order if m in seen]


def module_keys(items: Sequence[Tuple[str, str]],
                hashes: Dict[str, str],
                metas: Dict[str, ModuleMeta],
                frontend_fingerprint: str,
                whole_program_coupling: bool = False) -> List[str]:
    """Cache key per module, in program order.

    ``whole_program_coupling`` folds the whole-program fingerprint into
    every key; used when a config flag (e.g. SIL outlining) makes module
    codegen depend on the entire program rather than imports + counters.
    """
    order = [name for name, _ in items]
    program_fp = _digest(*(f"{name}={hashes[name]}" for name in order))
    keys: List[str] = []
    type_id_base = 0
    closure_base = 0
    for name in order:
        parts = [
            "module", PIPELINE_CACHE_VERSION, frontend_fingerprint,
            f"bases:{type_id_base}:{closure_base}",
            f"self:{name}={hashes[name]}",
        ]
        parts.extend(f"dep:{dep}={hashes[dep]}"
                     for dep in _transitive_imports(name, metas, order))
        if whole_program_coupling:
            parts.append(f"program:{program_fp}")
        keys.append(_digest(*parts))
        type_id_base += metas[name].class_count
        closure_base += metas[name].closure_count
    return keys


def meta_key(source_hash: str) -> str:
    return _digest("meta", PIPELINE_CACHE_VERSION, source_hash)


def image_key(mod_keys: Sequence[str], backend_fingerprint: str) -> str:
    return _digest("image", PIPELINE_CACHE_VERSION, backend_fingerprint,
                   *mod_keys)


def machine_modules_key(img_key: str) -> str:
    """Sidecar entry holding the per-module machine IR for one image.

    Kept out of the image entry so a warm no-op rebuild (image hit)
    deserializes only the linked image; the machine listing loads lazily
    when something (disasm, the pattern miner) actually asks for it.
    """
    return _digest("imgmm", PIPELINE_CACHE_VERSION, img_key)


def function_key(frontend_fingerprint: str, fn_digest: str,
                 callees_digest: str, interns_digest: str) -> str:
    """Cache key for one function's optimized LIR.

    Deliberately *not* derived from the module key: an edit that changes a
    module's source changes its module key, but every untouched function in
    it keeps its function key and its cached LIR.  Self-validating inputs:

    * ``fn_digest`` — the function's own post-sema SIL (rendered body plus
      the signature facts ``render`` omits: param temps/types, return type,
      bareness, source module);
    * ``callees_digest`` — the signatures of every symbol the function
      applies (irgen consults callee param/return types for float-ness);
    * ``interns_digest`` — the owning module's ordered string-intern table
      (``.strN`` symbol numbering is shared module-wide).
    """
    return _digest("fn", PIPELINE_CACHE_VERSION, frontend_fingerprint,
                   fn_digest, callees_digest, interns_digest)


def llc_key(module_key: str, llc_fingerprint: str) -> str:
    """Cache key for one module's compiled machine code (post-llc).

    Keyed by the module's LIR key plus only the backend fields that change
    machine code — link-time fields (layout, profile) are excluded so a
    layout flip re-links cached machine modules without re-running llc.
    """
    return _digest("mllc", PIPELINE_CACHE_VERSION, llc_fingerprint,
                   module_key)


# --- on-disk store -----------------------------------------------------------


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(tempfile.gettempdir(), "repro-pipeline-cache")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    #: Corrupt entries moved to ``quarantine/`` instead of being served.
    quarantined: int = 0
    #: Stores that never reached the rename (crash / injected torn write).
    torn_writes: int = 0
    #: Advisory-lock acquisitions that had to wait or were skipped.
    lock_failures: int = 0
    #: Entries removed by :meth:`ModuleCache.prune` (LRU-by-mtime).
    evictions: int = 0
    evicted_bytes: int = 0
    #: Quarantined entries reclaimed by the quarantine GC.
    quarantine_reclaimed: int = 0
    #: Stale ``*.tmp`` files (crashed writers) reaped during prune.
    tmp_reaped: int = 0


class ModuleCache:
    """Pickle store addressed by content key; loads are always fresh objects.

    Downstream passes mutate LIR in place, so every hit must hand back an
    independent copy — unpickling guarantees that.

    Recovery behaviour (every action counted in :class:`CacheStats`):

    * a missing entry is a miss;
    * an unreadable entry is a miss *and* is atomically quarantined to
      ``cache_dir/quarantine/`` so it cannot fail again on every build
      (and stays available for post-mortem inspection);
    * a store that cannot complete is dropped — the temp file is removed
      and the previous entry (if any) stays intact, because the rename is
      the only step that publishes a key.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.root = cache_dir or default_cache_dir()
        self.stats = CacheStats()
        self.fault_plan = fault_plan

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.pkl")

    def contains(self, key: str) -> bool:
        """Entry presence without deserialization (no stats recorded)."""
        return os.path.exists(self._path(key))

    def _quarantine_path(self, key: str) -> str:
        return os.path.join(self.root, "quarantine", f"{key}.pkl")

    @contextmanager
    def _locked(self, key: str) -> Iterator[None]:
        """Cross-process advisory lock for mutations of ``key``.

        Lock files are tiny, per-key, and live under ``locks/``; when the
        platform has no ``flock`` the section simply runs unlocked (the
        rename-based store is still atomic, only quarantine-vs-store
        ordering loses its guarantee).
        """
        if fcntl is None:
            yield
            return
        lock_dir = os.path.join(self.root, "locks")
        os.makedirs(lock_dir, exist_ok=True)
        lock_path = os.path.join(lock_dir, f"{key[:16]}.lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.stats.lock_failures += 1
                fcntl.flock(fd, fcntl.LOCK_EX)  # wait our turn
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _quarantine(self, key: str, path: str) -> None:
        """Move a corrupt entry aside; deletion is the fallback.

        If the entry can neither be moved nor deleted it would poison
        every future build (each one re-reading, re-failing, and
        re-compiling), so that one case escalates to a typed
        :class:`~repro.errors.CacheCorruptionError`.
        """
        qpath = self._quarantine_path(key)
        try:
            os.makedirs(os.path.dirname(qpath), exist_ok=True)
            os.replace(path, qpath)
            self.stats.quarantined += 1
        except OSError:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass  # someone else already recovered it
            except OSError as exc:
                raise CacheCorruptionError(
                    f"corrupt cache entry {key[:16]}... is stuck at {path} "
                    f"(cannot quarantine or delete): {exc}") from exc

    def load(self, key: str) -> Optional[object]:
        """Return the stored payload, or None (miss / quarantined corrupt
        entry).  Raises CacheCorruptionError only if a corrupt entry is
        stuck on disk (cannot be moved or removed)."""
        path = self._path(key)
        if (self.fault_plan is not None
                and self.fault_plan.should_fire("cache_corrupt",
                                                f"load:{key}")):
            _scramble_entry(path)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated/corrupted entry: recover by quarantining it so the
            # next build repopulates the key instead of re-failing forever.
            self.stats.errors += 1
            self.stats.misses += 1
            with self._locked(key):
                self._quarantine(key, path)
            return None
        self.stats.hits += 1
        try:
            # Touch on hit so prune()'s LRU-by-mtime tracks recency of
            # *use*, not recency of store.
            os.utime(path)
        except OSError:
            pass
        return payload

    def store(self, key: str, payload: object) -> bool:
        """Atomically persist ``payload``; failures are non-fatal."""
        path = self._path(key)
        torn = (self.fault_plan is not None
                and self.fault_plan.should_fire("torn_write", f"store:{key}"))
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with self._locked(key):
                fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                           suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        blob = pickle.dumps(payload,
                                            protocol=pickle.HIGHEST_PROTOCOL)
                        if torn:
                            # Simulate a crash mid-write: half the bytes
                            # land, the rename never happens, and the key
                            # is never published.
                            fh.write(blob[:max(1, len(blob) // 2)])
                            self.stats.torn_writes += 1
                            return False
                        fh.write(blob)
                    os.replace(tmp, path)
                    tmp = None
                finally:
                    if tmp is not None:
                        try:
                            os.unlink(tmp)
                        except OSError:
                            pass
        except Exception:
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- bounded-size maintenance (long-lived daemons) ----------------------

    def _object_entries(self) -> List[Tuple[float, int, str, str]]:
        """Every published entry as ``(mtime, size, key, path)``."""
        entries: List[Tuple[float, int, str, str]] = []
        objects = os.path.join(self.root, "objects")
        try:
            shards = os.listdir(objects)
        except OSError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(objects, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue  # concurrently removed
                entries.append((st.st_mtime, st.st_size, name[:-4], path))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently held by published entries."""
        return sum(size for _, size, _, _ in self._object_entries())

    def _reap_stale_tmp(self, tmp_ttl: float) -> None:
        """Remove ``*.tmp`` leftovers older than ``tmp_ttl`` seconds.

        Only a writer killed between ``mkstemp`` and the rename leaves
        one; the age threshold keeps us from deleting a live writer's
        file out from under it.
        """
        now = _time.time()
        objects = os.path.join(self.root, "objects")
        try:
            shards = os.listdir(objects)
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(objects, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    if now - os.stat(path).st_mtime < tmp_ttl:
                        continue
                    os.unlink(path)
                    self.stats.tmp_reaped += 1
                except OSError:
                    pass

    def _gc_quarantine(self, max_bytes: int) -> None:
        """Bound ``quarantine/`` to ``max_bytes`` (oldest files first)."""
        qdir = os.path.join(self.root, "quarantine")
        try:
            names = os.listdir(qdir)
        except OSError:
            return
        files: List[Tuple[float, int, str]] = []
        for name in names:
            path = os.path.join(qdir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            files.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in files)
        for _, size, path in sorted(files):
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
                self.stats.quarantine_reclaimed += 1
                total -= size
            except OSError:
                pass

    def prune(self, max_bytes: int, *, quarantine_max_bytes: int = 0,
              tmp_ttl: float = 300.0) -> int:
        """Bound the cache's disk footprint; returns files removed.

        Three sweeps, all safe against concurrent builds sharing the
        cache dir:

        * published entries are evicted **LRU-by-mtime** (loads touch
          their entry, so mtime is recency-of-use) until the total is
          at most ``max_bytes`` — each removal holds the same per-key
          lock stores and quarantines take, so a prune can never race a
          store into deleting a freshly published entry's temp file or
          vice versa;
        * ``quarantine/`` is bounded to ``quarantine_max_bytes`` (0 —
          the default — reclaims every quarantined entry: a long-lived
          daemon cannot keep corpses around for post-mortems forever);
        * stale ``*.tmp`` files from crashed writers older than
          ``tmp_ttl`` seconds are reaped.

        Eviction is never an error: a concurrently removed or relocked
        entry is simply skipped.  Removed entries are misses on the next
        load, which rebuilds and republishes them.
        """
        removed_before = (self.stats.evictions
                         + self.stats.quarantine_reclaimed
                         + self.stats.tmp_reaped)
        self._reap_stale_tmp(tmp_ttl)
        self._gc_quarantine(quarantine_max_bytes)
        entries = self._object_entries()
        total = sum(size for _, size, _, _ in entries)
        for _, size, key, path in sorted(entries):
            if total <= max_bytes:
                break
            try:
                with self._locked(key):
                    os.unlink(path)
            except FileNotFoundError:
                total -= size  # someone else evicted it; count it gone
                continue
            except OSError:
                continue
            self.stats.evictions += 1
            self.stats.evicted_bytes += size
            total -= size
        return (self.stats.evictions + self.stats.quarantine_reclaimed
                + self.stats.tmp_reaped) - removed_before


def _scramble_entry(path: str) -> None:
    """Corrupt an on-disk entry in place (fault injection only)."""
    try:
        with open(path, "r+b") as fh:
            fh.truncate(max(1, os.path.getsize(path) // 3))
            fh.seek(0)
            fh.write(b"\x80\x05corrupt")
    except OSError:
        pass
