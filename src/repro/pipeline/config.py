"""Build configuration for the two iOS pipelines (Figures 2 and 10)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.pipeline.faults import FaultPlan
from repro.target import default_target_name

#: Valid whole-program function-merging modes.
MERGE_MODES = ("off", "exact", "optimistic")


def default_merge_mode() -> str:
    """The default merge mode, honouring ``REPRO_MERGE`` if set (the CI
    matrix axis, mirroring ``REPRO_TARGET``)."""
    env = os.environ.get("REPRO_MERGE", "").strip()
    return env or "off"


@dataclass
class BuildConfig:
    """Options shared by the default and whole-program pipelines.

    ``pipeline`` selects Figure 2 ("default": each module lowered to machine
    code independently) or Figure 10 ("wholeprogram": LIR from every module
    merged by llvm-link, optimized once, then lowered by a single llc run).
    """

    pipeline: str = "wholeprogram"  # "default" | "wholeprogram"
    #: Target specification name (see :mod:`repro.target`); defaults to
    #: ``$REPRO_TARGET`` or "arm64".  Changes instruction widths, alignment
    #: and the outliner's cost model, so it is part of the backend
    #: fingerprint (two targets never share an image-cache entry).
    target: str = field(default_factory=default_target_name)
    #: Rounds of machine outlining; 0 disables.  In the default pipeline
    #: outlining runs per module; in the whole-program pipeline it sees the
    #: entire program (the paper's key distinction, Figure 12).
    outline_rounds: int = 0
    #: llvm-link data-layout mode: "module-order" (paper's fix) or
    #: "interleaved" (upstream behaviour causing the §VI-3 regression).
    data_layout: str = "module-order"
    #: llvm-link GC-metadata mode: "attributes" (fixed) or "monolithic".
    gc_metadata_mode: str = "attributes"
    #: Baseline size optimizations (Table I rows).
    enable_sil_outlining: bool = False
    enable_merge_functions: bool = False
    enable_fmsa: bool = False
    enable_arc_opt: bool = True
    #: Whole-program function merging stacked with the outliner:
    #: "off", "exact" (bit-identical dedup only), or "optimistic"
    #: (similarity-hash merging with priced thunks; see
    #: :mod:`repro.lir.passes.optmerge`).  Runs *after* the scalar cleanup
    #: passes so the merger prices exactly the LIR that llc compiles.
    #: Defaults to ``$REPRO_MERGE`` or "off".
    merge_mode: str = field(default_factory=default_merge_mode)
    #: Strip functions unreachable from the entry point (app builds).
    global_dce: bool = True
    #: Collect per-round outlining statistics (Table II).
    collect_outline_stats: bool = True
    #: Text layout of outlined functions: "appended" (what the paper
    #: shipped) or "near-callers" (the paper's future work #3).
    outlined_layout: str = "appended"
    #: Whole-image function ordering (see :mod:`repro.link.funclayout`):
    #: "source" (link order), "callgraph-c3" (profile-guided call-chain
    #: clustering), or "random" (seeded control arm).  "near-callers"
    #: composes only with "source"; the linker rejects other combinations.
    layout: str = "source"
    #: Seed for ``layout="random"``; part of the backend fingerprint.
    layout_seed: int = 0
    #: Path to a serialized :class:`~repro.sim.profile.LayoutProfile` that
    #: feeds "callgraph-c3" edge weights; None = static call-site census.
    #: The profile's content digest (not the path) enters the backend
    #: fingerprint, so two builds with equal profiles share cache entries.
    profile_path: Optional[str] = None
    #: -Osize trivial inliner at the LIR level (future work #2 interaction).
    enable_inliner: bool = False

    # -- build-speed knobs (never affect the produced binary) ---------------
    #: Worker processes for per-module lowering (1 = serial, 0 = auto).
    workers: int = 1
    #: Consult/populate the content-addressed build cache.
    incremental: bool = False
    #: Cache location; None = $REPRO_CACHE_DIR or a tempdir default.
    cache_dir: Optional[str] = None

    # -- robustness knobs (never affect the produced binary) ----------------
    #: Run the post-link binary verifier on every build and every
    #: image-cache hit; a failure raises ImageVerifierError instead of
    #: returning a structurally wrong binary.
    verify_image: bool = True
    #: Deadline in seconds for one parallel compilation chunk; a chunk
    #: that misses it is retried and finally recompiled serially in the
    #: parent.  None disables the deadline (a hung worker then hangs the
    #: build).
    chunk_timeout: Optional[float] = 60.0
    #: In-pool retries per chunk before the serial in-parent re-run.
    max_chunk_retries: int = 2
    #: Base backoff in seconds between chunk retry rounds.
    retry_backoff: float = 0.05
    #: Disable the degradation ladder: the first chunk failure raises a
    #: typed WorkerCrashError/BuildError instead of retrying.  Useful in
    #: CI, where a flaky worker should be noticed rather than absorbed.
    fail_fast: bool = False
    #: Seeded fault-injection schedule (tests/CI only; None = no faults).
    fault_plan: Optional[FaultPlan] = None
    #: Cooperative cancellation/deadline scope for this build
    #: (:class:`~repro.pipeline.cancel.CancelScope`); checked at phase
    #: boundaries and between chunk-retry rounds.  The daemon gives every
    #: job its own scope; ``None`` (the one-shot CLI) never cancels.
    cancel_scope: Optional[object] = None

    def frontend_fingerprint(self) -> str:
        """Config fields that change per-module LIR (module cache key)."""
        return (f"arc={int(self.enable_arc_opt)};"
                f"siloutline={int(self.enable_sil_outlining)}")

    def backend_fingerprint(self) -> str:
        """Config fields that change the linked image given module LIR
        (image cache key).  ``workers``/``incremental``/``cache_dir`` are
        deliberately absent: builds must be bit-identical across them."""
        from repro.target import get_target

        spec = get_target(self.target)
        return (f"target={spec.name}:{spec.fingerprint()[:12]};"
                f"pipe={self.pipeline};rounds={self.outline_rounds};"
                f"layout={self.data_layout};gc={self.gc_metadata_mode};"
                f"merge={int(self.enable_merge_functions)};"
                f"mergemode={self.merge_mode};"
                f"fmsa={int(self.enable_fmsa)};"
                f"gdce={int(self.global_dce)};"
                f"stats={int(self.collect_outline_stats)};"
                f"outlayout={self.outlined_layout};"
                f"inline={int(self.enable_inliner)};"
                f"funclayout={self.layout};lseed={self.layout_seed};"
                f"profile={self._profile_digest_tag()}")

    def _profile_digest_tag(self) -> str:
        """Content digest of the layout profile for the image cache key.

        Digesting (rather than embedding the path) keeps the fingerprint
        stable across checkouts and temp dirs; loading through the typed
        reader means a corrupt profile fails the build at fingerprint time
        with :class:`~repro.errors.ProfileError`, before it can key (or
        poison) a cache entry.
        """
        if self.profile_path is None:
            return "none"
        from repro.sim.profile import profile_file_digest

        return profile_file_digest(self.profile_path)[:12]
