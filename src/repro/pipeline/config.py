"""Build configuration for the two iOS pipelines (Figures 2 and 10).

Environment defaults
--------------------

Every environment variable the build honours is listed here; each one
only supplies a *default* for the corresponding :class:`BuildConfig`
field and is ignored the moment the field is set explicitly (by code,
by a preset, or by a CLI flag — see `Precedence`_ below).

===================  =======================  ===============================
Variable             BuildConfig field        Meaning
===================  =======================  ===============================
``REPRO_TARGET``     ``target``               Target spec name (CI axis).
``REPRO_MERGE``      ``merge_mode``           Function-merging mode (CI axis).
``REPRO_CACHE_DIR``  ``cache_dir``            Build-cache directory.
===================  =======================  ===============================

The legacy readers (:func:`default_merge_mode`,
:func:`~repro.target.default_target_name`, and the cache-dir fallback in
:mod:`repro.pipeline.cache`) are kept as deprecation shims; new code
should go through :func:`env_default` so the table above stays the single
source of truth.

Precedence
----------

``explicit field/flag  >  preset  >  environment default  >  built-in``

:meth:`BuildConfig.preset` applies a named preset's fields over the
built-in defaults; anything passed as an override (or as an explicit CLI
flag — the CLI uses ``None``-sentinel defaults to tell "explicit" from
"absent") wins over the preset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.errors import ReproError
from repro.pipeline.faults import FaultPlan
from repro.target import default_target_name

#: Valid whole-program function-merging modes.
MERGE_MODES = ("off", "exact", "optimistic")

#: Valid link-time stripping modes.
STRIP_MODES = ("off", "program")

#: The one environment-default table (see the module docstring):
#: variable -> BuildConfig field it defaults.
ENV_DEFAULTS = {
    "REPRO_TARGET": "target",
    "REPRO_MERGE": "merge_mode",
    "REPRO_CACHE_DIR": "cache_dir",
}


def env_default(var: str) -> Optional[str]:
    """Read one documented environment default (None when unset/blank).

    Raises :class:`ReproError` for variables not in :data:`ENV_DEFAULTS`,
    so undocumented env knobs cannot creep back in.
    """
    if var not in ENV_DEFAULTS:
        raise ReproError(f"unknown environment default {var!r}; "
                         f"documented: {', '.join(sorted(ENV_DEFAULTS))}")
    value = os.environ.get(var, "").strip()
    return value or None


def default_merge_mode() -> str:
    """The default merge mode, honouring ``REPRO_MERGE`` if set (the CI
    matrix axis, mirroring ``REPRO_TARGET``)."""
    return env_default("REPRO_MERGE") or "off"


@dataclass
class BuildConfig:
    """Options shared by the default and whole-program pipelines.

    ``pipeline`` selects Figure 2 ("default": each module lowered to machine
    code independently) or Figure 10 ("wholeprogram": LIR from every module
    merged by llvm-link, optimized once, then lowered by a single llc run).
    """

    pipeline: str = "wholeprogram"  # "default" | "wholeprogram"
    #: Target specification name (see :mod:`repro.target`); defaults to
    #: ``$REPRO_TARGET`` or "arm64".  Changes instruction widths, alignment
    #: and the outliner's cost model, so it is part of the backend
    #: fingerprint (two targets never share an image-cache entry).
    target: str = field(default_factory=default_target_name)
    #: Rounds of machine outlining; 0 disables.  In the default pipeline
    #: outlining runs per module; in the whole-program pipeline it sees the
    #: entire program (the paper's key distinction, Figure 12).
    outline_rounds: int = 0
    #: llvm-link data-layout mode: "module-order" (paper's fix) or
    #: "interleaved" (upstream behaviour causing the §VI-3 regression).
    data_layout: str = "module-order"
    #: llvm-link GC-metadata mode: "attributes" (fixed) or "monolithic".
    gc_metadata_mode: str = "attributes"
    #: Baseline size optimizations (Table I rows).
    enable_sil_outlining: bool = False
    enable_merge_functions: bool = False
    enable_fmsa: bool = False
    enable_arc_opt: bool = True
    #: Whole-program function merging stacked with the outliner:
    #: "off", "exact" (bit-identical dedup only), or "optimistic"
    #: (similarity-hash merging with priced thunks; see
    #: :mod:`repro.lir.passes.optmerge`).  Runs *after* the scalar cleanup
    #: passes so the merger prices exactly the LIR that llc compiles.
    #: Defaults to ``$REPRO_MERGE`` or "off".
    merge_mode: str = field(default_factory=default_merge_mode)
    #: Strip functions unreachable from the entry point (app builds).
    #: Runs as an early LIR pass over the merged IR (whole-program
    #: pipeline only); see ``strip`` for the link-time machine-level
    #: equivalent that works in both pipeline shapes.
    global_dce: bool = True
    #: Link-time whole-program stripping: "off" or "program" (remove
    #: machine functions unreachable from the entry symbol through calls
    #: and address-taken references, right before the system link).
    #: Works in both pipeline shapes and sees the *final* machine code —
    #: including outlined and merged functions — so it catches dead code
    #: the early LIR pass cannot (see
    #: :func:`repro.lir.passes.globaldce.strip_program`).
    strip: str = "off"
    #: Collect per-round outlining statistics (Table II).
    collect_outline_stats: bool = True
    #: Text layout of outlined functions: "appended" (what the paper
    #: shipped) or "near-callers" (the paper's future work #3).
    outlined_layout: str = "appended"
    #: Whole-image function ordering (see :mod:`repro.link.funclayout`):
    #: "source" (link order), "callgraph-c3" (profile-guided call-chain
    #: clustering), or "random" (seeded control arm).  "near-callers"
    #: composes only with "source"; the linker rejects other combinations.
    layout: str = "source"
    #: Seed for ``layout="random"``; part of the backend fingerprint.
    layout_seed: int = 0
    #: Path to a serialized :class:`~repro.sim.profile.LayoutProfile` that
    #: feeds "callgraph-c3" edge weights; None = static call-site census.
    #: The profile's content digest (not the path) enters the backend
    #: fingerprint, so two builds with equal profiles share cache entries.
    profile_path: Optional[str] = None
    #: -Osize trivial inliner at the LIR level (future work #2 interaction).
    enable_inliner: bool = False

    # -- build-speed knobs (never affect the produced binary) ---------------
    #: Worker processes for per-module lowering (1 = serial, 0 = auto).
    workers: int = 1
    #: Consult/populate the content-addressed build cache.
    incremental: bool = False
    #: Cache location; None = $REPRO_CACHE_DIR or a tempdir default.
    cache_dir: Optional[str] = None
    #: Layer per-function LIR entries under the module entries, so editing
    #: one function relowers one function (the rest of its module is
    #: assembled from cache).  Only consulted when ``incremental`` is on.
    incremental_functions: bool = True
    #: Cache per-module machine code (post-llc) under its own key in the
    #: default pipeline, so a link-only change (layout flip, one-module
    #: edit) re-links cached machine modules instead of re-running llc.
    #: Only consulted when ``incremental`` is on.
    incremental_llc: bool = True
    #: Keep the forked worker pool alive across builds in this process
    #: (daemon / batch use) instead of fork+teardown per build.  Worker
    #: payloads are then shipped per task rather than inherited via
    #: fork-time copy-on-write; the fault ladder still tears the pool
    #: down and rebuilds it on a crash.
    persistent_workers: bool = False

    # -- robustness knobs (never affect the produced binary) ----------------
    #: Run the post-link binary verifier on every build and every
    #: image-cache hit; a failure raises ImageVerifierError instead of
    #: returning a structurally wrong binary.
    verify_image: bool = True
    #: Deadline in seconds for one parallel compilation chunk; a chunk
    #: that misses it is retried and finally recompiled serially in the
    #: parent.  None disables the deadline (a hung worker then hangs the
    #: build).
    chunk_timeout: Optional[float] = 60.0
    #: In-pool retries per chunk before the serial in-parent re-run.
    max_chunk_retries: int = 2
    #: Base backoff in seconds between chunk retry rounds.
    retry_backoff: float = 0.05
    #: Disable the degradation ladder: the first chunk failure raises a
    #: typed WorkerCrashError/BuildError instead of retrying.  Useful in
    #: CI, where a flaky worker should be noticed rather than absorbed.
    fail_fast: bool = False
    #: Seeded fault-injection schedule (tests/CI only; None = no faults).
    fault_plan: Optional[FaultPlan] = None
    #: Cooperative cancellation/deadline scope for this build
    #: (:class:`~repro.pipeline.cancel.CancelScope`); checked at phase
    #: boundaries and between chunk-retry rounds.  The daemon gives every
    #: job its own scope; ``None`` (the one-shot CLI) never cancels.
    cancel_scope: Optional[object] = None

    def frontend_fingerprint(self) -> str:
        """Config fields that change per-module LIR (module cache key)."""
        return (f"arc={int(self.enable_arc_opt)};"
                f"siloutline={int(self.enable_sil_outlining)}")

    def backend_fingerprint(self) -> str:
        """Config fields that change the linked image given module LIR
        (image cache key).  ``workers``/``incremental``/``cache_dir`` are
        deliberately absent: builds must be bit-identical across them."""
        from repro.target import get_target

        spec = get_target(self.target)
        return (f"target={spec.name}:{spec.fingerprint()[:12]};"
                f"pipe={self.pipeline};rounds={self.outline_rounds};"
                f"layout={self.data_layout};gc={self.gc_metadata_mode};"
                f"merge={int(self.enable_merge_functions)};"
                f"mergemode={self.merge_mode};"
                f"fmsa={int(self.enable_fmsa)};"
                f"gdce={int(self.global_dce)};"
                f"strip={self.strip};"
                f"stats={int(self.collect_outline_stats)};"
                f"outlayout={self.outlined_layout};"
                f"inline={int(self.enable_inliner)};"
                f"funclayout={self.layout};lseed={self.layout_seed};"
                f"profile={self._profile_digest_tag()}")

    def llc_fingerprint(self) -> str:
        """Config fields that change one module's *machine code* in the
        default pipeline (per-module llc cache key).  A strict subset of
        :meth:`backend_fingerprint`: link-only fields (function layout,
        layout seed, profile, outlined-function placement) and
        whole-program-pipeline-only passes (globaldce, fmsa, exact merge
        stage, llvm-link data layout) are excluded, so flipping them
        re-links cached machine modules without re-running llc."""
        from repro.target import get_target

        spec = get_target(self.target)
        return (f"target={spec.name}:{spec.fingerprint()[:12]};"
                f"pipe={self.pipeline};rounds={self.outline_rounds};"
                f"mergemode={self.merge_mode};"
                f"stats={int(self.collect_outline_stats)};"
                f"inline={int(self.enable_inliner)}")

    @classmethod
    def preset(cls, name: str, **overrides) -> "BuildConfig":
        """A named configuration preset (see :data:`PRESETS`).

        Keyword *overrides* are applied on top of the preset's fields —
        the documented ``explicit > preset > default`` precedence.
        """
        try:
            base = PRESETS[name]
        except KeyError:
            raise ReproError(
                f"unknown preset {name!r}; expected one of: "
                f"{', '.join(sorted(PRESETS))}") from None
        config = cls(**base)
        if overrides:
            try:
                config = replace(config, **overrides)
            except TypeError as exc:
                raise ReproError(f"bad preset override: {exc}") from None
        return config

    def _profile_digest_tag(self) -> str:
        """Content digest of the layout profile for the image cache key.

        Digesting (rather than embedding the path) keeps the fingerprint
        stable across checkouts and temp dirs; loading through the typed
        reader means a corrupt profile fails the build at fingerprint time
        with :class:`~repro.errors.ProfileError`, before it can key (or
        poison) a cache entry.
        """
        if self.profile_path is None:
            return "none"
        from repro.sim.profile import profile_file_digest

        return profile_file_digest(self.profile_path)[:12]


#: Named presets (:meth:`BuildConfig.preset` / CLI ``--preset``).  Each
#: entry is the full explicit-knob spelling of the preset — the
#: equivalence tests build both and require bit-identical images.
#:
#: ``min-size``
#:     What the paper shipped, plus the stacked optimistic merger: the
#:     whole-program pipeline, five outlining rounds, and link-time
#:     whole-program stripping (``strip="program"`` replaces the early
#:     LIR ``global_dce`` pass — stripping the *final* machine code also
#:     removes outlined/merged bodies orphaned by later passes, which
#:     the early pass can never see).  Slowest builds, smallest binaries.
#: ``fast-build``
#:     Inner-loop iteration: the per-module (Figure 2) pipeline with one
#:     outlining round, function-level incremental caching, auto worker
#:     count and a persistent worker pool.  Fastest warm builds; binaries
#:     are larger than ``min-size``.
#: ``balanced``
#:     Whole-program pipeline with three rounds and exact (bit-identical)
#:     function merging, still incremental and parallel.
PRESETS: Dict[str, Dict[str, object]] = {
    "min-size": {
        "pipeline": "wholeprogram",
        "outline_rounds": 5,
        "merge_mode": "optimistic",
        "global_dce": False,
        "strip": "program",
    },
    "fast-build": {
        "pipeline": "default",
        "outline_rounds": 1,
        "merge_mode": "off",
        "workers": 0,
        "incremental": True,
        "persistent_workers": True,
    },
    "balanced": {
        "pipeline": "wholeprogram",
        "outline_rounds": 3,
        "merge_mode": "exact",
        "workers": 0,
        "incremental": True,
    },
}

#: Build-speed / robustness fields that must never enter a fingerprint
#: (used by tests to pin the bit-identity contract).
SPEED_FIELDS = frozenset({
    "workers", "incremental", "cache_dir", "incremental_functions",
    "incremental_llc", "persistent_workers", "chunk_timeout",
    "max_chunk_retries", "retry_backoff", "fail_fast", "fault_plan",
    "cancel_scope",
})


def config_fields() -> tuple:
    """All BuildConfig field names (for CLI/facade plumbing)."""
    return tuple(f.name for f in fields(BuildConfig))
