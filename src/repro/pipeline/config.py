"""Build configuration for the two iOS pipelines (Figures 2 and 10)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class BuildConfig:
    """Options shared by the default and whole-program pipelines.

    ``pipeline`` selects Figure 2 ("default": each module lowered to machine
    code independently) or Figure 10 ("wholeprogram": LIR from every module
    merged by llvm-link, optimized once, then lowered by a single llc run).
    """

    pipeline: str = "wholeprogram"  # "default" | "wholeprogram"
    #: Rounds of machine outlining; 0 disables.  In the default pipeline
    #: outlining runs per module; in the whole-program pipeline it sees the
    #: entire program (the paper's key distinction, Figure 12).
    outline_rounds: int = 0
    #: llvm-link data-layout mode: "module-order" (paper's fix) or
    #: "interleaved" (upstream behaviour causing the §VI-3 regression).
    data_layout: str = "module-order"
    #: llvm-link GC-metadata mode: "attributes" (fixed) or "monolithic".
    gc_metadata_mode: str = "attributes"
    #: Baseline size optimizations (Table I rows).
    enable_sil_outlining: bool = False
    enable_merge_functions: bool = False
    enable_fmsa: bool = False
    enable_arc_opt: bool = True
    #: Strip functions unreachable from the entry point (app builds).
    global_dce: bool = True
    #: Collect per-round outlining statistics (Table II).
    collect_outline_stats: bool = True
    #: Text layout of outlined functions: "appended" (what the paper
    #: shipped) or "near-callers" (the paper's future work #3).
    outlined_layout: str = "appended"
    #: -Osize trivial inliner at the LIR level (future work #2 interaction).
    enable_inliner: bool = False
