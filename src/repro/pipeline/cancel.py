"""Cooperative per-job cancellation and deadlines.

A :class:`CancelScope` travels with one build (``BuildConfig.cancel_scope``)
and is *checked*, never polled asynchronously: the orchestrator calls
:meth:`CancelScope.check` at phase boundaries and between parallel-chunk
rounds, so cancellation lands at well-defined points where the worker pool
for that build — and only that build — can be torn down cleanly.  A build
that is cancelled can therefore never publish a partial cache entry or
leave orphaned forks behind: the checkpoint raises before the next unit of
work starts, and the pool teardown in :mod:`repro.pipeline.parallel` runs
on the way out.

Two typed outcomes, both subclasses of
:class:`~repro.errors.BuildError`:

* :class:`~repro.errors.DeadlineExpiredError` — the scope's monotonic
  deadline passed;
* :class:`~repro.errors.JobCancelledError` — someone called
  :meth:`CancelScope.cancel` (daemon drain, client abort, breaker trip).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import DeadlineExpiredError, JobCancelledError


class CancelScope:
    """Cancellation token with an optional monotonic deadline.

    Thread-safe: the daemon's drain path cancels scopes owned by executor
    threads.  ``deadline_seconds`` is relative to construction time.
    """

    def __init__(self, deadline_seconds: Optional[float] = None,
                 label: str = ""):
        self.label = label
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._deadline: Optional[float] = None
        if deadline_seconds is not None:
            self._deadline = time.monotonic() + max(0.0, deadline_seconds)

    # -- state ---------------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def deadline_expired(self) -> bool:
        return (self._deadline is not None
                and time.monotonic() >= self._deadline)

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None = no deadline; never < 0)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    # -- the checkpoint ------------------------------------------------------

    def check(self, where: str = "") -> None:
        """Raise the typed cancellation error if the scope is dead.

        Call at every point where abandoning the build is safe (phase
        boundaries, between chunk-retry rounds).  A no-op on a live scope,
        so sprinkling checkpoints is free.
        """
        at = f" at {where}" if where else ""
        job = f" (job {self.label})" if self.label else ""
        if self.deadline_expired:
            raise DeadlineExpiredError(
                f"deadline expired{at}{job}")
        with self._lock:
            if self._cancelled:
                reason = self._reason
            else:
                return
        raise JobCancelledError(f"{reason}{at}{job}")


def checkpoint(scope: Optional[CancelScope], where: str = "") -> None:
    """``scope.check(where)`` that tolerates ``scope is None``."""
    if scope is not None:
        scope.check(where)


def clamp_timeout(scope: Optional[CancelScope],
                  timeout: Optional[float]) -> Optional[float]:
    """Smallest of ``timeout`` and the scope's remaining budget.

    Used for blocking waits (chunk futures) so a build never sleeps past
    its own deadline waiting on a worker.
    """
    if scope is None:
        return timeout
    remaining = scope.remaining()
    if remaining is None:
        return timeout
    if timeout is None:
        return remaining
    return min(timeout, remaining)
