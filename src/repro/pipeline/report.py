"""Per-build bookkeeping: phase wall clocks and cache/parallel telemetry.

Every :func:`repro.pipeline.build_program` call fills in a
:class:`BuildReport`; experiments use it to put *measured* seconds next to
the §VII-C *modeled* minutes, and the CLI prints it after a build.  Wall
times are host seconds (a Python toolchain's absolute numbers are only
meaningful relative to each other — cold vs warm, serial vs parallel).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs import trace as obs_trace


@dataclass
class DegradationEvent:
    """One recovery action the orchestrator took instead of failing.

    ``kind`` is a stable machine-readable tag; the full set is documented
    in DESIGN.md ("Failure model and degradation ladder"):

    * ``worker-crash`` / ``chunk-timeout`` / ``chunk-error`` — a chunk
      attempt failed (the detail says why) and was retried or re-run;
    * ``chunk-serial-rerun`` — a chunk exhausted its pool retries and was
      recompiled serially in the parent process;
    * ``no-fork`` / ``pool-unavailable`` — the platform (or an injected
      fault) prevented a worker pool; the phase ran serially;
    * ``cache-quarantine`` / ``cache-store-failed`` — a corrupt cache
      entry was moved aside, or a store did not complete.
    """

    kind: str
    phase: str = ""
    detail: str = ""
    chunk: int = -1
    attempt: int = 0

    def render(self) -> str:
        where = f" [{self.phase}" + (
            f" chunk {self.chunk}" if self.chunk >= 0 else "") + "]"
        attempt = f" (attempt {self.attempt})" if self.attempt else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"{self.kind}{where}{attempt}{detail}"

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "phase": self.phase,
                "detail": self.detail, "chunk": self.chunk,
                "attempt": self.attempt}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DegradationEvent":
        return cls(kind=str(data.get("kind", "")),
                   phase=str(data.get("phase", "")),
                   detail=str(data.get("detail", "")),
                   chunk=int(data.get("chunk", -1)),
                   attempt=int(data.get("attempt", 0)))


@dataclass
class BuildReport:
    """What one build did and how long each phase took."""

    #: Modules in the input program.
    num_modules: int = 0
    #: Target specification the build was lowered for ("" = default).
    target: str = ""
    #: Whole-program function-merging mode ("off"/"exact"/"optimistic").
    merge_mode: str = "off"
    #: Merge-stage pass report (empty when ``merge_mode`` is "off"):
    #: functions_merged / thunks_created / bytes_saved / ...
    merge_stats: Dict[str, int] = field(default_factory=dict)
    #: Link-time whole-program stripping mode ("off"/"program").
    strip_mode: str = "off"
    #: Totals removed by link-time stripping (0 when ``strip`` is off).
    stripped_functions: int = 0
    stripped_bytes: int = 0
    #: Per-module strip outcomes: module -> {"functions": n, "bytes": b}
    #: (only modules that lost at least one function appear).
    strip_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Worker processes used for the parallel frontend (1 = serial).
    workers: int = 1
    #: Whether the content-addressed cache was consulted.
    cache_enabled: bool = False
    #: Per-module LIR cache outcomes.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    #: Function-level LIR cache outcomes (within module-level misses).
    fn_cache_hits: int = 0
    fn_cache_misses: int = 0
    #: Functions actually relowered+reoptimized this build (the
    #: functions-recompiled-per-edit gauge; 0 on a fully warm build).
    functions_recompiled: int = 0
    #: Per-module machine-code (llc) cache outcomes (default pipeline).
    llc_cache_hits: int = 0
    llc_cache_misses: int = 0
    #: True when the whole linked image came from the cache (nothing was
    #: recompiled, not even the frontend).
    image_cache_hit: bool = False
    #: Wall seconds per phase, in execution order.
    phase_wall: Dict[str, float] = field(default_factory=dict)
    #: Free-form notes (e.g. "parallel frontend fell back to serial").
    notes: List[str] = field(default_factory=list)
    #: Structured recovery actions (retries, serial re-runs, quarantines).
    degradations: List[DegradationEvent] = field(default_factory=list)
    #: Whether the post-link verifier checked the returned image.
    image_verified: bool = False

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a phase; nested/repeated uses accumulate.

        The clock is :func:`repro.obs.trace.now` — the same monotonic
        source the tracer stamps spans with.  When a tracer is active the
        phase *is* a span and ``phase_wall`` takes that span's duration
        verbatim, so the report and the trace can never drift.
        """
        tracer = obs_trace.current_tracer()
        if not tracer.enabled:
            start = obs_trace.now()
            try:
                yield
            finally:
                elapsed = obs_trace.now() - start
                self.phase_wall[name] = (self.phase_wall.get(name, 0.0)
                                         + elapsed)
            return
        span = tracer.start_span(name, kind="phase")
        try:
            yield
        finally:
            tracer.end_span(span)
            self.phase_wall[name] = (self.phase_wall.get(name, 0.0)
                                     + span.duration)

    @property
    def total_wall(self) -> float:
        return sum(self.phase_wall.values())

    def note(self, message: str) -> None:
        self.notes.append(message)

    def degrade(self, kind: str, phase: str = "", detail: str = "",
                chunk: int = -1, attempt: int = 0) -> DegradationEvent:
        """Record (and return) a structured degradation event.

        When a tracer is active the event also lands on the trace as an
        instant annotation at the current nesting (so a degraded build's
        timeline shows *where* the ladder stepped down), and bumps the
        ``build.degradations`` counter.
        """
        event = DegradationEvent(kind=kind, phase=phase, detail=detail,
                                 chunk=chunk, attempt=attempt)
        self.degradations.append(event)
        obs_trace.event(f"degraded:{kind}", kind="degradation", phase=phase,
                        detail=detail, chunk=chunk, attempt=attempt)
        obs_trace.metrics().inc("build.degradations")
        obs_trace.metrics().inc(f"build.degradations.{kind}")
        return event

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dump, complete enough for the daemon to ship a job's
        report over the wire and the client to re-render
        :meth:`summary_lines` verbatim (same ``degraded:`` lines the
        one-shot CLI prints)."""
        return {
            "num_modules": self.num_modules,
            "target": self.target,
            "merge_mode": self.merge_mode,
            "merge_stats": dict(self.merge_stats),
            "strip_mode": self.strip_mode,
            "stripped_functions": self.stripped_functions,
            "stripped_bytes": self.stripped_bytes,
            "strip_stats": {name: dict(counts)
                            for name, counts in self.strip_stats.items()},
            "workers": self.workers,
            "cache_enabled": self.cache_enabled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "fn_cache_hits": self.fn_cache_hits,
            "fn_cache_misses": self.fn_cache_misses,
            "functions_recompiled": self.functions_recompiled,
            "llc_cache_hits": self.llc_cache_hits,
            "llc_cache_misses": self.llc_cache_misses,
            "image_cache_hit": self.image_cache_hit,
            "phase_wall": dict(self.phase_wall),
            "notes": list(self.notes),
            "degradations": [d.as_dict() for d in self.degradations],
            "image_verified": self.image_verified,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BuildReport":
        """Rebuild a report from :meth:`as_dict` output (wire payloads
        from older/newer daemons may omit fields; defaults fill in)."""
        report = cls(
            num_modules=int(data.get("num_modules", 0)),
            target=str(data.get("target", "")),
            merge_mode=str(data.get("merge_mode", "off")),
            merge_stats=dict(data.get("merge_stats") or {}),
            strip_mode=str(data.get("strip_mode", "off")),
            stripped_functions=int(data.get("stripped_functions", 0)),
            stripped_bytes=int(data.get("stripped_bytes", 0)),
            strip_stats={str(name): {str(k): int(v)
                                     for k, v in (counts or {}).items()}
                         for name, counts in
                         (data.get("strip_stats") or {}).items()},
            workers=int(data.get("workers", 1)),
            cache_enabled=bool(data.get("cache_enabled", False)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            cache_stores=int(data.get("cache_stores", 0)),
            fn_cache_hits=int(data.get("fn_cache_hits", 0)),
            fn_cache_misses=int(data.get("fn_cache_misses", 0)),
            functions_recompiled=int(data.get("functions_recompiled", 0)),
            llc_cache_hits=int(data.get("llc_cache_hits", 0)),
            llc_cache_misses=int(data.get("llc_cache_misses", 0)),
            image_cache_hit=bool(data.get("image_cache_hit", False)),
            phase_wall={str(k): float(v) for k, v in
                        (data.get("phase_wall") or {}).items()},
            notes=[str(n) for n in (data.get("notes") or [])],
            image_verified=bool(data.get("image_verified", False)),
        )
        report.degradations = [DegradationEvent.from_dict(d)
                               for d in (data.get("degradations") or [])]
        return report

    def summary_lines(self) -> List[str]:
        """Human-readable report (CLI `build` output)."""
        lines = []
        if self.cache_enabled:
            if self.image_cache_hit:
                cache = "image cache hit (no recompilation)"
            else:
                cache = (f"cache {self.cache_hits} hits / "
                         f"{self.cache_misses} misses, "
                         f"{self.cache_stores} stored")
        else:
            cache = "cache off"
        lines.append(f"frontend:  {self.num_modules} modules, "
                     f"{self.workers} worker(s), {cache}")
        if self.cache_enabled and (self.fn_cache_hits or self.fn_cache_misses):
            lines.append(f"functions: {self.fn_cache_hits} cached / "
                         f"{self.functions_recompiled} recompiled")
        if self.cache_enabled and (self.llc_cache_hits
                                   or self.llc_cache_misses):
            lines.append(f"llc cache: {self.llc_cache_hits} hits / "
                         f"{self.llc_cache_misses} misses")
        if self.target:
            lines.append(f"target:    {self.target}")
        if self.merge_mode != "off":
            merged = self.merge_stats.get("functions_merged", 0)
            detail = f"{self.merge_mode}, {merged} function(s) merged"
            exact = self.merge_stats.get("exact_merged")
            if exact is not None:
                detail += (f" ({exact} exact, "
                           f"{self.merge_stats.get('parameterized_merged', 0)}"
                           f" parameterized, "
                           f"{self.merge_stats.get('thunks_created', 0)}"
                           f" thunks)")
            saved = self.merge_stats.get("bytes_saved")
            if saved:
                detail += f", ~{saved}B saved"
            lines.append(f"merge:     {detail}")
        if self.strip_mode != "off":
            lines.append(f"strip:     {self.strip_mode}, "
                         f"{self.stripped_functions} function(s) / "
                         f"{self.stripped_bytes}B removed at link "
                         f"({len(self.strip_stats)} module(s))")
        if self.phase_wall:
            parts = ", ".join(f"{name} {secs * 1000:.0f}ms"
                              for name, secs in self.phase_wall.items())
            lines.append(f"wall:      {parts} "
                         f"(total {self.total_wall * 1000:.0f}ms)")
        if self.image_verified:
            lines.append("verify:    image verified")
        for event in self.degradations:
            lines.append(f"degraded:  {event.render()}")
        for note in self.notes:
            lines.append(f"note:      {note}")
        return lines
