"""Function-level cache key inputs (the tentpole of the scale work).

A module's cache key changes whenever *any* of its source changes, so a
one-line edit relowers the whole module.  The function level fixes that:
each SIL function gets a **self-validating** key — deliberately *not*
derived from the module key — built from everything that can change its
optimized LIR:

* its own post-sema SIL (:func:`function_digest`): the rendered body plus
  the signature facts ``SILFunction.render`` omits (parameter temps and
  types, return type, bareness, source module);
* the signatures of every symbol it applies (:func:`callees_digest`):
  IRGen consults callee parameter/return types to decide float-ness of
  arguments and results, so a callee signature change must miss;
* the owning module's ordered string-intern table
  (:func:`interns_digest`): ``.strN`` numbering is shared module-wide in
  first-use order, so any change to the set *or order* of string
  constants in the module invalidates every function that could name one.

Because the -Osize scalar cleanup pipeline is strictly function-local
(each pass is ``run_on_function`` summed over the module), a module
assembled from cached per-function LIR plus freshly lowered-and-optimized
misses is bit-identical to a cold whole-module lowering; the determinism
harness enforces this.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.pipeline import cache as cache_mod
from repro.sil import sil


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def _signature_tag(silfn: sil.SILFunction) -> str:
    return (f"params={[str(t) for t in silfn.param_types]!r};"
            f"temps={silfn.param_temps!r};"
            f"ret={str(silfn.ret_type) if silfn.ret_type else 'None'};"
            f"bare={int(silfn.is_bare)};src={silfn.source_module}")


def function_digest(silfn: sil.SILFunction) -> str:
    """Digest of one function's post-sema, post-SIL-passes SIL."""
    return _sha(silfn.render(), _signature_tag(silfn))


def callees_digest(silfn: sil.SILFunction,
                   signatures: Dict[str, sil.SILFunction]) -> str:
    """Digest of the signatures of every symbol the function applies."""
    callees = set()
    for block in silfn.blocks:
        for instr in block.instrs:
            if isinstance(instr, (sil.Apply, sil.TryApply)):
                callees.add(instr.callee)
    parts = []
    for symbol in sorted(callees):
        callee = signatures.get(symbol)
        if callee is None:
            parts.append(f"{symbol}=<extern>")
        else:
            parts.append(f"{symbol}="
                         f"{[str(t) for t in callee.param_types]!r}->"
                         f"{str(callee.ret_type) if callee.ret_type else 'None'}")
    return _sha(*parts)


def interns_digest(sm: sil.SILModule) -> str:
    """Digest of the module's ordered string-intern table.

    Scans functions/blocks/instructions in order — exactly the first-use
    order IRGen interns in — so the digest pins both the ``.strN``
    numbering and the owning module name that prefixes the symbols.
    """
    seen: Dict[str, int] = {}
    for silfn in sm.functions:
        for block in silfn.blocks:
            for instr in block.instrs:
                if isinstance(instr, sil.ConstString):
                    seen.setdefault(instr.value, len(seen))
    ordered = sorted(seen, key=seen.get)
    return _sha(sm.name, *ordered)


def module_content_key(sm: sil.SILModule, function_keys: List[str]) -> str:
    """Content identity of a module's *assembled* LIR (llc cache base).

    The module-level cache key couples a module to the source of its
    transitive imports, so editing one function invalidates the module
    key of everything downstream even when their LIR is unchanged.  This
    key instead derives from what the LIR actually is — the ordered
    per-function keys plus the lowered globals — so an unchanged
    downstream module keeps its machine-code cache entry.
    """
    globals_tag = [f"{g.symbol};{g.ty};{g.const_value!r};"
                   f"{int(g.is_let)};{g.origin_module}"
                   for g in sm.globals]
    return _sha(sm.name, sm.entry_symbol or "", *globals_tag,
                "::fns::", *function_keys)


def module_function_keys(
        sm: sil.SILModule,
        signatures: Dict[str, sil.SILFunction],
        frontend_fingerprint: str,
) -> List[Tuple[sil.SILFunction, str]]:
    """(function, cache key) for every function in the module, in order."""
    interns = interns_digest(sm)
    return [(silfn,
             cache_mod.function_key(frontend_fingerprint,
                                    function_digest(silfn),
                                    callees_digest(silfn, signatures),
                                    interns))
            for silfn in sm.functions]
