"""Build drivers for the default (Figure 2) and whole-program (Figure 10)
iOS pipelines.

``build_program`` is the main entry: source modules in, linked
:class:`BinaryImage` out, plus the artifacts each experiment needs (LIR,
machine modules, outlining statistics, size report).

The driver is incremental and parallel (§VII-C is about exactly this cost):

* with ``BuildConfig.incremental`` it consults a content-addressed cache
  (:mod:`repro.pipeline.cache`) at two levels — per-module optimized LIR
  and the fully linked image — so rebuilding an unchanged program skips
  everything after source hashing;
* with ``BuildConfig.workers > 1`` per-module lowering (SIL -> LIR, and
  per-module llc in the default pipeline) fans out across forked worker
  processes (:mod:`repro.pipeline.parallel`).

Both features are required to be **bit-identical** to a cold serial build
(same image bytes, same outlining statistics); the determinism test
harness under ``tests/property`` enforces it.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backend.llc import LLCOptions, run_llc
from repro.errors import ReproError
from repro.frontend.parser import parse_module
from repro.frontend.sema import ProgramInfo, analyze_program
from repro.isa.instructions import MachineModule
from repro.lir import ir as lir_ir
from repro.lir.irgen import ModuleIRGen, generate_lir
from repro.lir.linker import LinkOptions, link_modules
from repro.lir.passes.manager import PassManager, osize_pipeline
from repro.obs import trace as obs_trace
from repro.link.binary import BinaryImage
from repro.link.linker import link_binary
from repro.link.verify import verify_image
from repro.pipeline import cache as cache_mod
from repro.pipeline import fncache
from repro.pipeline import parallel
from repro.pipeline.cache import ModuleCache
from repro.pipeline.cancel import checkpoint
from repro.pipeline.config import BuildConfig
from repro.pipeline.report import BuildReport
from repro.runtime.objects import ClassLayout, TypeRegistry
from repro.sil.silgen import generate_sil

SourceModules = Union[Dict[str, str], Sequence[Tuple[str, str]]]


@dataclass
class SizeReport:
    text_bytes: int = 0
    data_bytes: int = 0
    metadata_bytes: int = 0
    binary_bytes: int = 0
    num_functions: int = 0
    num_instrs: int = 0

    @classmethod
    def from_image(cls, image: BinaryImage) -> "SizeReport":
        return cls(
            text_bytes=image.text_bytes,
            data_bytes=image.data_bytes,
            metadata_bytes=image.metadata_bytes,
            binary_bytes=image.binary_bytes,
            num_functions=image.num_functions,
            num_instrs=len(image.instrs),
        )


@dataclass
class BuildResult:
    image: BinaryImage
    program: Optional[ProgramInfo]
    registry: TypeRegistry
    config: BuildConfig
    machine_modules: List[MachineModule]
    outline_stats: List[object] = field(default_factory=list)
    #: Baseline-pass observations (Table I): pass name -> metric dict.
    pass_reports: Dict[str, dict] = field(default_factory=dict)
    #: Per-phase work counts for the build-time model (§VII-C).
    phase_work: Dict[str, int] = field(default_factory=dict)
    #: Measured phase wall times + cache/parallel telemetry.
    report: BuildReport = field(default_factory=BuildReport)
    _sizes: Optional[SizeReport] = field(default=None, init=False,
                                         repr=False, compare=False)

    @property
    def sizes(self) -> SizeReport:
        # The image is immutable once linked; compute the report once.
        if self._sizes is None:
            self._sizes = SizeReport.from_image(self.image)
        return self._sizes


def _machine_modules_get(self) -> List[MachineModule]:
    value = self.__dict__.get("_machine_modules")
    if callable(value):
        value = value() or []
        self.__dict__["_machine_modules"] = value
    return value


def _machine_modules_set(self, value) -> None:
    self.__dict__["_machine_modules"] = value


#: ``machine_modules`` also accepts a zero-argument loader: an image-cache
#: hit defers deserializing the per-module machine IR until something
#: (disasm, the pattern miner) actually asks for it — a warm no-op rebuild
#: then pays only for the linked image.
BuildResult.machine_modules = property(_machine_modules_get,
                                       _machine_modules_set)


def frontend_to_lir(sources: SourceModules) -> Tuple[ProgramInfo,
                                                     List[lir_ir.LIRModule]]:
    """Parse + sema + SILGen + IRGen + per-module -Osize cleanups."""
    items = sources.items() if isinstance(sources, dict) else sources
    modules = [parse_module(text, name) for name, text in items]
    program = analyze_program(modules)
    sil_modules = generate_sil(program)
    lir_modules = generate_lir(sil_modules)
    for module in lir_modules:
        optimize_module(module)
    return program, lir_modules


def optimize_module(module: lir_ir.LIRModule) -> None:
    """The standard -Osize scalar cleanup pipeline (opt analog)."""
    PassManager(osize_pipeline()).run(module)


#: merge_mode -> the pass name that implements it (report/metrics key).
_MERGE_PASS_NAME = {"exact": "mergefunctions", "optimistic": "optmerge"}


def _merge_passes(config: BuildConfig, per_module: bool = False):
    """The ``merge_mode`` pass stage.

    Runs *after* the scalar cleanup passes: the optimistic merger prices
    candidates by compiling them, so it must see exactly the LIR that llc
    will compile.  ``per_module`` namespaces merged-body symbols by module
    (the default pipeline's llc does the same for outlined functions).
    """
    from repro.pipeline.config import MERGE_MODES

    if config.merge_mode not in MERGE_MODES:
        raise ReproError(f"unknown merge_mode {config.merge_mode!r}; "
                         f"expected one of: {', '.join(MERGE_MODES)}")
    if config.merge_mode == "exact":
        from repro.lir.passes import mergefunctions

        return [("mergefunctions", mergefunctions.run_on_module)]
    if config.merge_mode == "optimistic":
        from repro.lir.passes import optmerge

        def run(module: lir_ir.LIRModule):
            prefix = f"{module.name}::" if per_module else ""
            return optmerge.run_on_module(module, target=config.target,
                                          symbol_prefix=prefix)

        return [("optmerge", run)]
    return []


def _wholeprogram_passes(config: BuildConfig):
    """The merged-IR -Osize sequence (order matters; see Figure 10)."""
    from repro.lir.passes import constprop, dce, globaldce, simplifycfg

    passes = []
    if config.global_dce:
        passes.append(("globaldce", globaldce.run_on_module))
    if config.enable_inliner:
        from repro.lir.passes import inliner

        passes.append(("inliner", inliner.run_on_module))
        if config.global_dce:
            passes.append(("globaldce", globaldce.run_on_module))
    if config.enable_merge_functions:
        from repro.lir.passes import mergefunctions

        passes.append(("mergefunctions", mergefunctions.run_on_module))
    if config.enable_fmsa:
        from repro.lir.passes import fmsa

        passes.append(("fmsa", fmsa.run_on_module))
    passes.extend([
        ("constprop", constprop.run_on_module),
        ("dce", dce.run_on_module),
        ("simplifycfg", simplifycfg.run_on_module),
    ])
    passes.extend(_merge_passes(config))
    return passes


def _note_merge_stats(result: "BuildResult", config: BuildConfig,
                      report: BuildReport) -> None:
    """Copy the merge-stage pass report into the build report."""
    name = _MERGE_PASS_NAME.get(config.merge_mode)
    stats = result.pass_reports.get(name) if name else None
    if isinstance(stats, dict):
        report.merge_stats = dict(stats)


def _note_strip_stats(result: "BuildResult", config: BuildConfig,
                      report: BuildReport) -> None:
    """Copy the strip-stage pass report into the build report (the image
    cache stores it in ``pass_reports``, so a warm hit re-renders the
    same ``strip:`` summary line as the build that populated it)."""
    report.strip_mode = config.strip
    stats = result.pass_reports.get("strip")
    if isinstance(stats, dict):
        report.stripped_functions = int(stats.get("functions_removed", 0))
        report.stripped_bytes = int(stats.get("bytes_removed", 0))
        per = stats.get("per_module")
        if isinstance(per, dict):
            report.strip_stats = {str(name): dict(counts)
                                  for name, counts in per.items()}


def _strip_stage(result: "BuildResult", config: BuildConfig,
                 report: BuildReport, entry: Optional[str]) -> None:
    """Link-time whole-program stripping (``BuildConfig.strip``).

    Runs on the assembled machine modules in both pipeline shapes, right
    before the system link — the one point where every function that will
    reach __text (including outlined bodies and merge thunks) exists and
    nothing has been laid out yet.
    """
    from repro.pipeline.config import STRIP_MODES

    if config.strip not in STRIP_MODES:
        raise ReproError(f"unknown strip mode {config.strip!r}; "
                         f"expected one of: {', '.join(STRIP_MODES)}")
    report.strip_mode = config.strip
    if config.strip == "off":
        return
    from repro.lir.passes import globaldce
    from repro.target import get_target

    with report.phase("strip"):
        stats = globaldce.strip_program(result.machine_modules, entry,
                                        get_target(config.target))
    result.pass_reports["strip"] = {
        "functions_removed": stats.functions_removed,
        "bytes_removed": stats.bytes_removed,
        "per_module": {name: dict(counts)
                       for name, counts in stats.per_module.items()},
    }
    _note_strip_stats(result, config, report)
    metrics = obs_trace.metrics()
    if metrics.enabled:
        metrics.set_gauge("strip.functions_removed", stats.functions_removed)
        metrics.set_gauge("strip.bytes_removed", stats.bytes_removed)
        metrics.set_gauge("strip.modules_touched", len(stats.per_module))


def build_lir_modules(lir_modules: List[lir_ir.LIRModule],
                      config: BuildConfig,
                      registry: Optional[TypeRegistry] = None,
                      program: Optional[ProgramInfo] = None,
                      report: Optional[BuildReport] = None,
                      module_keys: Optional[List[str]] = None,
                      cache: Optional[ModuleCache] = None) -> BuildResult:
    """Lower already-optimized LIR modules to a linked binary.

    With ``module_keys``/``cache`` (the incremental build path), the
    default pipeline also caches each module's *machine code* under
    :func:`repro.pipeline.cache.llc_key`, so modules whose LIR key and
    llc-relevant config are unchanged skip inlining/merging/llc entirely
    and only re-link.
    """
    registry = registry or (TypeRegistry.from_program(program) if program
                            else TypeRegistry())
    report = report if report is not None else BuildReport(
        num_modules=len(lir_modules), target=str(config.target))
    if not report.target:
        report.target = str(config.target)
    report.merge_mode = config.merge_mode
    entry = None
    for module in lir_modules:
        if module.entry_symbol:
            entry = module.entry_symbol
    result = BuildResult(image=None, program=program,  # type: ignore[arg-type]
                         registry=registry, config=config,
                         machine_modules=[], report=report)
    checkpoint(config.cancel_scope, "backend start")
    if config.pipeline == "wholeprogram":
        with report.phase("llvm-link"):
            merged = link_modules(
                lir_modules,
                LinkOptions(gc_metadata_mode=config.gc_metadata_mode,
                            data_layout=config.data_layout))
        with report.phase("opt"):
            # Whole-program opt over the merged IR, with per-pass spans
            # and instruction/function deltas recorded by the manager.
            reports = PassManager(_wholeprogram_passes(config),
                                  scope="wholeprogram").run(merged)
            for name in ("inliner", "mergefunctions", "fmsa", "optmerge"):
                if name in reports:
                    result.pass_reports[name] = reports[name]
            _note_merge_stats(result, config, report)
        result.phase_work["llvm-link"] = merged.num_instrs
        result.phase_work["opt"] = merged.num_instrs
        # llc lowers the pre-outlining program; record its work before the
        # outliner shrinks it (the build-time model depends on this).
        result.phase_work["llc"] = merged.num_instrs
        checkpoint(config.cancel_scope, "llc")
        with report.phase("llc"):
            llc_out = run_llc(merged, LLCOptions(
                outline_rounds=config.outline_rounds,
                collect_stats=config.collect_outline_stats,
                target=config.target))
        result.machine_modules = [llc_out.module]
        result.outline_stats = llc_out.outline_stats
    elif config.pipeline == "default":
        n = len(lir_modules)
        llc_keys: Optional[List[str]] = None
        llc_hits: Dict[int, object] = {}
        if (cache is not None and module_keys is not None
                and config.incremental_llc and len(module_keys) == n):
            llc_fp = config.llc_fingerprint()
            llc_keys = [cache_mod.llc_key(mk, llc_fp) for mk in module_keys]
            with report.phase("llc-cache-probe"):
                for i, key in enumerate(llc_keys):
                    llc_entry = cache.load(key)
                    if _valid_llc_entry(llc_entry):
                        llc_hits[i] = llc_entry["llc_out"]
            report.llc_cache_hits = len(llc_hits)
            report.llc_cache_misses = n - len(llc_hits)
        missed = [i for i in range(n) if i not in llc_hits]
        miss_modules = [lir_modules[i] for i in missed]
        merge_stack = _merge_passes(config, per_module=True)
        if (config.enable_inliner or merge_stack) and miss_modules:
            with report.phase("opt"):
                if config.enable_inliner:
                    from repro.lir.passes import inliner

                    for module in miss_modules:
                        inliner.run_on_module(module)
                for name, _ in merge_stack:
                    result.pass_reports.setdefault(name, {})
                for module in miss_modules:
                    # Merging is per-module here (mirroring per-module llc);
                    # the manager still records spans and deltas per run.
                    reports = PassManager(merge_stack,
                                          scope="module").run(module)
                    for name, pass_report in reports.items():
                        agg = result.pass_reports[name]
                        for key, value in dict(pass_report).items():
                            agg[key] = agg.get(key, 0) + value
                _note_merge_stats(result, config, report)
        checkpoint(config.cancel_scope, "llc")
        with report.phase("llc"):
            workers = parallel.resolve_workers(config.workers)
            outputs = parallel.llc_modules(
                miss_modules, config.outline_rounds,
                config.collect_outline_stats, workers,
                plan=config.fault_plan, report=report,
                chunk_timeout=config.chunk_timeout,
                max_retries=config.max_chunk_retries,
                retry_backoff=config.retry_backoff,
                fail_fast=config.fail_fast,
                target=config.target,
                cancel_scope=config.cancel_scope,
                persistent=config.persistent_workers)
            if outputs is None:  # workers <= 1: the serial path by design
                outputs = [run_llc(module, LLCOptions(
                    outline_rounds=config.outline_rounds,
                    collect_stats=config.collect_outline_stats,
                    outlined_name_prefix=f"{module.name}::",
                    target=config.target))
                    for module in miss_modules]
            if llc_keys is not None:
                for j, i in enumerate(missed):
                    cache.store(llc_keys[i], {"llc_out": outputs[j]})
            by_index = dict(zip(missed, outputs))
            by_index.update(llc_hits)
            for i in range(n):
                llc_out = by_index[i]
                result.machine_modules.append(llc_out.module)
                result.outline_stats.extend(llc_out.outline_stats)
        result.phase_work["llc"] = sum(
            m.num_instrs for m in result.machine_modules)
    else:
        raise ReproError(f"unknown pipeline {config.pipeline!r}")
    checkpoint(config.cancel_scope, "link")
    _strip_stage(result, config, report, entry)
    layout_profile = None
    if config.profile_path is not None:
        # Typed ProfileError on junk; loaded once here so the linker (which
        # cannot import repro.sim without a cycle) just sees edge weights.
        from repro.sim.profile import LayoutProfile

        layout_profile = LayoutProfile.load(config.profile_path)
    with report.phase("link"):
        result.image = link_binary(result.machine_modules, entry_symbol=entry,
                                   outlined_layout=config.outlined_layout,
                                   target=config.target,
                                   layout=config.layout,
                                   layout_profile=layout_profile,
                                   layout_seed=config.layout_seed)
    result.phase_work["link"] = len(result.image.instrs)
    return result


# --- cached / parallel frontend ----------------------------------------------


@dataclass
class _FrontendOutput:
    lir_modules: List[lir_ir.LIRModule]
    program: Optional[ProgramInfo]
    registry: TypeRegistry
    #: Per-module cache keys (None when caching is off).
    module_keys: Optional[List[str]] = None
    #: Per-module *content* identities (function keys + globals; see
    #: :func:`repro.pipeline.fncache.module_content_key`), used as the
    #: llc cache base so downstream modules whose LIR did not change keep
    #: their machine code when an upstream module's source moves.  None
    #: entries fall back to the module key.
    llc_base_keys: Optional[List[Optional[str]]] = None


def _module_layouts(program: ProgramInfo) -> Dict[str, List[ClassLayout]]:
    """Class layouts grouped by defining module (cache payload)."""
    grouped: Dict[str, List[ClassLayout]] = {}
    for info in program.classes_by_qualified_name.values():
        decl = info.decl
        refs = [f.index for f in decl.fields if f.ty.is_ref()]
        grouped.setdefault(info.module, []).append(
            ClassLayout(type_id=decl.type_id, name=decl.qualified_name,
                        num_fields=len(decl.fields),
                        ref_field_indices=refs))
    return grouped


def _valid_module_entry(entry: object) -> bool:
    return (isinstance(entry, dict)
            and isinstance(entry.get("lir"), lir_ir.LIRModule)
            and isinstance(entry.get("layouts"), list))


def _assemble_module(sm, signatures, hits) -> Tuple[lir_ir.LIRModule, int]:
    """Build one module's optimized LIR from cached + fresh functions.

    Globals are lowered and the string-intern table pre-populated in
    whole-module order first, so the freshly lowered functions agree with
    the cached ones on ``.strN`` numbering; the fresh functions are then
    optimized through a scratch module — every -Osize cleanup pass is
    function-local, so this is bit-identical to optimizing the whole
    module (the function-cache determinism tests pin that).
    """
    gen = ModuleIRGen(sm, signatures)
    gen.lower_globals()
    gen.preintern_strings()
    fresh: List[lir_ir.LIRFunction] = []
    for silfn in sm.functions:
        cached_fn = hits.get(silfn.symbol)
        if cached_fn is not None:
            gen.module.functions.append(cached_fn)
        else:
            fresh.append(gen.lower_function(silfn))
    if fresh:
        scratch = lir_ir.LIRModule(name=sm.name)
        scratch.functions = fresh
        optimize_module(scratch)
    return gen.module, len(fresh)


def _apply_sil_passes(sil_modules, config: BuildConfig) -> None:
    if config.enable_arc_opt:
        from repro.sil.passes import arc_opt

        for sm in sil_modules:
            arc_opt.run_on_module(sm)
    if config.enable_sil_outlining:
        from repro.sil.passes import outline as sil_outline

        signatures = sil_outline.build_signatures(sil_modules)
        for sm in sil_modules:
            sil_outline.run_on_module(sm, signatures=signatures)


@dataclass
class _ProbeState:
    """Cheap per-module identity, computed before any entry is loaded:
    source hashes, cached (or freshly derived) metas, and the transitive
    module keys.  Enough to form the image key — so a fully-warm build
    can hit the whole-image entry without deserializing per-module LIR."""

    hashes: Dict[str, str]
    metas: Dict[str, "cache_mod.ModuleMeta"]
    keys: List[str]
    parsed: Dict[str, object]


def _probe_modules(items: List[Tuple[str, str]], config: BuildConfig,
                   cache: ModuleCache, report: BuildReport) -> _ProbeState:
    parsed: Dict[str, object] = {}
    metas: Dict[str, cache_mod.ModuleMeta] = {}
    hashes = {name: cache_mod.fingerprint_source(text)
              for name, text in items}
    with report.phase("cache-probe"):
        for name, text in items:
            meta = cache.load(cache_mod.meta_key(hashes[name]))
            if not isinstance(meta, cache_mod.ModuleMeta):
                parsed[name] = parse_module(text, name)
                meta = cache_mod.meta_from_ast(parsed[name])
                cache.store(cache_mod.meta_key(hashes[name]), meta)
            metas[name] = meta
        keys = cache_mod.module_keys(
            items, hashes, metas, config.frontend_fingerprint(),
            whole_program_coupling=config.enable_sil_outlining)
    return _ProbeState(hashes=hashes, metas=metas, keys=keys, parsed=parsed)


def _frontend(items: List[Tuple[str, str]], config: BuildConfig,
              cache: Optional[ModuleCache],
              report: BuildReport,
              probe: Optional[_ProbeState] = None) -> _FrontendOutput:
    """Sources -> optimized per-module LIR, using the cache and workers."""
    names = [name for name, _ in items]
    parsed: Dict[str, object] = {}
    keys: Optional[List[str]] = None
    cached: Dict[str, dict] = {}

    if cache is not None:
        if probe is None:
            probe = _probe_modules(items, config, cache, report)
        parsed = probe.parsed
        keys = probe.keys
        with report.phase("cache-probe"):
            for name, key in zip(names, keys):
                entry = cache.load(key)
                if _valid_module_entry(entry):
                    cached[name] = entry  # type: ignore[assignment]
        report.cache_hits = len(cached)
        report.cache_misses = len(names) - len(cached)

    misses = [name for name in names if name not in cached]
    if cache is not None and not misses:
        # Every module hit: reassemble the registry from the cached class
        # layouts and skip parse/sema/SILGen entirely.
        registry = TypeRegistry()
        lir_modules = []
        for name in names:
            entry = cached[name]
            for layout in entry["layouts"]:
                registry.register(layout)
            lir_modules.append(entry["lir"])
        return _FrontendOutput(
            lir_modules=lir_modules, program=None, registry=registry,
            module_keys=keys,
            llc_base_keys=[cached[name].get("fnsig") for name in names])

    # At least one module must be compiled: whole-program sema is required
    # (type ids and closure numbering span modules), and SILGen runs on all
    # modules exactly as in a cold build so a partially-warm build cannot
    # diverge from it.
    with report.phase("parse"):
        for name, text in items:
            if name not in parsed:
                parsed[name] = parse_module(text, name)
    with report.phase("sema"):
        program = analyze_program([parsed[name] for name in names])
    with report.phase("silgen"):
        sil_modules = generate_sil(program)
        _apply_sil_passes(sil_modules, config)
    signatures = {fn.symbol: fn
                  for sm in sil_modules for fn in sm.functions}
    sil_by_name = {sm.name: sm for sm in sil_modules}

    # Function level: inside each module-level miss, probe for per-function
    # LIR so a one-function edit relowers one function.  The keys are
    # self-validating (own SIL + callee signatures + the module's intern
    # table; see :mod:`repro.pipeline.fncache`), so they survive the module
    # key changing.
    fn_hits: Dict[str, Dict[str, lir_ir.LIRFunction]] = {}
    fn_key_map: Dict[str, List[Tuple[object, str]]] = {}
    content_keys: Dict[str, str] = {}
    use_fn_cache = cache is not None and config.incremental_functions
    if use_fn_cache:
        with report.phase("fn-cache-probe"):
            ffp = config.frontend_fingerprint()
            total_fns = 0
            for name in misses:
                pairs = fncache.module_function_keys(
                    sil_by_name[name], signatures, ffp)
                fn_key_map[name] = pairs
                content_keys[name] = fncache.module_content_key(
                    sil_by_name[name], [key for _, key in pairs])
                total_fns += len(pairs)
                hits: Dict[str, lir_ir.LIRFunction] = {}
                for silfn, key in pairs:
                    entry = cache.load(key)
                    if isinstance(entry, lir_ir.LIRFunction):
                        hits[silfn.symbol] = entry
                if hits:
                    fn_hits[name] = hits
            for name in names:
                if name in cached:
                    fnsig = cached[name].get("fnsig")
                    if isinstance(fnsig, str):
                        content_keys[name] = fnsig
        report.fn_cache_hits = sum(len(h) for h in fn_hits.values())
        report.fn_cache_misses = total_fns - report.fn_cache_hits

    # Modules with zero function hits take the whole-module path (which
    # can fan out across workers); partially-hit modules are assembled
    # function by function in the parent.
    full_misses = [name for name in misses if name not in fn_hits]
    partial = [name for name in misses if name in fn_hits]

    with report.phase("lower"):
        workers = parallel.resolve_workers(config.workers)
        lowered = None
        if workers > 1 and len(full_misses) > 1:
            lowered = parallel.lower_modules(
                sil_by_name, signatures, full_misses, workers,
                plan=config.fault_plan, report=report,
                chunk_timeout=config.chunk_timeout,
                max_retries=config.max_chunk_retries,
                retry_backoff=config.retry_backoff,
                fail_fast=config.fail_fast,
                cancel_scope=config.cancel_scope,
                persistent=config.persistent_workers)
        if lowered is None:
            lowered = {}
            for name in full_misses:
                module = ModuleIRGen(sil_by_name[name], signatures).run()
                optimize_module(module)
                lowered[name] = module
        recompiled = sum(len(sil_by_name[name].functions)
                         for name in full_misses)
        for name in partial:
            module, n_fresh = _assemble_module(
                sil_by_name[name], signatures, fn_hits[name])
            lowered[name] = module
            recompiled += n_fresh
    report.functions_recompiled = recompiled

    if cache is not None and keys is not None:
        with report.phase("cache-store"):
            layouts = _module_layouts(program)
            for name, key in zip(names, keys):
                if name in lowered:
                    entry = {"lir": lowered[name],
                             "layouts": layouts.get(name, [])}
                    if name in content_keys:
                        entry["fnsig"] = content_keys[name]
                    cache.store(key, entry)
            if use_fn_cache:
                for name in misses:
                    hits = fn_hits.get(name, {})
                    by_symbol = {fn.symbol: fn
                                 for fn in lowered[name].functions}
                    for silfn, key in fn_key_map[name]:
                        if silfn.symbol not in hits:
                            cache.store(key, by_symbol[silfn.symbol])
        report.cache_stores = cache.stats.stores

    lir_modules = [cached[name]["lir"] if name in cached else lowered[name]
                   for name in names]
    return _FrontendOutput(lir_modules=lir_modules, program=program,
                           registry=TypeRegistry.from_program(program),
                           module_keys=keys,
                           llc_base_keys=[content_keys.get(name)
                                          for name in names]
                           if content_keys else None)


def _valid_llc_entry(entry: object) -> bool:
    from repro.backend.llc import LLCResult

    return (isinstance(entry, dict)
            and isinstance(entry.get("llc_out"), LLCResult))


def _valid_image_entry(entry: object) -> bool:
    return (isinstance(entry, dict)
            and isinstance(entry.get("image"), BinaryImage)
            and isinstance(entry.get("layouts"), list))


def _machine_modules_loader(cache: ModuleCache, mm_key: str):
    """Deferred load of the sidecar machine listing for an image hit.

    An entry evicted or torn *after* the hit degrades to an empty listing
    rather than failing a build whose binary is already verified."""

    def _load() -> List[MachineModule]:
        entry = cache.load(mm_key)
        if (isinstance(entry, dict)
                and isinstance(entry.get("machine_modules"), list)):
            return entry["machine_modules"]
        return []

    return _load


def build_program(sources: SourceModules,
                  config: Optional[BuildConfig] = None) -> BuildResult:
    """Full build: Swiftlet sources -> linked binary image."""
    config = config or BuildConfig()
    items = (list(sources.items()) if isinstance(sources, dict)
             else [(name, text) for name, text in sources])
    with obs_trace.span("build", kind="build", pipeline=config.pipeline,
                        num_modules=len(items),
                        outline_rounds=config.outline_rounds,
                        target=config.target):
        result = _build_program(items, config)
    _record_size_metrics(result)
    return result


def _record_size_metrics(result: BuildResult) -> None:
    metrics = obs_trace.metrics()
    if not metrics.enabled:
        return
    sizes = result.sizes
    metrics.set_gauge("image.text_bytes", sizes.text_bytes)
    metrics.set_gauge("image.data_bytes", sizes.data_bytes)
    metrics.set_gauge("image.binary_bytes", sizes.binary_bytes)
    metrics.set_gauge("image.num_functions", sizes.num_functions)
    metrics.set_gauge("image.num_instrs", sizes.num_instrs)


def _fresh_report(num_modules: int, config: BuildConfig) -> BuildReport:
    return BuildReport(num_modules=num_modules,
                       workers=parallel.resolve_workers(config.workers),
                       cache_enabled=config.incremental,
                       target=str(config.target),
                       merge_mode=config.merge_mode)


def _image_cache_probe(num_modules: int, config: BuildConfig,
                       cache: ModuleCache, report: BuildReport,
                       img_key: str) -> Optional[BuildResult]:
    """The warm whole-image fast path: a valid image entry (plus its
    machine-listing sidecar) short-circuits the entire build."""
    entry = cache.load(img_key)
    mm_key = cache_mod.machine_modules_key(img_key)
    if not (_valid_image_entry(entry) and cache.contains(mm_key)):
        return None
    # A cache-restored image gets re-verified every time: the pickle on
    # disk, not the linker's output, is what a torn write or bit flip
    # would have damaged.
    _verify(entry["image"], config, report)
    report.image_cache_hit = True
    # The image key covers every module key, so each module is warm by
    # construction.
    report.cache_hits = num_modules
    report.cache_misses = 0
    registry = TypeRegistry()
    for layout in entry["layouts"]:
        registry.register(layout)
    _note_cache_recoveries(cache, report)
    _record_cache_metrics(cache, report)
    cached_result = BuildResult(
        image=entry["image"], program=None,
        registry=registry, config=config,
        machine_modules=_machine_modules_loader(cache, mm_key),
        outline_stats=entry.get("outline_stats", []),
        pass_reports=entry.get("pass_reports", {}),
        phase_work=entry.get("phase_work", {}),
        report=report)
    _note_merge_stats(cached_result, config, report)
    _note_strip_stats(cached_result, config, report)
    return cached_result


def _backend_from_frontend(fe: _FrontendOutput, config: BuildConfig,
                           cache: Optional[ModuleCache],
                           report: BuildReport,
                           img_key: Optional[str]) -> BuildResult:
    """The per-target back half: target LIR passes, isel/regalloc via llc,
    outlining, strip, layout, link, verify, image-cache store."""
    llc_bases = fe.module_keys
    if fe.module_keys is not None and fe.llc_base_keys is not None:
        # Prefer the content identity; a module with no recorded content
        # key (older entry shape, function cache off) falls back to its
        # source-transitive module key.
        llc_bases = [base if isinstance(base, str) else mk
                     for base, mk in zip(fe.llc_base_keys, fe.module_keys)]
    result = build_lir_modules(fe.lir_modules, config, registry=fe.registry,
                               program=fe.program, report=report,
                               module_keys=llc_bases, cache=cache)
    _verify(result.image, config, report)
    if cache is not None and img_key is not None:
        with report.phase("cache-store"):
            cache.store(img_key, {
                "image": result.image,
                "outline_stats": result.outline_stats,
                "pass_reports": result.pass_reports,
                "phase_work": result.phase_work,
                # Class layouts ride along so an image hit can rebuild the
                # runtime TypeRegistry without touching module entries.
                "layouts": sorted(result.registry._classes.values(),
                                  key=lambda lo: lo.type_id),
            })
            # The heavy machine listing lives in a sidecar entry loaded
            # only on demand (see machine_modules_key).
            cache.store(cache_mod.machine_modules_key(img_key),
                        {"machine_modules": result.machine_modules})
        report.cache_stores = cache.stats.stores
    if cache is not None:
        _note_cache_recoveries(cache, report)
    _record_cache_metrics(cache, report)
    return result


def _build_program(items: List[Tuple[str, str]],
                   config: BuildConfig) -> BuildResult:
    report = _fresh_report(len(items), config)
    cache = (ModuleCache(config.cache_dir, fault_plan=config.fault_plan)
             if config.incremental else None)

    checkpoint(config.cancel_scope, "frontend")
    probe = img_key = None
    if cache is not None:
        # Probe the whole-image entry *before* loading any per-module LIR:
        # its key needs only source hashes and metas, so a fully-warm
        # rebuild costs hashing + one image load, not O(modules) pickles.
        probe = _probe_modules(items, config, cache, report)
        img_key = cache_mod.image_key(probe.keys,
                                      config.backend_fingerprint())
        hit = _image_cache_probe(len(items), config, cache, report, img_key)
        if hit is not None:
            return hit

    fe = _frontend(items, config, cache, report, probe=probe)
    return _backend_from_frontend(fe, config, cache, report, img_key)


# --- the frontend/backend seam and app-thinning slicing ----------------------


@dataclass
class ProgramArtifact:
    """The serializable seam between the two pipeline halves.

    Everything the target-independent front half produced (parse -> sema
    -> SILGen -> SIL passes -> IRGen -> per-module -Osize LIR cleanups),
    content-addressed by :attr:`fingerprint` — a digest of the source
    identities plus :meth:`BuildConfig.frontend_fingerprint`, so two
    artifacts with equal fingerprints are interchangeable.

    One artifact feeds N per-target back halves
    (:func:`compile_backend`); the backend mutates LIR in place
    (inlining, merging, llvm-link), so each consumer gets its own deep
    copy via :meth:`lir_copy` and the artifact itself stays pristine.
    """

    lir_modules: List[lir_ir.LIRModule]
    program: Optional[ProgramInfo]
    registry: TypeRegistry
    #: Content identity: source hashes + frontend fingerprint.
    fingerprint: str
    #: Per-module cache keys (None when caching was off; lets the backend
    #: reuse the llc and image caches exactly like a one-shot build).
    module_keys: Optional[List[str]] = None
    llc_base_keys: Optional[List[Optional[str]]] = None
    #: Frontend phase walls and cache telemetry, copied into every
    #: consuming backend's report.
    frontend_report: BuildReport = field(default_factory=BuildReport)

    def lir_copy(self) -> List[lir_ir.LIRModule]:
        """A deep copy of the LIR for one backend consumer.

        The pickle round trip is the same mechanism the module cache
        uses, which the determinism harness pins bit-identical to
        consuming freshly lowered LIR.
        """
        return pickle.loads(pickle.dumps(self.lir_modules))


def _artifact_fingerprint(items: List[Tuple[str, str]],
                          config: BuildConfig) -> str:
    h = hashlib.sha256()
    h.update(config.frontend_fingerprint().encode("utf-8"))
    h.update(b"|coupling=%d|" % int(config.enable_sil_outlining))
    for name, text in items:
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(cache_mod.fingerprint_source(text).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _items(sources: SourceModules) -> List[Tuple[str, str]]:
    return (list(sources.items()) if isinstance(sources, dict)
            else [(name, text) for name, text in sources])


def compile_frontend(sources: SourceModules,
                     config: Optional[BuildConfig] = None) -> ProgramArtifact:
    """Run the target-independent front half once, to a reusable artifact.

    Honours the same cache and worker knobs as :func:`build_program`
    (``config.target`` is irrelevant here — nothing in the front half
    consults it, which is what makes the artifact shareable across
    targets).
    """
    config = config or BuildConfig()
    items = _items(sources)
    report = _fresh_report(len(items), config)
    report.target = ""
    cache = (ModuleCache(config.cache_dir, fault_plan=config.fault_plan)
             if config.incremental else None)
    checkpoint(config.cancel_scope, "frontend")
    with obs_trace.span("frontend", kind="build", num_modules=len(items)):
        fe = _frontend(items, config, cache, report)
    return ProgramArtifact(
        lir_modules=fe.lir_modules, program=fe.program, registry=fe.registry,
        fingerprint=_artifact_fingerprint(items, config),
        module_keys=fe.module_keys, llc_base_keys=fe.llc_base_keys,
        frontend_report=report)


def compile_backend(artifact: ProgramArtifact,
                    config: Optional[BuildConfig] = None) -> BuildResult:
    """Consume a :class:`ProgramArtifact` through one target's back half.

    The artifact is never mutated — call this once per target.  With
    ``config.incremental`` and an artifact built with caching on, the
    per-target image and llc caches work exactly as in a one-shot build
    (a warm target skips its backend entirely).
    """
    config = config or BuildConfig()
    report = BuildReport.from_dict(artifact.frontend_report.as_dict())
    report.target = str(config.target)
    report.merge_mode = config.merge_mode
    report.workers = parallel.resolve_workers(config.workers)
    report.cache_enabled = config.incremental
    cache = (ModuleCache(config.cache_dir, fault_plan=config.fault_plan)
             if config.incremental else None)
    img_key = None
    with obs_trace.span("backend", kind="build", target=config.target):
        if cache is not None and artifact.module_keys is not None:
            img_key = cache_mod.image_key(artifact.module_keys,
                                          config.backend_fingerprint())
            hit = _image_cache_probe(len(artifact.lir_modules), config,
                                     cache, report, img_key)
            if hit is not None:
                _record_size_metrics(hit)
                return hit
        fe = _FrontendOutput(
            lir_modules=artifact.lir_copy(), program=artifact.program,
            registry=artifact.registry, module_keys=artifact.module_keys,
            llc_base_keys=artifact.llc_base_keys)
        checkpoint(config.cancel_scope, "backend")
        result = _backend_from_frontend(fe, config, cache, report, img_key)
    _record_size_metrics(result)
    return result


#: BuildReport fields the pending slices copy from the shared frontend run
#: (phase walls are merged separately).
_FRONTEND_REPORT_FIELDS = (
    "cache_hits", "cache_misses", "cache_stores", "fn_cache_hits",
    "fn_cache_misses", "functions_recompiled",
)


def build_targets(sources: SourceModules,
                  targets: Sequence[str],
                  config: Optional[BuildConfig] = None
                  ) -> Dict[str, BuildResult]:
    """App-thinning slicing: one frontend invocation, one slice per target.

    Returns ``{target name: BuildResult}`` in the order given.  The front
    half (parse -> sema -> SILGen -> SIL passes -> IRGen -> -Osize LIR)
    runs **exactly once**; each target then consumes its own deep copy of
    the LIR through the back half, so every slice is bit-identical to a
    standalone single-target build (the slicing tests pin this from trace
    spans and golden fixtures).  ``config.target`` is ignored in favour
    of *targets*; all other knobs apply to every slice.

    With caching on, each slice probes its own whole-image entry first —
    a fully warm multi-target build never runs the frontend at all.
    """
    config = config or BuildConfig()
    names = list(targets)
    if not names:
        raise ReproError("build_targets needs at least one target")
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate targets: {', '.join(names)}")
    from repro.target import available_targets

    unknown = [n for n in names if n not in available_targets()]
    if unknown:
        raise ReproError(
            f"unknown target(s): {', '.join(unknown)} (available: "
            f"{', '.join(available_targets())})")
    items = _items(sources)
    configs = {name: (config if name == config.target
                      else replace(config, target=name))
               for name in names}
    reports = {name: _fresh_report(len(items), configs[name])
               for name in names}
    results: Dict[str, BuildResult] = {}
    with obs_trace.span("build-sliced", kind="build", num_modules=len(items),
                        targets=",".join(names),
                        pipeline=config.pipeline,
                        outline_rounds=config.outline_rounds):
        cache = (ModuleCache(config.cache_dir, fault_plan=config.fault_plan)
                 if config.incremental else None)
        checkpoint(config.cancel_scope, "frontend")
        probe = None
        img_keys: Dict[str, str] = {}
        if cache is not None:
            # One probe serves every slice: module keys depend only on
            # sources and the frontend fingerprint, never the target.
            probe = _probe_modules(items, config, cache, reports[names[0]])
            for name in names:
                img_keys[name] = cache_mod.image_key(
                    probe.keys, configs[name].backend_fingerprint())
        pending = []
        for name in names:
            if cache is not None:
                hit = _image_cache_probe(len(items), configs[name], cache,
                                         reports[name], img_keys[name])
                if hit is not None:
                    results[name] = hit
                    continue
            pending.append(name)
        if pending:
            first = pending[0]
            fe_report = reports[first]
            with obs_trace.span("frontend", kind="build",
                                num_modules=len(items)):
                fe = _frontend(items, configs[first], cache, fe_report,
                               probe=probe)
            for name in pending[1:]:
                rep = reports[name]
                rep.phase_wall.update(fe_report.phase_wall)
                for fld in _FRONTEND_REPORT_FIELDS:
                    setattr(rep, fld, getattr(fe_report, fld))
                rep.note(f"frontend shared with target {first}")
            # Each slice's backend mutates LIR in place; serialize once,
            # give every slice after the first its own deep copy (the
            # first consumes the originals, exactly like a single-target
            # build).
            payloads = {first: fe.lir_modules}
            if len(pending) > 1:
                blob = pickle.dumps(fe.lir_modules)
                for name in pending[1:]:
                    payloads[name] = pickle.loads(blob)
            for name in pending:
                fe_t = _FrontendOutput(
                    lir_modules=payloads[name], program=fe.program,
                    registry=fe.registry, module_keys=fe.module_keys,
                    llc_base_keys=fe.llc_base_keys)
                checkpoint(config.cancel_scope, f"backend:{name}")
                with obs_trace.span("backend", kind="build", target=name):
                    results[name] = _backend_from_frontend(
                        fe_t, configs[name], cache, reports[name],
                        img_keys.get(name))
        for name in names:
            _record_size_metrics(results[name])
    return {name: results[name] for name in names}


def _verify(image: BinaryImage, config: BuildConfig,
            report: BuildReport) -> None:
    if not config.verify_image:
        return
    with report.phase("verify"):
        verify_image(image, target=config.target)
    report.image_verified = True


def _record_cache_metrics(cache: Optional[ModuleCache],
                          report: BuildReport) -> None:
    """Fold the cache's own :class:`CacheStats` into the build metrics
    (all-zero when caching is off, so the metric set is stable)."""
    metrics = obs_trace.metrics()
    if not metrics.enabled:
        return
    stats = cache.stats if cache is not None else cache_mod.CacheStats()
    metrics.set_gauge("cache.enabled", int(cache is not None))
    metrics.set_gauge("cache.hits", stats.hits)
    metrics.set_gauge("cache.misses", stats.misses)
    metrics.set_gauge("cache.stores", stats.stores)
    metrics.set_gauge("cache.errors", stats.errors)
    metrics.set_gauge("cache.quarantined", stats.quarantined)
    metrics.set_gauge("cache.torn_writes", stats.torn_writes)
    metrics.set_gauge("cache.lock_failures", stats.lock_failures)
    metrics.set_gauge("cache.evictions", stats.evictions)
    metrics.set_gauge("cache.evicted_bytes", stats.evicted_bytes)
    metrics.set_gauge("cache.quarantine_reclaimed", stats.quarantine_reclaimed)
    metrics.set_gauge("cache.image_hit", int(report.image_cache_hit))
    metrics.set_gauge("cache.fn_hits", report.fn_cache_hits)
    metrics.set_gauge("cache.fn_misses", report.fn_cache_misses)
    metrics.set_gauge("cache.llc_hits", report.llc_cache_hits)
    metrics.set_gauge("cache.llc_misses", report.llc_cache_misses)
    metrics.set_gauge("build.functions_recompiled",
                      report.functions_recompiled)


def _note_cache_recoveries(cache: ModuleCache, report: BuildReport) -> None:
    stats = cache.stats
    if stats.quarantined:
        report.degrade("cache-quarantine", phase="cache",
                       detail=f"{stats.quarantined} corrupt entr"
                              f"{'y' if stats.quarantined == 1 else 'ies'} "
                              f"quarantined")
    if stats.errors > stats.quarantined or stats.torn_writes:
        failed = stats.errors - stats.quarantined + stats.torn_writes
        report.degrade("cache-store-failed", phase="cache",
                       detail=f"{failed} cache operation(s) did not "
                              f"complete; entries will be rebuilt")


def run_build(result: BuildResult, timing=None, entry_symbol=None,
              max_steps: int = 100_000_000, check_leaks: bool = True,
              profile=None):
    """Execute a build's binary in the interpreter.

    Pass a :class:`~repro.sim.profile.ProfileCollector` as *profile* to
    record the run's call graph for profile-guided layout.
    """
    from repro.sim.cpu import run_binary

    return run_binary(result.image, registry=result.registry, timing=timing,
                      entry_symbol=entry_symbol, max_steps=max_steps,
                      check_leaks=check_leaks, profile=profile)
