"""Build drivers for the default (Figure 2) and whole-program (Figure 10)
iOS pipelines.

``build_program`` is the main entry: source modules in, linked
:class:`BinaryImage` out, plus the artifacts each experiment needs (LIR,
machine modules, outlining statistics, size report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backend.llc import LLCOptions, run_llc
from repro.errors import ReproError
from repro.frontend.parser import parse_module
from repro.frontend.sema import ProgramInfo, analyze_program
from repro.isa.instructions import MachineModule
from repro.lir import ir as lir_ir
from repro.lir.irgen import generate_lir
from repro.lir.linker import LinkOptions, link_modules
from repro.lir.passes import constprop, dce, globaldce, mem2reg, simplifycfg
from repro.link.binary import BinaryImage
from repro.link.linker import link_binary
from repro.pipeline.config import BuildConfig
from repro.runtime.objects import TypeRegistry
from repro.sil.silgen import generate_sil

SourceModules = Union[Dict[str, str], Sequence[Tuple[str, str]]]


@dataclass
class SizeReport:
    text_bytes: int = 0
    data_bytes: int = 0
    metadata_bytes: int = 0
    binary_bytes: int = 0
    num_functions: int = 0
    num_instrs: int = 0

    @classmethod
    def from_image(cls, image: BinaryImage) -> "SizeReport":
        return cls(
            text_bytes=image.text_bytes,
            data_bytes=image.data_bytes,
            metadata_bytes=image.metadata_bytes,
            binary_bytes=image.binary_bytes,
            num_functions=image.num_functions,
            num_instrs=len(image.instrs),
        )


@dataclass
class BuildResult:
    image: BinaryImage
    program: Optional[ProgramInfo]
    registry: TypeRegistry
    config: BuildConfig
    machine_modules: List[MachineModule]
    outline_stats: List[object] = field(default_factory=list)
    #: Baseline-pass observations (Table I): pass name -> metric dict.
    pass_reports: Dict[str, dict] = field(default_factory=dict)
    #: Per-phase work counts for the build-time model (§VII-C).
    phase_work: Dict[str, int] = field(default_factory=dict)

    @property
    def sizes(self) -> SizeReport:
        return SizeReport.from_image(self.image)


def frontend_to_lir(sources: SourceModules) -> Tuple[ProgramInfo,
                                                     List[lir_ir.LIRModule]]:
    """Parse + sema + SILGen + IRGen + per-module -Osize cleanups."""
    items = sources.items() if isinstance(sources, dict) else sources
    modules = [parse_module(text, name) for name, text in items]
    program = analyze_program(modules)
    sil_modules = generate_sil(program)
    lir_modules = generate_lir(sil_modules)
    for module in lir_modules:
        optimize_module(module)
    return program, lir_modules


def optimize_module(module: lir_ir.LIRModule) -> None:
    """The standard -Osize scalar cleanup pipeline (opt analog)."""
    mem2reg.run_on_module(module)
    constprop.run_on_module(module)
    dce.run_on_module(module)
    simplifycfg.run_on_module(module)
    constprop.run_on_module(module)
    dce.run_on_module(module)


def build_lir_modules(lir_modules: List[lir_ir.LIRModule],
                      config: BuildConfig,
                      registry: Optional[TypeRegistry] = None,
                      program: Optional[ProgramInfo] = None) -> BuildResult:
    """Lower already-optimized LIR modules to a linked binary."""
    registry = registry or (TypeRegistry.from_program(program) if program
                            else TypeRegistry())
    entry = None
    for module in lir_modules:
        if module.entry_symbol:
            entry = module.entry_symbol
    result = BuildResult(image=None, program=program,  # type: ignore[arg-type]
                         registry=registry, config=config,
                         machine_modules=[])
    if config.pipeline == "wholeprogram":
        merged = link_modules(
            lir_modules,
            LinkOptions(gc_metadata_mode=config.gc_metadata_mode,
                        data_layout=config.data_layout))
        if config.global_dce:
            globaldce.run_on_module(merged)
        if config.enable_inliner:
            from repro.lir.passes import inliner

            result.pass_reports["inliner"] = inliner.run_on_module(merged)
            if config.global_dce:
                globaldce.run_on_module(merged)
        # Whole-program opt over the merged IR.
        if config.enable_merge_functions:
            from repro.lir.passes import mergefunctions

            result.pass_reports["mergefunctions"] = (
                mergefunctions.run_on_module(merged))
        if config.enable_fmsa:
            from repro.lir.passes import fmsa

            result.pass_reports["fmsa"] = fmsa.run_on_module(merged)
        constprop.run_on_module(merged)
        dce.run_on_module(merged)
        simplifycfg.run_on_module(merged)
        result.phase_work["llvm-link"] = merged.num_instrs
        result.phase_work["opt"] = merged.num_instrs
        # llc lowers the pre-outlining program; record its work before the
        # outliner shrinks it (the build-time model depends on this).
        result.phase_work["llc"] = merged.num_instrs
        llc_out = run_llc(merged, LLCOptions(
            outline_rounds=config.outline_rounds,
            collect_stats=config.collect_outline_stats))
        result.machine_modules = [llc_out.module]
        result.outline_stats = llc_out.outline_stats
    elif config.pipeline == "default":
        if config.enable_inliner:
            from repro.lir.passes import inliner

            for module in lir_modules:
                inliner.run_on_module(module)
        for module in lir_modules:
            llc_out = run_llc(module, LLCOptions(
                outline_rounds=config.outline_rounds,
                collect_stats=config.collect_outline_stats,
                outlined_name_prefix=f"{module.name}::"))
            result.machine_modules.append(llc_out.module)
            result.outline_stats.extend(llc_out.outline_stats)
        result.phase_work["llc"] = sum(
            m.num_instrs for m in result.machine_modules)
    else:
        raise ReproError(f"unknown pipeline {config.pipeline!r}")
    result.image = link_binary(result.machine_modules, entry_symbol=entry,
                               outlined_layout=config.outlined_layout)
    result.phase_work["link"] = len(result.image.instrs)
    return result


def build_program(sources: SourceModules,
                  config: Optional[BuildConfig] = None) -> BuildResult:
    """Full build: Swiftlet sources -> linked binary image."""
    config = config or BuildConfig()
    program, lir_modules = _frontend_with_sil_passes(sources, config)
    registry = TypeRegistry.from_program(program)
    return build_lir_modules(lir_modules, config, registry=registry,
                             program=program)


def _frontend_with_sil_passes(sources: SourceModules,
                              config: BuildConfig):
    items = sources.items() if isinstance(sources, dict) else sources
    modules = [parse_module(text, name) for name, text in items]
    program = analyze_program(modules)
    sil_modules = generate_sil(program)
    if config.enable_arc_opt:
        from repro.sil.passes import arc_opt

        for sm in sil_modules:
            arc_opt.run_on_module(sm)
    if config.enable_sil_outlining:
        from repro.sil.passes import outline as sil_outline

        signatures = sil_outline.build_signatures(sil_modules)
        for sm in sil_modules:
            sil_outline.run_on_module(sm, signatures=signatures)
    lir_modules = generate_lir(sil_modules)
    for module in lir_modules:
        optimize_module(module)
    return program, lir_modules


def run_build(result: BuildResult, timing=None, entry_symbol=None,
              max_steps: int = 100_000_000, check_leaks: bool = True):
    """Execute a build's binary in the interpreter."""
    from repro.sim.cpu import run_binary

    return run_binary(result.image, registry=result.registry, timing=timing,
                      entry_symbol=entry_symbol, max_steps=max_steps,
                      check_leaks=check_leaks)
