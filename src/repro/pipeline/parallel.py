"""Process-parallel compilation helpers (fork-based).

Swiftlet sema is whole-program (type ids and closure symbols are numbered
across modules), so the unit of parallelism is the *per-module lowering*
that follows it: SIL -> LIR -> -Osize cleanups in the frontend, and
per-module ``llc`` in the default (Figure 2) pipeline.

Large read-only inputs (the SIL modules, the signature table, the LIR
modules) are handed to workers through a module-level global populated
*before* the pool is created: with the ``fork`` start method the children
inherit the parent's heap copy-on-write, so nothing but the small work
lists and the results ever crosses a pipe.  Anything that prevents that —
no ``fork`` on the platform, unpicklable results, a crashed worker — makes
the helpers return ``None`` and the caller falls back to the serial path,
which is always semantically identical (bit-identical output is enforced
by the determinism test harness).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

#: Read-only payload shared with forked workers (set before pool creation).
_SHARED: Dict[str, object] = {}


def resolve_workers(workers: int) -> int:
    """Translate the config knob into a worker count (0 = auto)."""
    if workers == 0:
        return max(1, multiprocessing.cpu_count() - 1)
    return max(1, workers)


def _run_forked(worker, chunks: Sequence[object],
                workers: int) -> Optional[List[object]]:
    """Map ``worker`` over ``chunks`` in a fork pool; None on any failure."""
    if not chunks:
        return []
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                mp_context=ctx) as pool:
            return list(pool.map(worker, chunks))
    except Exception:
        return None


# --- frontend: SIL -> optimized LIR ------------------------------------------


def _lower_chunk(names: List[str]) -> List[Tuple[str, object]]:
    from repro.lir.irgen import ModuleIRGen
    from repro.pipeline.build import optimize_module

    sil_by_name = _SHARED["sil_by_name"]
    signatures = _SHARED["signatures"]
    out = []
    for name in names:
        module = ModuleIRGen(sil_by_name[name], signatures).run()
        optimize_module(module)
        out.append((name, module))
    return out


def lower_modules(sil_by_name: Dict[str, object], signatures: Dict[str, object],
                  names: Sequence[str],
                  workers: int) -> Optional[Dict[str, object]]:
    """Lower ``names`` to optimized LIR across ``workers`` processes.

    Returns name -> LIRModule, or None if the parallel path failed (caller
    must fall back to serial lowering).
    """
    if workers <= 1:
        return None
    _SHARED["sil_by_name"] = sil_by_name
    _SHARED["signatures"] = signatures
    try:
        chunks = [list(names[i::workers]) for i in range(workers)]
        chunks = [c for c in chunks if c]
        results = _run_forked(_lower_chunk, chunks, workers)
    finally:
        _SHARED.clear()
    if results is None:
        return None
    lowered: Dict[str, object] = {}
    for chunk_result in results:
        for name, module in chunk_result:
            lowered[name] = module
    return lowered


# --- backend: per-module llc (default pipeline) ------------------------------


def _llc_chunk(indices: List[int]) -> List[Tuple[int, object]]:
    from repro.backend.llc import LLCOptions, run_llc

    lir_modules = _SHARED["lir_modules"]
    rounds = _SHARED["outline_rounds"]
    collect = _SHARED["collect_stats"]
    out = []
    for i in indices:
        module = lir_modules[i]
        llc_out = run_llc(module, LLCOptions(
            outline_rounds=rounds, collect_stats=collect,
            outlined_name_prefix=f"{module.name}::"))
        out.append((i, llc_out))
    return out


def llc_modules(lir_modules: Sequence[object], outline_rounds: int,
                collect_stats: bool,
                workers: int) -> Optional[List[object]]:
    """Run per-module llc in parallel; returns outputs in module order."""
    if workers <= 1 or len(lir_modules) <= 1:
        return None
    _SHARED["lir_modules"] = list(lir_modules)
    _SHARED["outline_rounds"] = outline_rounds
    _SHARED["collect_stats"] = collect_stats
    try:
        indices = list(range(len(lir_modules)))
        chunks = [indices[i::workers] for i in range(workers)]
        chunks = [c for c in chunks if c]
        results = _run_forked(_llc_chunk, chunks, workers)
    finally:
        _SHARED.clear()
    if results is None:
        return None
    ordered: List[object] = [None] * len(lir_modules)
    for chunk_result in results:
        for i, llc_out in chunk_result:
            ordered[i] = llc_out
    return ordered
