"""Process-parallel compilation helpers (fork-based), with fault tolerance.

Swiftlet sema is whole-program (type ids and closure symbols are numbered
across modules), so the unit of parallelism is the *per-module lowering*
that follows it: SIL -> LIR -> -Osize cleanups in the frontend, and
per-module ``llc`` in the default (Figure 2) pipeline.

Large read-only inputs (the SIL modules, the signature table, the LIR
modules) are handed to workers through a module-level registry populated
*before* the pool is created: with the ``fork`` start method the children
inherit the parent's heap copy-on-write, so nothing but the small work
lists and the results ever crosses a pipe.  Each concurrent build
registers its payload under a distinct token, so two ``build_program``
calls in different threads cannot clobber each other's shared state.

Failure handling is a ladder, not a cliff.  Each chunk independently gets:

1. bounded in-pool retries with backoff (a crash, timeout, or unpicklable
   result burns one attempt; a broken pool is rebuilt);
2. a serial re-run in the parent process once retries are exhausted;
3. only an error raised *by the compiler itself* during that serial
   re-run propagates — as a typed :class:`~repro.errors.ReproError`.

Every step down the ladder is recorded as a structured
:class:`~repro.pipeline.report.DegradationEvent`; none of them can change
the produced binary (bit-identical output is enforced by the determinism
and fault-injection test harnesses).
"""

from __future__ import annotations

import atexit
import concurrent.futures
import itertools
import multiprocessing
import os
import signal
import threading
import time
import weakref
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BuildError, WorkerCrashError
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsSnapshot
from repro.obs.trace import Span, Tracer
from repro.pipeline.cancel import CancelScope, checkpoint, clamp_timeout
from repro.pipeline.faults import FaultPlan
from repro.pipeline.report import BuildReport

#: Read-only payloads shared with forked workers, keyed by build token.
#: Concurrent builds own distinct tokens; entries exist only while a
#: parallel phase is in flight.
_REGISTRY: Dict[int, Dict[str, object]] = {}
_REGISTRY_LOCK = threading.Lock()
_TOKENS = itertools.count(1)


def _register(payload: Dict[str, object]) -> int:
    with _REGISTRY_LOCK:
        token = next(_TOKENS)
        _REGISTRY[token] = payload
    return token


def _unregister(token: int) -> None:
    with _REGISTRY_LOCK:
        _REGISTRY.pop(token, None)


#: Every live executor, so an interrupted build (KeyboardInterrupt,
#: SIGTERM routed through an exception, daemon drain) can never leave
#: orphaned forked workers behind: `run_chunks` tears its pool down in a
#: ``finally``, and the atexit sweep catches anything that still escaped
#: (e.g. an exception thrown from a signal handler at an awkward point).
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()


def _worker_init() -> None:
    """Runs in every pool worker right after the fork.

    The forking process may have Python-level SIGTERM/SIGINT handlers
    installed (the CLI's interrupt handler, the build daemon's drain
    handler) and it always has this module's atexit sweep registered —
    all inherited by the child.  A worker that keeps them turns
    ``terminate()`` into "raise KeyboardInterrupt, then run the parent's
    teardown logic against inherited pool state", which can deadlock on
    locks that were held at fork time instead of dying.  A build worker
    must simply die on SIGTERM — that is how teardown kills it.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    try:
        # Ctrl-C is the parent's to coordinate; a worker that dies from
        # it anyway is absorbed by the degradation ladder.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    # The inherited registry entries refer to the parent's pools; the
    # child's atexit must not try to tear them down.
    _LIVE_POOLS.clear()


def _teardown_pool(pool) -> None:
    """Shut a pool down *now*: cancel queued work and kill its workers.

    ``ProcessPoolExecutor.shutdown`` alone leaves running (or hung)
    workers alive; after an interrupt those become orphaned forks holding
    copy-on-write heaps.  Termination is safe at every call site because
    chunk work is pure and cache publication is atomic (a killed worker
    can at worst leave an unpublished temp file, which the cache reaps).
    """
    # Grab the worker handles *before* shutdown: even with wait=False,
    # shutdown() clears the executor's _processes map.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    # Reap, escalating to SIGKILL for anything that survives SIGTERM
    # (e.g. a worker wedged beyond signal delivery): the bound keeps
    # teardown prompt, and joining keeps dead workers from lingering as
    # zombies in ``multiprocessing.active_children()``.
    for proc in processes:
        try:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        except Exception:
            pass
    _LIVE_POOLS.discard(pool)


def _terminate_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        _teardown_pool(pool)


atexit.register(_terminate_live_pools)


# --- persistent pool (survives across builds) --------------------------------
#
# With ``BuildConfig.persistent_workers`` the executor is kept alive at
# module level and reused by every subsequent build in this process (the
# daemon, CLI batch runs), skipping the per-build fork+teardown.  The
# children were forked *before* any given build's inputs existed, so
# copy-on-write inheritance through ``_REGISTRY`` cannot reach them —
# persistent tasks carry their own self-contained payload instead
# (see ``_Task.payload``).  The fault ladder is unchanged: a dead or hung
# persistent pool is retired (torn down and forgotten) and the next retry
# round forks a fresh one.

_PERSISTENT_LOCK = threading.Lock()
_PERSISTENT_POOL = None
_PERSISTENT_SIZE = 0


def _acquire_persistent_pool(ctx, workers: int):
    """The shared cross-build pool, (re)created at >= ``workers`` size."""
    global _PERSISTENT_POOL, _PERSISTENT_SIZE
    with _PERSISTENT_LOCK:
        pool = _PERSISTENT_POOL
        if pool is not None and _PERSISTENT_SIZE >= workers:
            obs_trace.metrics().inc("pool.persistent_reused")
            return pool
        if pool is not None:  # too small for this build: grow by replacing
            _PERSISTENT_POOL = None
            _PERSISTENT_SIZE = 0
            _teardown_pool(pool)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx, initializer=_worker_init)
        _LIVE_POOLS.add(pool)
        _PERSISTENT_POOL = pool
        _PERSISTENT_SIZE = workers
        obs_trace.metrics().inc("pool.persistent_created")
        return pool


def _retire_persistent_pool(pool) -> None:
    """Forget (and kill) a persistent pool that went bad."""
    global _PERSISTENT_POOL, _PERSISTENT_SIZE
    with _PERSISTENT_LOCK:
        if _PERSISTENT_POOL is pool:
            _PERSISTENT_POOL = None
            _PERSISTENT_SIZE = 0
    obs_trace.metrics().inc("pool.persistent_retired")
    _teardown_pool(pool)


def shutdown_persistent_pool() -> None:
    """Tear down the cross-build pool (daemon drain, tests, atexit)."""
    global _PERSISTENT_POOL, _PERSISTENT_SIZE
    with _PERSISTENT_LOCK:
        pool = _PERSISTENT_POOL
        _PERSISTENT_POOL = None
        _PERSISTENT_SIZE = 0
    if pool is not None:
        _teardown_pool(pool)


def resolve_workers(workers: int) -> int:
    """Translate the config knob into a worker count (0 = auto).

    Uses :func:`os.cpu_count` (which returns ``None`` rather than raising
    when the platform cannot tell, unlike ``multiprocessing.cpu_count``)
    and clamps nonsensical negative requests to serial.
    """
    if workers == 0:
        try:
            count = os.cpu_count()
        except NotImplementedError:  # exotic platforms
            count = None
        return max(1, (count or 2) - 1)
    return max(1, workers)


# --- chunk workers -----------------------------------------------------------


def _lower_chunk(payload: Dict[str, object],
                 names: Sequence[str]) -> List[Tuple[str, object]]:
    from repro.lir.irgen import ModuleIRGen
    from repro.pipeline.build import optimize_module

    sil_by_name = payload["sil_by_name"]
    signatures = payload["signatures"]
    out = []
    for name in names:
        module = ModuleIRGen(sil_by_name[name], signatures).run()
        optimize_module(module)
        out.append((name, module))
    return out


def _llc_chunk(payload: Dict[str, object],
               indices: Sequence[int]) -> List[Tuple[int, object]]:
    from repro.backend.llc import LLCOptions, run_llc

    lir_modules = payload["lir_modules"]
    rounds = payload["outline_rounds"]
    collect = payload["collect_stats"]
    target = payload.get("target")
    out = []
    for i in indices:
        module = lir_modules[i]
        llc_out = run_llc(module, LLCOptions(
            outline_rounds=rounds, collect_stats=collect,
            outlined_name_prefix=f"{module.name}::",
            target=target))
        out.append((i, llc_out))
    return out


_CHUNK_FUNCS = {"lower": _lower_chunk, "llc": _llc_chunk}


# --- pool task (runs in the worker process) ----------------------------------


@dataclass(frozen=True)
class _Task:
    """One chunk attempt shipped to a pool worker (small and picklable)."""

    kind: str
    token: int
    chunk: Tuple
    index: int
    attempt: int
    plan: Optional[FaultPlan]
    #: Self-contained inputs for this chunk.  ``None`` means "read the
    #: fork-inherited ``_REGISTRY[token]``" (per-build pools, where the
    #: children forked after registration); persistent pools forked
    #: before this build existed, so their tasks must carry everything.
    payload: Optional[Dict[str, object]] = None

    @property
    def site(self) -> str:
        return f"{self.kind}:{self.index}:a{self.attempt}"


@dataclass
class _TracedChunk:
    """A chunk result plus the worker-side observability it produced.

    ``fork`` children inherit the parent's *enabled* tracer through the
    ambient contextvar, but mutations to it die with the child — so the
    worker records into a fresh tracer and ships the finished spans and
    metrics back through the result pipe (both are plain picklable
    dataclasses).  The parent grafts them in chunk order.
    """

    result: object
    spans: List[Span]
    metrics: MetricsSnapshot


def _run_task(task: _Task):
    """Pool entry point.  Fault injection happens only here, in the worker
    process — the parent's serial re-runs call the chunk functions
    directly and are therefore immune by construction."""
    payload = (task.payload if task.payload is not None
               else _REGISTRY[task.token])
    if task.plan is not None:
        if task.plan.should_fire("worker_crash", task.site):
            os._exit(17)  # simulate a hard worker death (OOM-kill, segfault)
        if task.plan.should_fire("worker_hang", task.site):
            time.sleep(task.plan.hang_seconds)
    if obs_trace.current_tracer().enabled:
        worker_tracer = Tracer()
        with obs_trace.use_tracer(worker_tracer):
            with worker_tracer.span(f"worker-chunk:{task.kind}",
                                    kind="worker-chunk", chunk=task.index,
                                    attempt=task.attempt,
                                    size=len(task.chunk)):
                inner = _CHUNK_FUNCS[task.kind](payload, task.chunk)
        result: object = _TracedChunk(result=inner,
                                      spans=worker_tracer.roots,
                                      metrics=worker_tracer.metrics.snapshot())
    else:
        result = _CHUNK_FUNCS[task.kind](payload, task.chunk)
    if (task.plan is not None
            and task.plan.should_fire("pickle_failure", task.site)):
        return lambda: result  # lambdas don't pickle -> result send fails
    return result


# --- the degradation ladder --------------------------------------------------


def run_chunks(kind: str, payload: Dict[str, object],
               chunks: Sequence[Tuple], workers: int, *,
               plan: Optional[FaultPlan] = None,
               report: Optional[BuildReport] = None,
               phase: str = "",
               chunk_timeout: Optional[float] = None,
               max_retries: int = 2,
               retry_backoff: float = 0.05,
               fail_fast: bool = False,
               cancel_scope: Optional[CancelScope] = None,
               persistent: bool = False,
               chunk_payloads: Optional[Sequence[Dict[str, object]]] = None,
               ) -> List[object]:
    """Run every chunk to completion, degrading per-chunk as needed.

    Returns results aligned with ``chunks``.  Recoverable failures (worker
    crash, hang past ``chunk_timeout``, unpicklable result, no fork, pool
    creation failure) are absorbed by retry / serial re-run and recorded
    on ``report``; only a failure of the serial in-parent re-run — a real
    compiler error — propagates.

    With ``fail_fast=True`` the ladder is disabled: the first chunk
    failure raises a typed error (:class:`~repro.errors.WorkerCrashError`
    for a dead or hung worker, :class:`~repro.errors.BuildError`
    otherwise) instead of degrading.  Useful in CI, where a flaky worker
    should be *noticed*, not papered over.

    With ``persistent=True`` the chunks run on the shared cross-build
    pool (created on first use, reused afterwards); the caller must then
    supply ``chunk_payloads`` — one self-contained payload per chunk —
    because a pre-forked pool cannot see this build's registry entry.
    """
    if not chunks:
        return []
    if persistent and chunk_payloads is None:
        raise BuildError("persistent run_chunks requires chunk_payloads "
                         "(pre-forked workers cannot inherit the registry)")
    token = _register(payload)
    try:
        return _run_chunks_registered(
            kind, payload, chunks, workers, token, plan=plan, report=report,
            phase=phase, chunk_timeout=chunk_timeout, max_retries=max_retries,
            retry_backoff=retry_backoff, fail_fast=fail_fast,
            cancel_scope=cancel_scope, persistent=persistent,
            chunk_payloads=chunk_payloads)
    finally:
        _unregister(token)


def _degrade(report: Optional[BuildReport], kind: str, phase: str,
             detail: str, chunk: int = -1, attempt: int = 0) -> None:
    if report is not None:
        report.degrade(kind, phase=phase, detail=detail, chunk=chunk,
                       attempt=attempt)


def _run_chunks_registered(kind, payload, chunks, workers, token, *, plan,
                           report, phase, chunk_timeout, max_retries,
                           retry_backoff, fail_fast=False,
                           cancel_scope=None, persistent=False,
                           chunk_payloads=None) -> List[object]:
    results: Dict[int, object] = {}
    pending = list(range(len(chunks)))

    ctx = None
    if plan is not None and plan.fork_unavailable:
        _degrade(report, "no-fork", phase, "fault injection: fork disabled")
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            _degrade(report, "no-fork", phase,
                     "platform has no fork start method")

    # The pool lives inside a try/finally: *any* exception leaving this
    # function — a fail-fast typed error, a cancellation checkpoint, a
    # KeyboardInterrupt delivered to the main thread — tears the pool
    # down (workers terminated, not just the queue drained), so an
    # interrupted build cannot leak orphaned forks.
    pool = None
    try:
        if ctx is not None:
            for attempt in range(max_retries + 1):
                if not pending:
                    break
                checkpoint(cancel_scope, f"{phase or kind} retry round")
                if pool is None:
                    try:
                        if persistent:
                            pool = _acquire_persistent_pool(ctx, workers)
                        else:
                            pool = concurrent.futures.ProcessPoolExecutor(
                                max_workers=min(workers, len(pending)),
                                mp_context=ctx, initializer=_worker_init)
                            _LIVE_POOLS.add(pool)
                    except Exception as exc:
                        _degrade(report, "pool-unavailable", phase,
                                 f"{type(exc).__name__}: {exc}")
                        break
                if attempt and retry_backoff:
                    time.sleep(retry_backoff * attempt)
                futures = {}
                for i in pending:
                    try:
                        futures[i] = pool.submit(_run_task, _Task(
                            kind=kind, token=token, chunk=tuple(chunks[i]),
                            index=i, attempt=attempt, plan=plan,
                            payload=(chunk_payloads[i] if chunk_payloads
                                     is not None else None)))
                    except BrokenProcessPool as exc:
                        # The pool can already be broken at submit time —
                        # a worker died after the previous round's results
                        # were drained, or a reused persistent pool went
                        # bad between builds.  Same rung as a crash seen
                        # mid-round, not an escape from the ladder.
                        if fail_fast:
                            raise WorkerCrashError(
                                f"{phase or kind} chunk {i}: "
                                f"{exc or 'pool broken at submit'}",
                                chunk=i, attempt=attempt) from exc
                        _degrade(report, "worker-crash", phase,
                                 f"pool broken at submit: "
                                 f"{exc or 'worker process died'}",
                                 chunk=i, attempt=attempt)
                        break
                still: List[int] = [i for i in pending if i not in futures]
                pool_dead = bool(still)
                for i, fut in futures.items():
                    # Re-clamp per future: these waits are sequential, so
                    # one clamp for the whole round could block up to
                    # N_pending × remaining past the job deadline.  Once
                    # the scope's budget hits zero, every later wait
                    # times out immediately and the next retry-round
                    # checkpoint raises the typed deadline error.
                    wait_timeout = clamp_timeout(cancel_scope, chunk_timeout)
                    try:
                        results[i] = fut.result(timeout=wait_timeout)
                    except concurrent.futures.TimeoutError:
                        if fail_fast:
                            raise WorkerCrashError(
                                f"{phase or kind} chunk {i}: no result "
                                f"within {wait_timeout:g}s",
                                chunk=i, attempt=attempt)
                        _degrade(report, "chunk-timeout", phase,
                                 f"no result within {wait_timeout:g}s",
                                 chunk=i, attempt=attempt)
                        still.append(i)
                        pool_dead = True  # a hung worker occupies a slot
                    except BrokenProcessPool as exc:
                        if fail_fast:
                            raise WorkerCrashError(
                                f"{phase or kind} chunk {i}: "
                                f"{exc or 'worker process died'}",
                                chunk=i, attempt=attempt)
                        _degrade(report, "worker-crash", phase,
                                 str(exc) or "worker process died",
                                 chunk=i, attempt=attempt)
                        still.append(i)
                        pool_dead = True
                    except Exception as exc:
                        if fail_fast:
                            raise BuildError(
                                f"{phase or kind} chunk {i} failed: "
                                f"{type(exc).__name__}: {exc}") from exc
                        _degrade(report, "chunk-error", phase,
                                 f"{type(exc).__name__}: {exc}",
                                 chunk=i, attempt=attempt)
                        still.append(i)
                pending = sorted(still)
                if pool_dead:
                    if persistent:
                        _retire_persistent_pool(pool)
                    else:
                        _teardown_pool(pool)
                    pool = None
    finally:
        # A persistent pool outlives the build by design; its teardown
        # happens on retirement (above), daemon drain, or the atexit
        # sweep.  Per-build pools die here no matter how we leave.
        if pool is not None and not persistent:
            _teardown_pool(pool)
            pool = None

    # Last rung: recompile the survivors serially in this process.  The
    # chunk functions are pure, so the result is bit-identical to what a
    # healthy worker would have produced.
    for i in pending:
        checkpoint(cancel_scope, f"{phase or kind} serial re-run")
        _degrade(report, "chunk-serial-rerun", phase,
                 "recompiled in parent after pool attempts exhausted",
                 chunk=i)
        with obs_trace.span(f"serial-rerun:{kind}", kind="chunk",
                            chunk=i, size=len(chunks[i])):
            results[i] = _CHUNK_FUNCS[kind](payload, chunks[i])

    # Unwrap traced worker results, grafting their spans and metrics onto
    # the parent tracer *in chunk order* (pool completion order is not
    # deterministic; this order is).
    tracer = obs_trace.current_tracer()
    ordered: List[object] = []
    for i in range(len(chunks)):
        result = results[i]
        if isinstance(result, _TracedChunk):
            tracer.adopt(result.spans, track=i + 1)
            tracer.metrics.merge(result.metrics)
            result = result.result
        ordered.append(result)
    return ordered


# --- frontend: SIL -> optimized LIR ------------------------------------------


def _round_robin(items: Sequence, workers: int) -> List[List]:
    chunks = [list(items[i::workers]) for i in range(workers)]
    return [c for c in chunks if c]


def _signature_stubs(signatures: Dict[str, object]) -> Dict[str, object]:
    """Small picklable stand-ins for the whole-program signature table.

    Worker-side IRGen consults only callee parameter/return types
    (``ret_is_float`` / ``arg_floats``), so bodies are dropped before
    shipping the table to a persistent pool, which cannot inherit it via
    fork-time copy-on-write.  Batching many modules per chunk (the
    round-robin below) amortizes what pickling remains.
    """
    from repro.sil import sil

    return {symbol: sil.SILFunction(symbol=symbol,
                                    param_types=list(fn.param_types),
                                    ret_type=fn.ret_type,
                                    is_bare=fn.is_bare,
                                    source_module=fn.source_module)
            for symbol, fn in signatures.items()}


def lower_modules(sil_by_name: Dict[str, object],
                  signatures: Dict[str, object],
                  names: Sequence[str], workers: int, *,
                  plan: Optional[FaultPlan] = None,
                  report: Optional[BuildReport] = None,
                  chunk_timeout: Optional[float] = None,
                  max_retries: int = 2,
                  retry_backoff: float = 0.05,
                  fail_fast: bool = False,
                  cancel_scope: Optional[CancelScope] = None,
                  persistent: bool = False,
                  ) -> Optional[Dict[str, object]]:
    """Lower ``names`` to optimized LIR across ``workers`` processes.

    Returns name -> LIRModule, or None when the request is inherently
    serial (``workers <= 1``) and the caller's serial path should run.
    """
    if workers <= 1:
        return None
    payload = {"sil_by_name": dict(sil_by_name),
               "signatures": dict(signatures)}
    chunks = _round_robin(list(names), workers)
    chunk_payloads = None
    if persistent:
        stubs = _signature_stubs(signatures)
        chunk_payloads = [{"sil_by_name": {n: sil_by_name[n] for n in chunk},
                           "signatures": stubs}
                          for chunk in chunks]
    results = run_chunks("lower", payload, chunks, workers, plan=plan,
                         report=report, phase="lower",
                         chunk_timeout=chunk_timeout,
                         max_retries=max_retries,
                         retry_backoff=retry_backoff,
                         fail_fast=fail_fast,
                         cancel_scope=cancel_scope,
                         persistent=persistent,
                         chunk_payloads=chunk_payloads)
    lowered: Dict[str, object] = {}
    for chunk_result in results:
        for name, module in chunk_result:
            lowered[name] = module
    return lowered


# --- backend: per-module llc (default pipeline) ------------------------------


def llc_modules(lir_modules: Sequence[object], outline_rounds: int,
                collect_stats: bool, workers: int, *,
                plan: Optional[FaultPlan] = None,
                report: Optional[BuildReport] = None,
                chunk_timeout: Optional[float] = None,
                max_retries: int = 2,
                retry_backoff: float = 0.05,
                fail_fast: bool = False,
                target: Optional[str] = None,
                cancel_scope: Optional[CancelScope] = None,
                persistent: bool = False,
                ) -> Optional[List[object]]:
    """Run per-module llc in parallel; returns outputs in module order."""
    if workers <= 1 or len(lir_modules) <= 1:
        return None
    payload = {"lir_modules": list(lir_modules),
               "outline_rounds": outline_rounds,
               "collect_stats": collect_stats,
               "target": target}
    chunks = _round_robin(list(range(len(lir_modules))), workers)
    chunk_payloads = None
    if persistent:
        # The chunk function indexes ``lir_modules`` by module number, so
        # a dict carrying just this chunk's modules is a drop-in.
        chunk_payloads = [{"lir_modules": {i: lir_modules[i] for i in chunk},
                           "outline_rounds": outline_rounds,
                           "collect_stats": collect_stats,
                           "target": target}
                          for chunk in chunks]
    results = run_chunks("llc", payload, chunks, workers, plan=plan,
                         report=report, phase="llc",
                         chunk_timeout=chunk_timeout,
                         max_retries=max_retries,
                         retry_backoff=retry_backoff,
                         fail_fast=fail_fast,
                         cancel_scope=cancel_scope,
                         persistent=persistent,
                         chunk_payloads=chunk_payloads)
    ordered: List[object] = [None] * len(lir_modules)
    for chunk_result in results:
        for i, llc_out in chunk_result:
            ordered[i] = llc_out
    return ordered
