"""Deterministic, seeded fault injection for the build pipeline.

Every degradation path in the orchestrator — a crashed worker, a hung
chunk, a platform without ``fork``, an unpicklable result, a corrupted or
torn cache entry — is exercisable on demand through a :class:`FaultPlan`
wired in via ``BuildConfig.fault_plan``.  The hard invariant the plan
exists to test: under *any* injected fault the build either produces an
image bit-identical to the fault-free serial build or raises a typed
:class:`~repro.errors.ReproError` — never a silently different binary.

Decisions are a pure function of ``(seed, site)``: the same plan asked
about the same site always answers the same way, in any process, in any
order.  Sites include the attempt number (``lower:3:a1``), so a fault can
be *transient* — the retry of a chunk draws a fresh decision — which is
exactly how real flaky infrastructure behaves.  Rates of ``1.0`` make a
fault *persistent* and force the ladder all the way down to the in-parent
serial re-run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

#: Fault kinds a plan can inject, with the rate field controlling each.
FAULT_KINDS = (
    "worker_crash",      # worker process dies with os._exit mid-chunk
    "worker_hang",       # worker sleeps past the per-chunk deadline
    "pickle_failure",    # worker result cannot be pickled back to the parent
    "cache_corrupt",     # on-disk cache entry bytes are scrambled before load
    "torn_write",        # cache store crashes before the atomic rename
    # Service-level sites (evaluated by the build daemon / client):
    "client_disconnect", # peer socket drops before the response is sent
    "journal_torn",      # a journal append stops mid-record (no newline)
    "deadline_expire",   # a job's deadline is forced to zero on admission
    "sigterm_midphase",  # the daemon begins a graceful drain mid-job
)


def _unit_interval(seed: int, site: str) -> float:
    """Uniform [0, 1) value derived from (seed, site) — stable everywhere."""
    digest = hashlib.sha256(f"{seed}\x00{site}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected faults (picklable, immutable).

    All ``*_rate`` fields are probabilities in [0, 1] evaluated per site;
    0 disables the fault class entirely.
    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    pickle_failure_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    torn_write_rate: float = 0.0
    client_disconnect_rate: float = 0.0
    journal_torn_rate: float = 0.0
    deadline_expire_rate: float = 0.0
    sigterm_midphase_rate: float = 0.0
    #: Pretend multiprocessing has no "fork" start method.
    fork_unavailable: bool = False
    #: How long an injected hang sleeps (kept short so tests stay fast,
    #: but longer than any per-chunk deadline a test would configure).
    hang_seconds: float = 0.5

    _RATE_OF_KIND = {
        "worker_crash": "worker_crash_rate",
        "worker_hang": "worker_hang_rate",
        "pickle_failure": "pickle_failure_rate",
        "cache_corrupt": "cache_corrupt_rate",
        "torn_write": "torn_write_rate",
        "client_disconnect": "client_disconnect_rate",
        "journal_torn": "journal_torn_rate",
        "deadline_expire": "deadline_expire_rate",
        "sigterm_midphase": "sigterm_midphase_rate",
    }

    def should_fire(self, kind: str, site: str) -> bool:
        """Deterministically decide whether fault ``kind`` hits ``site``."""
        rate = getattr(self, self._RATE_OF_KIND[kind])
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return _unit_interval(self.seed, f"{kind}:{site}") < rate

    @property
    def any_worker_faults(self) -> bool:
        return (self.worker_crash_rate > 0 or self.worker_hang_rate > 0
                or self.pickle_failure_rate > 0)

    # -- CLI / config parsing -------------------------------------------

    _PARSE_KEYS = {
        "seed": ("seed", int),
        "crash": ("worker_crash_rate", float),
        "hang": ("worker_hang_rate", float),
        "pickle": ("pickle_failure_rate", float),
        "corrupt": ("cache_corrupt_rate", float),
        "torn": ("torn_write_rate", float),
        "disconnect": ("client_disconnect_rate", float),
        "jtorn": ("journal_torn_rate", float),
        "deadline": ("deadline_expire_rate", float),
        "sigterm": ("sigterm_midphase_rate", float),
        "nofork": ("fork_unavailable", lambda v: bool(int(v))),
        "hangsecs": ("hang_seconds", float),
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``"seed=7,crash=0.3,corrupt=1"`` syntax.

        Raises ``ValueError`` on unknown keys or malformed values so the
        CLI can reject a bad ``--inject-faults`` argument up front.
        """
        kwargs: Dict[str, object] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, value = part.partition("=")
            if not sep or key not in cls._PARSE_KEYS:
                known = ", ".join(sorted(cls._PARSE_KEYS))
                raise ValueError(
                    f"bad fault spec {part!r} (known keys: {known})")
            field_name, convert = cls._PARSE_KEYS[key]
            kwargs[field_name] = convert(value)
        return cls(**kwargs)  # type: ignore[arg-type]

    def scaled(self, **overrides: object) -> "FaultPlan":
        """Copy with fields replaced (convenience for test matrices)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def describe(plan: Optional[FaultPlan]) -> str:
    """One-line human description of a plan ("faults off" when None)."""
    if plan is None:
        return "faults off"
    parts = [f"seed={plan.seed}"]
    for f in fields(plan):
        if f.name in ("seed", "hang_seconds"):
            continue
        value = getattr(plan, f.name)
        if value:
            parts.append(f"{f.name}={value}")
    return "fault plan: " + ", ".join(parts)
