"""Build pipelines (Figures 2 and 10)."""

from repro.pipeline.build import (
    BuildResult,
    SizeReport,
    build_lir_modules,
    build_program,
    frontend_to_lir,
    run_build,
)
from repro.pipeline.config import BuildConfig

__all__ = [
    "BuildConfig",
    "BuildResult",
    "SizeReport",
    "build_lir_modules",
    "build_program",
    "frontend_to_lir",
    "run_build",
]
