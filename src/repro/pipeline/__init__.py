"""Build pipelines (Figures 2 and 10), incremental, parallel, fault-tolerant."""

from repro.pipeline.build import (
    BuildResult,
    ProgramArtifact,
    SizeReport,
    build_lir_modules,
    build_program,
    build_targets,
    compile_backend,
    compile_frontend,
    frontend_to_lir,
    run_build,
)
from repro.pipeline.cache import PIPELINE_CACHE_VERSION, CacheStats, ModuleCache
from repro.pipeline.cancel import CancelScope
from repro.pipeline.config import BuildConfig
from repro.pipeline.faults import FaultPlan
from repro.pipeline.report import BuildReport, DegradationEvent

__all__ = [
    "BuildConfig",
    "BuildReport",
    "BuildResult",
    "CacheStats",
    "CancelScope",
    "DegradationEvent",
    "FaultPlan",
    "ModuleCache",
    "PIPELINE_CACHE_VERSION",
    "ProgramArtifact",
    "SizeReport",
    "build_lir_modules",
    "build_program",
    "build_targets",
    "compile_backend",
    "compile_frontend",
    "frontend_to_lir",
    "run_build",
]
