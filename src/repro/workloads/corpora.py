"""Non-iOS corpora (§VII-E-2) and Objective-C-flavoured modules (§VI-2).

The paper's artifact ships pre-compiled LLVM bitcode for clang 9 and the
Android 4.19 Linux kernel.  We generate the analogous inputs directly at
the LIR level:

* :func:`kernel_like_modules` — C-style subsystems whose functions carry
  the stack-smashing-protector prologue/epilogue ("in the Linux kernel, the
  function epilogue to check stack smashing attack is a common repeating
  code pattern");
* :func:`clang_like_modules` — AST-visitor-style dispatch functions sharing
  helper calls and calling-convention shuffles;
* :func:`objc_module` — a clang-produced Objective-C module with
  ``objc_retain``/``objc_release`` traffic and clang's *monolithic* GC
  metadata word, which conflicts with Swift modules under the legacy
  llvm-link comparison (the Section VI-2 bug).
"""

from __future__ import annotations

import random
from typing import List

from repro.lir import ir
from repro.runtime import names

STACK_GUARD_SYMBOL = "__stack_chk_guard"

#: clang-style monolithic GC word (compiler id 2 "clang", version 11.0).
CLANG_GC_WORD = (2 << 16) | (11 << 8) | 0


def _new_module(name: str, producer: str, gc_word: int) -> ir.LIRModule:
    return ir.LIRModule(
        name=name,
        metadata={
            "objc_gc": ("monolithic", gc_word),
            "objc_gc_attrs": {"mode": "none", f"{producer}_abi": 1},
            "producer": producer,
        },
    )


def _emit_guard_prologue(fn: ir.LIRFunction, blk: ir.LIRBlock) -> ir.Value:
    addr = fn.new_value()
    blk.instrs.append(ir.GlobalAddr(result=addr, symbol=STACK_GUARD_SYMBOL))
    canary = fn.new_value()
    blk.instrs.append(ir.Load(result=canary, ptr=addr))
    return canary


def _emit_guard_epilogue(fn: ir.LIRFunction, blk: ir.LIRBlock,
                         canary: ir.Value, ret_value: ir.Operand) -> None:
    addr = fn.new_value()
    blk.instrs.append(ir.GlobalAddr(result=addr, symbol=STACK_GUARD_SYMBOL))
    now = fn.new_value()
    blk.instrs.append(ir.Load(result=now, ptr=addr))
    cond = fn.new_value()
    blk.instrs.append(ir.Cmp(result=cond, pred="!=", lhs=canary, rhs=now))
    blk.instrs.append(ir.CondBr(cond=cond, true_target="chk_fail",
                                false_target="chk_ok"))
    fail = fn.new_block("chk_fail")
    fail.instrs.append(ir.Call(callee=names.STACK_CHK_FAIL, args=[]))
    fail.instrs.append(ir.Trap(reason="stack"))
    ok = fn.new_block("chk_ok")
    ok.instrs.append(ir.Ret(value=ret_value))


def kernel_like_modules(num_subsystems: int = 6, funcs_per_subsystem: int = 10,
                        seed: int = 419) -> List[ir.LIRModule]:
    """Linux-kernel-flavoured LIR with stack-protector epilogues."""
    rng = random.Random(seed)
    modules: List[ir.LIRModule] = []
    # Shared guard variable + helpers live in a "core" module.
    core = _new_module("kcore", "gcc", (3 << 16) | (9 << 8))
    core.globals.append(ir.LIRGlobal(symbol=STACK_GUARD_SYMBOL,
                                     init=0xDEAD4110, is_object=False,
                                     origin_module="kcore"))
    for helper in ("k_validate", "k_account", "k_refill"):
        fn = ir.LIRFunction(symbol=f"kcore::{helper}", source_module="kcore",
                            has_return_value=True)
        p = fn.new_value()
        fn.params = [p]
        fn.param_is_float = [False]
        blk = fn.new_block("entry")
        acc = fn.new_value()
        blk.instrs.append(ir.BinOp(result=acc, op="*", lhs=p,
                                   rhs=ir.Const(2654435761)))
        out = fn.new_value()
        blk.instrs.append(ir.BinOp(result=out, op="%", lhs=acc,
                                   rhs=ir.Const(1000003)))
        blk.instrs.append(ir.Ret(value=out))
        core.functions.append(fn)
    modules.append(core)

    for s in range(num_subsystems):
        module = _new_module(f"ksub{s}", "gcc", (3 << 16) | (9 << 8))
        for g in range(rng.randint(2, 4)):
            module.globals.append(ir.LIRGlobal(
                symbol=f"ksub{s}::state{g}", init=rng.randint(0, 999),
                is_object=False, origin_module=f"ksub{s}"))
        for f in range(funcs_per_subsystem):
            fn = ir.LIRFunction(symbol=f"ksub{s}::op{f}",
                                source_module=f"ksub{s}",
                                has_return_value=True)
            p = fn.new_value()
            fn.params = [p]
            fn.param_is_float = [False]
            blk = fn.new_block("entry")
            canary = _emit_guard_prologue(fn, blk)
            value: ir.Operand = p
            for step in range(rng.randint(2, 5)):
                helper = rng.choice(["k_validate", "k_account", "k_refill"])
                result = fn.new_value()
                blk.instrs.append(ir.Call(result=result,
                                          callee=f"kcore::{helper}",
                                          args=[value]))
                mixed = fn.new_value()
                blk.instrs.append(ir.BinOp(result=mixed, op="+", lhs=result,
                                           rhs=ir.Const(rng.randint(1, 64))))
                value = mixed
            _emit_guard_epilogue(fn, blk, canary, value)
            module.functions.append(fn)
        modules.append(module)
    return modules


def clang_like_modules(num_components: int = 6, funcs_per_component: int = 12,
                       seed: int = 900) -> List[ir.LIRModule]:
    """clang-compiler-flavoured LIR: visitor dispatch over node kinds."""
    rng = random.Random(seed)
    modules: List[ir.LIRModule] = []
    core = _new_module("ccore", "clang", CLANG_GC_WORD)
    for helper in ("diag_emit", "node_alloc", "sema_check", "fold_const"):
        fn = ir.LIRFunction(symbol=f"ccore::{helper}", source_module="ccore",
                            has_return_value=True)
        a = fn.new_value()
        b = fn.new_value()
        fn.params = [a, b]
        fn.param_is_float = [False, False]
        blk = fn.new_block("entry")
        t = fn.new_value()
        blk.instrs.append(ir.BinOp(result=t, op="^", lhs=a, rhs=b))
        u = fn.new_value()
        blk.instrs.append(ir.BinOp(result=u, op="+", lhs=t,
                                   rhs=ir.Const(len(helper))))
        blk.instrs.append(ir.Ret(value=u))
        core.functions.append(fn)
    modules.append(core)

    helpers = ["diag_emit", "node_alloc", "sema_check", "fold_const"]
    for c in range(num_components):
        module = _new_module(f"ccomp{c}", "clang", CLANG_GC_WORD)
        for f in range(funcs_per_component):
            fn = ir.LIRFunction(symbol=f"ccomp{c}::visit{f}",
                                source_module=f"ccomp{c}",
                                has_return_value=True)
            node = fn.new_value()
            kind = fn.new_value()
            fn.params = [node, kind]
            fn.param_is_float = [False, False]
            entry = fn.new_block("entry")
            # kind-dispatch chain: compare, branch, helper call per arm.
            num_arms = rng.randint(2, 4)
            arm_results: List[ir.Value] = []
            cur = entry
            for arm in range(num_arms):
                cond = fn.new_value()
                cur.instrs.append(ir.Cmp(result=cond, pred="==", lhs=kind,
                                         rhs=ir.Const(arm)))
                arm_label = f"arm{arm}"
                next_label = f"next{arm}"
                cur.instrs.append(ir.CondBr(cond=cond, true_target=arm_label,
                                            false_target=next_label))
                arm_blk = fn.new_block(arm_label)
                helper = rng.choice(helpers)
                result = fn.new_value()
                arm_blk.instrs.append(ir.Call(
                    result=result, callee=f"ccore::{helper}",
                    args=[node, ir.Const(rng.randint(1, 99))]))
                arm_blk.instrs.append(ir.Ret(value=result))
                cur = fn.new_block(next_label)
            fallback = fn.new_value()
            cur.instrs.append(ir.Call(result=fallback,
                                      callee="ccore::diag_emit",
                                      args=[node, kind]))
            cur.instrs.append(ir.Ret(value=fallback))
            module.functions.append(fn)
        modules.append(module)
    return modules


def objc_module(name: str = "ObjCBridge", num_funcs: int = 8,
                seed: int = 77) -> ir.LIRModule:
    """An Objective-C module as clang would produce it.

    Carries clang's monolithic GC word (conflicting with Swift modules when
    llvm-link compares whole words) and objc_retain/objc_release traffic.
    """
    rng = random.Random(seed)
    module = _new_module(name, "clang", CLANG_GC_WORD)
    for f in range(num_funcs):
        fn = ir.LIRFunction(symbol=f"{name}::bridge{f}", source_module=name,
                            has_return_value=True)
        obj = fn.new_value()
        fn.params = [obj]
        fn.param_is_float = [False]
        blk = fn.new_block("entry")
        blk.instrs.append(ir.Call(callee=names.OBJC_RETAIN, args=[obj]))
        acc = fn.new_value()
        blk.instrs.append(ir.BinOp(result=acc, op="+", lhs=obj,
                                   rhs=ir.Const(rng.randint(1, 32))))
        blk.instrs.append(ir.Call(callee=names.OBJC_RELEASE, args=[obj]))
        blk.instrs.append(ir.Ret(value=acc))
        module.functions.append(fn)
    return module
