"""Experiment workloads: synthetic app, spans, corpora, 26 benchmarks."""

from repro.workloads.appgen import AppSpec, generate_app, span_symbols
from repro.workloads.corpora import (
    clang_like_modules,
    kernel_like_modules,
    objc_module,
)
from repro.workloads.spans import (
    OS_GRID,
    OSVersion,
    SpanMeasurement,
    measure_span,
    select_spans,
    span_grid,
)
from repro.workloads.swift_benchmarks import BENCHMARK_NAMES, load_all, load_benchmark

__all__ = [
    "AppSpec",
    "generate_app",
    "span_symbols",
    "clang_like_modules",
    "kernel_like_modules",
    "objc_module",
    "OS_GRID",
    "OSVersion",
    "SpanMeasurement",
    "measure_span",
    "select_spans",
    "span_grid",
    "BENCHMARK_NAMES",
    "load_all",
    "load_benchmark",
]
