"""Synthetic UberRider-style app generator.

Produces a deterministic multi-module Swiftlet code base with the traits the
paper attributes to production iOS apps:

* many feature modules plus shared vendor libraries and a Base module;
* reference-counted model classes and view-controller-style handler chains
  (lots of retain/release + calling-convention shuffles after lowering);
* per-feature JSON-style decoder classes whose throwing inits reproduce the
  Listing 10 / Figure 9 out-of-SSA pattern;
* closures capturing mutable state;
* per-module constant globals read by that module's code (the data-locality
  property the §VI-3 llvm-link ordering experiment depends on);
* cold, run-once span entry points (`mK_span`) for the Figure 13 study;
* a linear *weekly growth* model (new modules + new handlers per module) for
  the Figure 1 code-size-over-time experiment.

Everything is parameterised by :class:`AppSpec` and fully seeded.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class AppSpec:
    """Knobs for one generated app snapshot."""

    seed: int = 2021
    #: Feature modules at week 0 and added per week.
    base_features: int = 12
    features_per_week: float = 0.75
    #: Handlers per feature at week 0 and added per 4 weeks.
    base_handlers: int = 4
    handler_growth_per_week: float = 0.1
    num_vendors: int = 4
    #: Decoder record field count range (min, max).
    record_fields: Tuple[int, int] = (8, 20)
    week: int = 0

    @property
    def num_features(self) -> int:
        return self.base_features + int(self.features_per_week * self.week)

    @property
    def handlers_per_feature(self) -> int:
        return self.base_handlers + int(self.handler_growth_per_week * self.week)

    def at_week(self, week: int) -> "AppSpec":
        return AppSpec(seed=self.seed, base_features=self.base_features,
                       features_per_week=self.features_per_week,
                       base_handlers=self.base_handlers,
                       handler_growth_per_week=self.handler_growth_per_week,
                       num_vendors=self.num_vendors,
                       record_fields=self.record_fields, week=week)


# --- Base module -----------------------------------------------------------

_BASE_MODULE = '''
var logCount = 0
var eventCount = 0
let appBuild = 4021
let retryLimit = 3

func log(code: Int) {
    logCount = logCount + code
}

func bump() {
    eventCount = eventCount + 1
}

func clamp(x: Int, lo: Int, hi: Int) -> Int {
    if x < lo { return lo }
    if x > hi { return hi }
    return x
}

func mix(a: Int, b: Int) -> Int {
    return (a * 31 + b) % 65537
}

class Box {
    var value: Int
    init(value: Int) {
        self.value = value
    }
    func add(k: Int) {
        self.value = self.value + k
    }
}

class FieldSource {
    var values: [Int]
    var failKey: Int
    init(n: Int, failKey: Int) {
        self.values = [Int](repeating: 7, count: n)
        var i = 0
        while i < n {
            self.values[i] = mix(a: i, b: n)
            i += 1
        }
        self.failKey = failKey
    }
    func getInt(key: Int) throws -> Int {
        if key == self.failKey { throw key }
        return self.values[key % self.values.count]
    }
    func getString(key: Int) throws -> String {
        if key == self.failKey { throw key }
        if self.values[key % self.values.count] % 2 == 0 {
            return "even"
        }
        return "odd"
    }
    func getDouble(key: Int) throws -> Double {
        if key == self.failKey { throw key }
        return Double(self.values[key % self.values.count]) * 0.5
    }
}
'''


def _vendor_module(v: int, rng: random.Random) -> str:
    k1 = rng.randint(3, 29)
    k2 = rng.randint(2, 13)
    cap = rng.randint(6, 14)
    return f'''
import Base

let vnd{v}Factor = {k1}
let vnd{v}Bias = {k2}

func vnd{v}Transform(x: Int, y: Int) -> Int {{
    return mix(a: x * vnd{v}Factor + vnd{v}Bias, b: y)
}}

func vnd{v}Fold(a: [Int]) -> Int {{
    var total = 0
    for x in a {{
        total = mix(a: total, b: x)
    }}
    return total
}}

class Vnd{v}Buffer {{
    var data: [Int]
    var size: Int
    init() {{
        self.data = [Int](repeating: 0, count: {cap})
        self.size = 0
    }}
    func push(x: Int) {{
        if self.size < self.data.count {{
            self.data[self.size] = x
            self.size += 1
        }} else {{
            self.data[self.size % self.data.count] = x
        }}
    }}
    func sum() -> Int {{
        var total = 0
        for i in 0..<self.size {{
            total += self.data[i]
        }}
        return total
    }}
}}
'''


def _feature_module(m: int, spec: AppSpec, rng: random.Random) -> str:
    vendor = rng.randrange(spec.num_vendors)
    nfields = rng.randint(*spec.record_fields)
    handlers = spec.handlers_per_feature
    # Spans traverse several modules (a real UI flow touches many features'
    # code): depend on up to five earlier features.
    deps = [d for d in (m - 1, m - 2, m - 3, m - 4, m - 5) if d >= 0][:5]
    imports = [f"import Vendor{vendor}"]
    imports.extend(f"import Feature{d}" for d in deps)
    parts: List[str] = ["import Base\n" + "\n".join(imports) + "\n"]

    # Per-module constant globals (module data affinity for §VI-3): each
    # feature owns a non-trivial slab of data that its handlers read, so
    # llvm-link's global ordering decides how many pages a span touches.
    nglobals = rng.randint(3, 6)
    for g in range(nglobals):
        parts.append(f"let m{m}Cfg{g} = {rng.randint(1, 5000)}")
    parts.append(f'let m{m}Name = "feature-{m}-{rng.randint(100, 999)}"')
    weights = ", ".join(str(rng.randint(1, 99))
                        for _ in range(rng.randint(48, 120)))
    parts.append(f"let m{m}Weights = [{weights}]")
    lookup = ", ".join(str(rng.randint(1, 9999))
                       for _ in range(rng.randint(32, 96)))
    parts.append(f"let m{m}Lookup = [{lookup}]")

    # Model class.
    parts.append(f'''
class M{m}Item {{
    var id: Int
    var score: Double
    var label: String
    var child: M{m}Item
    init(id: Int) {{
        self.id = id
        self.score = Double(id) * 0.25
        self.label = m{m}Name
        self.child = nil
    }}
    func touch(k: Int) {{
        self.id = self.id + k * {1 + m % 3}
        self.score = self.score + Double(k)
        log(code: {1 + m % 5})
    }}
    func chainDepth() -> Int {{
        var depth = 0
        var cur = self.child
        while cur != nil {{
            depth += 1
            if depth > {64 + m} {{ return depth }}
            cur = cur.child
        }}
        return depth
    }}
}}
''')

    # Decoder record with a throwing init over many fields (Listing 10).
    field_decls = []
    field_inits = []
    for f in range(nfields):
        # f0 stays Int: the decode driver accumulates it.
        kind = ("Int" if f == 0
                else rng.choice(["Int", "Int", "Int", "String", "Double"]))
        field_decls.append(f"    let f{f}: {kind}")
        getter = {"Int": "getInt", "String": "getString",
                  "Double": "getDouble"}[kind]
        field_inits.append(
            f"        self.f{f} = try src.{getter}(key: {f})")
    parts.append(
        f"class M{m}Record {{\n"
        + "\n".join(field_decls)
        + f"\n    init(src: FieldSource) throws {{\n"
        + "\n".join(field_inits)
        + "\n    }\n}\n"
    )

    # Handlers: view-controller-style cold code.
    for h in range(handlers):
        const1 = rng.randint(1, 400)
        const2 = rng.randint(2, 30)
        loop_n = rng.randint(2, 5)
        shape = rng.randrange(3)
        if shape == 0:
            body = f'''
    let buf = Vnd{vendor}Buffer()
    var acc = ctx + {const1}
    for i in 0..<{loop_n} {{
        buf.push(x: vnd{vendor}Transform(x: acc, y: i))
        acc = clamp(x: acc + i, lo: 0, hi: m{m}Cfg{h % nglobals})
    }}
    let item = M{m}Item(id: acc)
    item.touch(k: {const2})
    bump()
    return acc + buf.sum() + item.id + m{m}Weights[{h} % m{m}Weights.count]'''
        elif shape == 1:
            body = f'''
    var acc = mix(a: ctx, b: {const1})
    let item = M{m}Item(id: acc)
    let extra = M{m}Item(id: acc + {const2})
    item.child = extra
    item.touch(k: {const2})
    acc += item.chainDepth() * m{m}Cfg{h % nglobals}
    log(code: acc % 13)
    return acc + vnd{vendor}Transform(x: ctx, y: {const1})'''
        else:
            body = f'''
    var acc = ctx
    let step = {{ (d: Int) -> Int in
        acc = acc + d + {const2}
        return acc
    }}
    var total = 0
    for i in 0..<{loop_n} {{
        total += step(i)
    }}
    let box = Box(value: total)
    box.add(k: m{m}Cfg{h % nglobals})
    bump()
    return box.value + acc'''
        parts.append(
            f"func m{m}Handler{h}(ctx: Int) -> Int {{{body}\n}}\n")

    # Decode driver: success-heavy with a failing tail (error paths run).
    parts.append(f'''
func m{m}Decode(count: Int) -> Int {{
    var ok = 0
    for i in 0..<count {{
        var failKey = 9999
        if i % 5 == 4 {{ failKey = i % {max(2, nfields)} }}
        let src = FieldSource(n: {max(4, nfields)}, failKey: failKey)
        do {{
            let rec = try M{m}Record(src: src)
            ok += rec.f0
        }} catch {{
            ok -= error
        }}
    }}
    return ok
}}
''')

    # The module's flow: every handler once, plus its own data slab (the
    # affinity llvm-link ordering can destroy, §VI-3).
    calls = "\n".join(
        f"    total += m{m}Handler{h}(ctx: {rng.randint(1, 50)})"
        for h in range(handlers))
    parts.append(f'''
func m{m}Flow(ctx: Int) -> Int {{
    var total = ctx
{calls}
    total += m{m}Weights[0] + m{m}Weights[total % m{m}Weights.count]
    total += m{m}Lookup[total % m{m}Lookup.count]
    return total
}}
''')

    # The cold span entry (Figure 13): a UI flow traversing this module and
    # its dependencies exactly once — large code footprint, few hot loops.
    dep_calls = "\n".join(
        f"    total += m{d}Flow(ctx: {rng.randint(1, 50)})" for d in deps)
    parts.append(f'''
func m{m}Span() {{
    var total = m{m}Flow(ctx: 7)
{dep_calls}
    total += m{m}Decode(count: 2)
    log(code: total % 97)
}}
''')
    return "\n".join(parts)


def _main_module(num_features: int) -> str:
    imports = "\n".join(f"import Feature{m}" for m in range(num_features))
    calls = "\n".join(f"    m{m}Span()" for m in range(num_features))
    return f'''import Base
{imports}

func main() {{
{calls}
    print(logCount)
    print(eventCount)
}}
'''


def generate_app(spec: AppSpec) -> Dict[str, str]:
    """Generate the app's source modules (name -> Swiftlet source)."""
    rng = random.Random(spec.seed)
    modules: Dict[str, str] = {"Base": _BASE_MODULE}
    for v in range(spec.num_vendors):
        vendor_rng = random.Random(rng.randint(0, 2 ** 31) + v)
        modules[f"Vendor{v}"] = _vendor_module(v, vendor_rng)
    for m in range(spec.num_features):
        # Module content depends only on (seed, m) so that week N+1 keeps
        # week N's modules byte-identical (realistic incremental growth).
        feature_rng = random.Random((spec.seed * 1_000_003 + m) & 0x7FFFFFFF)
        modules[f"Feature{m}"] = _feature_module(m, spec, feature_rng)
    modules["Main"] = _main_module(spec.num_features)
    return modules


def module_fingerprints(spec: AppSpec) -> Dict[str, str]:
    """Stable per-module source fingerprint (sha256 of the module text).

    Because module content depends only on ``(seed, module index)``, week
    N+1 keeps every week-N fingerprint unchanged; the build cache keys off
    exactly these hashes, so weekly-growth experiments re-lower only the
    modules that week added.
    """
    return {name: hashlib.sha256(text.encode("utf-8")).hexdigest()
            for name, text in generate_app(spec).items()}


def span_symbols(spec: AppSpec) -> List[str]:
    """Entry symbols of every span in the generated app."""
    return [f"Feature{m}::m{m}Span" for m in range(spec.num_features)]


#: A top-level function definition (column 0; methods are indented).
_TOP_LEVEL_FUNC = re.compile(r"^func (\w+)\(", re.MULTILINE)


def _function_extents(source: str) -> List[Tuple[str, int, int]]:
    """(name, start, end) character extents of each top-level function.

    A definition runs from its ``func`` line to the next line that is a
    lone ``}`` at column 0 — how the generator closes every top-level
    function it emits.
    """
    extents: List[Tuple[str, int, int]] = []
    for match in _TOP_LEVEL_FUNC.finditer(source):
        close = source.find("\n}", match.start())
        end = close + 2 if close >= 0 else len(source)
        extents.append((match.group(1), match.start(), end))
    return extents


def function_fingerprints(spec: AppSpec) -> Dict[str, Dict[str, str]]:
    """module -> {function name -> sha256 of its source text}.

    The function-level analogue of :func:`module_fingerprints`: an edit
    that touches one function changes exactly one entry, which is what
    the scale benchmark asserts against the build's per-function cache
    gauges (one changed fingerprint => one function recompiled).
    """
    out: Dict[str, Dict[str, str]] = {}
    for name, text in generate_app(spec).items():
        out[name] = {
            fn: hashlib.sha256(text[start:end].encode("utf-8")).hexdigest()
            for fn, start, end in _function_extents(text)}
    return out


def edit_function(source: str, func_name: str, marker: int = 1) -> str:
    """Return *source* with one statement added at the top of a function.

    Simulates the paper's developer inner loop — touch one function, hit
    build — without changing anything else in the module: the inserted
    ``log(code: ...)`` line alters only ``func_name``'s body, so exactly
    one function fingerprint (and one function-level cache key) changes.
    """
    matches = [m for m in _TOP_LEVEL_FUNC.finditer(source)
               if m.group(1) == func_name]
    if len(matches) != 1:
        raise ValueError(f"expected exactly one definition of {func_name}, "
                         f"found {len(matches)}")
    line_end = source.index("\n", matches[0].start())
    return (source[:line_end]
            + f"\n    log(code: {marker})"
            + source[line_end:])
