"""The 26 Swift algorithm benchmarks (Table IV), written in Swiftlet.

Each ``.sw`` file is a single-module program with a ``main()`` that runs
the algorithm on a deterministic input and prints checksums — mirroring the
paper's single-compilation-unit artifact benchmarks ("the benchmarks are
small and single-module; hence, they do not represent a typical use case").
"""

from __future__ import annotations

import os
from typing import Dict, List

_HERE = os.path.dirname(__file__)

#: Table IV order.
BENCHMARK_NAMES: List[str] = [
    "BFS", "BoyerMooreHorspool", "BucketSort", "ClosestPair",
    "Combinatorics", "CountingSort", "CountOccurrences", "DFS",
    "Dijkstra", "EncodeAndDecodeTree", "GCD", "HashTable", "Huffman",
    "JSON", "KnuthMorrisPratt", "LCS", "LRUCache", "OctTree",
    "QuickSort", "RedBlackTree", "RunLengthEncoding",
    "SimulatedAnnealing", "SplayTree", "StrassenMM", "TopologicalSort",
    "ZAlgorithm",
]


def load_benchmark(name: str) -> str:
    """Source text of one benchmark."""
    path = os.path.join(_HERE, f"{name}.sw")
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def load_all() -> Dict[str, str]:
    return {name: load_benchmark(name) for name in BENCHMARK_NAMES}
