"""Core-span performance scenarios (Figure 13, Table III).

A *span* is a developer-named critical use case — here, a feature module's
cold entry path (``mK_span``).  Each measurement executes one span from a
cold microarchitectural state (empty caches, no resident pages) on one
simulated device (cache configuration) under one simulated OS version
(memory-system cost multiplier), mirroring the paper's device x OS grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.build import BuildResult
from repro.sim.cpu import run_binary
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel
from repro.workloads.appgen import AppSpec, span_symbols


@dataclass(frozen=True)
class OSVersion:
    """OS versions scale the memory-system costs (pager, TLB handling)."""

    name: str
    memory_cost_factor: float


OS_GRID: Tuple[OSVersion, ...] = (
    OSVersion("12.4", 1.15),
    OSVersion("13.3", 1.05),
    OSVersion("13.5.1", 1.0),
    OSVersion("14.0", 0.92),
)


def device_for_os(device: DeviceConfig, os_version: OSVersion) -> DeviceConfig:
    factor = os_version.memory_cost_factor
    return replace(
        device,
        icache_miss_cycles=max(1, round(device.icache_miss_cycles * factor)),
        itlb_miss_cycles=max(1, round(device.itlb_miss_cycles * factor)),
        data_page_fault_cycles=max(1, round(device.data_page_fault_cycles * factor)),
        text_page_fault_cycles=max(1, round(device.text_page_fault_cycles * factor)),
    )


@dataclass
class SpanMeasurement:
    span: str
    device: str
    os_version: str
    cycles: int
    steps: int
    data_page_faults: int
    icache_misses: int


def measure_span(build: BuildResult, entry_symbol: str,
                 device: DeviceConfig, os_version: OSVersion,
                 max_steps: int = 20_000_000) -> SpanMeasurement:
    """Run one span cold and return its cycle count."""
    timing = TimingModel(device_for_os(device, os_version))
    result = run_binary(build.image, registry=build.registry, timing=timing,
                        entry_symbol=entry_symbol, max_steps=max_steps,
                        check_leaks=False)
    return SpanMeasurement(
        span=entry_symbol,
        device=device.name,
        os_version=os_version.name,
        cycles=result.cycles or 0,
        steps=result.steps,
        data_page_faults=timing.data_page_faults,
        icache_misses=timing.icache.misses,
    )


def select_spans(spec: AppSpec, count: int = 9) -> List[str]:
    """The paper evaluates 9 named core spans; pick a spread of features.

    Prefer higher-index features: their spans traverse a full dependency
    chain of modules, like real UI flows (low-index features have no deps
    and behave like the paper's shortest span).
    """
    symbols = span_symbols(spec)
    # Features below index 5 have truncated dependency chains; a "core
    # span" is a deep flow, so draw from the fully-linked features.
    eligible = symbols[min(5, max(0, len(symbols) - count)):]
    if len(eligible) <= count:
        return eligible
    stride = len(eligible) / count
    return [eligible[int(i * stride)] for i in range(count)]


def span_grid(build: BuildResult, spans: Sequence[str],
              devices: Sequence[DeviceConfig] = DEVICE_GRID,
              os_versions: Sequence[OSVersion] = OS_GRID,
              max_steps: int = 20_000_000) -> Dict[Tuple[str, str, str],
                                                   SpanMeasurement]:
    """Measure every (span, device, OS) cell."""
    out: Dict[Tuple[str, str, str], SpanMeasurement] = {}
    for span in spans:
        for device in devices:
            for os_version in os_versions:
                m = measure_span(build, span, device, os_version,
                                 max_steps=max_steps)
                out[(span, device.name, os_version.name)] = m
    return out
