"""Hardware simulation: interpreter, caches, timing model, profiles."""

from repro.sim.cpu import CPU, ExecutionResult, run_binary
from repro.sim.profile import LayoutProfile, ProfileCollector
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel

__all__ = ["CPU", "ExecutionResult", "run_binary", "TimingModel",
           "DeviceConfig", "DEVICE_GRID", "LayoutProfile",
           "ProfileCollector"]
