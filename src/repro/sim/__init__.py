"""Hardware simulation: interpreter, caches, timing model."""

from repro.sim.cpu import CPU, ExecutionResult, run_binary
from repro.sim.timing import DEVICE_GRID, DeviceConfig, TimingModel

__all__ = ["CPU", "ExecutionResult", "run_binary", "TimingModel",
           "DeviceConfig", "DEVICE_GRID"]
