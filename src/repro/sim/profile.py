"""Execution profiles for profile-guided function layout.

A :class:`ProfileCollector` rides along on a :class:`~repro.sim.cpu.CPU`
run and records, at branch granularity only (the fetch/execute loop stays
uninstrumented), every control transfer that crosses or conditions on a
function boundary:

* **caller -> callee call edges** (BL, BLR, and tail calls), the input to
  the C3-style cluster-and-merge layout pass in
  :mod:`repro.link.funclayout`;
* **taken conditional branches per function**, the raw material for a
  future basic-block layout pass (recorded now so profiles do not need a
  format change later).

The serialized :class:`LayoutProfile` is keyed by *function name*, never
by address, so a profile collected under one layout is valid input for
relinking under any other — the fixed point the layout experiment relies
on.  Serialization is canonical (sorted keys, no timestamps, no floats),
which makes the JSON bytes content-addressable: :meth:`LayoutProfile.digest`
is a safe build-cache-key ingredient, and the determinism harness asserts
byte-identical profiles across processes and worker counts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProfileError

#: Bump when the serialized shape changes; load() rejects other versions.
PROFILE_VERSION = 1


@dataclass
class LayoutProfile:
    """A deterministic, name-keyed call-graph profile of one execution."""

    #: caller name -> callee name -> dynamic call count.
    calls: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: function name -> taken conditional branches executed inside it.
    taken_branches: Dict[str, int] = field(default_factory=dict)
    #: Target the profiled image was linked for (informational).
    target: str = ""
    #: Entry symbol the profiled run started from (informational).
    entry: str = ""

    # -- derived views ------------------------------------------------------

    def edge_weights(self) -> Dict[Tuple[str, str], int]:
        """Flat (caller, callee) -> count map for the layout pass."""
        return {(caller, callee): count
                for caller, callees in self.calls.items()
                for callee, count in callees.items()}

    @property
    def num_edges(self) -> int:
        return sum(len(callees) for callees in self.calls.values())

    @property
    def num_functions(self) -> int:
        names = set(self.calls) | set(self.taken_branches)
        for callees in self.calls.values():
            names.update(callees)
        return len(names)

    # -- canonical serialization -------------------------------------------

    def to_json_bytes(self) -> bytes:
        """Canonical bytes: sorted keys, compact separators, no volatile
        fields — two semantically equal profiles serialize identically."""
        payload = {
            "version": PROFILE_VERSION,
            "target": self.target,
            "entry": self.entry,
            "calls": {caller: dict(sorted(callees.items()))
                      for caller, callees in sorted(self.calls.items())},
            "taken_branches": dict(sorted(self.taken_branches.items())),
        }
        return (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")

    def digest(self) -> str:
        """sha256 of the canonical bytes (the content address)."""
        return hashlib.sha256(self.to_json_bytes()).hexdigest()

    def save(self, path: str) -> str:
        """Write the canonical JSON to *path*; returns the digest."""
        data = self.to_json_bytes()
        try:
            with open(path, "wb") as fh:
                fh.write(data)
        except OSError as exc:
            raise ProfileError(f"cannot write profile {path!r}: {exc}") \
                from exc
        return hashlib.sha256(data).hexdigest()

    @classmethod
    def load(cls, path: str) -> "LayoutProfile":
        """Read and validate a serialized profile; typed error on junk."""
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise ProfileError(f"cannot read profile {path!r}: {exc}") \
                from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProfileError(f"profile {path!r} is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise ProfileError(f"profile {path!r}: top level must be an "
                               f"object, got {type(payload).__name__}")
        version = payload.get("version")
        if version != PROFILE_VERSION:
            raise ProfileError(
                f"profile {path!r} has version {version!r}; this toolchain "
                f"reads version {PROFILE_VERSION}")
        calls = payload.get("calls", {})
        taken = payload.get("taken_branches", {})
        if not isinstance(calls, dict) or not isinstance(taken, dict):
            raise ProfileError(f"profile {path!r}: 'calls' and "
                               f"'taken_branches' must be objects")
        out_calls: Dict[str, Dict[str, int]] = {}
        for caller, callees in calls.items():
            if not isinstance(callees, dict):
                raise ProfileError(
                    f"profile {path!r}: calls[{caller!r}] must be an object")
            for callee, count in callees.items():
                if not isinstance(count, int) or count < 0:
                    raise ProfileError(
                        f"profile {path!r}: calls[{caller!r}][{callee!r}] "
                        f"must be a non-negative int, got {count!r}")
            out_calls[str(caller)] = {str(k): v for k, v in callees.items()}
        out_taken: Dict[str, int] = {}
        for name, count in taken.items():
            if not isinstance(count, int) or count < 0:
                raise ProfileError(
                    f"profile {path!r}: taken_branches[{name!r}] must be a "
                    f"non-negative int, got {count!r}")
            out_taken[str(name)] = count
        return cls(calls=out_calls, taken_branches=out_taken,
                   target=str(payload.get("target", "")),
                   entry=str(payload.get("entry", "")))


def profile_file_digest(path: str) -> str:
    """Digest of an on-disk profile for cache-key fingerprints.

    Loads through :meth:`LayoutProfile.load` (so a corrupt or mis-versioned
    file raises :class:`ProfileError` at fingerprint time, before it can
    key a cache entry) and re-digests the canonical bytes, making the
    fingerprint independent of incidental whitespace in the file.
    """
    return LayoutProfile.load(path).digest()


class ProfileCollector:
    """Records raw address-level transfers during a run; address->name
    resolution is deferred to :meth:`finalize` so the per-event cost is a
    dict increment and the hot loop never does extent lookups."""

    def __init__(self) -> None:
        self._call_pairs: Dict[Tuple[int, int], int] = {}
        self._taken: Dict[int, int] = {}

    # -- event hooks (called from CPU._execute on branch opcodes only) -----

    def on_call(self, src_pc: int, dst_addr: int) -> None:
        key = (src_pc, dst_addr)
        self._call_pairs[key] = self._call_pairs.get(key, 0) + 1

    def on_taken_branch(self, src_pc: int) -> None:
        self._taken[src_pc] = self._taken.get(src_pc, 0) + 1

    @property
    def raw_transfers(self) -> int:
        return sum(self._call_pairs.values()) + sum(self._taken.values())

    # -- resolution ---------------------------------------------------------

    def finalize(self, image, entry: Optional[str] = None) -> LayoutProfile:
        """Resolve addresses to function names against *image*.

        Transfers into runtime stubs (native calls) and indirect calls
        into non-text addresses are dropped: the layout pass can only
        place functions that exist in ``__text``.
        """
        calls: Dict[str, Dict[str, int]] = {}
        for (src, dst), count in sorted(self._call_pairs.items()):
            caller = image.function_at(src)
            callee = image.function_at(dst)
            if caller is None or callee is None:
                continue
            callees = calls.setdefault(caller.name, {})
            callees[callee.name] = callees.get(callee.name, 0) + count
        taken: Dict[str, int] = {}
        for src, count in sorted(self._taken.items()):
            fn = image.function_at(src)
            if fn is None:
                continue
            taken[fn.name] = taken.get(fn.name, 0) + count
        return LayoutProfile(calls=calls, taken_branches=taken,
                             target=image.target_name,
                             entry=entry or image.entry_symbol or "")
