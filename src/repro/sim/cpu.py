"""Machine-code interpreter for the AArch64-like target.

Executes a linked :class:`BinaryImage` with full semantics: registers,
NZCV flags, word-addressed memory, a refcounting heap, and native runtime
functions.  An optional :class:`TimingModel` accumulates cycles.

The interpreter is strict: reads of undefined memory, type-confused cells
(int load of a float cell), over-releases, and out-of-range jumps all raise
— this is what lets the test suite prove outlining preserves semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import SimulationError, TrapError
from repro.isa.instructions import Cond, MachineInstr, Opcode
from repro.link.binary import BinaryImage, HEAP_BASE, STACK_BASE
from repro.obs import trace as obs_trace
from repro.runtime.functions import HANDLERS
from repro.runtime.objects import Heap, TypeRegistry
from repro.sim.profile import ProfileCollector
from repro.sim.timing import TimingModel
from repro.target import get_target

EXIT_SENTINEL = 0xDEAD0000
_INT_MASK = (1 << 64) - 1
_TRAP_NAMES = {0: "unreachable", 1: "array index out of range",
               2: "assertion failed", 3: "division by zero", 4: "trap"}


def _wrap(value: int) -> int:
    value &= _INT_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


@dataclass
class ExecutionResult:
    output: List[str]
    steps: int
    outlined_steps: int
    cycles: Optional[int]
    leaked: List[int]
    heap_stats: object
    timing: Optional[TimingModel] = None

    @property
    def stdout(self) -> str:
        return "\n".join(self.output)


class CPU:
    """Interprets a linked binary image."""

    def __init__(self, image: BinaryImage,
                 registry: Optional[TypeRegistry] = None,
                 timing: Optional[TimingModel] = None,
                 max_steps: int = 100_000_000,
                 profile: Optional[ProfileCollector] = None):
        self.image = image
        self.timing = timing
        self.profile = profile
        self.max_steps = max_steps
        self.regs: Dict[str, Union[int, float]] = {}
        for i in range(31):
            self.regs[f"x{i}"] = 0
        for i in range(32):
            self.regs[f"d{i}"] = 0.0
        self.regs["sp"] = STACK_BASE
        self.flags = (False, True, True, False)  # n z c v
        self.memory: Dict[int, Union[int, float]] = dict(image.data_init)
        self.heap = Heap(self.memory, HEAP_BASE, registry)
        self.output: List[str] = []
        self.runtime_state: Dict[str, int] = {}
        self.steps = 0
        self.outlined_steps = 0
        self.pc = 0
        self._stack_limit = STACK_BASE - (1 << 22)  # 4 MiB stack
        self._outlined_index = self._compute_outlined_indices()
        self._data_lo = image.data_base
        self._data_hi = image.data_end
        # Variable-width fetch state: address -> instruction index, and the
        # per-instruction encoded widths.  ``None`` selects the uniform
        # fixed-width fast path (pc -> index by shift).
        if image.instr_addrs is not None:
            spec = get_target(image.target_name)
            self._addr_to_idx: Optional[Dict[int, int]] = {
                addr: i for i, addr in enumerate(image.instr_addrs)}
            self._widths: Optional[List[int]] = [
                spec.instr_bytes(i) for i in image.instrs]
        else:
            self._addr_to_idx = None
            self._widths = None

    def _compute_outlined_indices(self) -> List[bool]:
        flags = [False] * len(self.image.instrs)
        for ext in self.image.functions:
            if ext.is_outlined:
                lo = self.image.index_of_addr(ext.start)
                hi = self.image.index_of_addr(ext.end)
                for i in range(lo, hi):
                    flags[i] = True
        return flags

    # -- register access ----------------------------------------------------

    def _r(self, reg: str) -> int:
        if reg == "xzr":
            return 0
        return self.regs[reg]  # type: ignore[return-value]

    def _read_int(self, addr: int) -> int:
        value = self.memory.get(addr)
        if value is None:
            raise SimulationError(
                f"read of undefined memory at 0x{addr:x} (pc=0x{self.pc:x})")
        if isinstance(value, float):
            raise SimulationError(
                f"integer load of float cell at 0x{addr:x} (pc=0x{self.pc:x})")
        return value

    def _read_any(self, addr: int):
        """Raw read for pair save/restore (register class agnostic)."""
        value = self.memory.get(addr)
        if value is None:
            raise SimulationError(
                f"read of undefined memory at 0x{addr:x} (pc=0x{self.pc:x})")
        return value

    def _read_float(self, addr: int) -> float:
        value = self.memory.get(addr)
        if value is None:
            raise SimulationError(
                f"read of undefined memory at 0x{addr:x} (pc=0x{self.pc:x})")
        return float(value)

    def _write(self, addr: int, value: Union[int, float]) -> None:
        if addr < 0:
            raise SimulationError(f"write to negative address 0x{addr:x}")
        self.memory[addr] = value
        if self.timing is not None and self._data_lo <= addr < self._data_hi:
            self.timing.on_data_access(addr)

    def _read_mem_int(self, addr: int) -> int:
        value = self._read_int(addr)
        if self.timing is not None and self._data_lo <= addr < self._data_hi:
            self.timing.on_data_access(addr)
        return value

    def _read_mem_float(self, addr: int) -> float:
        value = self._read_float(addr)
        if self.timing is not None and self._data_lo <= addr < self._data_hi:
            self.timing.on_data_access(addr)
        return value

    # -- flags ------------------------------------------------------------------

    def _set_flags_sub(self, a: int, b: int) -> int:
        result = _wrap(a - b)
        ua = a & _INT_MASK
        ub = b & _INT_MASK
        n = result < 0
        z = result == 0
        c = ua >= ub
        v = ((a < 0) != (b < 0)) and ((a < 0) != (result < 0))
        self.flags = (n, z, c, v)
        return result

    def _set_flags_fcmp(self, a: float, b: float) -> None:
        if a != a or b != b:  # NaN
            self.flags = (False, False, True, True)
            return
        self.flags = (a < b, a == b, a >= b, False)

    def _cond(self, cond: Cond) -> bool:
        n, z, c, v = self.flags
        if cond is Cond.EQ:
            return z
        if cond is Cond.NE:
            return not z
        if cond is Cond.LT:
            return n != v
        if cond is Cond.GE:
            return n == v
        if cond is Cond.GT:
            return (not z) and n == v
        if cond is Cond.LE:
            return z or n != v
        if cond is Cond.HS:
            return c
        if cond is Cond.LO:
            return not c
        raise SimulationError(f"unknown condition {cond}")

    # -- execution ---------------------------------------------------------------

    def run(self, entry_symbol: Optional[str] = None,
            check_leaks: bool = True) -> ExecutionResult:
        symbol = entry_symbol or self.image.entry_symbol
        if symbol is None or symbol not in self.image.symbols:
            raise SimulationError(f"no entry symbol {symbol!r}")
        self.pc = self.image.symbols[symbol]
        self.regs["x30"] = EXIT_SENTINEL
        self.regs["sp"] = STACK_BASE
        instrs = self.image.instrs
        base = self.image.text_base
        timing = self.timing
        while True:
            if self.pc == EXIT_SENTINEL:
                break
            if self._addr_to_idx is None:
                idx = (self.pc - base) >> 2
                if idx < 0 or idx >= len(instrs):
                    raise SimulationError(
                        f"pc out of text range: 0x{self.pc:x}")
            else:
                idx = self._addr_to_idx.get(self.pc, -1)
                if idx < 0:
                    raise SimulationError(
                        f"pc is not an instruction start: 0x{self.pc:x}")
            self.steps += 1
            if self.steps > self.max_steps:
                raise SimulationError(
                    f"step limit exceeded ({self.max_steps})")
            if self._outlined_index[idx]:
                self.outlined_steps += 1
            if timing is not None:
                timing.on_instr(self.pc,
                                4 if self._widths is None
                                else self._widths[idx])
            self._execute(instrs[idx], idx)
        leaked = self.heap.leaked_objects() if check_leaks else []
        self._record_metrics(leaked)
        return ExecutionResult(
            output=self.output,
            steps=self.steps,
            outlined_steps=self.outlined_steps,
            cycles=timing.cycles if timing is not None else None,
            leaked=leaked,
            heap_stats=self.heap.stats,
            timing=timing,
        )

    def _record_metrics(self, leaked: List[int]) -> None:
        """Publish execution counters to the ambient metrics registry
        (run-end only: the fetch/execute loop stays uninstrumented)."""
        metrics = obs_trace.metrics()
        if not metrics.enabled:
            return
        metrics.inc("sim.instructions_retired", self.steps)
        metrics.inc("sim.outlined_instructions", self.outlined_steps)
        metrics.inc("sim.leaked_objects", len(leaked))
        timing = self.timing
        if timing is None:
            return
        metrics.inc("sim.cycles", timing.cycles)
        icache = timing.icache
        accesses = icache.hits + icache.misses
        metrics.inc("sim.icache_hits", icache.hits)
        metrics.inc("sim.icache_misses", icache.misses)
        metrics.set_gauge("sim.icache_hit_rate",
                          icache.hits / accesses if accesses else 1.0)
        metrics.inc("sim.taken_branches", timing.taken_branches)
        metrics.inc("sim.mispredicts", timing.mispredicts)
        metrics.inc("sim.text_page_faults", timing.text_page_faults)
        metrics.inc("sim.data_page_faults", timing.data_page_faults)

    # -- native dispatch ----------------------------------------------------------

    def _native(self, addr: int) -> bool:
        name = self.image.runtime_stubs.get(addr)
        if name is None:
            return False
        handler, cost = HANDLERS[name]
        handler(self)
        if self.timing is not None:
            self.timing.on_native_call(cost)
        return True

    # -- the big switch --------------------------------------------------------------

    def _execute(self, instr: MachineInstr, idx: int) -> None:
        op = instr.opcode
        ops = instr.operands
        regs = self.regs
        pc = self.pc
        next_pc = pc + (4 if self._widths is None else self._widths[idx])

        if op is Opcode.ORRXrs:
            regs[ops[0]] = self._r(ops[1]) | self._r(ops[2])
        elif op is Opcode.MOVZXi:
            regs[ops[0]] = _wrap(ops[1] << ops[2])
        elif op is Opcode.MOVKXi:
            old = self._r(ops[0]) & _INT_MASK
            shift = ops[2]
            old = (old & ~(0xFFFF << shift)) | (ops[1] << shift)
            regs[ops[0]] = _wrap(old)
        elif op is Opcode.MOVNXi:
            regs[ops[0]] = _wrap(~(ops[1] << ops[2]))
        elif op is Opcode.ADDXri:
            regs[ops[0]] = _wrap(self._r(ops[1]) + ops[2])
        elif op is Opcode.ADDXrr:
            regs[ops[0]] = _wrap(self._r(ops[1]) + self._r(ops[2]))
        elif op is Opcode.SUBXri:
            regs[ops[0]] = _wrap(self._r(ops[1]) - ops[2])
        elif op is Opcode.SUBXrr:
            regs[ops[0]] = _wrap(self._r(ops[1]) - self._r(ops[2]))
        elif op is Opcode.SUBSXri:
            result = self._set_flags_sub(self._r(ops[1]), ops[2])
            if ops[0] != "xzr":
                regs[ops[0]] = result
        elif op is Opcode.SUBSXrr:
            result = self._set_flags_sub(self._r(ops[1]), self._r(ops[2]))
            if ops[0] != "xzr":
                regs[ops[0]] = result
        elif op is Opcode.MADDXrrr:
            regs[ops[0]] = _wrap(
                self._r(ops[1]) * self._r(ops[2]) + self._r(ops[3]))
        elif op is Opcode.MSUBXrrr:
            regs[ops[0]] = _wrap(
                self._r(ops[3]) - self._r(ops[1]) * self._r(ops[2]))
        elif op is Opcode.SDIVXrr:
            a, b = self._r(ops[1]), self._r(ops[2])
            if b == 0:
                regs[ops[0]] = 0
            else:
                q = abs(a) // abs(b)
                regs[ops[0]] = _wrap(-q if (a < 0) != (b < 0) else q)
        elif op is Opcode.ANDXrr:
            regs[ops[0]] = self._r(ops[1]) & self._r(ops[2])
        elif op is Opcode.EORXrr:
            regs[ops[0]] = _wrap(self._r(ops[1]) ^ self._r(ops[2]))
        elif op is Opcode.LSLVXrr:
            regs[ops[0]] = _wrap(self._r(ops[1]) << (self._r(ops[2]) & 63))
        elif op is Opcode.LSRVXrr:
            regs[ops[0]] = _wrap(
                (self._r(ops[1]) & _INT_MASK) >> (self._r(ops[2]) & 63))
        elif op is Opcode.ASRVXrr:
            regs[ops[0]] = self._r(ops[1]) >> (self._r(ops[2]) & 63)
        elif op is Opcode.CSETXi:
            regs[ops[0]] = 1 if self._cond(ops[1]) else 0
        elif op is Opcode.ADRP:
            regs[ops[0]] = self.image.resolved_sym[idx] & ~0xFFF
        elif op is Opcode.ADDlo:
            regs[ops[0]] = self._r(ops[1]) + (
                self.image.resolved_sym[idx] & 0xFFF)
        elif op is Opcode.LDRXui:
            regs[ops[0]] = self._read_mem_int(self._r(ops[1]) + ops[2])
        elif op is Opcode.STRXui:
            self._write(self._r(ops[1]) + ops[2], self._r(ops[0]))
        elif op is Opcode.LDRXroX:
            regs[ops[0]] = self._read_mem_int(
                self._r(ops[1]) + (self._r(ops[2]) << 3))
        elif op is Opcode.STRXroX:
            self._write(self._r(ops[1]) + (self._r(ops[2]) << 3),
                        self._r(ops[0]))
        elif op is Opcode.LDPXi:
            addr = self._r(ops[2]) + ops[3]
            regs[ops[0]] = self._read_any(addr)
            regs[ops[1]] = self._read_any(addr + 8)
        elif op is Opcode.STPXi:
            addr = self._r(ops[2]) + ops[3]
            self._write(addr, regs[ops[0]])
            self._write(addr + 8, regs[ops[1]])
        elif op is Opcode.STPXpre:
            addr = self._r(ops[2]) + ops[3]
            if addr < self._stack_limit:
                raise SimulationError("stack overflow")
            self._write(addr, regs[ops[0]])
            self._write(addr + 8, regs[ops[1]])
            regs[ops[2]] = addr
        elif op is Opcode.LDPXpost:
            addr = self._r(ops[2])
            regs[ops[0]] = self._read_any(addr)
            regs[ops[1]] = self._read_any(addr + 8)
            regs[ops[2]] = addr + ops[3]
        elif op is Opcode.STRXpre:
            addr = self._r(ops[1]) + ops[2]
            if addr < self._stack_limit:
                raise SimulationError("stack overflow")
            self._write(addr, regs[ops[0]])
            regs[ops[1]] = addr
        elif op is Opcode.LDRXpost:
            addr = self._r(ops[1])
            regs[ops[0]] = self._read_any(addr)
            regs[ops[1]] = addr + ops[2]
        elif op is Opcode.FMOVDr:
            regs[ops[0]] = float(regs[ops[1]])  # type: ignore[arg-type]
        elif op is Opcode.FMOVDi:
            regs[ops[0]] = float(ops[1])
        elif op is Opcode.FADDDrr:
            regs[ops[0]] = float(regs[ops[1]]) + float(regs[ops[2]])
        elif op is Opcode.FSUBDrr:
            regs[ops[0]] = float(regs[ops[1]]) - float(regs[ops[2]])
        elif op is Opcode.FMULDrr:
            regs[ops[0]] = float(regs[ops[1]]) * float(regs[ops[2]])
        elif op is Opcode.FDIVDrr:
            b = float(regs[ops[2]])
            if b == 0.0:
                a = float(regs[ops[1]])
                regs[ops[0]] = float("nan") if a == 0.0 else (
                    float("inf") if a > 0 else float("-inf"))
            else:
                regs[ops[0]] = float(regs[ops[1]]) / b
        elif op is Opcode.FSQRTDr:
            value = float(regs[ops[1]])
            regs[ops[0]] = value ** 0.5 if value >= 0 else float("nan")
        elif op is Opcode.FNEGDr:
            regs[ops[0]] = -float(regs[ops[1]])
        elif op is Opcode.FCMPDrr:
            self._set_flags_fcmp(float(regs[ops[0]]), float(regs[ops[1]]))
        elif op is Opcode.SCVTFDX:
            regs[ops[0]] = float(self._r(ops[1]))
        elif op is Opcode.FCVTZSXD:
            regs[ops[0]] = _wrap(int(float(regs[ops[1]])))
        elif op is Opcode.LDRDui:
            regs[ops[0]] = self._read_mem_float(self._r(ops[1]) + ops[2])
        elif op is Opcode.STRDui:
            self._write(self._r(ops[1]) + ops[2], float(regs[ops[0]]))
        elif op is Opcode.LDRDroX:
            regs[ops[0]] = self._read_mem_float(
                self._r(ops[1]) + (self._r(ops[2]) << 3))
        elif op is Opcode.STRDroX:
            self._write(self._r(ops[1]) + (self._r(ops[2]) << 3),
                        float(regs[ops[0]]))
        elif op is Opcode.B:
            target = self.image.resolved_target[idx]
            if self.profile is not None and instr.is_tail_call:
                self.profile.on_call(pc, target)
            if instr.is_tail_call and self._native(target):
                # Tail call into the runtime: return to the caller.
                next_pc = self._r("x30")
            else:
                if self.timing is not None:
                    self.timing.on_uncond_branch(pc, target)
                next_pc = target
        elif op is Opcode.Bcc:
            if self._cond(ops[0]):
                target = self.image.resolved_target[idx]
                if self.timing is not None:
                    self.timing.on_taken_branch(pc, target)
                if self.profile is not None:
                    self.profile.on_taken_branch(pc)
                next_pc = target
        elif op is Opcode.CBZX:
            if self._r(ops[0]) == 0:
                target = self.image.resolved_target[idx]
                if self.timing is not None:
                    self.timing.on_taken_branch(pc, target)
                if self.profile is not None:
                    self.profile.on_taken_branch(pc)
                next_pc = target
        elif op is Opcode.CBNZX:
            if self._r(ops[0]) != 0:
                target = self.image.resolved_target[idx]
                if self.timing is not None:
                    self.timing.on_taken_branch(pc, target)
                if self.profile is not None:
                    self.profile.on_taken_branch(pc)
                next_pc = target
        elif op is Opcode.BL:
            target = self.image.resolved_target[idx]
            regs["x30"] = next_pc
            if self.profile is not None:
                self.profile.on_call(pc, target)
            if not self._native(target):
                if self.timing is not None:
                    self.timing.on_uncond_branch(pc, target)
                    self.timing.on_call_return()
                next_pc = target
        elif op is Opcode.BLR:
            target = self._r(ops[0])
            regs["x30"] = next_pc
            if self.profile is not None:
                self.profile.on_call(pc, target)
            if not self._native(target):
                if self.timing is not None:
                    self.timing.on_taken_branch(pc, target)
                    self.timing.on_call_return()
                next_pc = target
        elif op is Opcode.RET:
            target = self._r("x30")
            if self.timing is not None and target != EXIT_SENTINEL:
                self.timing.on_return()
            next_pc = target
        elif op is Opcode.BRK:
            code = ops[0] if ops else 0
            raise TrapError(
                f"trap: {_TRAP_NAMES.get(code, 'trap')} (pc=0x{pc:x})",
                code=code)
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover
            raise SimulationError(f"unimplemented opcode {op}")
        self.pc = next_pc


def run_binary(image: BinaryImage, registry: Optional[TypeRegistry] = None,
               timing: Optional[TimingModel] = None,
               entry_symbol: Optional[str] = None,
               max_steps: int = 100_000_000,
               check_leaks: bool = True,
               profile: Optional[ProfileCollector] = None) -> ExecutionResult:
    """Convenience wrapper: build a CPU and run the image's entry point."""
    cpu = CPU(image, registry=registry, timing=timing, max_steps=max_steps,
              profile=profile)
    with obs_trace.span("sim-run", kind="sim",
                        entry=entry_symbol or image.entry_symbol or "",
                        timed=timing is not None) as span:
        result = cpu.run(entry_symbol=entry_symbol, check_leaks=check_leaks)
        span.annotate(steps=result.steps,
                      outlined_steps=result.outlined_steps)
    return result
