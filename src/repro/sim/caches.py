"""Set-associative cache and TLB models (LRU replacement).

Used by the timing model for the instruction cache and iTLB — the two
structures whose pressure the paper credits for outlining's mild *speedups*
on cold-code-heavy spans ("smaller instruction footprint and hence possibly
less icache and iTLB pressure").
"""

from __future__ import annotations

from typing import Dict, List


class SetAssociativeCache:
    """A classic set-associative LRU cache keyed by block address."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int):
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, size_bytes // (line_bytes * ways))
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch *addr*; returns True on hit."""
        line = addr // self.line_bytes
        idx = line % self.num_sets
        ways = self._sets[idx]
        try:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        except ValueError:
            self.misses += 1
            ways.append(line)
            if len(ways) > self.ways:
                ways.pop(0)
            return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class TLB(SetAssociativeCache):
    """A TLB is just a small cache of page numbers."""

    def __init__(self, entries: int, page_bytes: int, ways: int = 4):
        super().__init__(size_bytes=entries * page_bytes, line_bytes=page_bytes,
                         ways=ways)
