"""Cycle-level timing model for the interpreter.

Deliberately simple but carrying every effect the paper's evaluation
reasons about:

* base cost 1 cycle per instruction (in-order issue approximation);
* I-cache misses and iTLB misses (smaller code footprint -> fewer misses,
  which is how whole-program outlining *gains* performance on cold spans);
* taken-branch overhead plus a first-encounter misprediction penalty
  (the cost outlining *adds*: every outlined occurrence executes an extra
  BL/RET pair — "outlined branches are predictable by modern hardware, and
  the cost is largely hidden in the pipeline");
* demand-paging cost for first-touch data pages (the §VI-3 llvm-link
  data-layout regression is visible exactly here);
* fixed costs for native runtime calls.

``DeviceConfig`` instances model the paper's device/OS grid (Figure 13):
older devices have smaller caches and slower memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.sim.caches import TLB, SetAssociativeCache


@dataclass(frozen=True)
class DeviceConfig:
    """Simulated device.

    Calibration note: the synthetic app is orders of magnitude smaller than
    a production binary, so per-event memory-system costs are scaled up to
    keep the *ratio* of cold-footprint cost to straight-line execution cost
    representative of a mobile SoC running a 100 MB app (where span time is
    dominated by paging and front-end misses, not retired instructions).
    """

    name: str = "iphone-x"
    icache_bytes: int = 8 * 1024
    icache_ways: int = 4
    line_bytes: int = 64
    itlb_entries: int = 16
    #: Scaled with the app (see calibration note): page-granular paging
    #: costs must track the bytes a span touches, as they do at 100 MB.
    page_bytes: int = 1024
    icache_miss_cycles: int = 30
    itlb_miss_cycles: int = 60
    taken_branch_cycles: int = 1
    #: Predicted unconditional branches/calls/returns on a wide OoO core:
    #: "outlined branches are predictable by modern hardware, and the cost
    #: is largely hidden in the pipeline" (§VII-E-3).
    uncond_branch_cycles: int = 0
    mispredict_cycles: int = 8
    #: First touch of a data page (demand paging / page fault).
    data_page_fault_cycles: int = 3000
    #: First touch of a text page.
    text_page_fault_cycles: int = 2500
    call_return_overhead: int = 0


#: The device rows of Figure 13's heatmaps.
DEVICE_GRID = (
    DeviceConfig(name="iphone-6s", icache_bytes=4 * 1024, itlb_entries=8,
                 icache_miss_cycles=40, itlb_miss_cycles=80,
                 data_page_fault_cycles=4500, text_page_fault_cycles=3800,
                 mispredict_cycles=10),
    DeviceConfig(name="iphone-8", icache_bytes=8 * 1024, itlb_entries=12,
                 icache_miss_cycles=34, itlb_miss_cycles=70,
                 data_page_fault_cycles=3600, text_page_fault_cycles=3000),
    DeviceConfig(name="iphone-x", icache_bytes=8 * 1024, itlb_entries=16),
    DeviceConfig(name="iphone-11", icache_bytes=12 * 1024, itlb_entries=24,
                 icache_miss_cycles=26, itlb_miss_cycles=50,
                 data_page_fault_cycles=2400, text_page_fault_cycles=2000,
                 mispredict_cycles=7),
)


class TimingModel:
    """Accumulates cycles for one execution."""

    def __init__(self, config: Optional[DeviceConfig] = None):
        self.config = config or DeviceConfig()
        cfg = self.config
        self.icache = SetAssociativeCache(cfg.icache_bytes, cfg.line_bytes,
                                          cfg.icache_ways)
        self.itlb = TLB(cfg.itlb_entries, cfg.page_bytes)
        self.cycles = 0
        self.data_pages: Set[int] = set()
        self.text_pages: Set[int] = set()
        self.data_page_faults = 0
        self.text_page_faults = 0
        self.taken_branches = 0
        self.mispredicts = 0
        self._branch_history: Dict[int, int] = {}

    # -- events ------------------------------------------------------------

    def on_instr(self, addr: int, width: int = 4) -> None:
        """Fetch of one instruction at *addr*, *width* bytes long.

        On fixed-width targets a 4-byte instruction at 4-byte alignment can
        never span a cache line, so the extra end-of-instruction access is
        a no-op there; on compressed targets a 4-byte instruction at a
        2-byte boundary can straddle two lines and both are touched.
        """
        self.cycles += 1
        if not self.icache.access(addr):
            self.cycles += self.config.icache_miss_cycles
        last = addr + width - 1
        if last // self.config.line_bytes != addr // self.config.line_bytes:
            if not self.icache.access(last):
                self.cycles += self.config.icache_miss_cycles
        if not self.itlb.access(addr):
            self.cycles += self.config.itlb_miss_cycles
            page = addr // self.config.page_bytes
            if page not in self.text_pages:
                self.text_pages.add(page)
                self.text_page_faults += 1
                self.cycles += self.config.text_page_fault_cycles

    def on_taken_branch(self, src: int, dst: int) -> None:
        """A taken *conditional* branch: predictor history applies."""
        self.taken_branches += 1
        self.cycles += self.config.taken_branch_cycles
        predicted = self._branch_history.get(src)
        if predicted != dst:
            self.mispredicts += 1
            self.cycles += self.config.mispredict_cycles
            self._branch_history[src] = dst

    def on_uncond_branch(self, src: int, dst: int) -> None:
        """B/BL/BLR: direction known at decode; cost hidden by the pipeline."""
        self.taken_branches += 1
        self.cycles += self.config.uncond_branch_cycles

    def on_call_return(self) -> None:
        self.cycles += self.config.call_return_overhead

    def on_return(self) -> None:
        # Returns are predicted by the return-address stack.
        self.taken_branches += 1
        self.cycles += self.config.uncond_branch_cycles

    def on_data_access(self, addr: int) -> None:
        page = addr // self.config.page_bytes
        if page not in self.data_pages:
            self.data_pages.add(page)
            self.data_page_faults += 1
            self.cycles += self.config.data_page_fault_cycles

    def on_native_call(self, cost: int) -> None:
        self.cycles += cost
