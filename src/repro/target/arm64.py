"""The ``arm64`` target: the paper's fixed-width AArch64-like machine.

This spec is built from the same constants `isa/registers.py` has always
exported, with an empty narrow-opcode set (every instruction is 4 bytes).
It is the refactor's correctness oracle: building for ``arm64`` must be
bit-identical to the pre-TargetSpec pipeline.
"""

from __future__ import annotations

from repro.isa import registers as R
from repro.target.spec import (
    CallingConvention,
    RegisterFile,
    TargetSpec,
    WidthModel,
)

ARM64 = TargetSpec(
    name="arm64",
    description="Fixed-width AArch64-like target (4-byte instructions); "
                "the paper's production configuration.",
    regs=RegisterFile(
        gprs=R.GPRS,
        fprs=R.FPRS,
        sp=R.SP,
        zero=R.XZR,
        fp=R.FP,
        lr=R.LR,
    ),
    cc=CallingConvention(
        arg_gprs=R.ARG_GPRS,
        arg_fprs=R.ARG_FPRS,
        ret_gpr=R.RET_GPR,
        ret_fpr=R.RET_FPR,
        error_reg=R.ERROR_REG,
        callee_saved_gprs=R.CALLEE_SAVED_GPRS,
        callee_saved_fprs=R.CALLEE_SAVED_FPRS,
        caller_saved_gprs=R.CALLER_SAVED_GPRS,
        caller_saved_fprs=R.CALLER_SAVED_FPRS,
        allocatable_gprs=R.ALLOCATABLE_GPRS,
        allocatable_fprs=R.ALLOCATABLE_FPRS,
        scratch_gprs=(R.SCRATCH_GPR0, R.SCRATCH_GPR1, R.SCRATCH_GPR2),
        scratch_fprs=(R.SCRATCH_FPR0, R.SCRATCH_FPR1),
        max_reg_args=8,
    ),
    widths=WidthModel(default_bytes=4, narrow_bytes=4,
                      narrow_opcodes=frozenset()),
    function_alignment=4,
    function_metadata_bytes=32,
)
