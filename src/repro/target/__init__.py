"""Pluggable compilation targets.

Every layer that needs a byte size, a register-file fact, or a
calling-convention fact resolves a :class:`~repro.target.spec.TargetSpec`
through this registry instead of importing module-level constants:

    from repro.target import get_target
    spec = get_target("thumb2c")

``get_target(None)`` returns the default target — ``arm64`` unless the
``REPRO_TARGET`` environment variable selects another registered name
(the CI matrix axis).  Passing an existing :class:`TargetSpec` through is
allowed so internal APIs can accept ``Union[str, TargetSpec, None]``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

from repro.target.arm64 import ARM64
from repro.target.spec import (
    CallingConvention,
    RegisterFile,
    TargetSpec,
    WidthModel,
)
from repro.target.thumb2c import THUMB2C

#: Name of the target used when nothing is selected explicitly.
DEFAULT_TARGET_NAME = "arm64"

_REGISTRY: Dict[str, TargetSpec] = {}


def register_target(spec: TargetSpec) -> TargetSpec:
    """Add *spec* to the registry (last registration of a name wins)."""
    _REGISTRY[spec.name] = spec
    return spec


register_target(ARM64)
register_target(THUMB2C)


def available_targets() -> Tuple[str, ...]:
    """Registered target names, sorted."""
    return tuple(sorted(_REGISTRY))


def default_target_name() -> str:
    """The default target name, honouring ``REPRO_TARGET`` if set."""
    env = os.environ.get("REPRO_TARGET", "").strip()
    return env or DEFAULT_TARGET_NAME


def get_target(target: Union[str, TargetSpec, None] = None) -> TargetSpec:
    """Resolve a target name (or ``None`` for the default) to its spec."""
    if isinstance(target, TargetSpec):
        return target
    name = target or default_target_name()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: "
            + ", ".join(available_targets())) from None


__all__ = [
    "ARM64",
    "THUMB2C",
    "CallingConvention",
    "DEFAULT_TARGET_NAME",
    "RegisterFile",
    "TargetSpec",
    "WidthModel",
    "available_targets",
    "default_target_name",
    "get_target",
    "register_target",
]
