"""`TargetSpec`: everything the pipeline needs to know about one target.

The paper leans on an AArch64 property — "the saving is computed based on
the number of instructions, which is fixed-width in AArch64" — and the
original reproduction baked that assumption into every layer.  This module
is the single place those facts now live:

* the **register file** and **calling convention** the backend emits
  against (argument/return/error/callee-saved/scratch registers);
* the **instruction width model** — fixed-width (AArch64-style) or
  compressed (Thumb-2-style, per-instruction 2/4 bytes) — which every
  byte-size computation (outliner cost model, linker layout, verifier,
  simulator fetch) must consult instead of multiplying by 4;
* the **outlining overheads** (call/tail-call/return/LR-frame bytes),
  derived from the width model on the exact instructions the outliner
  materialises, so the cost model can never disagree with the linker;
* **function alignment** and per-function **metadata bytes** (symbol table
  entry + compact unwind info).

Specs are frozen and hashable; :meth:`TargetSpec.fingerprint` folds every
size-relevant field into the build-cache keys so a target switch can never
hit a stale cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Iterable, Tuple

from repro.isa.instructions import (
    MachineFunction,
    MachineInstr,
    Opcode,
    Sym,
)


@dataclass(frozen=True)
class RegisterFile:
    """The physical registers a target exposes to the backend."""

    gprs: Tuple[str, ...]
    fprs: Tuple[str, ...]
    sp: str
    zero: str
    fp: str
    lr: str

    @cached_property
    def all_physical(self) -> FrozenSet[str]:
        return frozenset(self.gprs) | frozenset(self.fprs) | {self.sp,
                                                              self.zero}


@dataclass(frozen=True)
class CallingConvention:
    """Argument/return/error/saved/scratch register assignments."""

    arg_gprs: Tuple[str, ...]
    arg_fprs: Tuple[str, ...]
    ret_gpr: str
    ret_fpr: str
    #: Swift-style error register (a throwing callee reports here).
    error_reg: str
    callee_saved_gprs: Tuple[str, ...]
    callee_saved_fprs: Tuple[str, ...]
    caller_saved_gprs: Tuple[str, ...]
    caller_saved_fprs: Tuple[str, ...]
    allocatable_gprs: Tuple[str, ...]
    allocatable_fprs: Tuple[str, ...]
    scratch_gprs: Tuple[str, ...]
    scratch_fprs: Tuple[str, ...]
    max_reg_args: int = 8

    def call_clobbers(self) -> Tuple[str, ...]:
        """Registers a call may clobber (caller-saved + error register)."""
        return (self.caller_saved_gprs + self.caller_saved_fprs
                + (self.error_reg,))

    def is_callee_saved(self, reg: str) -> bool:
        return reg in self.callee_saved_gprs or reg in self.callee_saved_fprs


@dataclass(frozen=True)
class WidthModel:
    """Per-instruction encoding width.

    ``narrow_opcodes`` empty means fixed width (every instruction is
    ``default_bytes``).  Otherwise an instruction encodes narrow
    (``narrow_bytes``) when its opcode is in the narrow set, none of its
    operands is a symbol reference (symbolic targets need full-range
    encodings), and every integer immediate fits ``narrow_imm_limit`` —
    the Thumb-2 shape: common ALU/branch forms have 16-bit encodings with
    small immediates, everything else takes the 32-bit encoding.
    """

    default_bytes: int = 4
    narrow_bytes: int = 2
    narrow_opcodes: FrozenSet[Opcode] = frozenset()
    narrow_imm_limit: int = 256

    @property
    def is_fixed(self) -> bool:
        return not self.narrow_opcodes

    def instr_bytes(self, instr: MachineInstr) -> int:
        if not self.narrow_opcodes:
            return self.default_bytes
        if instr.opcode not in self.narrow_opcodes:
            return self.default_bytes
        for op in instr.operands:
            if isinstance(op, Sym):
                return self.default_bytes
            if isinstance(op, int) and not isinstance(op, bool):
                if abs(op) >= self.narrow_imm_limit:
                    return self.default_bytes
        return self.narrow_bytes

    def fingerprint_parts(self) -> Tuple[str, ...]:
        # frozenset iteration order is not stable across processes (enum
        # hashes are id-based); sort by opcode name for a stable digest.
        names = ",".join(sorted(op.name for op in self.narrow_opcodes))
        return (f"w={self.default_bytes}/{self.narrow_bytes}",
                f"imm<{self.narrow_imm_limit}", f"narrow:{names}")


@dataclass(frozen=True)
class TargetSpec:
    """A complete, frozen description of one compilation target."""

    name: str
    description: str
    regs: RegisterFile
    cc: CallingConvention
    widths: WidthModel
    #: Functions are laid out at this alignment in __text; the linker
    #: inserts padding and the verifier rejects misaligned extents.
    function_alignment: int = 4
    #: Per-function non-code overhead carried into the final binary
    #: (symbol table entry + compact unwind info).
    function_metadata_bytes: int = 32

    # -- width helpers (ALL byte-size math goes through these) --------------

    def instr_bytes(self, instr: MachineInstr) -> int:
        return self.widths.instr_bytes(instr)

    def seq_bytes(self, instrs: Iterable[MachineInstr]) -> int:
        return sum(self.widths.instr_bytes(i) for i in instrs)

    def align_up(self, size: int) -> int:
        rem = size % self.function_alignment
        return size + (self.function_alignment - rem) if rem else size

    def function_body_bytes(self, fn: MachineFunction) -> int:
        """Unaligned __text bytes of one function's instructions."""
        return self.seq_bytes(fn.instructions())

    def function_text_bytes(self, fn: MachineFunction) -> int:
        """__text bytes contributed by one function (alignment included)."""
        return self.align_up(self.function_body_bytes(fn))

    def total_text_bytes(self, functions: Iterable[MachineFunction]) -> int:
        return sum(self.function_text_bytes(fn) for fn in functions)

    def total_metadata_bytes(self,
                             functions: Iterable[MachineFunction]) -> int:
        return sum(self.function_metadata_bytes for _ in functions)

    @property
    def min_instr_bytes(self) -> int:
        return (self.widths.default_bytes if self.widths.is_fixed
                else min(self.widths.default_bytes, self.widths.narrow_bytes))

    # -- outlining overheads -------------------------------------------------
    #
    # Derived from the width model applied to the *exact* instructions the
    # outliner materialises, so the cost model prices what the linker lays
    # out.  ``call_site_alignment_slack`` makes the model conservative on
    # variable-width targets: shrinking a caller can leave up to
    # (alignment - min width) bytes of new padding behind, so each call
    # site is billed that worst case up front — a candidate the model
    # accepts therefore can never grow the padded text section.

    @cached_property
    def outline_call_bytes(self) -> int:
        """Bytes of the ``BL OUTLINED_FUNCTION_N`` inserted per call site."""
        return self.instr_bytes(MachineInstr(Opcode.BL, (Sym("f"),)))

    @cached_property
    def outline_tail_call_bytes(self) -> int:
        """Bytes of the ``B callee`` used by tail-call sites/thunk tails."""
        return self.instr_bytes(MachineInstr(Opcode.B, (Sym("f"),)))

    @cached_property
    def outline_ret_bytes(self) -> int:
        return self.instr_bytes(MachineInstr(Opcode.RET))

    @cached_property
    def outline_lr_save_bytes(self) -> int:
        return self.instr_bytes(
            MachineInstr(Opcode.STRXpre, (self.regs.lr, self.regs.sp, -16)))

    @cached_property
    def outline_lr_restore_bytes(self) -> int:
        return self.instr_bytes(
            MachineInstr(Opcode.LDRXpost, (self.regs.lr, self.regs.sp, 16)))

    @property
    def call_site_alignment_slack(self) -> int:
        if self.widths.is_fixed:
            return 0
        return max(0, self.function_alignment - self.min_instr_bytes)

    # -- identity ------------------------------------------------------------

    @cached_property
    def _fingerprint(self) -> str:
        h = hashlib.sha256()
        parts = [
            self.name,
            f"align={self.function_alignment}",
            f"meta={self.function_metadata_bytes}",
            *self.widths.fingerprint_parts(),
            "gprs=" + ",".join(self.regs.gprs),
            "fprs=" + ",".join(self.regs.fprs),
            f"sp={self.regs.sp};zero={self.regs.zero};"
            f"fp={self.regs.fp};lr={self.regs.lr}",
            "arg=" + ",".join(self.cc.arg_gprs + self.cc.arg_fprs),
            f"ret={self.cc.ret_gpr},{self.cc.ret_fpr};err={self.cc.error_reg}",
            "cs=" + ",".join(self.cc.callee_saved_gprs
                             + self.cc.callee_saved_fprs),
            "alloc=" + ",".join(self.cc.allocatable_gprs
                                + self.cc.allocatable_fprs),
            "scratch=" + ",".join(self.cc.scratch_gprs
                                  + self.cc.scratch_fprs),
        ]
        for part in parts:
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def fingerprint(self) -> str:
        """Stable digest of every size-relevant field (cache-key input)."""
        return self._fingerprint

    @property
    def is_fixed_width(self) -> bool:
        return self.widths.is_fixed
