"""The ``thumb2c`` target: a Thumb-2-style compressed-width machine.

Same register file and calling convention as ``arm64``, but with a
variable 2/4-byte encoding modelled on Thumb-2: common ALU forms, local
branches, small-immediate loads/stores, ``RET`` and ``NOP`` have 16-bit
encodings; symbolic references (calls, tail calls, address formation) and
large immediates always take the 32-bit encoding.

This target is what makes the outliner's cost model genuinely byte-based:
an N-instruction candidate is no longer worth ``N * 4`` bytes, and
function-start alignment padding (4-byte alignment over 2-byte
instructions) actually exists, so the linker, verifier, and simulator all
have to consult per-instruction widths.
"""

from __future__ import annotations

from dataclasses import replace

from repro.isa.instructions import Opcode
from repro.target.arm64 import ARM64
from repro.target.spec import TargetSpec, WidthModel

#: Opcodes with a 16-bit encoding (subject to the no-Sym / small-immediate
#: rules in :class:`~repro.target.spec.WidthModel`).  The set mirrors the
#: Thumb-2 16-bit instruction space: MOV/ALU register forms, small
#: add/sub immediates, compare-and-set, local branches, single-register
#: unsigned-offset loads/stores, and RET/NOP.
NARROW_OPCODES = frozenset({
    Opcode.MOVZXi,
    Opcode.ORRXrs,
    Opcode.ADDXri, Opcode.ADDXrr,
    Opcode.SUBXri, Opcode.SUBXrr,
    Opcode.SUBSXri, Opcode.SUBSXrr,
    Opcode.ANDXrr, Opcode.EORXrr,
    Opcode.LSLVXrr, Opcode.LSRVXrr, Opcode.ASRVXrr,
    Opcode.CSETXi,
    Opcode.LDRXui, Opcode.STRXui,
    Opcode.B, Opcode.Bcc, Opcode.CBZX, Opcode.CBNZX,
    Opcode.RET, Opcode.NOP,
})

THUMB2C = TargetSpec(
    name="thumb2c",
    description="Thumb-2-style compressed target (2/4-byte instructions, "
                "4-byte function alignment); exercises variable-width "
                "byte accounting end to end.",
    regs=ARM64.regs,
    cc=ARM64.cc,
    widths=WidthModel(default_bytes=4, narrow_bytes=2,
                      narrow_opcodes=NARROW_OPCODES,
                      narrow_imm_limit=256),
    function_alignment=4,
    function_metadata_bytes=32,
)

# `replace` is re-exported for tests that derive one-off variant specs
# (e.g. a different alignment) without rebuilding the whole record.
__all__ = ["THUMB2C", "NARROW_OPCODES", "replace"]
