"""Stable public facade: build, run, connect.

Everything the CLI, the experiments, and external callers need lives
behind three functions, so internal pipeline modules can keep moving
without breaking users:

* :func:`build` — compile sources to a :class:`~repro.pipeline.BuildResult`;
* :func:`run` — compile and execute, returning build + execution together;
* :func:`connect` — a typed client for a running build daemon.

Configuration resolves with the documented precedence **explicit knob >
preset > built-in default**: pass ``preset="min-size" | "fast-build" |
"balanced"`` to start from a named configuration (see
:data:`repro.pipeline.config.PRESETS`), and any keyword knob on top of it
wins.  Passing a ready-made :class:`~repro.pipeline.BuildConfig` via
``config=`` bypasses preset resolution entirely (mixing ``config=`` with
``preset=`` or knobs is an error — there would be two sources of truth).

The facade adds no behaviour of its own: ``build()`` with a given
configuration is bit-identical to calling
:func:`repro.pipeline.build_program` with the same configuration, and the
equivalence tests pin that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.pipeline import BuildConfig, BuildResult, build_program
from repro.pipeline import build_targets as _build_targets
from repro.pipeline import run_build as _run_build

__all__ = ["build", "run", "connect", "resolve_config", "RunResult"]


def resolve_config(config: Optional[BuildConfig] = None,
                   preset: Optional[str] = None,
                   **knobs) -> BuildConfig:
    """Resolve ``config`` / ``preset`` / knobs into one BuildConfig.

    Precedence: explicit knobs > preset fields > BuildConfig defaults.
    """
    if config is not None:
        if preset is not None or knobs:
            raise ReproError(
                "pass either config= or preset=/knobs, not both")
        return config
    if preset is not None:
        return BuildConfig.preset(preset, **knobs)
    try:
        return BuildConfig(**knobs)
    except TypeError as exc:
        raise ReproError(f"unknown build option: {exc}") from None


def build(sources: Dict[str, str],
          config: Optional[BuildConfig] = None,
          *, preset: Optional[str] = None,
          targets: Optional[Sequence[str]] = None,
          tracer: Optional[object] = None,
          **knobs) -> Union[BuildResult, Dict[str, BuildResult]]:
    """Compile ``sources`` (module name -> Swiftlet text) to a binary.

    With ``targets`` (a sequence of target names), the build is an
    app-thinning *sliced* build: the target-independent front half runs
    exactly once and each target gets its own back half; the return value
    is then ``{target: BuildResult}`` (see
    :func:`repro.pipeline.build_targets`), each slice bit-identical to a
    standalone single-target build.

    With ``tracer`` (a :class:`repro.obs.Tracer`), the build runs under
    it and ``result.report.phase_wall`` is copied verbatim from the span
    durations — the experiments' only timing source.
    """
    resolved = resolve_config(config, preset, **knobs)

    def _go():
        if targets is not None:
            return _build_targets(sources, targets, resolved)
        return build_program(sources, resolved)

    if tracer is None:
        return _go()
    from repro.obs import use_tracer

    with use_tracer(tracer):
        return _go()


@dataclass
class RunResult:
    """What :func:`run` produced: the build and its execution."""

    build: BuildResult
    execution: object  # repro.sim.vm ExecutionResult

    @property
    def output(self) -> Tuple[str, ...]:
        return tuple(self.execution.output)


def run(sources: Dict[str, str],
        config: Optional[BuildConfig] = None,
        *, preset: Optional[str] = None,
        timing: Optional[object] = None,
        max_steps: int = 100_000_000,
        profile: Optional[object] = None,
        tracer: Optional[object] = None,
        **knobs) -> RunResult:
    """Compile and execute; ``timing``/``max_steps``/``profile`` are
    passed through to :func:`repro.pipeline.run_build`."""
    result = build(sources, config, preset=preset, tracer=tracer, **knobs)
    execution = _run_build(result, timing=timing, max_steps=max_steps,
                           profile=profile)
    return RunResult(build=result, execution=execution)


def connect(state_dir: Optional[str] = None, *,
            host: Optional[str] = None, port: Optional[int] = None,
            timeout: float = 300.0,
            auth_token: Optional[str] = None):
    """A :class:`~repro.service.client.ServiceClient` for a running
    daemon — by ``state_dir`` (reads host/port/token from its endpoint
    file) or an explicit ``host``/``port``.

    Raises :class:`~repro.errors.DaemonUnavailableError` when no daemon
    is reachable, like every client call does.
    """
    from repro.service import ServiceClient

    return ServiceClient(host=host, port=port, state_dir=state_dir,
                         timeout=timeout, auth_token=auth_token)
