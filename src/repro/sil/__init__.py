"""SIL layer: the Swift-Intermediate-Language analog (Figure 3)."""

from repro.sil import sil
from repro.sil.silgen import generate_sil

__all__ = ["sil", "generate_sil"]
