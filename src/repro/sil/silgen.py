"""SILGen: lowers the checked AST to SIL.

This stage owns the ARC (automatic reference counting) discipline — the
machinery whose lowered form produces the paper's dominant repeated machine
patterns (``swift_retain``/``swift_release`` call pairs, Listings 1-6):

* **+1 argument convention** — callers pass every reference argument owned
  (retaining borrowed values at the call site); callees release their
  reference parameters on all exits.  Returns are +1.
* **Stable homes** — mutable locals live in ``alloc_stack`` slots, captured
  locals in heap boxes; stores retain the incoming value and release the
  displaced one.
* **Error unwinding** — every ``try`` call's error edge releases the owned
  temps and in-scope locals before propagating, and *throwing inits* use the
  per-field init-flag + shared cleanup block scheme that reproduces the
  O(N^2) out-of-SSA pattern of the paper's Listing 10 / Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SILError
from repro.frontend import ast
from repro.frontend.sema import ClassInfo, ProgramInfo
from repro.frontend.types import (
    BOOL,
    DOUBLE,
    INT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    FuncType,
    NilType,
    Type,
)
from repro.sil import sil


@dataclass
class EValue:
    """An evaluated expression: a temp plus its ownership."""

    temp: sil.Temp
    ty: Type
    owned: bool = False  # only meaningful for ref types


@dataclass
class _Storage:
    kind: str  # "slot" | "box" | "global"
    temp: sil.Temp = -1
    symbol: str = ""
    ty: Type = None  # type: ignore[assignment]


@dataclass
class _LoopInfo:
    continue_label: str
    break_label: str
    scope_depth: int


@dataclass
class _Handler:
    kind: str  # "func" | "catch"
    scope_depth: int = 0
    catch_label: str = ""
    err_slot: sil.Temp = -1


@dataclass
class _InitContext:
    self_slot: sil.Temp
    class_info: ClassInfo
    #: field index -> init-flag stack slot (ref fields only).
    flags: Dict[int, sil.Temp] = field(default_factory=dict)
    err_slot: sil.Temp = -1
    cleanup_label: str = ""


class SILGenError(SILError):
    pass


class ModuleSILGen:
    """Generates the SIL module for one AST module."""

    def __init__(self, module: ast.Module, program: ProgramInfo):
        self.module = module
        self.program = program
        self.sil_module = sil.SILModule(name=module.name)
        self._thunks: Dict[str, str] = {}
        self._closure_count = 0

    def run(self) -> sil.SILModule:
        for gbl in self.module.globals:
            self.sil_module.globals.append(
                sil.SILGlobal(
                    symbol=gbl.symbol,
                    ty=gbl.declared_type,
                    const_value=gbl.const_value,  # type: ignore[attr-defined]
                    is_let=gbl.is_let,
                    origin_module=self.module.name,
                )
            )
        for fn in self.module.functions:
            self._emit_function(fn)
            if fn.name == "main" and not fn.params:
                self.sil_module.entry_symbol = fn.symbol
        for cls in self.module.classes:
            info = self.program.classes_by_qualified_name[cls.qualified_name]
            for ini in cls.inits:
                self._emit_init(ini, info)
            for method in cls.methods:
                self._emit_function(method, owner=info)
        return self.sil_module

    # -- function-level drivers ------------------------------------------------

    def _emit_function(self, fn: ast.FuncDecl,
                       owner: Optional[ClassInfo] = None) -> None:
        param_types: List[Type] = []
        if owner is not None:
            param_types.append(owner.type)
        param_types.extend(p.ty for p in fn.params)
        silfn = sil.SILFunction(
            symbol=fn.symbol,
            param_types=list(param_types),
            ret_type=fn.ret_type,
            throws=fn.throws,
            source_module=self.module.name,
        )
        emitter = _FunctionEmitter(self, silfn)
        bindings: List[Tuple[ast.VarBinding, bool]] = []
        if owner is not None:
            self_binding = _find_self_binding(fn)
            bindings.append((self_binding, True))
        for p in fn.params:
            bindings.append((p.binding, True))
        emitter.begin(bindings)
        emitter.emit_block_stmts(fn.body)
        emitter.finish_void_fallthrough()
        self.sil_module.functions.append(silfn)

    def _emit_init(self, ini: ast.InitDecl, owner: ClassInfo) -> None:
        param_types = [p.ty for p in ini.params]
        silfn = sil.SILFunction(
            symbol=ini.symbol,
            param_types=list(param_types),
            ret_type=owner.type,
            throws=ini.throws,
            source_module=self.module.name,
        )
        emitter = _FunctionEmitter(self, silfn)
        bindings = [(p.binding, True) for p in ini.params]
        emitter.begin_init(bindings, ini, owner)
        emitter.emit_block_stmts(ini.body)
        emitter.finish_init()
        self.sil_module.functions.append(silfn)

    def emit_closure_function(self, closure: ast.ClosureExpr) -> None:
        param_types = [p.ty for p in closure.params]
        silfn = sil.SILFunction(
            symbol=closure.symbol,
            param_types=list(param_types),  # + hidden ctx param
            ret_type=closure.ret_type,
            throws=False,
            source_module=self.module.name,
        )
        emitter = _FunctionEmitter(self, silfn)
        bindings = [(p.binding, True) for p in closure.params]
        emitter.begin_closure(bindings, closure)
        emitter.emit_block_stmts(closure.body)
        emitter.finish_void_fallthrough()
        self.sil_module.functions.append(silfn)

    def thunk_for(self, fn: ast.FuncDecl, fty: FuncType) -> str:
        """Bare forwarding thunk so a plain function can be a closure value."""
        symbol = f"{fn.symbol}$thunk"
        if symbol in self._thunks:
            return symbol
        self._thunks[symbol] = symbol
        silfn = sil.SILFunction(
            symbol=symbol,
            param_types=list(fty.params),
            ret_type=fty.ret,
            throws=fty.throws,
            is_bare=True,
            source_module=self.module.name,
        )
        params = [silfn.new_temp() for _ in fty.params]
        ctx = silfn.new_temp()  # hidden context, unused
        silfn.param_temps = params + [ctx]
        entry = silfn.new_block("entry")
        result = silfn.new_temp() if fty.ret != VOID else None
        if fty.throws:
            normal = silfn.new_block("normal")
            error = silfn.new_block("error")
            err = silfn.new_temp()
            entry.instrs.append(
                sil.TryApply(result=result, callee=fn.symbol, args=tuple(params),
                             normal_target="normal", error_target="error",
                             error_result=err))
            normal.instrs.append(sil.Return(value=result))
            error.instrs.append(sil.Throw(code=err))
        else:
            entry.instrs.append(
                sil.Apply(result=result, callee=fn.symbol, args=tuple(params)))
            entry.instrs.append(sil.Return(value=result))
        self.sil_module.functions.append(silfn)
        return symbol


def _find_self_binding(fn: ast.FuncDecl) -> ast.VarBinding:
    """Sema bound 'self' in the method's scope; rediscover it lazily.

    Methods don't carry an explicit self Param node, so we synthesise a
    binding of the right shape here; SILGen only needs uid/ty/boxed, and
    sema marked captured-self bindings via SelfExpr.binding, so we reuse the
    binding object sema created by scanning the body for the first SelfExpr.
    """
    found: List[ast.VarBinding] = []

    def visit(node):
        if isinstance(node, ast.SelfExpr) and isinstance(node.binding, ast.VarBinding):
            found.append(node.binding)
            return

    _walk_ast(fn.body, visit)
    if found:
        return found[0]
    # Body never mentions self: synthesise a placeholder binding.
    owner = fn.owner_class
    ty = ClassType(owner.qualified_name) if owner is not None else None
    return ast.VarBinding(name="self", ty=ty, is_let=True, kind="self", uid=-id(fn))


#: Annotation fields that point *out* of the syntax tree (cyclic).
#: Note "target" is structural on AssignStmt but an annotation on CallExpr.
_NON_STRUCTURAL_FIELDS = frozenset(
    {"binding", "owner_class", "member_kind", "captures", "error_binding"}
)


def _walk_ast(node, visit, _seen=None) -> None:
    if _seen is None:
        _seen = set()
    if id(node) in _seen:
        return
    _seen.add(id(node))
    visit(node)
    if isinstance(node, (list, tuple)):
        for item in node:
            _walk_ast(item, visit, _seen)
        return
    if not isinstance(node, ast.Node):
        return
    for name, value in vars(node).items():
        if name in _NON_STRUCTURAL_FIELDS:
            continue
        if name == "target" and isinstance(node, ast.CallExpr):
            continue
        if isinstance(value, (ast.Node, list, tuple)):
            _walk_ast(value, visit, _seen)


class _FunctionEmitter:
    """Emits the body of one SIL function."""

    def __init__(self, parent: ModuleSILGen, silfn: sil.SILFunction):
        self.gen = parent
        self.fn = silfn
        self.cur: Optional[sil.SILBlock] = None
        self.storage: Dict[int, _Storage] = {}
        self.scopes: List[List[Tuple[str, object]]] = []
        self.pending: List[EValue] = []
        self.loops: List[_LoopInfo] = []
        self.handlers: List[_Handler] = []
        self.init_ctx: Optional[_InitContext] = None
        self._label_counter = 0
        self._trap_label: Optional[str] = None

    # -- low-level emission ----------------------------------------------------

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def emit(self, instr: sil.SILInstr) -> Optional[sil.Temp]:
        assert self.cur is not None
        self.cur.instrs.append(instr)
        return instr.result

    def _new_result(self) -> sil.Temp:
        return self.fn.new_temp()

    def _set_block(self, label: str) -> sil.SILBlock:
        self.cur = self.fn.block(label)
        return self.cur

    def _start_block(self, label: str) -> sil.SILBlock:
        blk = self.fn.new_block(label)
        self.cur = blk
        return blk

    @property
    def _terminated(self) -> bool:
        return self.cur is not None and self.cur.terminator is not None

    # -- prologue variants ---------------------------------------------------------

    def begin(self, param_bindings: List[Tuple[ast.VarBinding, bool]]) -> None:
        """Standard function/method prologue: slots for +1 params."""
        self._start_block("entry")
        self.scopes.append([])
        if self.fn.throws:
            self.handlers.append(_Handler(kind="func"))
        for binding, owned in param_bindings:
            temp = self.fn.new_temp()
            self.fn.param_temps.append(temp)
            self._bind_param(binding, temp, owned)

    def begin_closure(self, param_bindings, closure: ast.ClosureExpr) -> None:
        self._start_block("entry")
        self.scopes.append([])
        for binding, owned in param_bindings:
            temp = self.fn.new_temp()
            self.fn.param_temps.append(temp)
            self._bind_param(binding, temp, owned)
        ctx = self.fn.new_temp()
        self.fn.param_temps.append(ctx)
        # Captured boxes live in the context object after the fnptr and
        # capture-count words: capture i sits at field index i + 2
        # (layout.CLOSURE_CAPS_OFFSET).
        for i, captured in enumerate(closure.captures):
            box = self._new_result()
            self.emit(sil.FieldLoad(result=box, obj=ctx, index=i + 2,
                                    ty=captured.ty))
            self.storage[captured.uid] = _Storage(kind="box", temp=box,
                                                  ty=captured.ty)

    def begin_init(self, param_bindings, ini: ast.InitDecl,
                   owner: ClassInfo) -> None:
        self._start_block("entry")
        self.scopes.append([])
        if ini.throws:
            self.handlers.append(_Handler(kind="func"))
        for binding, owned in param_bindings:
            temp = self.fn.new_temp()
            self.fn.param_temps.append(temp)
            self._bind_param(binding, temp, owned)
        # Allocate self.
        self_temp = self._new_result()
        cls = owner.decl
        self.emit(sil.AllocRef(result=self_temp, class_symbol=cls.qualified_name,
                               type_id=cls.type_id, num_fields=len(cls.fields)))
        self_slot = self._new_result()
        self.emit(sil.AllocStack(result=self_slot, ty=owner.type, name="self"))
        self.emit(sil.Store(value=self_temp, addr=self_slot))
        self_binding = self._find_init_self_binding(ini)
        self.storage[self_binding.uid] = _Storage(kind="slot", temp=self_slot,
                                                  ty=owner.type)
        self.init_ctx = _InitContext(self_slot=self_slot, class_info=owner)
        if ini.throws:
            # Init flags for ref fields: 0 at entry, 1 after first store.
            # mem2reg + out-of-SSA later turn these into the Listing 11 blow-up.
            err_slot = self._new_result()
            self.emit(sil.AllocStack(result=err_slot, ty=INT, name="swifterror"))
            self.init_ctx.err_slot = err_slot
            zero = self._new_result()
            self.emit(sil.ConstInt(result=zero, value=0))
            for fld in cls.fields:
                if fld.ty.is_ref():
                    flag = self._new_result()
                    self.emit(sil.AllocStack(result=flag, ty=INT,
                                             name=f"{fld.name}$init"))
                    self.emit(sil.Store(value=zero, addr=flag))
                    self.init_ctx.flags[fld.index] = flag
            self.init_ctx.cleanup_label = "init_error_cleanup"

    def _find_init_self_binding(self, ini: ast.InitDecl) -> ast.VarBinding:
        found: List[ast.VarBinding] = []

        def visit(node):
            if isinstance(node, ast.SelfExpr) and isinstance(node.binding, ast.VarBinding):
                found.append(node.binding)

        _walk_ast(ini.body, visit)
        if found:
            return found[0]
        owner = self.init_ctx.class_info if self.init_ctx else None
        return ast.VarBinding(name="self", ty=None, is_let=True, kind="self",
                              uid=-id(ini))

    def _bind_param(self, binding: ast.VarBinding, temp: sil.Temp,
                    owned: bool) -> None:
        if binding is None:
            return
        if binding.boxed:
            box = self._new_result()
            self.emit(sil.AllocBox(result=box, ty=binding.ty,
                                   elem_is_ref=binding.ty.is_ref(),
                                   name=binding.name))
            self.emit(sil.BoxSet(box=box, value=temp,
                                 is_ref=binding.ty.is_ref()))
            self.storage[binding.uid] = _Storage(kind="box", temp=box,
                                                 ty=binding.ty)
            self.scopes[-1].append(("release_box", box))
            return
        slot = self._new_result()
        self.emit(sil.AllocStack(result=slot, ty=binding.ty, name=binding.name))
        self.emit(sil.Store(value=temp, addr=slot))
        self.storage[binding.uid] = _Storage(kind="slot", temp=slot,
                                             ty=binding.ty)
        if binding.ty.is_ref() and not self.fn.is_bare:
            self.scopes[-1].append(("release_slot", (slot, binding.ty)))

    # -- epilogues ---------------------------------------------------------------

    def finish_void_fallthrough(self) -> None:
        if not self._terminated:
            if self.fn.ret_type not in (None, VOID):
                # sema guaranteed all paths return; this block is unreachable.
                self.emit(sil.Unreachable(reason="missing return"))
            else:
                self._emit_unwind_all_scopes()
                self.emit(sil.Return(value=None))
        self._finalize_blocks()

    def finish_init(self) -> None:
        if not self._terminated:
            self._emit_unwind_all_scopes()
            result = self._new_result()
            self.emit(sil.Load(result=result, addr=self.init_ctx.self_slot,
                               ty=self.init_ctx.class_info.type))
            self.emit(sil.Return(value=result))
        self._emit_init_cleanup_block_if_needed()
        self._finalize_blocks()

    def _emit_init_cleanup_block_if_needed(self) -> None:
        ctx = self.init_ctx
        if ctx is None or not ctx.cleanup_label:
            return
        if not any(b.label == ctx.cleanup_label for b in self.fn.blocks):
            if not self._cleanup_label_used:
                return
        if not any(b.label == ctx.cleanup_label for b in self.fn.blocks):
            self._start_block(ctx.cleanup_label)
            self_val = self._new_result()
            self.emit(sil.Load(result=self_val, addr=ctx.self_slot,
                               ty=ctx.class_info.type))
            for index, flag in ctx.flags.items():
                flag_val = self._new_result()
                self.emit(sil.Load(result=flag_val, addr=flag, ty=INT))
                release_label = self._label("release_field")
                cont_label = self._label("cont")
                self.emit(sil.CondBr(cond=flag_val, true_target=release_label,
                                     false_target=cont_label))
                self._start_block(release_label)
                fld_ty = ctx.class_info.decl.fields[index].ty
                value = self._new_result()
                self.emit(sil.FieldLoad(result=value, obj=self_val, index=index,
                                        ty=fld_ty))
                self.emit(sil.Release(value=value))
                self.emit(sil.Br(target=cont_label))
                self._start_block(cont_label)
            self.emit(sil.ApplyBuiltin(builtin="dealloc_partial",
                                       args=(self_val,)))
            err = self._new_result()
            self.emit(sil.Load(result=err, addr=ctx.err_slot, ty=INT))
            self.emit(sil.Throw(code=err))

    @property
    def _cleanup_label_used(self) -> bool:
        ctx = self.init_ctx
        if ctx is None:
            return False
        for blk in self.fn.blocks:
            for instr in blk.instrs:
                if isinstance(instr, sil.Br) and instr.target == ctx.cleanup_label:
                    return True
        return False

    def _finalize_blocks(self) -> None:
        """Ensure every block is terminated (dead blocks get Unreachable)."""
        if self._trap_label is not None:
            blk = self.fn.block(self._trap_label)
            if blk.terminator is None:
                blk.instrs.append(sil.Unreachable(reason="trap"))
        for blk in self.fn.blocks:
            if blk.terminator is None:
                blk.instrs.append(sil.Unreachable(reason="fallthrough"))

    # -- scope & cleanup machinery ---------------------------------------------

    def _push_scope(self) -> None:
        self.scopes.append([])

    def _pop_scope_emitting(self) -> None:
        cleanups = self.scopes.pop()
        if not self._terminated:
            self._emit_cleanup_list(cleanups)

    def _emit_cleanup_list(self, cleanups) -> None:
        for kind, payload in reversed(cleanups):
            if kind == "release_slot":
                slot, ty = payload
                value = self._new_result()
                self.emit(sil.Load(result=value, addr=slot, ty=ty))
                self.emit(sil.Release(value=value))
            elif kind == "release_box":
                self.emit(sil.Release(value=payload))

    def _emit_unwind_scopes(self, down_to_depth: int) -> None:
        """Emit cleanups for scopes deeper than *down_to_depth* (not popping)."""
        for scope in reversed(self.scopes[down_to_depth:]):
            self._emit_cleanup_list(scope)

    def _emit_unwind_all_scopes(self) -> None:
        self._emit_unwind_scopes(0)

    def _release_pending(self, down_to: int = 0) -> None:
        """Release owned temps beyond *down_to* (emits, then truncates)."""
        while len(self.pending) > down_to:
            ev = self.pending.pop()
            self.emit(sil.Release(value=ev.temp))

    def _emit_pending_releases_nonmutating(self) -> None:
        for ev in reversed(self.pending):
            self.emit(sil.Release(value=ev.temp))

    def _own(self, ev: EValue) -> EValue:
        """Ensure *ev* is owned (+1); retains borrowed ref values."""
        if not ev.ty.is_ref() or isinstance(ev.ty, NilType):
            return ev
        if ev.owned:
            return ev
        self.emit(sil.Retain(value=ev.temp))
        owned = EValue(ev.temp, ev.ty, owned=True)
        self.pending.append(owned)
        return owned

    def _consume(self, ev: EValue) -> sil.Temp:
        """Mark an owned value as consumed (forwarded); returns its temp."""
        if ev.owned:
            for i in range(len(self.pending) - 1, -1, -1):
                if self.pending[i] is ev:
                    del self.pending[i]
                    break
        return ev.temp

    def _track_owned(self, temp: sil.Temp, ty: Type) -> EValue:
        ev = EValue(temp, ty, owned=True)
        if ty.is_ref():
            self.pending.append(ev)
        return ev

    # -- error propagation --------------------------------------------------------

    def _emit_error_path(self, err_temp: sil.Temp) -> None:
        """Emit the unwind code for an error edge; leaves the block terminated."""
        self._emit_pending_releases_nonmutating()
        handler = self.handlers[-1]
        if handler.kind == "catch":
            self._emit_unwind_scopes(handler.scope_depth)
            self.emit(sil.Store(value=err_temp, addr=handler.err_slot))
            self.emit(sil.Br(target=handler.catch_label))
            return
        # Propagate out of the function.
        self._emit_unwind_scopes(0)
        ctx = self.init_ctx
        if ctx is not None and ctx.cleanup_label:
            self.emit(sil.Store(value=err_temp, addr=ctx.err_slot))
            self.emit(sil.Br(target=ctx.cleanup_label))
            return
        self.emit(sil.Throw(code=err_temp))

    # -- statements -----------------------------------------------------------------

    def emit_block_stmts(self, block: ast.Block) -> None:
        self._push_scope()
        for stmt in block.stmts:
            if self._terminated:
                # Dead code after return/throw/break: skip (sema allows it).
                break
            self.emit_stmt(stmt)
        self._pop_scope_emitting()

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        pending_depth = len(self.pending)
        if isinstance(stmt, ast.VarDeclStmt):
            self._emit_var_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._emit_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.emit_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.ForRangeStmt):
            self._emit_for_range(stmt)
        elif isinstance(stmt, ast.ForEachStmt):
            self._emit_for_each(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._emit_return(stmt)
        elif isinstance(stmt, ast.ThrowStmt):
            self._emit_throw(stmt)
        elif isinstance(stmt, ast.DoCatchStmt):
            self._emit_do_catch(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self._release_pending(pending_depth)
            loop = self.loops[-1]
            self._emit_unwind_scopes(loop.scope_depth)
            self.emit(sil.Br(target=loop.break_label))
            return
        elif isinstance(stmt, ast.ContinueStmt):
            self._release_pending(pending_depth)
            loop = self.loops[-1]
            self._emit_unwind_scopes(loop.scope_depth)
            self.emit(sil.Br(target=loop.continue_label))
            return
        else:  # pragma: no cover
            raise SILGenError(f"unknown statement {type(stmt).__name__}")
        if not self._terminated:
            self._release_pending(pending_depth)
        else:
            del self.pending[pending_depth:]

    def _emit_var_decl(self, stmt: ast.VarDeclStmt) -> None:
        binding: ast.VarBinding = stmt.binding
        if stmt.init is not None:
            ev = self.emit_expr(stmt.init)
            ev = self._coerce_nil(ev, binding.ty)
            ev = self._own(ev)
            value = self._consume(ev)
        else:
            value = self._zero_value(binding.ty)
        if binding.boxed:
            box = self._new_result()
            self.emit(sil.AllocBox(result=box, ty=binding.ty,
                                   elem_is_ref=binding.ty.is_ref(),
                                   name=binding.name))
            self.emit(sil.BoxSet(box=box, value=value,
                                 is_ref=binding.ty.is_ref()))
            self.storage[binding.uid] = _Storage(kind="box", temp=box,
                                                 ty=binding.ty)
            self.scopes[-1].append(("release_box", box))
        else:
            slot = self._new_result()
            self.emit(sil.AllocStack(result=slot, ty=binding.ty,
                                     name=binding.name))
            self.emit(sil.Store(value=value, addr=slot))
            self.storage[binding.uid] = _Storage(kind="slot", temp=slot,
                                                 ty=binding.ty)
            if binding.ty.is_ref():
                self.scopes[-1].append(("release_slot", (slot, binding.ty)))

    def _zero_value(self, ty: Type) -> sil.Temp:
        temp = self._new_result()
        if ty == DOUBLE:
            self.emit(sil.ConstFloat(result=temp, value=0.0))
        elif ty.is_ref():
            self.emit(sil.ConstNil(result=temp))
        else:
            self.emit(sil.ConstInt(result=temp, value=0))
        return temp

    def _coerce_nil(self, ev: EValue, target: Type) -> EValue:
        if isinstance(ev.ty, NilType):
            return EValue(ev.temp, target, owned=False)
        return ev

    def _emit_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if stmt.op is not None:
            # Compound assignment: read-modify-write.
            old = self.emit_expr(target)
            rhs = self.emit_expr(stmt.value)
            result = self._new_result()
            if target.ty == STRING:
                self.emit(sil.ApplyBuiltin(result=result, builtin="string_concat",
                                           args=(old.temp, rhs.temp)))
                value = self._track_owned(result, STRING)
            else:
                self.emit(sil.BinOp(result=result, op=stmt.op, lhs=old.temp,
                                    rhs=rhs.temp, is_float=target.ty == DOUBLE))
                value = EValue(result, target.ty)
            self._store_into(target, value)
            return
        rhs = self.emit_expr(stmt.value)
        rhs = self._coerce_nil(rhs, target.ty)
        self._store_into(target, rhs)

    def _store_into(self, target: ast.Expr, value: EValue) -> None:
        is_ref = target.ty.is_ref()
        if is_ref:
            value = self._own(value)
        temp = self._consume(value) if is_ref else value.temp
        if isinstance(target, (ast.Ident, ast.SelfExpr)):
            binding = target.binding
            storage = self._storage_for(binding)
            if storage.kind == "global":
                self.emit(sil.GlobalStore(symbol=storage.symbol, value=temp))
                return
            if storage.kind == "box":
                self.emit(sil.BoxSet(box=storage.temp, value=temp,
                                     is_ref=is_ref))
                return
            if is_ref:
                old = self._new_result()
                self.emit(sil.Load(result=old, addr=storage.temp, ty=target.ty))
                self.emit(sil.Store(value=temp, addr=storage.temp))
                self.emit(sil.Release(value=old))
            else:
                self.emit(sil.Store(value=temp, addr=storage.temp))
            return
        if isinstance(target, ast.MemberExpr):
            base = self.emit_expr(target.base)
            fld: ast.FieldDecl = target.member_kind[1]
            self.emit(sil.FieldStore(obj=base.temp, index=fld.index, value=temp,
                                     is_ref=is_ref))
            # Track throwing-init flags.
            ctx = self.init_ctx
            if (
                ctx is not None
                and isinstance(target.base, ast.SelfExpr)
                and fld.index in ctx.flags
            ):
                one = self._new_result()
                self.emit(sil.ConstInt(result=one, value=1))
                self.emit(sil.Store(value=one, addr=ctx.flags[fld.index]))
            return
        if isinstance(target, ast.IndexExpr):
            base = self.emit_expr(target.base)
            index = self.emit_expr(target.index)
            self.emit(sil.ArraySet(array=base.temp, index=index.temp, value=temp,
                                   is_ref=is_ref))
            return
        raise SILGenError("unsupported assignment target")

    def _storage_for(self, binding) -> _Storage:
        if isinstance(binding, ast.VarBinding) and binding.kind == "global":
            return _Storage(kind="global", symbol=binding.symbol, ty=binding.ty)
        storage = self.storage.get(binding.uid if binding else -1)
        if storage is None:
            raise SILGenError(
                f"no storage for binding "
                f"{getattr(binding, 'name', binding)!r} in {self.fn.symbol}")
        return storage

    def _emit_if(self, stmt: ast.IfStmt) -> None:
        cond = self.emit_expr(stmt.cond)
        then_label = self._label("if_then")
        else_label = self._label("if_else") if stmt.else_block else None
        merge_label = self._label("if_end")
        self.emit(sil.CondBr(cond=cond.temp, true_target=then_label,
                             false_target=else_label or merge_label))
        self._start_block(then_label)
        self.emit_block_stmts(stmt.then_block)
        then_terminated = self._terminated
        if not then_terminated:
            self.emit(sil.Br(target=merge_label))
        if stmt.else_block is not None:
            self._start_block(else_label)
            self.emit_block_stmts(stmt.else_block)
            if not self._terminated:
                self.emit(sil.Br(target=merge_label))
        self._start_block(merge_label)

    def _emit_while(self, stmt: ast.WhileStmt) -> None:
        cond_label = self._label("while_cond")
        body_label = self._label("while_body")
        exit_label = self._label("while_end")
        self.emit(sil.Br(target=cond_label))
        self._start_block(cond_label)
        pending_depth = len(self.pending)
        cond = self.emit_expr(stmt.cond)
        self._release_pending(pending_depth)
        self.emit(sil.CondBr(cond=cond.temp, true_target=body_label,
                             false_target=exit_label))
        self._start_block(body_label)
        self.loops.append(_LoopInfo(cond_label, exit_label, len(self.scopes)))
        self.emit_block_stmts(stmt.body)
        self.loops.pop()
        if not self._terminated:
            self.emit(sil.Br(target=cond_label))
        self._start_block(exit_label)

    def _emit_for_range(self, stmt: ast.ForRangeStmt) -> None:
        start = self.emit_expr(stmt.start)
        end = self.emit_expr(stmt.end)
        slot = self._new_result()
        self.emit(sil.AllocStack(result=slot, ty=INT, name=stmt.var_name))
        self.emit(sil.Store(value=start.temp, addr=slot))
        self.storage[stmt.binding.uid] = _Storage(kind="slot", temp=slot, ty=INT)
        cond_label = self._label("for_cond")
        body_label = self._label("for_body")
        inc_label = self._label("for_inc")
        exit_label = self._label("for_end")
        self.emit(sil.Br(target=cond_label))
        self._start_block(cond_label)
        ivar = self._new_result()
        self.emit(sil.Load(result=ivar, addr=slot, ty=INT))
        cmp = self._new_result()
        op = "<=" if stmt.inclusive else "<"
        self.emit(sil.CmpOp(result=cmp, op=op, lhs=ivar, rhs=end.temp))
        self.emit(sil.CondBr(cond=cmp, true_target=body_label,
                             false_target=exit_label))
        self._start_block(body_label)
        self.loops.append(_LoopInfo(inc_label, exit_label, len(self.scopes)))
        self.emit_block_stmts(stmt.body)
        self.loops.pop()
        if not self._terminated:
            self.emit(sil.Br(target=inc_label))
        self._start_block(inc_label)
        cur = self._new_result()
        self.emit(sil.Load(result=cur, addr=slot, ty=INT))
        one = self._new_result()
        self.emit(sil.ConstInt(result=one, value=1))
        nxt = self._new_result()
        self.emit(sil.BinOp(result=nxt, op="+", lhs=cur, rhs=one))
        self.emit(sil.Store(value=nxt, addr=slot))
        self.emit(sil.Br(target=cond_label))
        self._start_block(exit_label)

    def _emit_for_each(self, stmt: ast.ForEachStmt) -> None:
        self._push_scope()  # loop-owned scope: array + element slot
        arr = self.emit_expr(stmt.iterable)
        arr = self._own(arr)
        arr_temp = self._consume(arr)
        arr_slot = self._new_result()
        self.emit(sil.AllocStack(result=arr_slot, ty=arr.ty, name="$iter"))
        self.emit(sil.Store(value=arr_temp, addr=arr_slot))
        self.scopes[-1].append(("release_slot", (arr_slot, arr.ty)))
        count = self._new_result()
        self.emit(sil.ArrayCount(result=count, array=arr_temp))
        islot = self._new_result()
        self.emit(sil.AllocStack(result=islot, ty=INT, name="$idx"))
        zero = self._new_result()
        self.emit(sil.ConstInt(result=zero, value=0))
        self.emit(sil.Store(value=zero, addr=islot))
        elem_ty = stmt.binding.ty
        cond_label = self._label("each_cond")
        body_label = self._label("each_body")
        inc_label = self._label("each_inc")
        exit_label = self._label("each_end")
        self.emit(sil.Br(target=cond_label))
        self._start_block(cond_label)
        ivar = self._new_result()
        self.emit(sil.Load(result=ivar, addr=islot, ty=INT))
        cmp = self._new_result()
        self.emit(sil.CmpOp(result=cmp, op="<", lhs=ivar, rhs=count))
        self.emit(sil.CondBr(cond=cmp, true_target=body_label,
                             false_target=exit_label))
        self._start_block(body_label)
        arr_val = self._new_result()
        self.emit(sil.Load(result=arr_val, addr=arr_slot, ty=arr.ty))
        i2 = self._new_result()
        self.emit(sil.Load(result=i2, addr=islot, ty=INT))
        elem = self._new_result()
        self.emit(sil.ArrayGet(result=elem, array=arr_val, index=i2, ty=elem_ty))
        self.loops.append(_LoopInfo(inc_label, exit_label, len(self.scopes)))
        self._push_scope()
        if elem_ty.is_ref():
            self.emit(sil.Retain(value=elem))
        eslot = self._new_result()
        self.emit(sil.AllocStack(result=eslot, ty=elem_ty, name=stmt.var_name))
        self.emit(sil.Store(value=elem, addr=eslot))
        self.storage[stmt.binding.uid] = _Storage(kind="slot", temp=eslot,
                                                  ty=elem_ty)
        if elem_ty.is_ref():
            self.scopes[-1].append(("release_slot", (eslot, elem_ty)))
        self.emit_block_stmts(stmt.body)
        self._pop_scope_emitting()
        self.loops.pop()
        if not self._terminated:
            self.emit(sil.Br(target=inc_label))
        self._start_block(inc_label)
        cur = self._new_result()
        self.emit(sil.Load(result=cur, addr=islot, ty=INT))
        one = self._new_result()
        self.emit(sil.ConstInt(result=one, value=1))
        nxt = self._new_result()
        self.emit(sil.BinOp(result=nxt, op="+", lhs=cur, rhs=one))
        self.emit(sil.Store(value=nxt, addr=islot))
        self.emit(sil.Br(target=cond_label))
        self._start_block(exit_label)
        self._pop_scope_emitting()

    def _emit_return(self, stmt: ast.ReturnStmt) -> None:
        if self.init_ctx is not None:
            self._emit_unwind_all_scopes()
            result = self._new_result()
            self.emit(sil.Load(result=result, addr=self.init_ctx.self_slot,
                               ty=self.init_ctx.class_info.type))
            self.emit(sil.Return(value=result))
            return
        if stmt.value is None:
            self._emit_pending_releases_nonmutating()
            self._emit_unwind_all_scopes()
            self.emit(sil.Return(value=None))
            return
        ev = self.emit_expr(stmt.value)
        ev = self._coerce_nil(ev, self.fn.ret_type)
        if ev.ty.is_ref():
            ev = self._own(ev)
            temp = self._consume(ev)
        else:
            temp = ev.temp
        self._emit_pending_releases_nonmutating()
        self._emit_unwind_all_scopes()
        self.emit(sil.Return(value=temp))

    def _emit_throw(self, stmt: ast.ThrowStmt) -> None:
        code = self.emit_expr(stmt.code)
        self._emit_error_path(code.temp)

    def _emit_do_catch(self, stmt: ast.DoCatchStmt) -> None:
        err_slot = self._new_result()
        self.emit(sil.AllocStack(result=err_slot, ty=INT, name="$caught"))
        catch_label = self._label("catch")
        merge_label = self._label("do_end")
        self.handlers.append(_Handler(kind="catch", scope_depth=len(self.scopes),
                                      catch_label=catch_label, err_slot=err_slot))
        self.emit_block_stmts(stmt.body)
        self.handlers.pop()
        body_terminated = self._terminated
        if not body_terminated:
            self.emit(sil.Br(target=merge_label))
        catch_reached = any(
            isinstance(i, sil.Br) and i.target == catch_label
            for blk in self.fn.blocks for i in blk.instrs
        )
        if catch_reached or True:
            # Always emit the catch block; unreachable ones are cleaned later.
            self._start_block(catch_label)
            self._push_scope()
            self.storage[stmt.error_binding.uid] = _Storage(
                kind="slot", temp=err_slot, ty=INT)
            self.emit_block_stmts(stmt.catch_body)
            self._pop_scope_emitting()
            if not self._terminated:
                self.emit(sil.Br(target=merge_label))
        self._start_block(merge_label)

    # -- expressions -------------------------------------------------------------

    def emit_expr(self, expr: ast.Expr) -> EValue:
        if isinstance(expr, ast.IntLit):
            temp = self._new_result()
            self.emit(sil.ConstInt(result=temp, value=expr.value))
            return EValue(temp, INT)
        if isinstance(expr, ast.FloatLit):
            temp = self._new_result()
            self.emit(sil.ConstFloat(result=temp, value=expr.value))
            return EValue(temp, DOUBLE)
        if isinstance(expr, ast.BoolLit):
            temp = self._new_result()
            self.emit(sil.ConstInt(result=temp, value=1 if expr.value else 0))
            return EValue(temp, BOOL)
        if isinstance(expr, ast.StringLit):
            temp = self._new_result()
            self.emit(sil.ConstString(result=temp, value=expr.value))
            return EValue(temp, STRING, owned=False)  # immortal literal
        if isinstance(expr, ast.NilLit):
            temp = self._new_result()
            self.emit(sil.ConstNil(result=temp))
            return EValue(temp, expr.ty)
        if isinstance(expr, (ast.Ident, ast.SelfExpr)):
            return self._emit_ident(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._emit_binary(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._emit_unary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._emit_call(expr, in_try=False)
        if isinstance(expr, ast.MemberExpr):
            return self._emit_member(expr)
        if isinstance(expr, ast.IndexExpr):
            return self._emit_index(expr)
        if isinstance(expr, ast.ArrayLit):
            return self._emit_array_lit(expr)
        if isinstance(expr, ast.ArrayRepeating):
            return self._emit_array_repeating(expr)
        if isinstance(expr, ast.ClosureExpr):
            return self._emit_closure(expr)
        if isinstance(expr, ast.TryExpr):
            return self._emit_try(expr)
        raise SILGenError(f"unknown expression {type(expr).__name__}")

    def _emit_ident(self, expr) -> EValue:
        binding = expr.binding
        if isinstance(binding, ast.VarBinding):
            if binding.kind == "global":
                temp = self._new_result()
                is_object = binding.ty.is_ref()
                self.emit(sil.GlobalLoad(result=temp, symbol=binding.symbol,
                                         ty=binding.ty, is_object=is_object))
                return EValue(temp, binding.ty)
            storage = self._storage_for(binding)
            temp = self._new_result()
            if storage.kind == "box":
                self.emit(sil.BoxGet(result=temp, box=storage.temp,
                                     ty=binding.ty))
            else:
                self.emit(sil.Load(result=temp, addr=storage.temp,
                                   ty=binding.ty))
            return EValue(temp, binding.ty)
        if isinstance(binding, ast.FuncDecl):
            # Function used as a value: wrap in a capture-free closure.
            thunk = self.gen.thunk_for(binding, expr.ty)
            temp = self._new_result()
            self.emit(sil.MakeClosure(result=temp, fn_symbol=thunk, captures=()))
            return self._track_owned(temp, expr.ty)
        raise SILGenError(f"identifier {getattr(expr, 'name', 'self')!r} "
                          "cannot be used as a value here")

    def _emit_binary(self, expr: ast.BinaryExpr) -> EValue:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_short_circuit(expr)
        left = self.emit_expr(expr.left)
        right = self.emit_expr(expr.right)
        lt = expr.left.ty
        # String operations.
        if lt == STRING and expr.right.ty == STRING:
            temp = self._new_result()
            if op == "+":
                self.emit(sil.ApplyBuiltin(result=temp, builtin="string_concat",
                                           args=(left.temp, right.temp)))
                return self._track_owned(temp, STRING)
            if op in ("==", "!="):
                self.emit(sil.ApplyBuiltin(result=temp, builtin="string_eq",
                                           args=(left.temp, right.temp)))
                if op == "!=":
                    inv = self._new_result()
                    self.emit(sil.NotOp(result=inv, value=temp))
                    return EValue(inv, BOOL)
                return EValue(temp, BOOL)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            temp = self._new_result()
            is_float = lt == DOUBLE or expr.right.ty == DOUBLE
            self.emit(sil.CmpOp(result=temp, op=op, lhs=left.temp,
                                rhs=right.temp, operand_is_float=is_float))
            return EValue(temp, BOOL)
        temp = self._new_result()
        self.emit(sil.BinOp(result=temp, op=op, lhs=left.temp, rhs=right.temp,
                            is_float=expr.ty == DOUBLE))
        return EValue(temp, expr.ty)

    def _emit_short_circuit(self, expr: ast.BinaryExpr) -> EValue:
        slot = self._new_result()
        self.emit(sil.AllocStack(result=slot, ty=BOOL, name="$sc"))
        left = self.emit_expr(expr.left)
        self.emit(sil.Store(value=left.temp, addr=slot))
        rhs_label = self._label("sc_rhs")
        merge_label = self._label("sc_end")
        if expr.op == "&&":
            self.emit(sil.CondBr(cond=left.temp, true_target=rhs_label,
                                 false_target=merge_label))
        else:
            self.emit(sil.CondBr(cond=left.temp, true_target=merge_label,
                                 false_target=rhs_label))
        self._start_block(rhs_label)
        depth = len(self.pending)
        right = self.emit_expr(expr.right)
        self.emit(sil.Store(value=right.temp, addr=slot))
        self._release_pending(depth)
        self.emit(sil.Br(target=merge_label))
        self._start_block(merge_label)
        temp = self._new_result()
        self.emit(sil.Load(result=temp, addr=slot, ty=BOOL))
        return EValue(temp, BOOL)

    def _emit_unary(self, expr: ast.UnaryExpr) -> EValue:
        operand = self.emit_expr(expr.operand)
        temp = self._new_result()
        if expr.op == "-":
            self.emit(sil.NegOp(result=temp, value=operand.temp,
                                is_float=expr.ty == DOUBLE))
        else:
            self.emit(sil.NotOp(result=temp, value=operand.temp))
        return EValue(temp, expr.ty)

    def _emit_member(self, expr: ast.MemberExpr) -> EValue:
        kind = expr.member_kind
        base = self.emit_expr(expr.base)
        if kind == ("count",):
            temp = self._new_result()
            if base.ty == STRING:
                self.emit(sil.StringLen(result=temp, value=base.temp))
            else:
                self.emit(sil.ArrayCount(result=temp, array=base.temp))
            return EValue(temp, INT)
        if isinstance(kind, tuple) and kind[0] == "field":
            fld: ast.FieldDecl = kind[1]
            temp = self._new_result()
            self.emit(sil.FieldLoad(result=temp, obj=base.temp, index=fld.index,
                                    ty=fld.ty))
            return EValue(temp, fld.ty)
        raise SILGenError(f"cannot read member {expr.name!r}")

    def _emit_index(self, expr: ast.IndexExpr) -> EValue:
        base = self.emit_expr(expr.base)
        index = self.emit_expr(expr.index)
        temp = self._new_result()
        if base.ty == STRING:
            self.emit(sil.StringIndex(result=temp, value=base.temp,
                                      index=index.temp))
            return EValue(temp, INT)
        elem_ty = base.ty.elem  # type: ignore[union-attr]
        self.emit(sil.ArrayGet(result=temp, array=base.temp, index=index.temp,
                               ty=elem_ty))
        return EValue(temp, elem_ty)

    def _emit_array_lit(self, expr: ast.ArrayLit) -> EValue:
        elem_ty = expr.ty.elem  # type: ignore[union-attr]
        count = self._new_result()
        self.emit(sil.ConstInt(result=count, value=len(expr.elements)))
        initial = self._zero_value(elem_ty)
        arr = self._new_result()
        self.emit(sil.ArrayNew(result=arr, count=count, initial=initial,
                               elem_is_ref=elem_ty.is_ref(),
                               elem_is_float=elem_ty == DOUBLE))
        result = self._track_owned(arr, expr.ty)
        for i, elem in enumerate(expr.elements):
            idx = self._new_result()
            self.emit(sil.ConstInt(result=idx, value=i))
            ev = self.emit_expr(elem)
            ev = self._coerce_nil(ev, elem_ty)
            if elem_ty.is_ref():
                ev = self._own(ev)
                value = self._consume(ev)
            else:
                value = ev.temp
            self.emit(sil.ArraySet(array=arr, index=idx, value=value,
                                   is_ref=elem_ty.is_ref()))
        return result

    def _emit_array_repeating(self, expr: ast.ArrayRepeating) -> EValue:
        count = self.emit_expr(expr.count)
        initial = self.emit_expr(expr.repeating)
        initial = self._coerce_nil(initial, expr.elem_type)
        # The runtime stores `count` references to the initial value: it
        # handles the retains itself (one bulk operation).
        arr = self._new_result()
        self.emit(sil.ArrayNew(result=arr, count=count.temp, initial=initial.temp,
                               elem_is_ref=expr.elem_type.is_ref(),
                               elem_is_float=expr.elem_type == DOUBLE))
        return self._track_owned(arr, expr.ty)

    def _emit_closure(self, expr: ast.ClosureExpr) -> EValue:
        self.gen.emit_closure_function(expr)
        boxes = []
        for captured in expr.captures:
            storage = self._storage_for(captured)
            if storage.kind != "box":
                raise SILGenError(
                    f"captured binding {captured.name!r} is not boxed")
            boxes.append(storage.temp)
        temp = self._new_result()
        self.emit(sil.MakeClosure(result=temp, fn_symbol=expr.symbol,
                                  captures=tuple(boxes)))
        return self._track_owned(temp, expr.ty)

    def _emit_try(self, expr: ast.TryExpr) -> EValue:
        inner = expr.inner
        if isinstance(inner, ast.CallExpr):
            return self._emit_call(inner, in_try=True)
        # 'try' over a non-call (e.g. try (a + b) with nested throwing call):
        # nested calls handle their own try emission.
        return self.emit_expr(inner)

    # -- calls ---------------------------------------------------------------------

    def _emit_call(self, expr: ast.CallExpr, in_try: bool) -> EValue:
        kind = expr.call_kind
        if kind == "builtin":
            return self._emit_builtin_call(expr)
        if kind == "func":
            fn: ast.FuncDecl = expr.target
            args = self._emit_args(expr.args)
            return self._finish_call(expr, fn.symbol, args, fn.throws, None)
        if kind == "method":
            method: ast.FuncDecl = expr.target
            member: ast.MemberExpr = expr.callee  # type: ignore[assignment]
            receiver = self.emit_expr(member.base)
            receiver = self._own(receiver)
            args = [self._consume(receiver)]
            args.extend(self._emit_args(expr.args))
            return self._finish_call(expr, method.symbol, args, method.throws,
                                     None)
        if kind == "ctor":
            ini: ast.InitDecl = expr.target
            args = self._emit_args(expr.args)
            return self._finish_call(expr, ini.symbol, args, ini.throws, None)
        if kind == "value":
            callee = self.emit_expr(expr.callee)
            fty: FuncType = expr.callee.ty  # type: ignore[assignment]
            args = self._emit_args(expr.args)
            return self._finish_call(expr, "", args, fty.throws, callee.temp)
        raise SILGenError(f"unresolved call kind {kind!r}")

    def _emit_args(self, arg_exprs: List[ast.Expr]) -> List[sil.Temp]:
        temps: List[sil.Temp] = []
        for arg in arg_exprs:
            ev = self.emit_expr(arg)
            if ev.ty.is_ref() and not isinstance(ev.ty, NilType):
                ev = self._own(ev)
                temps.append(self._consume(ev))
            else:
                temps.append(ev.temp)
        return temps

    def _finish_call(self, expr: ast.CallExpr, symbol: str,
                     args: List[sil.Temp], throws: bool,
                     closure: Optional[sil.Temp]) -> EValue:
        ret_ty = expr.ty
        result = self._new_result() if ret_ty != VOID else None
        if throws:
            normal = self._label("normal")
            error = self._label("error")
            err = self._new_result()
            self.emit(sil.TryApply(result=result, callee=symbol,
                                   args=tuple(args), normal_target=normal,
                                   error_target=error, error_result=err,
                                   closure=closure))
            self._start_block(error)
            self._emit_error_path(err)
            self._start_block(normal)
        else:
            if closure is not None:
                self.emit(sil.ApplyClosure(result=result, closure=closure,
                                           args=tuple(args)))
            else:
                self.emit(sil.Apply(result=result, callee=symbol,
                                    args=tuple(args)))
        if result is None:
            return EValue(-1, VOID)
        if ret_ty.is_ref():
            return self._track_owned(result, ret_ty)
        return EValue(result, ret_ty)

    def _emit_builtin_call(self, expr: ast.CallExpr) -> EValue:
        name = expr.target
        # Conversions that are pure value operations.
        if name in ("int_identity", "double_identity", "bool_to_int"):
            return self.emit_expr(expr.args[0])
        if name in ("double_to_int", "int_to_double"):
            ev = self.emit_expr(expr.args[0])
            temp = self._new_result()
            self.emit(sil.Convert(result=temp, kind=name, value=ev.temp))
            return EValue(temp, expr.ty)
        if name == "array_append":
            member: ast.MemberExpr = expr.callee  # type: ignore[assignment]
            base = self.emit_expr(member.base)
            elem_ty = base.ty.elem  # type: ignore[union-attr]
            ev = self.emit_expr(expr.args[0])
            ev = self._coerce_nil(ev, elem_ty)
            if elem_ty.is_ref():
                ev = self._own(ev)
                value = self._consume(ev)
            else:
                value = ev.temp
            self.emit(sil.ArrayAppend(array=base.temp, value=value,
                                      is_ref=elem_ty.is_ref()))
            return EValue(-1, VOID)
        if name == "array_remove_last":
            member: ast.MemberExpr = expr.callee  # type: ignore[assignment]
            base = self.emit_expr(member.base)
            elem_ty = base.ty.elem  # type: ignore[union-attr]
            temp = self._new_result()
            self.emit(sil.ArrayRemoveLast(result=temp, array=base.temp,
                                          ty=elem_ty))
            if elem_ty.is_ref():
                return self._track_owned(temp, elem_ty)
            return EValue(temp, elem_ty)
        # Remaining builtins lower to runtime calls with plain args.
        args = []
        for arg in expr.args:
            ev = self.emit_expr(arg)
            args.append(ev.temp)
        result = self._new_result() if expr.ty != VOID else None
        self.emit(sil.ApplyBuiltin(result=result, builtin=name,
                                   args=tuple(args)))
        if result is None:
            return EValue(-1, VOID)
        return EValue(result, expr.ty)


def generate_sil(program: ProgramInfo) -> List[sil.SILModule]:
    """Lower every module of a checked program to SIL."""
    return [ModuleSILGen(module, program).run() for module in program.modules]
